//! Data redundancy in action: a Taylor-style robust job queue surviving
//! pointer corruption, and N-variant cells stopping a data-corruption
//! attack (paper §4.2).
//!
//! Run with: `cargo run --example robust_store`

use redundancy::core::rng::SplitMix64;
use redundancy::techniques::nvariant_data::NVariantCell;
use redundancy::techniques::robust_data::{RepairOutcome, RobustList};

fn main() {
    // --- Part 1: robust structures + audits ------------------------------
    let mut queue: RobustList<String> = (1..=8).map(|i| format!("job-{i}")).collect();
    println!("job queue: {:?}", queue.to_vec());

    // A wild pointer write corrupts the forward chain mid-queue.
    queue.corrupt_next(3, None);
    let audit = queue.audit();
    println!("\naudit after corruption:");
    for finding in &audit.findings {
        println!("  - {finding}");
    }
    assert!(!audit.is_clean());

    // The redundant backward chain reconstructs the damage.
    match queue.repair() {
        RepairOutcome::Repaired => println!("repair: reconstructed from the backward chain"),
        other => println!("repair: {other:?}"),
    }
    assert!(queue.audit().is_clean());
    println!(
        "queue after repair: {:?} ({} jobs)",
        queue.to_vec(),
        queue.len()
    );

    // A corrupted counter is also caught and recomputed.
    queue.corrupt_count(999);
    assert!(!queue.audit().is_clean());
    assert_eq!(queue.repair(), RepairOutcome::Repaired);
    println!("counter corruption repaired: len = {}", queue.len());

    // --- Part 2: N-variant data for security -----------------------------
    println!("\nN-variant session token:");
    let mut rng = SplitMix64::new(99);
    let mut token = NVariantCell::new(3, 2024);
    let secret = rng.next_u64();
    token.write(secret);
    assert_eq!(token.read(), Ok(secret));
    println!("  legitimate read:  {:#018x}", token.read().unwrap());

    // The attacker overwrites the stored bytes with a forged value — the
    // same concrete pattern lands in every variant, and decodings diverge.
    token.attack_overwrite(0x4141_4141_4141_4141);
    match token.read() {
        Err(detected) => println!("  after attack:     {detected}"),
        Ok(v) => unreachable!("attack slipped through with {v}"),
    }
}
