//! Quickstart: three-version programming in a dozen lines.
//!
//! Three "independently developed" implementations of a percentile
//! function — one with a classic off-by-one — run under majority voting.
//! The faulty version is outvoted on every input, including the ones
//! where it disagrees.
//!
//! Run with: `cargo run --example quickstart`

use redundancy::core::adjudicator::voting::MajorityVoter;
use redundancy::core::context::ExecContext;
use redundancy::core::patterns::ParallelEvaluation;
use redundancy::core::variant::pure_variant;

fn main() {
    // The specification: the 90th-percentile value of a data set.
    // Team A sorts and indexes; Team B uses select-nth semantics; Team C
    // has the classic off-by-one on the index.
    let nvp = ParallelEvaluation::new(MajorityVoter::new())
        .with_variant(pure_variant("team-a", 12, |xs: &Vec<u32>| {
            let mut v = xs.clone();
            v.sort_unstable();
            v[(v.len() - 1) * 9 / 10]
        }))
        .with_variant(pure_variant("team-b", 15, |xs: &Vec<u32>| {
            let mut v = xs.clone();
            let idx = (v.len() - 1) * 9 / 10;
            let (_, nth, _) = v.select_nth_unstable(idx);
            *nth
        }))
        .with_variant(pure_variant("team-c", 10, |xs: &Vec<u32>| {
            let mut v = xs.clone();
            v.sort_unstable();
            v[v.len() * 9 / 10] // off-by-one: panics or misses by one slot
        }));

    let mut ctx = ExecContext::new(42);
    let mut outvoted = 0;
    for round in 0..5u32 {
        let data: Vec<u32> = (0..10 + round * 7)
            .map(|i| (i * 37 + round) % 100)
            .collect();
        let report = nvp.run(&data, &mut ctx);
        let disagreed = report
            .outcomes
            .iter()
            .filter(|o| o.output() != report.output())
            .count();
        outvoted += disagreed;
        println!(
            "p90 of {:2} samples = {:>2?}   (support {}, outvoted {})",
            data.len(),
            report.output().expect("majority exists"),
            report.outcomes.len() - disagreed,
            disagreed,
        );
    }
    println!("\nTeam C was outvoted {outvoted} times and never corrupted a result.");
    println!("Total cost: {}", ctx.cost());
}
