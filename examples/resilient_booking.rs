//! A self-healing service composition (the paper's web-service setting).
//!
//! A travel-booking BPEL process calls a flight-pricing service, a hotel
//! service and a payment service. The primary flight provider is down,
//! the hotel provider is flaky, and the payment provider only speaks a
//! *similar* interface — the process survives through dynamic
//! substitution (registration-order fail-over, retry, and an interface
//! converter), exactly the Subramanian/Taher/Mosincat pipeline.
//!
//! Run with: `cargo run --example resilient_booking`

use std::sync::Arc;

use redundancy::core::context::ExecContext;
use redundancy::services::process::{Activity, Binder, Engine, Expr, Vars};
use redundancy::services::provider::SimProvider;
use redundancy::services::registry::{Converter, InterfaceId, ServiceRegistry};
use redundancy::services::value::Value;
use redundancy::techniques::service_substitution::DynamicSubstitution;

fn build_registry() -> ServiceRegistry {
    let mut registry = ServiceRegistry::new();
    // Flight pricing: the primary is dead, the secondary works.
    registry.register(Arc::new(
        SimProvider::builder("flights.primary", InterfaceId::new("flights"))
            .fail_prob(1.0)
            .operation("quote", |_, _| Ok(Value::Null))
            .build(),
    ));
    registry.register(Arc::new(
        SimProvider::builder("flights.backup", InterfaceId::new("flights"))
            .latency(40, 5)
            .operation("quote", |args, _| {
                let pax = args[0].as_int().unwrap_or(1);
                Ok(Value::Int(120 * pax))
            })
            .build(),
    ));
    // Hotels: one provider, transiently flaky — retry absorbs it.
    registry.register(Arc::new(
        SimProvider::builder("hotels.solo", InterfaceId::new("hotels"))
            .fail_prob(0.5)
            .latency(60, 10)
            .operation("reserve", |args, _| {
                let nights = args[0].as_int().unwrap_or(1);
                Ok(Value::Int(80 * nights))
            })
            .build(),
    ));
    // Payments: only a *similar* legacy interface exists.
    registry.register(Arc::new(
        SimProvider::builder("legacy.pay", InterfaceId::new("legacy-payments"))
            .operation("settle_cents", |args, _| {
                let cents = args[0].as_int().unwrap_or(0);
                Ok(Value::Str(format!("receipt#{}", cents / 100)))
            })
            .build(),
    ));
    registry.register_converter(
        Converter::new(
            InterfaceId::new("payments"),
            InterfaceId::new("legacy-payments"),
        )
        .map_operation("charge", "settle_cents")
        .adapt_args(|args| {
            // The modern interface charges in whole currency units.
            vec![Value::Int(args[0].as_int().unwrap_or(0) * 100)]
        }),
    );
    registry
}

fn main() {
    let registry = build_registry();
    let mut ctx = ExecContext::new(7);

    // Step 1+2 as a BPEL process with fail-over binding and retry.
    let process = Activity::seq(vec![
        Activity::invoke(
            "flights",
            "quote",
            vec![Expr::Lit(Value::Int(2))],
            "flight_total",
        ),
        Activity::retry(
            Activity::invoke(
                "hotels",
                "reserve",
                vec![Expr::Lit(Value::Int(3))],
                "hotel_total",
            ),
            8,
        ),
    ]);
    let engine = Engine::new(&registry).with_binder(Binder::Failover);
    let mut vars = Vars::new();
    engine
        .run(&process, &mut vars, &mut ctx)
        .expect("booking pipeline heals itself");
    let flight = vars["flight_total"].as_int().expect("flight priced");
    let hotel = vars["hotel_total"].as_int().expect("hotel reserved");
    println!("flights: {flight}   (primary was down: substituted)");
    println!("hotels:  {hotel}   (flaky provider: retried)");

    // Step 3: payment through converter-based substitution.
    let substitution = DynamicSubstitution::new(&registry);
    let report = substitution
        .invoke(
            &InterfaceId::new("payments"),
            "charge",
            &[Value::Int(flight + hotel)],
            &mut ctx,
        )
        .expect("payment heals through the converter");
    println!(
        "payment: {}  (served by {} via converter: {})",
        report.value, report.served_by, report.converted
    );
    println!("\ntotal booking cost = {} currency units", flight + hotel);
    println!("virtual latency     = {} ns", ctx.cost().virtual_ns);
}
