//! Opportunistic code redundancy end to end (paper §5.1): when a failure
//! is detected, first try to *work around* it by rewriting the failing
//! operation sequence into an equivalent one; if the fault keeps biting,
//! *fix* the offending program with test-suite-guided genetic
//! programming.
//!
//! Run with: `cargo run --example automatic_repair`

use redundancy::core::rng::SplitMix64;
use redundancy::gp::corpus::corpus;
use redundancy::gp::engine::GpParams;
use redundancy::techniques::fault_fixing::FaultFixer;
use redundancy::techniques::workarounds::container::{rules, Container, Op};
use redundancy::techniques::workarounds::{OpSystem, WorkaroundEngine};

fn main() {
    // --- Phase 1: automatic workarounds ----------------------------------
    // A container API with a state-dependent Bohrbug: `Add` fails whenever
    // the container holds exactly one element.
    let mut system = Container::new().with_fault(Op::Add, 1);
    let intended = vec![Op::Add, Op::Add, Op::Add];
    println!("intended sequence: {intended:?}");
    match system.execute(&intended) {
        Err(e) => println!("  failed as shipped: {e}"),
        Ok(_) => unreachable!("the seeded fault must manifest"),
    }

    let engine = WorkaroundEngine::new(rules());
    let workaround = engine
        .find_workaround(&mut system, &intended)
        .expect("the API's intrinsic redundancy suffices");
    println!(
        "  workaround found after {} rejected candidates: {:?}",
        workaround.attempts, workaround.sequence
    );
    let mut fresh = Container::new().with_fault(Op::Add, 1);
    println!(
        "  executes to the intended state: {:?}\n",
        fresh
            .execute(&workaround.sequence)
            .expect("workaround works")
    );

    // --- Phase 2: genetic-programming fault fixing -----------------------
    // The failures recur, so the maintenance bot repairs the faulty
    // programs themselves, adjudicated by their test suites.
    let fixer = FaultFixer::new(GpParams {
        population: 150,
        generations: 80,
        ..GpParams::default()
    });
    let mut rng = SplitMix64::new(42);
    println!("repairing the seeded-bug corpus:");
    let mut fixed = 0;
    let mut total = 0;
    for program in corpus() {
        let suite = program.suite(50, &mut rng);
        let report = fixer.fix(&program.faulty, program.arity, &suite, &mut rng);
        total += 1;
        if report.fixed {
            fixed += 1;
        }
        println!(
            "  {:8}  [{}]  {:>2}/{} tests  gen {}  {}",
            program.name,
            if report.fixed { "FIXED " } else { "partial" },
            report.best_fitness,
            report.total_tests,
            report.generations,
            program.bug,
        );
    }
    println!("\nfixed {fixed}/{total} programs with no human-written patch.");
}
