//! Environment redundancy end to end: an aging application server kept
//! alive by preventive rejuvenation, RX-style perturbed re-execution for
//! request-level failures, and escalating micro-reboots for component
//! corruption (paper §§4.3 and 5.2).
//!
//! Run with: `cargo run --example self_healing_server`

use redundancy::core::context::ExecContext;
use redundancy::core::rng::SplitMix64;
use redundancy::faults::{Activation, DetectableFailures, FaultEffect, FaultSpec, FaultyVariant};
use redundancy::techniques::env_perturbation::{Rx, RxOutcome};
use redundancy::techniques::microreboot::{ComponentTree, RebootPolicy};
use redundancy::techniques::rejuvenation::Rejuvenator;

fn main() {
    let mut ctx = ExecContext::new(2026);
    let requests: u64 = 4_000;

    // --- Layer 1: rejuvenation against aging -----------------------------
    // The request handler leaks; its crash hazard grows with age.
    let handler = FaultyVariant::builder("handler", 5, |req: &u64| req % 97)
        .fault(FaultSpec::aging("slow-leak", 0.0, 0.0008))
        .build();
    let age = handler.age_handle();
    let rejuvenated = Rejuvenator::new(Box::new(handler), age, 100, 25);

    let mut served = 0u64;
    let mut dropped = 0u64;
    for req in 0..requests {
        if rejuvenated.call(&req, &mut ctx).is_ok() {
            served += 1;
        } else {
            dropped += 1;
        }
    }
    println!("layer 1 — rejuvenation every 100 requests:");
    println!(
        "  served {served}/{requests} ({} rejuvenations, {dropped} dropped)",
        rejuvenated.rejuvenations()
    );

    // --- Layer 2: RX for environment-dependent request failures ----------
    let fragile = FaultyVariant::builder("parser", 8, |req: &u64| req * 3)
        .fault(FaultSpec::new(
            "layout-sensitive-overflow",
            Activation::EnvSensitive {
                density: 0.25,
                salt: 11,
            },
            FaultEffect::Crash,
        ))
        .build();
    let env = fragile.env_signature();
    let rx = Rx::new(Box::new(fragile), env, DetectableFailures::new(), 5);
    let mut clean = 0u64;
    let mut healed = 0u64;
    let mut lost = 0u64;
    for req in 0..requests {
        match rx.execute(&req, &mut ctx) {
            RxOutcome::CleanRun(_) => clean += 1,
            RxOutcome::Recovered { .. } => healed += 1,
            RxOutcome::Failed(_) => lost += 1,
        }
    }
    println!("\nlayer 2 — RX perturbed re-execution:");
    println!("  clean {clean}, healed {healed}, lost {lost}");

    // --- Layer 3: micro-reboots for component corruption -----------------
    let mut tree = ComponentTree::jagr_demo();
    let mut rng = SplitMix64::new(5);
    let mut downtime = 0u64;
    let mut reboots = 0u32;
    for _ in 0..40 {
        let tier = ["web", "app", "db"][rng.index(3)];
        let leaf = format!("{tier}-c{}", rng.index(4));
        tree.corrupt(&leaf, usize::from(rng.chance(0.25)));
        let record = tree.recover(&leaf, RebootPolicy::Escalating);
        assert!(record.cured);
        downtime += record.recovery_time;
        reboots += record.reboots;
    }
    println!("\nlayer 3 — escalating micro-reboots over 40 corruption events:");
    println!(
        "  total downtime {downtime} (avg {}), {reboots} reboot operations",
        downtime / 40
    );
    let mut full_tree = ComponentTree::jagr_demo();
    full_tree.corrupt("db-c0", 0);
    let full = full_tree.recover("db-c0", RebootPolicy::Full);
    println!(
        "  (a single full reboot would cost {} per event)",
        full.recovery_time
    );

    println!("\ntotal virtual time: {} ns", ctx.cost().virtual_ns);
}
