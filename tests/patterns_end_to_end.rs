//! Integration test: fault injection → patterns → adjudication →
//! Monte-Carlo measurement, across crates, sequential and threaded.

use redundancy::core::adjudicator::acceptance::FnAcceptance;
use redundancy::core::adjudicator::voting::MajorityVoter;
use redundancy::core::context::ExecContext;
use redundancy::core::cost::Cost;
use redundancy::core::patterns::{ExecutionMode, ParallelEvaluation, SequentialAlternatives};
use redundancy::core::variant::BoxedVariant;
use redundancy::faults::correlation::{correlated_versions, CorrelatedSuite};
use redundancy::faults::{FaultSpec, FaultyVariant};
use redundancy::sim::trial::{Campaign, TrialOutcome};

fn golden(x: &u64) -> u64 {
    x.rotate_left(3) ^ 0x5a5a
}

fn three_versions(seed: u64) -> Vec<BoxedVariant<u64, u64>> {
    correlated_versions(CorrelatedSuite::new(3, 0.2, 0.0, seed), golden, |c, rng| {
        c ^ (1 + rng.next_u64() % 0xffff)
    })
}

#[test]
fn campaign_measures_nvp_reliability_with_confidence_interval() {
    let mut pattern = ParallelEvaluation::new(MajorityVoter::new());
    for v in three_versions(0x77) {
        pattern.push_variant(v);
    }
    let summary = Campaign::new(2_000).run(123, |seed, trial| {
        let mut ctx = ExecContext::new(seed);
        let input = trial as u64;
        let report = pattern.run(&input, &mut ctx);
        let cost = ctx.cost();
        match report.into_output() {
            Some(out) if out == golden(&input) => TrialOutcome::Correct { cost },
            Some(_) => TrialOutcome::Undetected { cost },
            None => TrialOutcome::Detected { cost },
        }
    });
    // Binomial prediction at p = 0.2 with disagreeing wrong values:
    // correct needs >= 2 correct versions = 0.896.
    assert!(
        summary.reliability.lo < 0.896 && 0.896 < summary.reliability.hi,
        "CI {:?} should cover the prediction",
        summary.reliability
    );
    // Undetected failures require two versions to agree on a wrong value
    // — essentially impossible with XOR-random corruption.
    assert!(summary.undetected.rate < 0.01);
    assert!(summary.invocations.mean > 2.99);
}

#[test]
fn threaded_and_sequential_modes_agree_trial_by_trial() {
    let build = |mode| {
        let mut p = ParallelEvaluation::new(MajorityVoter::new()).with_mode(mode);
        for v in three_versions(0x88) {
            p.push_variant(v);
        }
        p
    };
    let seq = build(ExecutionMode::Sequential);
    let thr = build(ExecutionMode::Threaded);
    for x in 0..200u64 {
        let mut c1 = ExecContext::new(x);
        let mut c2 = ExecContext::new(x);
        assert_eq!(
            seq.run(&x, &mut c1).verdict,
            thr.run(&x, &mut c2).verdict,
            "divergence at input {x}"
        );
    }
}

#[test]
fn recovery_block_stack_handles_heisenbugs_under_fuel_budgets() {
    // A hanging primary is cut off by the fuel budget and the alternate
    // delivers: timeouts integrate with the sequential pattern.
    let hanging: BoxedVariant<u64, u64> = FaultyVariant::builder("hanger", 10, golden)
        .fault(FaultSpec::new(
            "hang",
            redundancy::faults::Activation::Probabilistic { p: 0.5 },
            redundancy::faults::FaultEffect::Hang,
        ))
        .build_boxed();
    let backup: BoxedVariant<u64, u64> = FaultyVariant::builder("backup", 10, golden).build_boxed();
    let pattern = SequentialAlternatives::new(FnAcceptance::new("any", |_: &u64, _: &u64| true))
        .with_variant(hanging)
        .with_variant(backup);
    let mut failures = 0;
    for x in 0..500u64 {
        let mut ctx = ExecContext::with_fuel(x, 100);
        match pattern.run(&x, &mut ctx).into_output() {
            Some(out) => assert_eq!(out, golden(&x)),
            None => failures += 1,
        }
    }
    assert_eq!(failures, 0, "the backup must always deliver");
}

#[test]
fn campaign_summaries_are_reproducible() {
    let run = || {
        Campaign::new(500).run(42, |seed, _| {
            let mut ctx = ExecContext::new(seed);
            let coin = ctx.rng().chance(0.3);
            let cost = Cost::of_invocation(1, 1);
            if coin {
                TrialOutcome::Detected { cost }
            } else {
                TrialOutcome::Correct { cost }
            }
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.reliability, b.reliability);
    assert_eq!(a.detected, b.detected);
}
