//! Integration test: N-version programming over diverse "SQL servers"
//! (Gashi et al., paper §4.1).
//!
//! The paper notes that applying NVP to off-the-shelf database servers is
//! attractive (the interface is standard, diverse implementations already
//! exist) **but** "reconciling the output … of multiple, heterogeneous
//! servers may not be trivial, due to concurrent scheduling and other
//! sources of non-determinism". This test reproduces exactly that
//! subtlety: three diverse store implementations return the same logical
//! result set in different physical orders, so naive equality voting
//! sees spurious disagreement — and canonicalizing results before the
//! vote restores NVP's fault-masking power.

use std::collections::{BTreeMap, HashMap};

use redundancy::core::adjudicator::voting::MajorityVoter;
use redundancy::core::context::ExecContext;
use redundancy::core::patterns::ParallelEvaluation;
use redundancy::core::variant::{BoxedVariant, FnVariant};

/// A query against the stores: all values with key in `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RangeQuery {
    lo: u32,
    hi: u32,
}

type Row = (u32, String);

fn dataset() -> Vec<Row> {
    (0..40u32)
        .map(|k| (k * 7 % 100, format!("value-{}", k * 7 % 100)))
        .collect()
}

/// Store A: ordered (BTreeMap) — rows come back sorted by key.
fn store_a() -> BoxedVariant<RangeQuery, Vec<Row>> {
    let table: BTreeMap<u32, String> = dataset().into_iter().collect();
    Box::new(FnVariant::new(
        "btree-store",
        move |q: &RangeQuery, _: &mut ExecContext| {
            Ok(table
                .range(q.lo..q.hi)
                .map(|(k, v)| (*k, v.clone()))
                .collect())
        },
    ))
}

/// Store B: hash-based — rows come back in an implementation-defined
/// order that differs from Store A's.
fn store_b() -> BoxedVariant<RangeQuery, Vec<Row>> {
    let table: HashMap<u32, String> = dataset().into_iter().collect();
    Box::new(FnVariant::new(
        "hash-store",
        move |q: &RangeQuery, _: &mut ExecContext| {
            let mut rows: Vec<Row> = table
                .iter()
                .filter(|(k, _)| (q.lo..q.hi).contains(k))
                .map(|(k, v)| (*k, v.clone()))
                .collect();
            // Deterministic but non-sorted order (reverse insertion-ish).
            rows.sort_by_key(|(k, _)| std::cmp::Reverse(*k));
            Ok(rows)
        },
    ))
}

/// Store C: log-structured scan with a faulty boundary (a real bug: the
/// upper bound is treated inclusively).
fn store_c_buggy() -> BoxedVariant<RangeQuery, Vec<Row>> {
    let log: Vec<Row> = dataset();
    Box::new(FnVariant::new(
        "log-store-buggy",
        move |q: &RangeQuery, _: &mut ExecContext| {
            Ok(log
                .iter()
                .filter(|(k, _)| *k >= q.lo && *k <= q.hi) // bug: inclusive hi
                .cloned()
                .collect())
        },
    ))
}

fn canonicalize(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows.dedup();
    rows
}

/// Wraps a store so its result set is canonicalized before adjudication
/// (Gashi's reconciliation middleware).
fn canonicalized(inner: BoxedVariant<RangeQuery, Vec<Row>>) -> BoxedVariant<RangeQuery, Vec<Row>> {
    let name = format!("{}+canon", inner.name());
    Box::new(FnVariant::new(
        name,
        move |q: &RangeQuery, ctx: &mut ExecContext| inner.execute(q, ctx).map(canonicalize),
    ))
}

fn queries() -> Vec<RangeQuery> {
    (0..30u32)
        .map(|i| RangeQuery {
            lo: i * 3 % 50,
            hi: i * 3 % 50 + 20,
        })
        .collect()
}

#[test]
fn naive_voting_is_defeated_by_result_order_nondeterminism() {
    let nvp = ParallelEvaluation::new(MajorityVoter::new())
        .with_variant(store_a())
        .with_variant(store_b())
        .with_variant(store_c_buggy());
    let mut ctx = ExecContext::new(1);
    let mut rejected = 0;
    for q in queries() {
        if !nvp.run(&q, &mut ctx).is_accepted() {
            rejected += 1;
        }
    }
    // Stores A and B disagree on *order* for every non-trivial result
    // set, so most queries find no majority even though two stores are
    // logically correct.
    assert!(rejected > 20, "only {rejected}/30 rejected");
}

#[test]
fn canonicalization_restores_fault_masking() {
    let nvp = ParallelEvaluation::new(MajorityVoter::new())
        .with_variant(canonicalized(store_a()))
        .with_variant(canonicalized(store_b()))
        .with_variant(canonicalized(store_c_buggy()));
    let mut ctx = ExecContext::new(2);
    for q in queries() {
        let report = nvp.run(&q, &mut ctx);
        let expected: Vec<Row> = canonicalize(
            dataset()
                .into_iter()
                .filter(|(k, _)| (q.lo..q.hi).contains(k))
                .collect(),
        );
        assert_eq!(
            report.into_output().as_ref(),
            Some(&expected),
            "query {q:?}: the two correct stores must outvote the boundary bug"
        );
    }
}

#[test]
fn the_buggy_store_alone_would_corrupt_results() {
    // Sanity: the seeded boundary bug actually manifests — on queries
    // where a row sits exactly at `hi`.
    let buggy = store_c_buggy();
    let mut ctx = ExecContext::new(3);
    let mut wrong = 0;
    for q in queries() {
        let rows = canonicalize(buggy.execute(&q, &mut ctx).unwrap());
        let expected: Vec<Row> = canonicalize(
            dataset()
                .into_iter()
                .filter(|(k, _)| (q.lo..q.hi).contains(k))
                .collect(),
        );
        if rows != expected {
            wrong += 1;
        }
    }
    assert!(wrong > 5, "bug manifested on only {wrong}/30 queries");
}
