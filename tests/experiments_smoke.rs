//! Integration smoke test: every experiment regenerator runs at reduced
//! trial counts and produces a well-formed table. Guards the `exp_*`
//! binaries against bit-rot without paying full experiment runtimes.

use redundancy_bench::experiments as exp;

const TRIALS: usize = 120;
const SEED: u64 = 0x5a5a;

fn assert_table(table: &redundancy::sim::table::Table, rows: usize, needle: &str) {
    assert_eq!(table.len(), rows);
    let text = table.to_string();
    assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    // header + rule + rows lines, all non-empty
    assert_eq!(text.lines().count(), rows + 2);
}

#[test]
fn table1_smoke() {
    assert_table(&exp::table1::run(), 4, "Intention");
}

#[test]
fn table2_matrix_smoke() {
    assert_table(
        &exp::table2_matrix::run(TRIALS, SEED),
        18,
        "N-version programming",
    );
}

#[test]
fn fig1_smoke() {
    assert_table(&exp::fig1_patterns::run(TRIALS, SEED), 3, "sequential");
}

#[test]
fn e4_smoke() {
    assert_table(&exp::nvp_tolerance::run(TRIALS, SEED), 4, "k=3");
    assert_table(
        &exp::nvp_tolerance::run_adjudicator_ablation(TRIALS, SEED),
        3,
        "median",
    );
}

#[test]
fn e5_smoke() {
    assert_table(&exp::correlated::run(TRIALS, SEED), 5, "1.00");
}

#[test]
fn e6_smoke() {
    assert_table(&exp::cost_efficacy::run(TRIALS, SEED), 6, "coverage");
}

#[test]
fn e7_smoke() {
    assert_table(
        &exp::rejuvenation::run_failure_rates(TRIALS, SEED),
        6,
        "never",
    );
    assert_table(&exp::rejuvenation::run_completion(3, SEED), 8, "never");
}

#[test]
fn e8_smoke() {
    assert_table(&exp::data_diversity::run(TRIALS, SEED), 5, "retry");
}

#[test]
fn e9_smoke() {
    assert_table(&exp::security::run(60, SEED), 4, "memory");
}

#[test]
fn e10_smoke() {
    assert_table(&exp::rx::run(TRIALS, SEED), 3, "env-sensitive");
}

#[test]
fn e10b_smoke() {
    assert_table(&exp::rx_ablation::run(60, SEED), 4, "full RX menu");
}

#[test]
fn e17_smoke() {
    assert_table(&exp::checkpoint_interval::run(2, SEED), 9, "Young");
}

#[test]
fn e18_smoke() {
    assert_table(&exp::early_exit::run(TRIALS, SEED), 4, "saved");
    assert_table(&exp::early_exit::run_quorum(TRIALS, SEED), 4, "q=");
}

#[test]
fn e19_smoke() {
    assert_table(&exp::resume::run(24, SEED), 4, "yes");
    assert!(exp::resume::chaos_smoke(24, SEED, 2) >= 1);
}

#[test]
fn e11_smoke() {
    assert_table(&exp::microreboot::run(2_000, SEED), 3, "JAGR");
}

#[test]
fn e12_smoke() {
    assert_table(&exp::substitution::run(TRIALS, SEED), 5, "1 - p^n");
}

#[test]
fn e13_smoke() {
    assert_table(&exp::workarounds::run(TRIALS, SEED), 4, "0");
}

#[test]
fn e14_smoke() {
    assert_table(&exp::gp_fix::run(1, SEED), 3, "fix");
}

#[test]
fn e15_smoke() {
    assert_table(&exp::wrappers::run(TRIALS, SEED), 4, "healer");
}

#[test]
fn e16_smoke() {
    assert_table(&exp::robust_data::run(TRIALS, SEED), 5, "count");
}
