//! Integration test: the full service stack — registry, BPEL-like
//! engine, substitution, and NVP-over-services (the paper's WS-FTM /
//! Dobson scenarios).

use std::sync::Arc;

use redundancy::core::adjudicator::voting::MajorityVoter;
use redundancy::core::context::ExecContext;
use redundancy::core::outcome::VariantFailure;
use redundancy::core::patterns::ParallelEvaluation;
use redundancy::core::variant::{BoxedVariant, FnVariant};
use redundancy::services::process::{Activity, Binder, Engine, Expr, Vars};
use redundancy::services::provider::{Provider, ServiceError, SimProvider};
use redundancy::services::registry::{InterfaceId, ServiceRegistry};
use redundancy::services::value::Value;
use redundancy::techniques::service_substitution::DynamicSubstitution;

/// Wraps a service invocation as a `Variant` so the core patterns can
/// vote over independent service implementations (Looker's WS-FTM).
fn service_variant(
    provider: Arc<dyn Provider>,
    operation: &'static str,
) -> BoxedVariant<i64, Value> {
    let name = provider.id().to_owned();
    Box::new(FnVariant::new(
        name,
        move |x: &i64, ctx: &mut ExecContext| {
            provider
                .invoke(operation, &[Value::Int(*x)], ctx)
                .map_err(|e| VariantFailure::error(e.to_string()))
        },
    ))
}

fn voting_registry() -> ServiceRegistry {
    let mut registry = ServiceRegistry::new();
    for (id, bias) in [("sq.a", 0i64), ("sq.b", 0), ("sq.buggy", 1)] {
        registry.register(Arc::new(
            SimProvider::builder(id, InterfaceId::new("square"))
                .operation("square", move |args, _| {
                    let x = args[0]
                        .as_int()
                        .ok_or_else(|| ServiceError::BadRequest("int expected".into()))?;
                    Ok(Value::Int(x * x + bias))
                })
                .build(),
        ));
    }
    registry
}

#[test]
fn nvp_over_independent_service_implementations() {
    let registry = voting_registry();
    let mut nvp = ParallelEvaluation::new(MajorityVoter::new());
    for provider in registry.providers_of(&InterfaceId::new("square")) {
        nvp.push_variant(service_variant(provider, "square"));
    }
    let mut ctx = ExecContext::new(1);
    for x in -20i64..20 {
        let report = nvp.run(&x, &mut ctx);
        assert_eq!(report.into_output(), Some(Value::Int(x * x)), "input {x}");
    }
}

#[test]
fn bpel_process_with_substitution_binder_survives_outages() {
    let mut registry = ServiceRegistry::new();
    for (id, fail) in [("geo.primary", 1.0f64), ("geo.mirror", 0.0)] {
        registry.register(Arc::new(
            SimProvider::builder(id, InterfaceId::new("geo"))
                .fail_prob(fail)
                .operation("locate", |args, _| {
                    Ok(Value::Str(format!("loc:{}", args[0])))
                })
                .build(),
        ));
    }
    let engine = Engine::new(&registry).with_binder(Binder::Failover);
    let process = Activity::seq(vec![
        Activity::Assign {
            var: "query".into(),
            expr: Expr::Lit(Value::Int(7)),
        },
        Activity::invoke("geo", "locate", vec![Expr::Var("query".into())], "place"),
    ]);
    let mut vars = Vars::new();
    let mut ctx = ExecContext::new(2);
    engine
        .run(&process, &mut vars, &mut ctx)
        .expect("fail-over");
    assert_eq!(vars["place"], Value::Str("loc:7".into()));
}

#[test]
fn substitution_runtime_reports_provenance() {
    let registry = voting_registry();
    let substitution = DynamicSubstitution::new(&registry);
    let mut ctx = ExecContext::new(3);
    let report = substitution
        .invoke(
            &InterfaceId::new("square"),
            "square",
            &[Value::Int(4)],
            &mut ctx,
        )
        .expect("some provider serves");
    assert_eq!(report.value, Value::Int(16));
    assert_eq!(report.served_by, "sq.a");
    assert_eq!(report.substitutions, 0);
}

#[test]
fn parallel_flow_collects_independent_results() {
    let registry = voting_registry();
    let engine = Engine::new(&registry);
    let process = Activity::Flow(vec![
        Activity::invoke("square", "square", vec![Expr::Lit(Value::Int(3))], "a"),
        Activity::invoke("square", "square", vec![Expr::Lit(Value::Int(5))], "b"),
    ]);
    let mut vars = Vars::new();
    let mut ctx = ExecContext::new(4);
    engine
        .run(&process, &mut vars, &mut ctx)
        .expect("flow runs");
    assert_eq!(vars["a"], Value::Int(9));
    assert_eq!(vars["b"], Value::Int(25));
}

#[test]
fn recovery_registry_protects_a_composite_process() {
    use redundancy::services::recovery::{
        FailureMatch, RecoveredRun, RecoveryRegistry, RecoveryRule,
    };

    let mut registry = ServiceRegistry::new();
    registry.register(Arc::new(
        SimProvider::builder("inventory.live", InterfaceId::new("inventory"))
            .fail_prob(1.0) // the warehouse system is down
            .operation("reserve", |_, _| Ok(Value::Null))
            .build(),
    ));
    registry.register(Arc::new(
        SimProvider::builder("backorder", InterfaceId::new("backorder"))
            .operation("enqueue", |args, _| {
                Ok(Value::Str(format!("backorder:{}", args[0])))
            })
            .build(),
    ));
    let engine = Engine::new(&registry);
    let recovery = RecoveryRegistry::new().with_rule(RecoveryRule::new(
        "backorder-on-outage",
        FailureMatch::Interface(InterfaceId::new("inventory")),
        Activity::invoke(
            "backorder",
            "enqueue",
            vec![Expr::Var("sku".into())],
            "ticket",
        ),
    ));
    let process = Activity::seq(vec![
        Activity::Assign {
            var: "sku".into(),
            expr: Expr::Lit(Value::Int(1234)),
        },
        Activity::invoke(
            "inventory",
            "reserve",
            vec![Expr::Var("sku".into())],
            "hold",
        ),
    ]);
    let mut vars = Vars::new();
    let mut ctx = ExecContext::new(11);
    let run = recovery.run_protected(&engine, &process, &mut vars, &mut ctx);
    assert!(run.is_ok());
    assert!(matches!(run, RecoveredRun::Recovered { .. }));
    assert_eq!(vars["ticket"], Value::Str("backorder:1234".into()));
}
