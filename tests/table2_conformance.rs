//! Integration test: the implemented technique registry reproduces the
//! paper's Table 2 exactly, and the rendered tables carry every row.

use redundancy::core::taxonomy::{Adjudication, FaultClass, Intention, RedundancyType};
use redundancy::techniques::table2;

#[test]
fn seventeen_techniques_are_registered() {
    assert_eq!(table2::entries().len(), 17);
}

#[test]
fn every_dimension_value_is_exercised_by_some_technique() {
    let entries = table2::entries();
    for intention in Intention::ALL {
        assert!(
            entries
                .iter()
                .any(|e| e.classification.intention == intention),
            "no technique with intention {intention}"
        );
    }
    for redundancy in RedundancyType::ALL {
        assert!(
            entries
                .iter()
                .any(|e| e.classification.redundancy == redundancy),
            "no technique with type {redundancy}"
        );
    }
    for adjudication in Adjudication::ALL {
        assert!(
            entries
                .iter()
                .any(|e| e.classification.adjudication == adjudication),
            "no technique with adjudication {adjudication}"
        );
    }
    for class in FaultClass::ALL {
        assert!(
            entries
                .iter()
                .any(|e| e.classification.faults.contains(class)),
            "no technique addressing {class}"
        );
    }
}

#[test]
fn paper_structure_is_respected() {
    let entries = table2::entries();
    // §4 deliberate rows come before §5 opportunistic rows.
    let first_opportunistic = entries
        .iter()
        .position(|e| e.classification.intention == Intention::Opportunistic)
        .expect("opportunistic techniques exist");
    assert!(entries[..first_opportunistic]
        .iter()
        .all(|e| e.classification.intention == Intention::Deliberate));
    assert!(entries[first_opportunistic..]
        .iter()
        .all(|e| e.classification.intention == Intention::Opportunistic));
    // Within §4, code rows precede data rows precede environment rows.
    let deliberate: Vec<RedundancyType> = entries[..first_opportunistic]
        .iter()
        .map(|e| e.classification.redundancy)
        .collect();
    let mut sorted = deliberate.clone();
    sorted.sort();
    assert_eq!(deliberate, sorted, "section order within §4");
}

#[test]
fn rendered_table_is_complete_and_aligned() {
    let rendered = table2::render();
    let lines: Vec<&str> = rendered.lines().collect();
    assert_eq!(lines.len(), 2 + 17, "header + rule + 17 rows");
    for entry in table2::entries() {
        assert!(rendered.contains(entry.name));
    }
    // Every row is exactly as wide as its content; the header rule spans
    // the full width.
    let width = lines[1].len();
    assert!(lines.iter().all(|l| l.len() <= width));
}

#[test]
fn preventive_techniques_are_exactly_wrappers_and_rejuvenation() {
    let preventive: Vec<&str> = table2::entries()
        .iter()
        .filter(|e| e.classification.adjudication == Adjudication::Preventive)
        .map(|e| e.name)
        .collect();
    assert_eq!(preventive, vec!["Wrappers", "Rejuvenation"]);
}

#[test]
fn malicious_faults_are_addressed_only_by_the_three_security_rows() {
    let against_malicious: Vec<&str> = table2::entries()
        .iter()
        .filter(|e| e.classification.faults.contains(FaultClass::Malicious))
        .map(|e| e.name)
        .collect();
    assert_eq!(
        against_malicious,
        vec![
            "Wrappers",
            "Data diversity for security",
            "Process replicas"
        ]
    );
}
