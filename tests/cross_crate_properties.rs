//! Cross-crate property tests: invariants that must hold across the
//! whole stack, checked with proptest.

use proptest::prelude::*;

use redundancy::core::adjudicator::voting::MajorityVoter;
use redundancy::core::context::ExecContext;
use redundancy::core::patterns::{ExecutionMode, ParallelEvaluation};
use redundancy::core::rng::SplitMix64;
use redundancy::faults::correlation::{correlated_versions, CorrelatedSuite};
use redundancy::faults::variant::input_key;
use redundancy::techniques::data_diversity::ReExpression;
use redundancy::techniques::nvariant_data::NVariantCell;
use redundancy::techniques::workarounds::container::{rules, Container, Op};
use redundancy::techniques::workarounds::{OpSystem, WorkaroundEngine};

proptest! {
    /// Full experiment determinism: the same seed reproduces an entire
    /// NVP campaign bit for bit, in both execution modes.
    #[test]
    fn nvp_campaigns_are_reproducible(seed in 0u64..1000, density in 0.0f64..0.5) {
        let run = |mode| {
            let versions = correlated_versions(
                CorrelatedSuite::new(3, density, 0.0, seed),
                |x: &u64| x * 7,
                |c, rng| c ^ (1 + rng.next_u64() % 1024),
            );
            let mut pattern = ParallelEvaluation::new(MajorityVoter::new()).with_mode(mode);
            for v in versions {
                pattern.push_variant(v);
            }
            let mut ctx = ExecContext::new(seed);
            (0..50u64)
                .map(|x| pattern.run(&x, &mut ctx).into_output())
                .collect::<Vec<_>>()
        };
        let a = run(ExecutionMode::Sequential);
        let b = run(ExecutionMode::Sequential);
        prop_assert_eq!(&a, &b, "sequential runs must match");
        let c = run(ExecutionMode::Threaded);
        prop_assert_eq!(&a, &c, "threaded must match sequential");
    }

    /// Input keys are stable across representations of equal values and
    /// well distributed.
    #[test]
    fn input_keys_respect_equality(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(input_key(&a), input_key(&a));
        if a != b {
            prop_assert_ne!(input_key(&a), input_key(&b));
        }
    }

    /// Exact re-expressions commute with any linear golden function.
    #[test]
    fn reexpressions_are_exact_for_linear_functions(
        k in 1u64..1000,
        m in 1u64..50,
        c in 0u64..1000,
        x in 0u64..1_000_000,
    ) {
        let f = move |v: &u64| m * v + c;
        let re: ReExpression<u64, u64> = ReExpression::new(
            "shift",
            move |v: &u64| v + k,
            move |y: u64| y - m * k,
        );
        prop_assert_eq!(re.decode(f(&re.encode(&x))), f(&x));
    }

    /// N-variant cells: legitimate writes always read back; uniform
    /// overwrites are always detected (for any payload and seed).
    #[test]
    fn nvariant_roundtrip_and_detection(
        seed in any::<u64>(),
        value in any::<u64>(),
        payload in any::<u64>(),
        n in 2usize..6,
    ) {
        let mut cell = NVariantCell::new(n, seed);
        cell.write(value);
        prop_assert_eq!(cell.read(), Ok(value));
        cell.attack_overwrite(payload);
        prop_assert!(cell.read().is_err());
    }

    /// Every workaround the engine reports actually executes successfully
    /// on the faulty system and is semantically equivalent on a clean one.
    #[test]
    fn workarounds_are_sound(fault_len in 1usize..3, seq_len in 2usize..5) {
        let seq: Vec<Op> = (0..seq_len).map(|_| Op::Add).collect();
        let mut faulty = Container::new().with_fault(Op::Add, fault_len);
        if faulty.execute(&seq).is_ok() {
            return Ok(()); // fault did not manifest on this scenario
        }
        let engine = WorkaroundEngine::new(rules());
        if let Ok(found) = engine.find_workaround(&mut faulty, &seq) {
            // Executes on the faulty system:
            let mut again = Container::new().with_fault(Op::Add, fault_len);
            let healed = again.execute(&found.sequence);
            prop_assert!(healed.is_ok());
            // Equivalent on a clean system:
            let mut clean1 = Container::new();
            let mut clean2 = Container::new();
            prop_assert_eq!(clean1.execute(&seq), clean2.execute(&found.sequence));
        }
    }

    /// The splittable RNG never yields correlated parallel streams: two
    /// forks of the same context disagree on essentially every draw.
    #[test]
    fn forked_streams_are_uncorrelated(seed in any::<u64>()) {
        let ctx = ExecContext::new(seed);
        let mut a = ctx.fork(1);
        let mut b = ctx.fork(2);
        let equal = (0..64).filter(|_| a.rng().next_u64() == b.rng().next_u64()).count();
        prop_assert_eq!(equal, 0);
        let mut r = SplitMix64::new(seed);
        let mut s = r.split();
        let equal = (0..64).filter(|_| r.next_u64() == s.next_u64()).count();
        prop_assert_eq!(equal, 0);
    }
}
