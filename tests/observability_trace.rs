//! Integration test for the observability layer: a seed-pinned NVP
//! campaign over a [`FaultPlan`] must produce an exactly reproducible
//! event stream, and the recorded trace must reconstruct, per trial,
//! every variant outcome, the adjudicator's verdict (with rejection
//! reasons), and the total fuel/cost.
//!
//! Everything asserted here is a pure function of `PLAN_SEED`,
//! `DENSITY` and `CAMPAIGN_SEED`; if any pinned value drifts, the
//! deterministic-replay guarantee broke.
//!
//! [`FaultPlan`]: redundancy::faults::FaultPlan

use std::sync::Arc;

use redundancy::core::adjudicator::voting::MajorityVoter;
use redundancy::core::context::ExecContext;
use redundancy::core::patterns::ParallelEvaluation;
use redundancy::core::variant::BoxedVariant;
use redundancy::faults::FaultPlan;
use redundancy::obs::{
    CostSnapshot, Event, EventKind, Observer, Point, RingBufferObserver, SpanKind, SpanStatus,
    TraceSummary,
};
use redundancy::sim::split_trials;
use redundancy::sim::trial::{Campaign, TrialOutcome, TrialSummary};

const PLAN_SEED: u64 = 4;
const DENSITY: f64 = 0.45;
const CAMPAIGN_SEED: u64 = 2008;
const TRIALS: usize = 6;
const WORK: u64 = 10;

/// Events per trial: trial span + pattern span + 3 variant spans
/// (2 events each) + 1 verdict point.
const EVENTS_PER_TRIAL: usize = 11;

/// The cost every variant execution charges under this plan.
const VARIANT_COST: CostSnapshot = CostSnapshot {
    work_units: WORK,
    virtual_ns: WORK,
    invocations: 1,
    design_cost: 1.0,
};

/// Per-trial total: three variants of parallel work; the virtual clock
/// advances by the critical path (one variant), not the sum.
const TRIAL_COST: CostSnapshot = CostSnapshot {
    work_units: 3 * WORK,
    virtual_ns: WORK,
    invocations: 3,
    design_cost: 3.0,
};

fn golden(x: &u64) -> u64 {
    x * 2
}

/// Three NVP versions, each with its own Bohrbug assigned by the plan.
/// Corruptors are per-slot (`+1001·(slot+1)`): wrong outputs are silent
/// — the case majority voting exists for — but wrong outputs from
/// *different* versions disagree, so a corrupted majority never forms.
fn nvp_from_plan(plan: &FaultPlan) -> ParallelEvaluation<u64, u64> {
    let mut pattern = ParallelEvaluation::new(MajorityVoter::new());
    for slot in 0..plan.slots() {
        let shift = 1001 * (slot as u64 + 1);
        let variant: BoxedVariant<u64, u64> = Box::new(plan.build_variant_corrupting(
            slot,
            format!("v{slot}"),
            WORK,
            golden,
            move |c, _| c + shift,
        ));
        pattern.push_variant(variant);
    }
    pattern
}

/// Classifies one NVP trial; shared verbatim by the serial and parallel
/// campaign drivers so any summary/stream divergence is the engine's.
fn nvp_trial(
    pattern: &ParallelEvaluation<u64, u64>,
    ctx: &mut ExecContext,
    i: usize,
) -> TrialOutcome {
    let input = i as u64;
    let report = pattern.run(&input, ctx);
    let cost = ctx.cost();
    match report.verdict.output() {
        Some(out) if *out == golden(&input) => TrialOutcome::Correct { cost },
        Some(_) => TrialOutcome::Undetected { cost },
        None => TrialOutcome::Detected { cost },
    }
}

fn run_campaign(observer: Arc<dyn Observer>) -> TrialSummary {
    let plan = FaultPlan::bohrbugs(PLAN_SEED, 3, DENSITY);
    let pattern = nvp_from_plan(&plan);
    Campaign::new(TRIALS).run_traced(CAMPAIGN_SEED, observer, |ctx, _seed, i| {
        nvp_trial(&pattern, ctx, i)
    })
}

fn run_campaign_parallel(jobs: usize, observer: Arc<dyn Observer>) -> TrialSummary {
    let plan = FaultPlan::bohrbugs(PLAN_SEED, 3, DENSITY);
    let pattern = nvp_from_plan(&plan);
    Campaign::new(TRIALS).run_traced_parallel(CAMPAIGN_SEED, jobs, observer, |ctx, _seed, i| {
        nvp_trial(&pattern, ctx, i)
    })
}

#[test]
fn traced_nvp_campaign_emits_the_exact_pinned_event_sequence() {
    let ring = RingBufferObserver::shared(1 << 14);
    let summary = run_campaign(ring.clone());
    let events = ring.events();

    // Five trials outvote their single corrupted version; in trial 2 two
    // versions corrupt the input (with disagreeing outputs), so the vote
    // correctly refuses to pick an output — a detected failure.
    assert_eq!(summary.reliability.successes, 5);
    assert_eq!(summary.detected.successes, 1);
    assert_eq!(summary.undetected.successes, 0);

    assert_eq!(events.len(), TRIALS * EVENTS_PER_TRIAL);
    assert_eq!(ring.dropped(), 0, "capture window must not evict");

    // The full event sequence of trial 0, pinned field by field.
    let expected_trial0 = [
        Event {
            seq: 0,
            span: 1,
            parent: 0,
            clock: 0,
            kind: EventKind::SpanStart {
                kind: SpanKind::Trial {
                    index: 0,
                    seed: Campaign::trial_seed(CAMPAIGN_SEED, 0),
                },
            },
        },
        Event {
            seq: 1,
            span: 2,
            parent: 1,
            clock: 0,
            kind: EventKind::SpanStart {
                kind: SpanKind::Pattern {
                    name: "parallel_evaluation",
                },
            },
        },
        Event {
            seq: 2,
            span: 3,
            parent: 2,
            clock: 0,
            kind: EventKind::SpanStart {
                kind: SpanKind::Variant { name: "v0".into() },
            },
        },
        Event {
            seq: 3,
            span: 3,
            parent: 2,
            clock: 10,
            kind: EventKind::SpanEnd {
                status: SpanStatus::Ok,
                cost: VARIANT_COST,
            },
        },
        Event {
            seq: 4,
            span: 4,
            parent: 2,
            clock: 0,
            kind: EventKind::SpanStart {
                kind: SpanKind::Variant { name: "v1".into() },
            },
        },
        Event {
            seq: 5,
            span: 4,
            parent: 2,
            clock: 10,
            kind: EventKind::SpanEnd {
                status: SpanStatus::Ok,
                cost: VARIANT_COST,
            },
        },
        Event {
            seq: 6,
            span: 5,
            parent: 2,
            clock: 0,
            kind: EventKind::SpanStart {
                kind: SpanKind::Variant { name: "v2".into() },
            },
        },
        Event {
            seq: 7,
            span: 5,
            parent: 2,
            clock: 10,
            kind: EventKind::SpanEnd {
                status: SpanStatus::Ok,
                cost: VARIANT_COST,
            },
        },
        Event {
            seq: 8,
            span: 2,
            parent: 2,
            clock: 10,
            kind: EventKind::Point(Point::Verdict {
                accepted: true,
                support: 2,
                dissent: 1,
                rejection: None,
            }),
        },
        Event {
            seq: 9,
            span: 2,
            parent: 1,
            clock: 10,
            kind: EventKind::SpanEnd {
                status: SpanStatus::Accepted {
                    support: 2,
                    dissent: 1,
                },
                cost: TRIAL_COST,
            },
        },
        Event {
            seq: 10,
            span: 1,
            parent: 0,
            clock: 10,
            kind: EventKind::SpanEnd {
                status: SpanStatus::Trial {
                    disposition: "correct",
                },
                cost: TRIAL_COST,
            },
        },
    ];
    assert_eq!(&events[..EVENTS_PER_TRIAL], &expected_trial0[..]);
}

#[test]
fn identical_seeds_produce_identical_event_streams() {
    let ring_a = RingBufferObserver::shared(1 << 14);
    let ring_b = RingBufferObserver::shared(1 << 14);
    let summary_a = run_campaign(ring_a.clone());
    let summary_b = run_campaign(ring_b.clone());
    assert_eq!(summary_a, summary_b);
    assert_eq!(ring_a.events(), ring_b.events(), "event streams diverged");
}

#[test]
fn trace_reconstructs_every_trial() {
    let ring = RingBufferObserver::shared(1 << 14);
    let _ = run_campaign(ring.clone());
    let traces = split_trials(&ring.events());
    assert_eq!(traces.len(), TRIALS);

    let expected_dispositions = [
        "correct", "correct", "detected", "correct", "correct", "correct",
    ];
    for (i, trace) in traces.iter().enumerate() {
        assert_eq!(trace.index, i as u64);
        assert_eq!(trace.seed, Campaign::trial_seed(CAMPAIGN_SEED, i));
        assert_eq!(trace.disposition, expected_dispositions[i]);

        // Every variant outcome is reconstructable. Bohrbug corruption is
        // *silent*: all three executions conclude Ok with identical cost,
        // and only the adjudicator (below) tells good from corrupt.
        let variants = trace.variants();
        assert_eq!(variants.len(), 3);
        for (slot, variant) in variants.iter().enumerate() {
            assert_eq!(variant.name, format!("v{slot}"));
            assert_eq!(variant.status, SpanStatus::Ok);
            assert_eq!(variant.cost, VARIANT_COST);
        }

        // The adjudicator's verdict — and its reason when it rejected.
        let verdicts = trace.verdicts();
        assert_eq!(verdicts.len(), 1);
        if trace.disposition == "correct" {
            assert!(verdicts[0].accepted);
            assert_eq!((verdicts[0].support, verdicts[0].dissent), (2, 1));
            assert!(trace.rejection_reasons().is_empty());
        } else {
            assert!(!verdicts[0].accepted);
            assert_eq!(trace.rejection_reasons(), vec!["no_quorum"]);
        }

        // Total fuel/cost of the trial.
        assert_eq!(trace.cost, TRIAL_COST);
    }
}

#[test]
fn parallel_traced_campaign_reproduces_the_serial_stream_bit_for_bit() {
    let serial_ring = RingBufferObserver::shared(1 << 14);
    let serial_summary = run_campaign(serial_ring.clone());
    let serial_events = serial_ring.events();

    for jobs in [1, 2, 8] {
        let ring = RingBufferObserver::shared(1 << 14);
        let summary = run_campaign_parallel(jobs, ring.clone());
        assert_eq!(serial_summary, summary, "summary diverged at jobs={jobs}");
        assert_eq!(
            serial_events,
            ring.events(),
            "event stream diverged at jobs={jobs}"
        );
    }
}

#[test]
fn parallel_traced_campaign_reconstructs_the_same_trial_traces() {
    let serial_ring = RingBufferObserver::shared(1 << 14);
    let _ = run_campaign(serial_ring.clone());
    let serial_traces = split_trials(&serial_ring.events());

    let ring = RingBufferObserver::shared(1 << 14);
    let _ = run_campaign_parallel(4, ring.clone());
    let traces = split_trials(&ring.events());

    assert_eq!(serial_traces, traces);
    assert_eq!(traces.len(), TRIALS);
    // Spot-check the merged stream is forensically sound on its own
    // terms, not just equal: trial indices and seeds are in order.
    for (i, trace) in traces.iter().enumerate() {
        assert_eq!(trace.index, i as u64);
        assert_eq!(trace.seed, Campaign::trial_seed(CAMPAIGN_SEED, i));
    }
}

#[test]
fn trace_summary_aggregates_the_campaign() {
    let ring = RingBufferObserver::shared(1 << 14);
    let _ = run_campaign(ring.clone());
    let summary = TraceSummary::from_events(&ring.events());

    assert_eq!(summary.events, TRIALS * EVENTS_PER_TRIAL);
    assert_eq!(summary.spans_closed, TRIALS * 5);
    assert_eq!(summary.spans_open, 0);
    assert_eq!(summary.accepted, 5);
    assert_eq!(summary.rejected.get("no_quorum"), Some(&1));
    assert!(summary.failed.is_empty());
    assert_eq!(summary.points.get("verdict"), Some(&TRIALS));

    // Roots of the trace are the trial spans, so the summed cost is the
    // per-trial total times the campaign size.
    let n = TRIALS as u64;
    assert_eq!(summary.total_cost.work_units, n * TRIAL_COST.work_units);
    assert_eq!(summary.total_cost.virtual_ns, n * TRIAL_COST.virtual_ns);
    assert_eq!(summary.total_cost.invocations, n * TRIAL_COST.invocations);
}
