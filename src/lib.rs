//! # `redundancy` — handling software faults with redundancy
//!
//! A comprehensive Rust implementation of the framework described by
//! Carzaniga, Gorla and Pezzè in *Handling Software Faults with
//! Redundancy*: a taxonomy-complete collection of fault-tolerance and
//! self-healing techniques, the architectural patterns they instantiate,
//! and the fault-injection and simulation substrates needed to measure
//! them.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `redundancy-core` | taxonomy, variants, adjudicators, Figure 1 patterns |
//! | [`faults`] | `redundancy-faults` | Bohrbug/Heisenbug/aging/malicious fault injection |
//! | [`sandbox`] | `redundancy-sandbox` | simulated memory, processes, environments |
//! | [`services`] | `redundancy-services` | service registry + BPEL-like process engine |
//! | [`gp`] | `redundancy-gp` | mini-language + genetic programming engine |
//! | [`techniques`] | `redundancy-techniques` | all 17 techniques of the paper's Table 2 |
//! | [`sim`] | `redundancy-sim` | Monte-Carlo experiment harness and statistics |
//! | [`obs`] | `redundancy-obs` | structured execution tracing, metrics, exporters |
//!
//! # Quickstart: outvoting a buggy version
//!
//! ```
//! use redundancy::core::adjudicator::voting::MajorityVoter;
//! use redundancy::core::context::ExecContext;
//! use redundancy::core::patterns::ParallelEvaluation;
//! use redundancy::core::variant::pure_variant;
//!
//! let nvp = ParallelEvaluation::new(MajorityVoter::new())
//!     .with_variant(pure_variant("team-a", 10, |x: &i64| x + 1))
//!     .with_variant(pure_variant("team-b", 11, |x: &i64| x + 1))
//!     .with_variant(pure_variant("team-c", 9, |x: &i64| x + 2)); // bug
//!
//! let mut ctx = ExecContext::new(1);
//! assert_eq!(nvp.run(&41, &mut ctx).into_output(), Some(42));
//! ```

pub use redundancy_core as core;
pub use redundancy_faults as faults;
pub use redundancy_gp as gp;
pub use redundancy_obs as obs;
pub use redundancy_sandbox as sandbox;
pub use redundancy_services as services;
pub use redundancy_sim as sim;
pub use redundancy_techniques as techniques;
