//! A tiny stack machine with *tagged instructions*.
//!
//! Cox et al.'s process replicas prepend a variant-specific tag to every
//! instruction; injected code, built by an attacker who does not know the
//! tag, fails the tag check in at least one variant. This module reproduces
//! that mechanism exactly: a [`TaggedVm`] executes only instructions
//! carrying its tag, while an untagged VM (the unprotected baseline)
//! executes anything.

use std::fmt;

/// Operations of the stack machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Push a constant.
    Push(i64),
    /// Push the `n`-th input argument.
    Arg(usize),
    /// Pop two, push their sum.
    Add,
    /// Pop two, push their difference (second minus top).
    Sub,
    /// Pop two, push their product.
    Mul,
    /// Duplicate the top of stack.
    Dup,
    /// Swap the two top elements.
    Swap,
    /// Pop and discard.
    Drop,
}

/// One instruction: an opcode carrying a tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instr {
    /// The variant tag the instruction was compiled with.
    pub tag: u16,
    /// The operation.
    pub op: Opcode,
}

/// A detectable VM fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmFault {
    /// An instruction's tag did not match the VM's tag — the signature of
    /// injected code in a tagged replica.
    TagViolation {
        /// Index of the offending instruction.
        at: usize,
        /// The tag found.
        found: u16,
        /// The tag expected.
        expected: u16,
    },
    /// A pop on an empty stack.
    StackUnderflow {
        /// Index of the offending instruction.
        at: usize,
    },
    /// An argument index past the provided inputs.
    BadArgument {
        /// Index of the offending instruction.
        at: usize,
    },
    /// The program left no result on the stack.
    NoResult,
    /// The program exceeded the execution step limit.
    StepLimit,
}

impl fmt::Display for VmFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmFault::TagViolation {
                at,
                found,
                expected,
            } => write!(
                f,
                "tag violation at instruction {at}: found {found}, expected {expected}"
            ),
            VmFault::StackUnderflow { at } => write!(f, "stack underflow at instruction {at}"),
            VmFault::BadArgument { at } => write!(f, "bad argument index at instruction {at}"),
            VmFault::NoResult => f.write_str("program produced no result"),
            VmFault::StepLimit => f.write_str("step limit exceeded"),
        }
    }
}

impl std::error::Error for VmFault {}

/// Compiles a sequence of opcodes with a given tag.
#[must_use]
pub fn tag_program(ops: &[Opcode], tag: u16) -> Vec<Instr> {
    ops.iter().map(|&op| Instr { tag, op }).collect()
}

/// A stack machine that verifies instruction tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedVm {
    tag: Option<u16>,
    step_limit: usize,
}

impl TaggedVm {
    /// A VM that accepts only instructions tagged `tag`.
    #[must_use]
    pub fn new(tag: u16) -> Self {
        Self {
            tag: Some(tag),
            step_limit: 10_000,
        }
    }

    /// A VM without tag checking — the unprotected baseline that will
    /// happily run injected code.
    #[must_use]
    pub fn untagged() -> Self {
        Self {
            tag: None,
            step_limit: 10_000,
        }
    }

    /// Overrides the execution step limit.
    #[must_use]
    pub fn with_step_limit(mut self, limit: usize) -> Self {
        self.step_limit = limit;
        self
    }

    /// Executes `program` on `args`, returning the value left on top of
    /// the stack.
    ///
    /// # Errors
    ///
    /// Returns a [`VmFault`] on tag violations, stack underflow, bad
    /// argument indices, missing results or step-limit overruns.
    pub fn execute(&self, program: &[Instr], args: &[i64]) -> Result<i64, VmFault> {
        if program.len() > self.step_limit {
            return Err(VmFault::StepLimit);
        }
        let mut stack: Vec<i64> = Vec::with_capacity(16);
        for (at, instr) in program.iter().enumerate() {
            if let Some(expected) = self.tag {
                if instr.tag != expected {
                    return Err(VmFault::TagViolation {
                        at,
                        found: instr.tag,
                        expected,
                    });
                }
            }
            match instr.op {
                Opcode::Push(v) => stack.push(v),
                Opcode::Arg(n) => {
                    let v = *args.get(n).ok_or(VmFault::BadArgument { at })?;
                    stack.push(v);
                }
                Opcode::Add => {
                    let (a, b) = pop2(&mut stack, at)?;
                    stack.push(b.wrapping_add(a));
                }
                Opcode::Sub => {
                    let (a, b) = pop2(&mut stack, at)?;
                    stack.push(b.wrapping_sub(a));
                }
                Opcode::Mul => {
                    let (a, b) = pop2(&mut stack, at)?;
                    stack.push(b.wrapping_mul(a));
                }
                Opcode::Dup => {
                    let v = *stack.last().ok_or(VmFault::StackUnderflow { at })?;
                    stack.push(v);
                }
                Opcode::Swap => {
                    let len = stack.len();
                    if len < 2 {
                        return Err(VmFault::StackUnderflow { at });
                    }
                    stack.swap(len - 1, len - 2);
                }
                Opcode::Drop => {
                    stack.pop().ok_or(VmFault::StackUnderflow { at })?;
                }
            }
        }
        stack.pop().ok_or(VmFault::NoResult)
    }
}

fn pop2(stack: &mut Vec<i64>, at: usize) -> Result<(i64, i64), VmFault> {
    let a = stack.pop().ok_or(VmFault::StackUnderflow { at })?;
    let b = stack.pop().ok_or(VmFault::StackUnderflow { at })?;
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `args[0] * args[0] + 1`
    fn square_plus_one(tag: u16) -> Vec<Instr> {
        tag_program(
            &[
                Opcode::Arg(0),
                Opcode::Dup,
                Opcode::Mul,
                Opcode::Push(1),
                Opcode::Add,
            ],
            tag,
        )
    }

    #[test]
    fn executes_arithmetic() {
        let vm = TaggedVm::new(7);
        assert_eq!(vm.execute(&square_plus_one(7), &[12]), Ok(145));
    }

    #[test]
    fn untagged_vm_accepts_any_tag() {
        let vm = TaggedVm::untagged();
        assert_eq!(vm.execute(&square_plus_one(99), &[3]), Ok(10));
    }

    #[test]
    fn injected_code_violates_tag() {
        let vm = TaggedVm::new(7);
        let mut program = square_plus_one(7);
        // The attacker splices in a payload compiled without the tag.
        program.insert(
            2,
            Instr {
                tag: 0,
                op: Opcode::Push(0xdead),
            },
        );
        assert_eq!(
            vm.execute(&program, &[3]),
            Err(VmFault::TagViolation {
                at: 2,
                found: 0,
                expected: 7
            })
        );
        // The unprotected VM runs the same injected program to completion
        // (with a corrupted result) — exactly the divergence replicas
        // detect.
        assert!(TaggedVm::untagged().execute(&program, &[3]).is_ok());
    }

    #[test]
    fn stack_underflow_detected() {
        let vm = TaggedVm::new(1);
        let program = tag_program(&[Opcode::Add], 1);
        assert_eq!(
            vm.execute(&program, &[]),
            Err(VmFault::StackUnderflow { at: 0 })
        );
    }

    #[test]
    fn bad_argument_detected() {
        let vm = TaggedVm::new(1);
        let program = tag_program(&[Opcode::Arg(3)], 1);
        assert_eq!(
            vm.execute(&program, &[1]),
            Err(VmFault::BadArgument { at: 0 })
        );
    }

    #[test]
    fn empty_program_yields_no_result() {
        let vm = TaggedVm::new(1);
        assert_eq!(vm.execute(&[], &[]), Err(VmFault::NoResult));
    }

    #[test]
    fn step_limit_enforced() {
        let vm = TaggedVm::new(1).with_step_limit(3);
        let program = tag_program(&[Opcode::Push(1); 10], 1);
        assert_eq!(vm.execute(&program, &[]), Err(VmFault::StepLimit));
    }

    #[test]
    fn swap_drop_sub_semantics() {
        let vm = TaggedVm::new(2);
        // 10 3 swap sub => 3 - 10 = -7
        let program = tag_program(
            &[Opcode::Push(10), Opcode::Push(3), Opcode::Swap, Opcode::Sub],
            2,
        );
        assert_eq!(vm.execute(&program, &[]), Ok(-7));
        // drop removes the top: 1 2 drop => 1
        let program = tag_program(&[Opcode::Push(1), Opcode::Push(2), Opcode::Drop], 2);
        assert_eq!(vm.execute(&program, &[]), Ok(1));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use redundancy_core::rng::SplitMix64;

        fn random_program(seed: u64, len: usize) -> Vec<Opcode> {
            let mut rng = SplitMix64::new(seed);
            (0..len)
                .map(|_| match rng.index(8) {
                    0 => Opcode::Push(rng.range_i64(-100, 100)),
                    1 => Opcode::Arg(rng.index(3)),
                    2 => Opcode::Add,
                    3 => Opcode::Sub,
                    4 => Opcode::Mul,
                    5 => Opcode::Dup,
                    6 => Opcode::Swap,
                    _ => Opcode::Drop,
                })
                .collect()
        }

        proptest! {
            /// The VM is total: any program either returns a value or a
            /// fault, never panics — crash containment for replicas.
            #[test]
            fn vm_never_panics(seed in any::<u64>(), len in 0usize..64, tag in 0u16..8) {
                let ops = random_program(seed, len);
                let program = tag_program(&ops, tag);
                let _ = TaggedVm::new(tag).execute(&program, &[1, 2, 3]);
                let _ = TaggedVm::untagged().execute(&program, &[1, 2, 3]);
            }

            /// Tagged and untagged VMs agree on correctly-tagged programs:
            /// tagging is transparent for legitimate code.
            #[test]
            fn tagging_is_transparent_for_legitimate_code(seed in any::<u64>(), len in 0usize..64) {
                let ops = random_program(seed, len);
                let tagged = tag_program(&ops, 5);
                let a = TaggedVm::new(5).execute(&tagged, &[7, 8, 9]);
                let b = TaggedVm::untagged().execute(&tagged, &[7, 8, 9]);
                prop_assert_eq!(a, b);
            }

            /// Any single wrong-tag instruction is rejected by a tagged VM
            /// at exactly its position (if execution reaches it).
            #[test]
            fn wrong_tags_never_execute(seed in any::<u64>(), len in 1usize..32, pos_frac in 0.0f64..1.0) {
                let ops = random_program(seed, len);
                let mut program = tag_program(&ops, 5);
                let pos = ((program.len() - 1) as f64 * pos_frac) as usize;
                program[pos].tag = 6;
                match TaggedVm::new(5).execute(&program, &[1, 2, 3]) {
                    Err(VmFault::TagViolation { at, found, expected }) => {
                        prop_assert_eq!(at, pos);
                        prop_assert_eq!(found, 6);
                        prop_assert_eq!(expected, 5);
                    }
                    Err(other) => {
                        // A stack/arg fault *before* the injected tag is
                        // acceptable; after it would mean the payload ran.
                        match other {
                            VmFault::StackUnderflow { at } | VmFault::BadArgument { at } => {
                                prop_assert!(at < pos);
                            }
                            _ => {}
                        }
                    }
                    Ok(_) => prop_assert!(false, "injected instruction executed"),
                }
            }
        }
    }

    #[test]
    fn fault_display_nonempty() {
        for fault in [
            VmFault::NoResult,
            VmFault::StepLimit,
            VmFault::StackUnderflow { at: 1 },
            VmFault::BadArgument { at: 2 },
            VmFault::TagViolation {
                at: 0,
                found: 1,
                expected: 2,
            },
        ] {
            assert!(!fault.to_string().is_empty());
        }
    }
}
