//! Simulated execution environments for the `redundancy` framework.
//!
//! Several techniques in the paper exploit *environment* redundancy:
//! process replicas run variants in disjoint address spaces (Cox et al.),
//! wrappers bound heap writes (Fetzer's healers), rejuvenation resets aged
//! processes (Huang et al.), and RX re-executes programs under perturbed
//! environments (Qin et al.). Reproducing those techniques requires an
//! execution environment we can partition, corrupt, snapshot, age and
//! perturb — none of which a test harness should do to the host OS.
//!
//! This crate provides that substrate:
//!
//! - [`memory::SimMemory`] — a simulated address space with bounds-checked
//!   and *unchecked* writes, canaries, and partition placement, so heap
//!   smashing, absolute-address attacks and their detection are exact;
//! - [`vm`] — a tiny stack machine with *tagged instructions*, reproducing
//!   the instruction-tagging variant of process replicas: injected code
//!   lacks the replica's tag and is rejected;
//! - [`process::SimProcess`] — a process with age, leaks, checkpoints and
//!   restarts, the unit rejuvenation and micro-reboot act on;
//! - [`env::EnvConfig`] — the perturbation knobs of RX (allocation padding,
//!   message order, priority, throttling) with a stable signature that
//!   environment-sensitive faults hash into their activation.

#![warn(missing_docs)]

pub mod env;
pub mod memory;
pub mod process;
pub mod vm;

pub use env::EnvConfig;
pub use memory::{MemoryFault, SegmentId, SimMemory};
pub use process::{ProcessCheckpoint, SimProcess};
pub use vm::{Instr, Opcode, TaggedVm, VmFault};
