//! Execution-environment configuration: the perturbation knobs of RX.
//!
//! Qin et al.'s RX recovers from failures by re-executing the program in a
//! *modified* environment: padded allocations (defeats buffer overflows),
//! shuffled message orders (defeats order-sensitive races), dropped
//! priorities (defeats timing bugs), and throttled requests (defeats
//! overload). [`EnvConfig`] carries those knobs; its [`signature`] feeds
//! environment-sensitive fault activation, so perturbing any knob re-rolls
//! which inputs fail.
//!
//! [`signature`]: EnvConfig::signature

/// The configurable execution environment of a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnvConfig {
    /// Bytes of padding inserted after each heap allocation.
    pub alloc_padding: u64,
    /// Seed perturbing message delivery order.
    pub msg_order_seed: u64,
    /// Scheduling priority (lower = slower, changes interleavings).
    pub priority: u8,
    /// Fraction of user requests admitted, in `[0, 1]` scaled by 1000
    /// (1000 = no throttling).
    pub throttle_permille: u16,
    /// Whether freshly allocated memory is zero-filled.
    pub zero_fill: bool,
}

impl EnvConfig {
    /// The pristine default environment.
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            alloc_padding: 0,
            msg_order_seed: 0,
            priority: 10,
            throttle_permille: 1000,
            zero_fill: false,
        }
    }

    /// Returns this environment with heap padding (RX's buffer-overflow
    /// counter-measure).
    #[must_use]
    pub fn with_padding(mut self, padding: u64) -> Self {
        self.alloc_padding = padding;
        self
    }

    /// Returns this environment with a shuffled message order.
    #[must_use]
    pub fn with_message_shuffle(mut self, seed: u64) -> Self {
        self.msg_order_seed = seed;
        self
    }

    /// Returns this environment with a changed process priority.
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Returns this environment admitting `permille`/1000 of requests.
    ///
    /// # Panics
    ///
    /// Panics if `permille > 1000`.
    #[must_use]
    pub fn with_throttle(mut self, permille: u16) -> Self {
        assert!(permille <= 1000, "throttle is a permille value");
        self.throttle_permille = permille;
        self
    }

    /// Returns this environment with zero-filled allocations.
    #[must_use]
    pub fn with_zero_fill(mut self, zero_fill: bool) -> Self {
        self.zero_fill = zero_fill;
        self
    }

    /// A stable digest of the whole configuration. Equal environments have
    /// equal signatures; changing any knob changes it.
    #[must_use]
    pub fn signature(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
            h ^= h >> 29;
        };
        mix(self.alloc_padding);
        mix(self.msg_order_seed);
        mix(u64::from(self.priority));
        mix(u64::from(self.throttle_permille));
        mix(u64::from(self.zero_fill));
        h
    }

    /// The standard RX perturbation sequence, tried in order after a
    /// failure: padding, zero-fill, message shuffle, priority drop,
    /// throttling (Qin et al., §4 of their paper, adapted).
    #[must_use]
    pub fn rx_perturbations(&self, round: u32) -> EnvConfig {
        match round % 5 {
            0 => self.with_padding(self.alloc_padding + 64),
            1 => self.with_zero_fill(!self.zero_fill),
            2 => self.with_message_shuffle(self.msg_order_seed.wrapping_add(0x9e37_79b9)),
            3 => self.with_priority(self.priority.saturating_sub(1)),
            _ => self.with_throttle(self.throttle_permille.saturating_sub(100).max(100)),
        }
    }
}

impl Default for EnvConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_default() {
        assert_eq!(EnvConfig::baseline(), EnvConfig::default());
    }

    #[test]
    fn signature_is_stable() {
        let a = EnvConfig::baseline();
        assert_eq!(a.signature(), EnvConfig::baseline().signature());
    }

    #[test]
    fn every_knob_changes_signature() {
        let base = EnvConfig::baseline();
        let variants = [
            base.with_padding(64),
            base.with_message_shuffle(1),
            base.with_priority(5),
            base.with_throttle(500),
            base.with_zero_fill(true),
        ];
        let base_sig = base.signature();
        let mut sigs = vec![base_sig];
        for v in variants {
            let s = v.signature();
            assert!(!sigs.contains(&s), "signature collision for {v:?}");
            sigs.push(s);
        }
    }

    #[test]
    fn rx_perturbations_cycle_all_knobs() {
        let mut env = EnvConfig::baseline();
        let mut seen = vec![env.signature()];
        for round in 0..5 {
            env = env.rx_perturbations(round);
            let s = env.signature();
            assert!(!seen.contains(&s), "round {round} did not change the env");
            seen.push(s);
        }
        assert!(env.alloc_padding > 0);
        assert!(env.zero_fill);
        assert_ne!(env.msg_order_seed, 0);
        assert!(env.priority < 10);
        assert!(env.throttle_permille < 1000);
    }

    #[test]
    #[should_panic(expected = "permille")]
    fn throttle_validates() {
        let _ = EnvConfig::baseline().with_throttle(2000);
    }
}
