//! Simulated processes: the unit that ages, leaks, checkpoints, and
//! reboots.
//!
//! [`SimProcess`] carries the state that environment-level techniques
//! manipulate: rejuvenation resets its age and reclaims leaks; checkpoint
//! -recovery snapshots and restores its application state; micro-reboot
//! restarts it (cheaply) while a full reboot restarts a whole process
//! tree. Failure hazards that grow with `age()` and `leaked_bytes()`
//! reproduce the software-aging model of Huang et al.

use std::collections::BTreeMap;

use crate::env::EnvConfig;
use crate::memory::SimMemory;

/// A snapshot of a process's restorable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessCheckpoint {
    state: BTreeMap<String, i64>,
    memory: SimMemory,
    taken_at_work: u64,
}

impl ProcessCheckpoint {
    /// The process work counter at the time the checkpoint was taken.
    #[must_use]
    pub fn taken_at_work(&self) -> u64 {
        self.taken_at_work
    }
}

/// A simulated process.
///
/// # Examples
///
/// ```
/// use redundancy_sandbox::process::SimProcess;
///
/// let mut p = SimProcess::new(1, 0x1000, 0x10000);
/// p.set("requests", 10);
/// let snapshot = p.checkpoint();
/// p.set("requests", 99);
/// p.restore(&snapshot);
/// assert_eq!(p.get("requests"), Some(10));
/// ```
#[derive(Debug, Clone)]
pub struct SimProcess {
    pid: u32,
    tag: u16,
    env: EnvConfig,
    memory: SimMemory,
    state: BTreeMap<String, i64>,
    /// Work units executed since the last restart/rejuvenation.
    age: u64,
    /// Total work units executed over the process lifetime.
    total_work: u64,
    /// Bytes leaked since the last restart (aging resource).
    leaked_bytes: u64,
    restarts: u64,
}

impl SimProcess {
    /// Creates a process whose memory partition is
    /// `[partition_base, partition_base + partition_len)`.
    #[must_use]
    pub fn new(pid: u32, partition_base: u64, partition_len: u64) -> Self {
        Self {
            pid,
            tag: pid as u16,
            env: EnvConfig::baseline(),
            memory: SimMemory::new(partition_base, partition_len),
            state: BTreeMap::new(),
            age: 0,
            total_work: 0,
            leaked_bytes: 0,
            restarts: 0,
        }
    }

    /// The process id.
    #[must_use]
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// The instruction tag of this process (for tagged-VM replicas).
    #[must_use]
    pub fn tag(&self) -> u16 {
        self.tag
    }

    /// Overrides the instruction tag.
    pub fn set_tag(&mut self, tag: u16) {
        self.tag = tag;
    }

    /// The current environment configuration.
    #[must_use]
    pub fn env(&self) -> EnvConfig {
        self.env
    }

    /// Replaces the environment configuration (RX perturbation), applying
    /// the allocation-padding knob to the simulated memory.
    pub fn set_env(&mut self, env: EnvConfig) {
        self.env = env;
        self.memory.set_alloc_padding(env.alloc_padding);
    }

    /// The simulated memory of this process.
    #[must_use]
    pub fn memory(&self) -> &SimMemory {
        &self.memory
    }

    /// Mutable access to the simulated memory.
    pub fn memory_mut(&mut self) -> &mut SimMemory {
        &mut self.memory
    }

    /// Reads a state variable.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<i64> {
        self.state.get(key).copied()
    }

    /// Writes a state variable.
    pub fn set(&mut self, key: impl Into<String>, value: i64) {
        self.state.insert(key.into(), value);
    }

    /// Executes `units` of work, aging the process.
    pub fn work(&mut self, units: u64) {
        self.age += units;
        self.total_work += units;
    }

    /// Leaks `bytes` (memory that will only be reclaimed by a restart).
    pub fn leak(&mut self, bytes: u64) {
        self.leaked_bytes += bytes;
    }

    /// Work units since the last restart.
    #[must_use]
    pub fn age(&self) -> u64 {
        self.age
    }

    /// Total work units over the process lifetime.
    #[must_use]
    pub fn total_work(&self) -> u64 {
        self.total_work
    }

    /// Bytes leaked since the last restart.
    #[must_use]
    pub fn leaked_bytes(&self) -> u64 {
        self.leaked_bytes
    }

    /// Number of restarts performed.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Failure hazard per work unit under the aging model:
    /// `base + age_growth * age + leak_growth * leaked_bytes`, capped at 1.
    #[must_use]
    pub fn hazard(&self, base: f64, age_growth: f64, leak_growth: f64) -> f64 {
        (base + age_growth * self.age as f64 + leak_growth * self.leaked_bytes as f64).min(1.0)
    }

    /// Takes a checkpoint of the restorable state (application variables
    /// and memory layout).
    #[must_use]
    pub fn checkpoint(&self) -> ProcessCheckpoint {
        ProcessCheckpoint {
            state: self.state.clone(),
            memory: self.memory.clone(),
            taken_at_work: self.total_work,
        }
    }

    /// Restores a checkpoint. Age and leaks are *not* reset: rollback
    /// alone does not rejuvenate (that is why checkpoint-recovery handles
    /// Heisenbugs but not aging, per the paper's Table 2).
    pub fn restore(&mut self, checkpoint: &ProcessCheckpoint) {
        self.state = checkpoint.state.clone();
        self.memory = checkpoint.memory.clone();
        self.memory.set_alloc_padding(self.env.alloc_padding);
    }

    /// Restarts the process: clears state and memory, resets age and
    /// leaks. This is a (micro-)reboot or a rejuvenation, depending on who
    /// calls it and when.
    pub fn restart(&mut self) {
        self.state.clear();
        self.memory.clear();
        self.memory.set_alloc_padding(self.env.alloc_padding);
        self.age = 0;
        self.leaked_bytes = 0;
        self.restarts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_ages_and_restart_rejuvenates() {
        let mut p = SimProcess::new(1, 0, 0x1000);
        p.work(100);
        p.leak(500);
        assert_eq!(p.age(), 100);
        assert_eq!(p.leaked_bytes(), 500);
        assert_eq!(p.total_work(), 100);
        p.restart();
        assert_eq!(p.age(), 0);
        assert_eq!(p.leaked_bytes(), 0);
        assert_eq!(p.total_work(), 100, "total work survives restarts");
        assert_eq!(p.restarts(), 1);
    }

    #[test]
    fn hazard_grows_with_age_and_leaks() {
        let mut p = SimProcess::new(1, 0, 0x1000);
        let young = p.hazard(0.001, 1e-5, 1e-6);
        p.work(1000);
        p.leak(10_000);
        let old = p.hazard(0.001, 1e-5, 1e-6);
        assert!(old > young * 5.0, "young {young}, old {old}");
        p.work(u64::MAX / 2);
        assert!(
            (p.hazard(0.0, 1.0, 0.0) - 1.0).abs() < f64::EPSILON,
            "hazard capped at 1"
        );
    }

    #[test]
    fn checkpoint_restores_state_and_memory_but_not_age() {
        let mut p = SimProcess::new(1, 0, 0x10000);
        p.set("x", 1);
        let seg = p.memory_mut().alloc(64).unwrap();
        p.work(10);
        let ckpt = p.checkpoint();
        assert_eq!(ckpt.taken_at_work(), 10);

        p.set("x", 2);
        p.memory_mut().free(seg).unwrap();
        p.work(10);
        p.restore(&ckpt);
        assert_eq!(p.get("x"), Some(1));
        assert_eq!(p.memory().live_segments(), 1);
        assert_eq!(p.age(), 20, "rollback must not rejuvenate");
    }

    #[test]
    fn env_padding_propagates_to_memory() {
        let mut p = SimProcess::new(1, 0, 0x10000);
        p.set_env(EnvConfig::baseline().with_padding(128));
        assert_eq!(p.memory().alloc_padding(), 128);
        // Restart keeps the environment.
        p.restart();
        assert_eq!(p.memory().alloc_padding(), 128);
    }

    #[test]
    fn restart_clears_memory() {
        let mut p = SimProcess::new(1, 0, 0x10000);
        let seg = p.memory_mut().alloc(64).unwrap();
        let _ = p.memory_mut().write_unchecked(seg, 0, 1000);
        assert!(!p.memory().audit().is_empty());
        p.restart();
        assert!(p.memory().audit().is_empty());
        assert_eq!(p.memory().live_segments(), 0);
    }

    #[test]
    fn tag_defaults_to_pid_and_is_overridable() {
        let mut p = SimProcess::new(42, 0, 0x1000);
        assert_eq!(p.tag(), 42);
        p.set_tag(7);
        assert_eq!(p.tag(), 7);
    }

    #[test]
    fn state_variables_roundtrip() {
        let mut p = SimProcess::new(1, 0, 0x1000);
        assert_eq!(p.get("missing"), None);
        p.set("k", -5);
        assert_eq!(p.get("k"), Some(-5));
    }
}
