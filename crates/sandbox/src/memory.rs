//! A simulated address space with checked/unchecked writes, canaries and
//! partitioning.
//!
//! The model tracks segment *metadata* (placement, bounds, canary
//! integrity), not byte contents: that is exactly what is needed to
//! reproduce heap smashing (an unchecked write past a segment end corrupts
//! the canary of whatever lies next), Fetzer-style boundary-checking
//! wrappers (the checked write refuses the same operation), and Cox-style
//! address-space partitioning (an absolute address maps into at most one
//! replica's partition, so replicas diverge under attack).

use std::collections::BTreeMap;
use std::fmt;

/// Identifies an allocated segment (its base address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u64);

/// A detectable memory error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryFault {
    /// A checked write would cross the end of its segment.
    BoundsViolation {
        /// Segment being written.
        segment: SegmentId,
        /// Attempted end offset.
        attempted_end: u64,
        /// Segment length.
        len: u64,
    },
    /// An access touched an address not mapped by any segment.
    Unmapped {
        /// The faulting address.
        addr: u64,
    },
    /// The segment id is not (or no longer) allocated.
    UnknownSegment {
        /// The unknown id.
        segment: SegmentId,
    },
    /// The address space is exhausted.
    OutOfMemory,
}

impl fmt::Display for MemoryFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryFault::BoundsViolation {
                segment,
                attempted_end,
                len,
            } => write!(
                f,
                "bounds violation in segment {segment:?}: wrote to offset {attempted_end} of {len}"
            ),
            MemoryFault::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            MemoryFault::UnknownSegment { segment } => {
                write!(f, "unknown segment {segment:?}")
            }
            MemoryFault::OutOfMemory => f.write_str("address space exhausted"),
        }
    }
}

impl std::error::Error for MemoryFault {}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Segment {
    len: u64,
    canary_intact: bool,
    /// Count of bytes written past the end into this segment by smashes.
    corrupted_writes: u64,
}

/// A simulated address space.
///
/// # Examples
///
/// ```
/// use redundancy_sandbox::memory::SimMemory;
///
/// let mut mem = SimMemory::new(0x1000, 0x10_0000);
/// let buf = mem.alloc(64).unwrap();
/// assert!(mem.write(buf, 0, 64).is_ok());
/// assert!(mem.write(buf, 32, 64).is_err()); // crosses the end
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimMemory {
    partition_base: u64,
    partition_len: u64,
    next_free: u64,
    alloc_padding: u64,
    segments: BTreeMap<u64, Segment>,
}

impl SimMemory {
    /// Creates an address space occupying `[partition_base,
    /// partition_base + partition_len)`. Replicas get disjoint partitions.
    ///
    /// # Panics
    ///
    /// Panics if `partition_len == 0` or the range overflows.
    #[must_use]
    pub fn new(partition_base: u64, partition_len: u64) -> Self {
        assert!(partition_len > 0, "partition must be non-empty");
        assert!(
            partition_base.checked_add(partition_len).is_some(),
            "partition overflows the address space"
        );
        Self {
            partition_base,
            partition_len,
            next_free: partition_base,
            alloc_padding: 0,
            segments: BTreeMap::new(),
        }
    }

    /// Sets the allocation padding inserted after every segment (an RX
    /// environment knob: padding absorbs small overflows).
    pub fn set_alloc_padding(&mut self, padding: u64) {
        self.alloc_padding = padding;
    }

    /// The configured allocation padding.
    #[must_use]
    pub fn alloc_padding(&self) -> u64 {
        self.alloc_padding
    }

    /// The partition base address.
    #[must_use]
    pub fn partition_base(&self) -> u64 {
        self.partition_base
    }

    /// Allocates a segment of `len` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryFault::OutOfMemory`] when the partition is full.
    pub fn alloc(&mut self, len: u64) -> Result<SegmentId, MemoryFault> {
        let end = self
            .next_free
            .checked_add(len)
            .and_then(|e| e.checked_add(self.alloc_padding))
            .ok_or(MemoryFault::OutOfMemory)?;
        if end > self.partition_base + self.partition_len {
            return Err(MemoryFault::OutOfMemory);
        }
        let base = self.next_free;
        self.next_free = end;
        self.segments.insert(
            base,
            Segment {
                len,
                canary_intact: true,
                corrupted_writes: 0,
            },
        );
        Ok(SegmentId(base))
    }

    /// Frees a segment.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryFault::UnknownSegment`] for double frees or bogus
    /// ids.
    pub fn free(&mut self, segment: SegmentId) -> Result<(), MemoryFault> {
        self.segments
            .remove(&segment.0)
            .map(|_| ())
            .ok_or(MemoryFault::UnknownSegment { segment })
    }

    /// Bounds-checked write of `len` bytes at `offset` within `segment` —
    /// what Fetzer's healer wrapper does for every libc heap write.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryFault::BoundsViolation`] when the write would cross
    /// the segment end, [`MemoryFault::UnknownSegment`] for bogus ids.
    pub fn write(&mut self, segment: SegmentId, offset: u64, len: u64) -> Result<(), MemoryFault> {
        let seg = self
            .segments
            .get(&segment.0)
            .ok_or(MemoryFault::UnknownSegment { segment })?;
        let end = offset
            .checked_add(len)
            .ok_or(MemoryFault::BoundsViolation {
                segment,
                attempted_end: u64::MAX,
                len: seg.len,
            })?;
        if end > seg.len {
            return Err(MemoryFault::BoundsViolation {
                segment,
                attempted_end: end,
                len: seg.len,
            });
        }
        Ok(())
    }

    /// *Unchecked* write, as an unwrapped C program would perform: a write
    /// crossing the segment end silently smashes the canary and corrupts
    /// whatever follows. Returns how many bytes overflowed (0 = in
    /// bounds).
    ///
    /// # Errors
    ///
    /// Returns [`MemoryFault::UnknownSegment`] for bogus ids — even an
    /// unchecked write needs a live segment to start from.
    pub fn write_unchecked(
        &mut self,
        segment: SegmentId,
        offset: u64,
        len: u64,
    ) -> Result<u64, MemoryFault> {
        let seg_len = self
            .segments
            .get(&segment.0)
            .ok_or(MemoryFault::UnknownSegment { segment })?
            .len;
        let end = offset.saturating_add(len);
        if end <= seg_len {
            return Ok(0);
        }
        let overflow = end - seg_len;
        // Padding absorbs part of the overflow (the RX defense).
        if overflow > self.alloc_padding {
            // Smash this segment's canary and corrupt the next segment.
            if let Some(seg) = self.segments.get_mut(&segment.0) {
                seg.canary_intact = false;
            }
            let next_base = segment.0 + seg_len + self.alloc_padding;
            if let Some((_, next)) = self.segments.range_mut(next_base..).next() {
                next.corrupted_writes += overflow - self.alloc_padding;
            }
        }
        Ok(overflow)
    }

    /// Writes `len` bytes at an *absolute* address — the attacker primitive
    /// of Cox's memory attacks. Succeeds (corrupting the containing
    /// segment) only when the address is mapped in this partition.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryFault::Unmapped`] when no live segment contains
    /// `addr` — in a real replica this is a segfault, i.e. a *detectable*
    /// divergence.
    pub fn write_absolute(&mut self, addr: u64, len: u64) -> Result<(), MemoryFault> {
        let (base, seg) = self
            .segments
            .range_mut(..=addr)
            .next_back()
            .ok_or(MemoryFault::Unmapped { addr })?;
        if addr >= *base + seg.len {
            return Err(MemoryFault::Unmapped { addr });
        }
        seg.corrupted_writes += len;
        Ok(())
    }

    /// Whether `addr` is inside a live segment of this partition.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        self.segments
            .range(..=addr)
            .next_back()
            .is_some_and(|(base, seg)| addr < *base + seg.len)
    }

    /// Audits the address space: returns segments whose canary was smashed
    /// or that absorbed corrupting writes (the "software audit" of Connet
    /// et al., also used as the implicit detector of robust wrappers).
    #[must_use]
    pub fn audit(&self) -> Vec<SegmentId> {
        self.segments
            .iter()
            .filter(|(_, seg)| !seg.canary_intact || seg.corrupted_writes > 0)
            .map(|(base, _)| SegmentId(*base))
            .collect()
    }

    /// Number of live segments.
    #[must_use]
    pub fn live_segments(&self) -> usize {
        self.segments.len()
    }

    /// Drops every segment and resets the allocation cursor (a reboot).
    pub fn clear(&mut self) {
        self.segments.clear();
        self.next_free = self.partition_base;
    }

    /// Total bytes currently allocated (excluding padding).
    #[must_use]
    pub fn allocated_bytes(&self) -> u64 {
        self.segments.values().map(|s| s.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> SimMemory {
        SimMemory::new(0x1000, 0x10000)
    }

    #[test]
    fn alloc_and_checked_write() {
        let mut m = mem();
        let a = m.alloc(100).unwrap();
        assert!(m.write(a, 0, 100).is_ok());
        assert!(m.write(a, 99, 1).is_ok());
        assert_eq!(
            m.write(a, 50, 100),
            Err(MemoryFault::BoundsViolation {
                segment: a,
                attempted_end: 150,
                len: 100
            })
        );
    }

    #[test]
    fn segments_are_disjoint_and_orderly() {
        let mut m = mem();
        let a = m.alloc(16).unwrap();
        let b = m.alloc(16).unwrap();
        assert!(b.0 >= a.0 + 16);
        assert!(m.contains(a.0));
        assert!(m.contains(b.0 + 15));
        assert!(!m.contains(b.0 + 16));
    }

    #[test]
    fn unchecked_overflow_smashes_canary_and_neighbor() {
        let mut m = mem();
        let a = m.alloc(16).unwrap();
        let b = m.alloc(16).unwrap();
        assert_eq!(m.write_unchecked(a, 0, 16).unwrap(), 0);
        assert!(m.audit().is_empty());
        let overflow = m.write_unchecked(a, 8, 16).unwrap();
        assert_eq!(overflow, 8);
        let audit = m.audit();
        assert!(audit.contains(&a), "smashed segment not flagged");
        assert!(audit.contains(&b), "corrupted neighbor not flagged");
    }

    #[test]
    fn padding_absorbs_small_overflows() {
        let mut m = mem();
        m.set_alloc_padding(32);
        let a = m.alloc(16).unwrap();
        let _b = m.alloc(16).unwrap();
        assert_eq!(m.write_unchecked(a, 8, 16).unwrap(), 8);
        assert!(m.audit().is_empty(), "padding should have absorbed 8 bytes");
        // A large overflow still smashes through.
        let _ = m.write_unchecked(a, 0, 100).unwrap();
        assert!(!m.audit().is_empty());
    }

    #[test]
    fn absolute_writes_respect_partitions() {
        let mut low = SimMemory::new(0x1000, 0x1000);
        let mut high = SimMemory::new(0x100_0000, 0x1000);
        let a = low.alloc(64).unwrap();
        let _ = high.alloc(64).unwrap();
        // The attack targets an address valid only in the low partition.
        let target = a.0 + 10;
        assert!(low.write_absolute(target, 4).is_ok());
        assert_eq!(
            high.write_absolute(target, 4),
            Err(MemoryFault::Unmapped { addr: target })
        );
        // The successful write corrupted the low replica.
        assert_eq!(low.audit(), vec![a]);
    }

    #[test]
    fn double_free_is_reported() {
        let mut m = mem();
        let a = m.alloc(8).unwrap();
        assert!(m.free(a).is_ok());
        assert_eq!(m.free(a), Err(MemoryFault::UnknownSegment { segment: a }));
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut m = SimMemory::new(0, 100);
        assert!(m.alloc(60).is_ok());
        assert_eq!(m.alloc(60), Err(MemoryFault::OutOfMemory));
    }

    #[test]
    fn clear_resets_everything() {
        let mut m = mem();
        let a = m.alloc(100).unwrap();
        let _ = m.write_unchecked(a, 0, 200);
        m.clear();
        assert_eq!(m.live_segments(), 0);
        assert!(m.audit().is_empty());
        assert_eq!(m.allocated_bytes(), 0);
        // Allocation restarts at the partition base.
        let b = m.alloc(10).unwrap();
        assert_eq!(b.0, 0x1000);
    }

    #[test]
    fn allocated_bytes_tracks() {
        let mut m = mem();
        let a = m.alloc(100).unwrap();
        let _ = m.alloc(50).unwrap();
        assert_eq!(m.allocated_bytes(), 150);
        m.free(a).unwrap();
        assert_eq!(m.allocated_bytes(), 50);
    }

    #[test]
    fn write_to_freed_segment_fails() {
        let mut m = mem();
        let a = m.alloc(8).unwrap();
        m.free(a).unwrap();
        assert_eq!(
            m.write(a, 0, 1),
            Err(MemoryFault::UnknownSegment { segment: a })
        );
        assert!(m.write_unchecked(a, 0, 1).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Live segments never overlap and always sit inside the
            /// partition, under any alloc/free sequence.
            #[test]
            fn segments_stay_disjoint_and_in_partition(
                ops in proptest::collection::vec((0u8..2, 1u64..200), 1..40),
                padding in 0u64..64,
            ) {
                let base = 0x1000u64;
                let len = 0x10000u64;
                let mut mem = SimMemory::new(base, len);
                mem.set_alloc_padding(padding);
                let mut live: Vec<(u64, u64)> = Vec::new();
                for (op, size) in ops {
                    if op == 0 {
                        if let Ok(seg) = mem.alloc(size) {
                            live.push((seg.0, size));
                        }
                    } else if !live.is_empty() {
                        let (segbase, _) = live.remove(0);
                        prop_assert!(mem.free(SegmentId(segbase)).is_ok());
                    }
                }
                // In partition:
                for &(b, l) in &live {
                    prop_assert!(b >= base);
                    prop_assert!(b + l <= base + len);
                }
                // Pairwise disjoint:
                let mut sorted = live.clone();
                sorted.sort_unstable();
                for pair in sorted.windows(2) {
                    prop_assert!(pair[0].0 + pair[0].1 <= pair[1].0);
                }
                prop_assert_eq!(mem.live_segments(), live.len());
                prop_assert_eq!(mem.allocated_bytes(), live.iter().map(|&(_, l)| l).sum::<u64>());
            }

            /// In-bounds checked writes always succeed and never corrupt;
            /// out-of-bounds checked writes always fail and never corrupt.
            #[test]
            fn checked_writes_never_corrupt(
                seg_len in 1u64..256,
                offset in 0u64..512,
                write_len in 0u64..512,
            ) {
                let mut mem = SimMemory::new(0, 0x10000);
                let seg = mem.alloc(seg_len).unwrap();
                let _neighbor = mem.alloc(64).unwrap();
                let in_bounds = offset.checked_add(write_len).is_some_and(|end| end <= seg_len);
                prop_assert_eq!(mem.write(seg, offset, write_len).is_ok(), in_bounds);
                prop_assert!(mem.audit().is_empty(), "checked write corrupted memory");
            }

            /// An unchecked write corrupts iff the overflow exceeds the
            /// padding, and the audit always notices exactly that case.
            #[test]
            fn audits_catch_exactly_the_real_smashes(
                seg_len in 1u64..256,
                write_len in 0u64..1024,
                padding in 0u64..128,
            ) {
                let mut mem = SimMemory::new(0, 0x10000);
                mem.set_alloc_padding(padding);
                let seg = mem.alloc(seg_len).unwrap();
                let _neighbor = mem.alloc(64).unwrap();
                let overflow = mem.write_unchecked(seg, 0, write_len).unwrap();
                prop_assert_eq!(overflow, write_len.saturating_sub(seg_len));
                let corrupted = overflow > padding;
                prop_assert_eq!(!mem.audit().is_empty(), corrupted);
            }
        }
    }

    #[test]
    fn memory_fault_display_nonempty() {
        for fault in [
            MemoryFault::OutOfMemory,
            MemoryFault::Unmapped { addr: 7 },
            MemoryFault::UnknownSegment {
                segment: SegmentId(1),
            },
            MemoryFault::BoundsViolation {
                segment: SegmentId(1),
                attempted_end: 9,
                len: 8,
            },
        ] {
            assert!(!fault.to_string().is_empty());
        }
    }
}
