//! Experiment E13 — automatic workarounds (Carzaniga 2008): fraction of
//! failures worked around vs the degree of intrinsic redundancy
//! (equivalence rules known to the engine).
//!
//! Expected shape: with no rules nothing can be worked around; each
//! additional family of equivalences rescues the failure scenarios it
//! covers; the full rule set rescues (in this API) every scenario.

use redundancy_core::rng::SplitMix64;
use redundancy_sim::parallel_tasks;
use redundancy_sim::table::Table;
use redundancy_techniques::workarounds::container::{rules, Container, Op};
use redundancy_techniques::workarounds::{OpSystem, RewriteRule, WorkaroundEngine};

use crate::fmt_rate;

/// A failure scenario: a seeded fault and a sequence that trips it.
fn scenarios(rng: &mut SplitMix64, count: usize) -> Vec<(Op, usize, Vec<Op>)> {
    (0..count)
        .map(|_| match rng.index(3) {
            0 => (Op::Add, 1, vec![Op::Add, Op::Add]),
            1 => (Op::Reverse, 2, vec![Op::AddPair, Op::Reverse, Op::Reverse]),
            _ => (
                Op::Add,
                2,
                // add;add;add trips at len 2; rewriting the prefix to
                // add-pair escapes it.
                vec![Op::Add, Op::Add, Op::Add],
            ),
        })
        .collect()
}

/// Workaround success rate with the given rule set.
#[must_use]
pub fn success_rate(rule_set: &[RewriteRule<Op>], trials: usize, seed: u64) -> f64 {
    let engine = WorkaroundEngine::new(rule_set.to_vec());
    let mut rng = SplitMix64::new(seed);
    let mut applicable = 0;
    let mut worked = 0;
    for (fault_op, fault_len, seq) in scenarios(&mut rng, trials) {
        let mut system = Container::new().with_fault(fault_op, fault_len);
        if system.execute(&seq).is_ok() {
            continue;
        }
        applicable += 1;
        if engine.find_workaround(&mut system, &seq).is_ok() {
            worked += 1;
        }
    }
    if applicable == 0 {
        return 1.0;
    }
    worked as f64 / applicable as f64
}

/// Builds the E13 table: success rate vs rule-set size.
#[must_use]
pub fn run(trials: usize, seed: u64) -> Table {
    run_jobs(trials, seed, 1)
}

/// Like [`run`] with the rule-set-size sweep sharded across up to `jobs`
/// worker threads; every row builds its own rule set and RNG, so the
/// table is identical for any `jobs`.
#[must_use]
pub fn run_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    let mut table = Table::new(&["equivalence rules known", "failures worked around"]);
    let tasks: Vec<_> = (0..=rules().len())
        .map(|k| move || success_rate(&rules()[..k], trials, seed))
        .collect();
    let results = parallel_tasks(jobs, tasks);
    for (k, rate) in results.into_iter().enumerate() {
        table.row_owned(vec![k.to_string(), fmt_rate(rate)]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 400;
    const SEED: u64 = 0xe13;

    #[test]
    fn no_rules_no_workarounds() {
        assert!(success_rate(&[], T, SEED).abs() < f64::EPSILON);
    }

    #[test]
    fn success_grows_with_rules() {
        let all = rules();
        let r1 = success_rate(&all[..1], T, SEED);
        let r_all = success_rate(&all, T, SEED);
        assert!(r1 > 0.0);
        assert!(r_all > r1, "r1={r1}, all={r_all}");
        assert!(r_all > 0.95, "all={r_all}");
    }

    #[test]
    fn every_scenario_actually_fails_without_help() {
        let mut rng = SplitMix64::new(SEED);
        for (fault_op, fault_len, seq) in scenarios(&mut rng, 50) {
            let mut sys = Container::new().with_fault(fault_op, fault_len);
            assert!(sys.execute(&seq).is_err(), "scenario does not manifest");
        }
    }

    #[test]
    fn table_renders() {
        assert_eq!(run(50, SEED).len(), rules().len() + 1);
    }

    #[test]
    fn table_is_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(50, SEED, jobs));
    }
}
