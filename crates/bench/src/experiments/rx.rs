//! Experiment E10 — RX environment perturbation (Qin 2007) vs plain
//! re-execution, by fault type, plus the perturbation-knob ablation.
//!
//! Expected shape: plain re-execution (checkpoint-recovery) cures purely
//! transient faults but not environment-*dependent* deterministic ones
//! (same environment → same failure); RX cures both by re-rolling the
//! environment; neither touches environment-blind input-region Bohrbugs.

use redundancy_core::context::ExecContext;
use redundancy_core::variant::BoxedVariant;
use redundancy_faults::{
    Activation, DetectableFailures, EnvSignature, FaultEffect, FaultSpec, FaultyVariant,
};
use redundancy_sim::parallel_tasks;
use redundancy_sim::table::Table;
use redundancy_techniques::checkpoint_recovery::CheckpointRecovery;
use redundancy_techniques::env_perturbation::Rx;

use crate::fmt_rate;

const DENSITY: f64 = 0.35;

fn golden(x: &u64) -> u64 {
    x * 2
}

/// The fault types in the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultType {
    /// Fails a fixed input fraction *per environment* (buffer overflows
    /// sensitive to layout, order-dependent races…).
    EnvSensitive,
    /// Fails each execution independently (pure transients).
    Transient,
    /// Fails a fixed input fraction regardless of environment (logic
    /// bugs).
    EnvBlind,
}

impl FaultType {
    fn activation(self) -> Activation {
        match self {
            FaultType::EnvSensitive => Activation::EnvSensitive {
                density: DENSITY,
                salt: 0x10,
            },
            FaultType::Transient => Activation::Probabilistic { p: DENSITY },
            FaultType::EnvBlind => Activation::InputRegion {
                density: DENSITY,
                salt: 0x10,
            },
        }
    }

    fn label(self) -> &'static str {
        match self {
            FaultType::EnvSensitive => "env-sensitive (overflow/race-like)",
            FaultType::Transient => "transient (pure Heisenbug)",
            FaultType::EnvBlind => "env-blind (logic Bohrbug)",
        }
    }
}

fn build(fault: FaultType) -> (BoxedVariant<u64, u64>, EnvSignature) {
    let v = FaultyVariant::builder("app", 10, golden)
        .fault(FaultSpec::new(
            "bug",
            fault.activation(),
            FaultEffect::Crash,
        ))
        .build();
    let env = v.env_signature();
    (Box::new(v), env)
}

/// Delivery rate under RX with `rounds` perturbation rounds.
#[must_use]
pub fn rx_rate(fault: FaultType, rounds: u32, trials: usize, seed: u64) -> f64 {
    let (variant, env) = build(fault);
    let rx = Rx::new(variant, env, DetectableFailures::new(), rounds);
    let mut ctx = ExecContext::new(seed);
    let ok = (0..trials as u64)
        .filter(|x| rx.execute(x, &mut ctx).output() == Some(&golden(x)))
        .count();
    ok as f64 / trials as f64
}

/// Delivery rate under plain identical re-execution with `retries`.
#[must_use]
pub fn reexecution_rate(fault: FaultType, retries: u32, trials: usize, seed: u64) -> f64 {
    let (variant, _env) = build(fault);
    let cr = CheckpointRecovery::new(variant, DetectableFailures::new(), retries);
    let mut ctx = ExecContext::new(seed);
    let ok = (0..trials as u64)
        .filter(|x| cr.execute(x, &mut ctx).output() == Some(&golden(x)))
        .count();
    ok as f64 / trials as f64
}

/// Builds the E10 comparison table (6 recovery attempts each).
#[must_use]
pub fn run(trials: usize, seed: u64) -> Table {
    run_jobs(trials, seed, 1)
}

/// Like [`run`] with the fault-type rows sharded across up to `jobs`
/// worker threads; every measurement seeds its own context, so the table
/// is identical for any `jobs`.
#[must_use]
pub fn run_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    let mut table = Table::new(&[
        "fault type",
        "no protection",
        "re-execution (ckpt-recovery)",
        "RX (perturbed re-execution)",
    ]);
    let faults = [
        FaultType::EnvSensitive,
        FaultType::Transient,
        FaultType::EnvBlind,
    ];
    let tasks: Vec<_> = faults
        .iter()
        .map(|&fault| {
            move || {
                (
                    reexecution_rate(fault, 0, trials, seed),
                    reexecution_rate(fault, 6, trials, seed),
                    rx_rate(fault, 6, trials, seed),
                )
            }
        })
        .collect();
    let results = parallel_tasks(jobs, tasks);
    for (fault, (bare, reexec, rx)) in faults.iter().zip(results) {
        table.row_owned(vec![
            fault.label().to_owned(),
            fmt_rate(bare),
            fmt_rate(reexec),
            fmt_rate(rx),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 1200;
    const SEED: u64 = 0xe10;

    #[test]
    fn rx_cures_env_sensitive_faults_reexecution_does_not() {
        let rx = rx_rate(FaultType::EnvSensitive, 6, T, SEED);
        let re = reexecution_rate(FaultType::EnvSensitive, 6, T, SEED);
        assert!(rx > 0.97, "rx {rx}");
        // Identical re-execution reproduces the same environment-dependent
        // failure deterministically.
        assert!((re - (1.0 - DENSITY)).abs() < 0.05, "re {re}");
    }

    #[test]
    fn both_cure_pure_transients() {
        let rx = rx_rate(FaultType::Transient, 6, T, SEED);
        let re = reexecution_rate(FaultType::Transient, 6, T, SEED);
        assert!(rx > 0.97, "rx {rx}");
        assert!(re > 0.97, "re {re}");
    }

    #[test]
    fn neither_cures_env_blind_bohrbugs() {
        let rx = rx_rate(FaultType::EnvBlind, 6, T, SEED);
        let re = reexecution_rate(FaultType::EnvBlind, 6, T, SEED);
        assert!((rx - (1.0 - DENSITY)).abs() < 0.05, "rx {rx}");
        assert!((re - (1.0 - DENSITY)).abs() < 0.05, "re {re}");
    }

    #[test]
    fn more_rounds_help_env_sensitive() {
        let r1 = rx_rate(FaultType::EnvSensitive, 1, T, SEED);
        let r5 = rx_rate(FaultType::EnvSensitive, 5, T, SEED);
        assert!(r5 > r1, "r1={r1}, r5={r5}");
    }

    #[test]
    fn table_renders_three_rows() {
        assert_eq!(run(150, SEED).len(), 3);
    }

    #[test]
    fn table_is_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(150, SEED, jobs));
    }
}
