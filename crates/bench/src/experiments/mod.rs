//! One module per reproduced artifact. See `EXPERIMENTS.md` for the
//! experiment ↔ paper mapping.

pub mod checkpoint_interval;
pub mod correlated;
pub mod cost_efficacy;
pub mod data_diversity;
pub mod early_exit;
pub mod fig1_patterns;
pub mod gp_fix;
pub mod microreboot;
pub mod nvp_tolerance;
pub mod rejuvenation;
pub mod resume;
pub mod robust_data;
pub mod rx;
pub mod rx_ablation;
pub mod security;
pub mod services_rt;
pub mod shard_rt;
pub mod substitution;
pub mod table1;
pub mod table2_matrix;
pub mod workarounds;
pub mod wrappers;
