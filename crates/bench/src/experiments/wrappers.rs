//! Experiment E15 — Fetzer-style healer wrappers: heap-smash prevention
//! rate and the padding alternative, against the unwrapped baseline.
//!
//! Expected shape: the unchecked heap silently corrupts on every
//! overflowing write; the boundary-checking wrapper stops every one;
//! allocation padding (the RX-style *environmental* mitigation) absorbs
//! only overflows smaller than the pad.

use redundancy_core::rng::SplitMix64;
use redundancy_sandbox::memory::SimMemory;
use redundancy_sim::parallel_tasks;
use redundancy_sim::table::Table;
use redundancy_techniques::wrappers::HeapWrapper;

use crate::fmt_rate;

/// Outcome of one campaign of overflowing writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmashStats {
    /// Writes that left corrupted memory behind.
    pub corruptions: usize,
    /// Writes refused by a checking layer.
    pub refused: usize,
}

fn overflow_campaign(
    rng: &mut SplitMix64,
    trials: usize,
    mut write: impl FnMut(u64) -> (bool, bool),
) -> SmashStats {
    let mut stats = SmashStats {
        corruptions: 0,
        refused: 0,
    };
    for _ in 0..trials {
        // Overflow length 1..=128 past a 64-byte buffer.
        let overflow = 1 + rng.range_u64(0, 128);
        let (corrupted, refused) = write(overflow);
        if corrupted {
            stats.corruptions += 1;
        }
        if refused {
            stats.refused += 1;
        }
    }
    stats
}

/// Unchecked writes on a raw heap.
#[must_use]
pub fn unprotected(trials: usize, seed: u64) -> SmashStats {
    let mut rng = SplitMix64::new(seed);
    overflow_campaign(&mut rng, trials, |overflow| {
        let mut mem = SimMemory::new(0x1000, 0x10000);
        let a = mem.alloc(64).expect("fits");
        let _b = mem.alloc(64).expect("fits");
        let _ = mem.write_unchecked(a, 0, 64 + overflow);
        (!mem.audit().is_empty(), false)
    })
}

/// Writes through the boundary-checking wrapper.
#[must_use]
pub fn wrapped(trials: usize, seed: u64) -> SmashStats {
    let mut rng = SplitMix64::new(seed);
    overflow_campaign(&mut rng, trials, |overflow| {
        let mut heap = HeapWrapper::new(SimMemory::new(0x1000, 0x10000));
        let a = heap.alloc(64).expect("fits");
        let _b = heap.alloc(64).expect("fits");
        let refused = heap.write(a, 0, 64 + overflow).is_err();
        (!heap.memory().audit().is_empty(), refused)
    })
}

/// Unchecked writes on a heap with `pad` bytes of allocation padding.
#[must_use]
pub fn padded(pad: u64, trials: usize, seed: u64) -> SmashStats {
    let mut rng = SplitMix64::new(seed);
    overflow_campaign(&mut rng, trials, |overflow| {
        let mut mem = SimMemory::new(0x1000, 0x10000);
        mem.set_alloc_padding(pad);
        let a = mem.alloc(64).expect("fits");
        let _b = mem.alloc(64).expect("fits");
        let _ = mem.write_unchecked(a, 0, 64 + overflow);
        (!mem.audit().is_empty(), false)
    })
}

/// Builds the E15 table.
#[must_use]
pub fn run(trials: usize, seed: u64) -> Table {
    run_jobs(trials, seed, 1)
}

/// Like [`run`] with the four configurations sharded across up to `jobs`
/// worker threads; every campaign seeds its own RNG and heap, so the
/// table is identical for any `jobs`.
#[must_use]
pub fn run_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    let mut table = Table::new(&["configuration", "corruption rate", "writes refused"]);
    let labels = [
        "unchecked heap",
        "healer wrapper (bounds check)",
        "64-byte padding, unchecked",
        "256-byte padding, unchecked",
    ];
    let tasks: Vec<_> = (0..labels.len())
        .map(|idx| {
            move || match idx {
                0 => unprotected(trials, seed),
                1 => wrapped(trials, seed),
                2 => padded(64, trials, seed),
                _ => padded(256, trials, seed),
            }
        })
        .collect();
    let results = parallel_tasks(jobs, tasks);
    for (label, stats) in labels.iter().zip(results) {
        table.row_owned(vec![
            (*label).to_owned(),
            fmt_rate(stats.corruptions as f64 / trials as f64),
            fmt_rate(stats.refused as f64 / trials as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 500;
    const SEED: u64 = 0xe15;

    #[test]
    fn unchecked_heap_always_corrupts() {
        let stats = unprotected(T, SEED);
        assert_eq!(stats.corruptions, T);
    }

    #[test]
    fn wrapper_prevents_every_smash() {
        let stats = wrapped(T, SEED);
        assert_eq!(stats.corruptions, 0);
        assert_eq!(stats.refused, T);
    }

    #[test]
    fn padding_absorbs_only_small_overflows() {
        let p64 = padded(64, T, SEED);
        let p256 = padded(256, T, SEED);
        // Overflows are 1..=128: 64-byte pads absorb about half, 256-byte
        // pads absorb all.
        let rate64 = p64.corruptions as f64 / T as f64;
        assert!((rate64 - 0.5).abs() < 0.08, "rate64 {rate64}");
        assert_eq!(p256.corruptions, 0);
    }

    #[test]
    fn table_renders_four_rows() {
        assert_eq!(run(100, SEED).len(), 4);
    }

    #[test]
    fn table_is_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(100, SEED, jobs));
    }
}
