//! Experiment E19 (extension) — resumable campaigns: checkpoint
//! interval vs work lost to an injected kill.
//!
//! E17 measures the checkpoint-interval trade-off for a *simulated*
//! long-running computation; this experiment measures the same
//! trade-off for the campaign engine's own crash-only checkpointing
//! (`redundancy_sim::checkpoint`). A campaign is killed mid-run by a
//! scripted [`ChaosPlan`] worker panic, then resumed from its
//! checkpoint file: a small commit interval loses almost nothing to the
//! kill but pays a flush per few trials; a large interval flushes
//! rarely but forfeits every completed-yet-uncommitted trial. In every
//! cell the resumed summary must be **bit-identical** to an
//! uninterrupted run's — the sweep measures cost, never correctness.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use redundancy_core::cost::Cost;
use redundancy_core::obs::{to_jsonl, CollectorObserver};
use redundancy_sim::checkpoint::CheckpointSpec;
use redundancy_sim::table::Table;
use redundancy_sim::{parallel_tasks, Campaign, ChaosPlan, TrialOutcome};

/// A seed-driven synthetic trial with mixed dispositions and costs, so
/// any resume bug (re-run, skip, reorder) shifts the summary.
fn synthetic_trial(seed: u64, i: usize) -> TrialOutcome {
    let cost = Cost::of_invocation((seed % 97) + i as u64, (seed % 31) + 1);
    match seed % 5 {
        0 => TrialOutcome::Undetected { cost },
        1 | 2 => TrialOutcome::Detected { cost },
        _ => TrialOutcome::Correct { cost },
    }
}

/// One cell of the interval sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeMeasurement {
    /// Commit interval (trials per flushed batch).
    pub interval: usize,
    /// Trials durably committed when the kill struck.
    pub committed_at_kill: usize,
    /// Trials that had *completed* before the kill but were lost with
    /// the un-flushed tail (`kill_at % interval`).
    pub finished_but_lost: usize,
    /// Trials the resumed run had to execute.
    pub rerun_trials: usize,
    /// Whether the resumed summary matched the uninterrupted run's
    /// bit for bit.
    pub identical: bool,
}

/// Kills a `trials`-trial campaign just before trial `kill_at`
/// (single worker, so completion order is index order — exactly a
/// process kill's semantics), resumes it, and reports what the commit
/// `interval` saved and what it cost.
///
/// # Panics
///
/// Panics if the checkpoint file cannot be created in the system temp
/// directory, or if the scripted kill does not fire.
#[must_use]
pub fn measure(trials: usize, seed: u64, interval: usize, kill_at: usize) -> ResumeMeasurement {
    let campaign = Campaign::new(trials);
    let clean = campaign.run_parallel(seed, 1, synthetic_trial);
    let mut path = std::env::temp_dir();
    path.push(format!(
        "redundancy_e19_{}_{}_{interval}.ckpt",
        std::process::id(),
        seed
    ));
    let _ = std::fs::remove_file(&path);
    let spec = CheckpointSpec::new(&path, interval);
    let chaos = ChaosPlan::new(seed).kill_before_trial(kill_at);
    let killed = catch_unwind(AssertUnwindSafe(|| {
        campaign.run_parallel_resumable_chaos(seed, 1, &spec, Some(&chaos), synthetic_trial)
    }));
    assert!(killed.is_err(), "the scripted kill must fire");
    let reruns = AtomicUsize::new(0);
    let resumed = campaign
        .run_parallel_resumable_chaos(seed, 1, &spec, Some(&chaos), |s, i| {
            reruns.fetch_add(1, Ordering::Relaxed);
            synthetic_trial(s, i)
        })
        .expect("resume succeeds");
    let _ = std::fs::remove_file(&path);
    let rerun_trials = reruns.load(Ordering::Relaxed);
    let committed_at_kill = trials - rerun_trials;
    ResumeMeasurement {
        interval,
        committed_at_kill,
        finished_but_lost: kill_at - committed_at_kill,
        rerun_trials,
        identical: clean == resumed,
    }
}

/// Builds the interval sweep table.
#[must_use]
pub fn run(trials: usize, seed: u64) -> Table {
    run_jobs(trials, seed, 1)
}

/// Like [`run`] with the interval sweep sharded across up to `jobs`
/// worker threads; each cell runs its own single-worker campaign on its
/// own checkpoint file, so the table is identical for any `jobs`.
#[must_use]
pub fn run_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    let trials = trials.max(8);
    let kill_at = trials * 3 / 4;
    let mut intervals: Vec<usize> = [1, 2, 8, 32, 128, trials]
        .into_iter()
        .filter(|&i| i <= trials)
        .collect();
    intervals.dedup();
    let tasks: Vec<_> = intervals
        .iter()
        .map(|&interval| move || measure(trials, seed, interval, kill_at))
        .collect();
    let mut table = Table::new(&[
        "commit interval",
        "committed at kill",
        "finished but lost",
        "re-run on resume",
        "flush batches",
        "summary identical",
    ]);
    for m in parallel_tasks(jobs, tasks) {
        table.row_owned(vec![
            m.interval.to_string(),
            m.committed_at_kill.to_string(),
            m.finished_but_lost.to_string(),
            m.rerun_trials.to_string(),
            (m.committed_at_kill / m.interval).to_string(),
            if m.identical { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    table
}

/// The chaos smoke check behind `make chaos-smoke`: a **traced**
/// campaign is killed repeatedly (worker panic, scripted mid-trial
/// cancellation, delayed chunks) and resumed until it completes, each
/// attempt with a fresh sink as a process restart would have; the final
/// event stream must serialize to exactly the bytes of an uninterrupted
/// serial recording. Returns the number of killed attempts.
///
/// # Panics
///
/// Panics if the resumed summary or stream differ from the
/// uninterrupted run, if a kill never fires, or if resumption does not
/// converge within a handful of attempts.
#[must_use]
pub fn chaos_smoke(trials: usize, seed: u64, jobs: usize) -> usize {
    let trials = trials.max(16);
    let campaign = Campaign::new(trials);
    let trial = |ctx: &mut redundancy_core::context::ExecContext, _seed: u64, i: usize| {
        for _ in 0..4 {
            let _ = ctx.charge(1);
        }
        let draw = ctx.rng().next_u64();
        synthetic_trial(draw, i)
    };
    let clean_sink = Arc::new(CollectorObserver::new());
    let clean = campaign.run_traced(seed, clean_sink.clone(), trial);
    let clean_stream = to_jsonl(&clean_sink.take());

    let mut path = std::env::temp_dir();
    path.push(format!(
        "redundancy_chaos_smoke_{}_{}.ckpt",
        std::process::id(),
        seed
    ));
    let _ = std::fs::remove_file(&path);
    let spec = CheckpointSpec::new(&path, 4);
    let chaos = ChaosPlan::new(seed)
        .kill_before_trial(trials / 3)
        .kill_after_trial(trials / 2)
        .cancel_at_charge(trials * 2 / 3, 3)
        .delay_chunks(0.2, 50);
    let mut kills = 0;
    let (resumed, stream) = loop {
        assert!(kills <= 4, "chaos resumption never converged");
        let sink = Arc::new(CollectorObserver::new());
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            campaign.run_traced_parallel_resumable_chaos(
                seed,
                jobs,
                sink.clone(),
                &spec,
                Some(&chaos),
                trial,
            )
        }));
        match attempt {
            Ok(summary) => break (summary.expect("checkpoint io"), to_jsonl(&sink.take())),
            Err(payload) => {
                assert!(
                    ChaosPlan::is_chaos_panic(&*payload),
                    "only scripted faults may kill the campaign"
                );
                kills += 1;
            }
        }
    };
    let _ = std::fs::remove_file(&path);
    assert!(kills >= 1, "no scripted kill fired");
    assert_eq!(clean, resumed, "resumed summary differs from clean run");
    assert_eq!(
        clean_stream, stream,
        "resumed stream is not byte-identical to the clean recording"
    );
    kills
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0xe19;

    #[test]
    fn committed_at_kill_is_the_floor_interval_multiple() {
        for interval in [1usize, 4, 16] {
            let m = measure(64, SEED, interval, 48);
            assert_eq!(m.committed_at_kill, 48 / interval * interval);
            assert_eq!(m.finished_but_lost, 48 % interval);
            assert_eq!(m.rerun_trials, 64 - m.committed_at_kill);
            assert!(m.identical, "interval={interval}");
        }
    }

    #[test]
    fn smaller_intervals_lose_less_finished_work() {
        let fine = measure(64, SEED, 2, 47);
        let coarse = measure(64, SEED, 32, 47);
        assert!(fine.finished_but_lost < coarse.finished_but_lost);
        assert!(fine.committed_at_kill > coarse.committed_at_kill);
    }

    #[test]
    fn table_renders_with_identical_summaries_everywhere() {
        let table = run(64, SEED);
        let rendered = table.to_string();
        assert!(rendered.contains("yes"));
        assert!(!rendered.contains("NO"));
    }

    #[test]
    fn table_is_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(32, SEED, jobs));
    }

    #[test]
    fn chaos_smoke_converges_byte_identically() {
        assert!(chaos_smoke(60, SEED, 4) >= 1);
    }
}
