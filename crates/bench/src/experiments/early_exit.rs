//! Experiment E18 — what eager adjudication saves: cost and recovery
//! latency of N-version voting under `DecisionPolicy::Exhaustive` vs
//! `DecisionPolicy::Eager`, swept over the number of versions and over
//! the quorum size.
//!
//! Expected shape: the two policies always agree on reliability (the
//! verdict is mathematically fixed before the saved work would have
//! run), while eager work per trial grows like the decision threshold —
//! roughly `(N+1)/2` versions for majority voting — instead of `N`. The
//! saving therefore *widens* with N and *shrinks* as the quorum
//! approaches N (unanimity leaves nothing to skip).

use redundancy_core::adjudicator::voting::{MajorityVoter, QuorumVoter};
use redundancy_core::adjudicator::Adjudicator;
use redundancy_core::context::ExecContext;
use redundancy_core::patterns::DecisionPolicy;
use redundancy_faults::correlation::{correlated_versions, CorrelatedSuite};
use redundancy_sim::early_exit::{work_saved, EarlyExitCounters, EarlyExitStats};
use redundancy_sim::parallel_tasks;
use redundancy_sim::table::Table;
use redundancy_sim::trial::{Campaign, TrialOutcome, TrialSummary};
use redundancy_techniques::nvp::NVersion;

/// Per-version failure density the sweep runs at — low enough that
/// majorities usually form early, which is exactly when eagerness pays.
const DENSITY: f64 = 0.15;

/// One campaign of N-version trials under a given adjudicator and
/// policy, returning the summary plus the aggregated early-exit counters.
#[must_use]
pub fn campaign(
    n: usize,
    adjudicator: impl Adjudicator<u64> + 'static,
    policy: DecisionPolicy,
    trials: usize,
    seed: u64,
) -> (TrialSummary, EarlyExitStats) {
    let versions = correlated_versions(
        CorrelatedSuite::new(n, DENSITY, 0.0, seed),
        |x: &u64| x * 2,
        |c, rng| c + 1 + rng.range_u64(0, 1_000_000),
    );
    let nvp = NVersion::with_adjudicator(versions, adjudicator).with_policy(policy);
    let counters = EarlyExitCounters::new();
    let summary = Campaign::new(trials).run(seed, |trial_seed, i| {
        let mut ctx = ExecContext::new(trial_seed);
        let x = i as u64;
        let report = nvp.run(&x, &mut ctx);
        counters.record(&report);
        let cost = ctx.cost();
        match report.into_output() {
            Some(out) if out == x * 2 => TrialOutcome::Correct { cost },
            Some(_) => TrialOutcome::Undetected { cost },
            None => TrialOutcome::Detected { cost },
        }
    });
    (summary, counters.snapshot())
}

fn policy_row(
    label: String,
    exhaustive: &(TrialSummary, EarlyExitStats),
    eager: &(TrialSummary, EarlyExitStats),
) -> Vec<String> {
    let saved = work_saved(&exhaustive.0, &eager.0);
    vec![
        label,
        format!("{:.1}", exhaustive.0.work.mean),
        format!("{:.1}", eager.0.work.mean),
        format!("{:.1}%", saved.percent),
        format!("{:.1}", exhaustive.0.latency.mean),
        format!("{:.1}", eager.0.latency.mean),
        format!("{:.2}", eager.1.executed_per_run()),
        format!("{:.2}", eager.1.saved_fraction()),
        crate::fmt_rate(eager.0.reliability.rate),
    ]
}

const HEADERS: [&str; 9] = [
    "",
    "work/trial exh.",
    "work/trial eager",
    "saved",
    "latency exh.",
    "latency eager",
    "exec/run",
    "skip frac",
    "reliability",
];

/// Builds the cost-vs-N table (majority voting) under both policies.
#[must_use]
pub fn run(trials: usize, seed: u64) -> Table {
    run_jobs(trials, seed, 1)
}

/// Like [`run`] with the per-(N, policy) campaigns computed across up to
/// `jobs` worker threads; every campaign seeds its own versions and
/// contexts, so the table is identical for any `jobs`.
#[must_use]
pub fn run_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    let ns = [3usize, 5, 7, 9];
    let tasks: Vec<_> = ns
        .iter()
        .flat_map(|&n| {
            [DecisionPolicy::Exhaustive, DecisionPolicy::Eager]
                .into_iter()
                .map(move |policy| move || campaign(n, MajorityVoter::new(), policy, trials, seed))
        })
        .collect();
    let results = parallel_tasks(jobs, tasks);

    let mut headers = HEADERS;
    headers[0] = "N (majority)";
    let mut table = Table::new(&headers);
    for (row, n) in ns.iter().enumerate() {
        table.row_owned(policy_row(
            format!("{n}"),
            &results[2 * row],
            &results[2 * row + 1],
        ));
    }
    table
}

/// Builds the cost-vs-quorum table at N = 5 under both policies: quorum
/// `q` means the vote concludes once `q` outputs agree, so eagerness has
/// the most to skip at small `q` and nothing at `q = N`.
#[must_use]
pub fn run_quorum(trials: usize, seed: u64) -> Table {
    run_quorum_jobs(trials, seed, 1)
}

/// Like [`run_quorum`] with the per-(quorum, policy) campaigns computed
/// across up to `jobs` worker threads.
#[must_use]
pub fn run_quorum_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    let n = 5usize;
    let quorums = [2usize, 3, 4, 5];
    let tasks: Vec<_> = quorums
        .iter()
        .flat_map(|&q| {
            [DecisionPolicy::Exhaustive, DecisionPolicy::Eager]
                .into_iter()
                .map(move |policy| move || campaign(n, QuorumVoter::new(q), policy, trials, seed))
        })
        .collect();
    let results = parallel_tasks(jobs, tasks);

    let mut headers = HEADERS;
    headers[0] = "quorum (N=5)";
    let mut table = Table::new(&headers);
    for (row, q) in quorums.iter().enumerate() {
        table.row_owned(policy_row(
            format!("q={q}"),
            &results[2 * row],
            &results[2 * row + 1],
        ));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 400;
    const SEED: u64 = 0xe18;

    #[test]
    fn policies_agree_on_every_disposition() {
        for n in [3usize, 5, 7] {
            let (exh, _) = campaign(n, MajorityVoter::new(), DecisionPolicy::Exhaustive, T, SEED);
            let (eager, _) = campaign(n, MajorityVoter::new(), DecisionPolicy::Eager, T, SEED);
            assert_eq!(exh.reliability, eager.reliability, "n={n}");
            assert_eq!(exh.undetected, eager.undetected, "n={n}");
            assert_eq!(exh.detected, eager.detected, "n={n}");
        }
    }

    #[test]
    fn eager_majority_is_measurably_cheaper_from_n_3() {
        for n in [3usize, 5, 7, 9] {
            let (exh, _) = campaign(n, MajorityVoter::new(), DecisionPolicy::Exhaustive, T, SEED);
            let (eager, stats) = campaign(n, MajorityVoter::new(), DecisionPolicy::Eager, T, SEED);
            let saved = work_saved(&exh, &eager);
            assert!(
                saved.work_units_per_trial > 0.0,
                "n={n}: no work saved ({saved:?})"
            );
            assert!(stats.skipped > 0, "n={n}: nothing skipped");
        }
    }

    #[test]
    fn saving_widens_with_n() {
        let pct = |n| {
            let (exh, _) = campaign(n, MajorityVoter::new(), DecisionPolicy::Exhaustive, T, SEED);
            let (eager, _) = campaign(n, MajorityVoter::new(), DecisionPolicy::Eager, T, SEED);
            work_saved(&exh, &eager).percent
        };
        let s3 = pct(3);
        let s9 = pct(9);
        assert!(s9 > s3, "saved% must widen: n=3 {s3:.1}%, n=9 {s9:.1}%");
    }

    #[test]
    fn unanimity_quorum_leaves_nothing_to_skip() {
        let (_, stats) = campaign(5, QuorumVoter::new(5), DecisionPolicy::Eager, T, SEED);
        // A q = N quorum needs every version unless one already failed;
        // the small skip count comes from trials where failures made the
        // quorum unreachable early.
        let (_, loose) = campaign(5, QuorumVoter::new(2), DecisionPolicy::Eager, T, SEED);
        assert!(
            loose.skipped > stats.skipped,
            "q=2 skipped {} must exceed q=5 skipped {}",
            loose.skipped,
            stats.skipped
        );
    }

    #[test]
    fn tables_render() {
        assert_eq!(run(100, SEED).len(), 4);
        assert_eq!(run_quorum(100, SEED).len(), 4);
    }

    #[test]
    fn tables_are_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(100, SEED, jobs));
        crate::assert_jobs_invariant!(|jobs| run_quorum_jobs(100, SEED, jobs));
    }
}
