//! Experiment E12 — dynamic service substitution: process success rate
//! vs the number of alternative providers, with and without interface
//! converters.
//!
//! Expected shape: availability ≈ 1 − p^n for n exact-interface
//! providers; converters extend the pool and push availability further.

use std::sync::Arc;

use redundancy_core::context::ExecContext;
use redundancy_services::provider::SimProvider;
use redundancy_services::registry::{Converter, InterfaceId};
use redundancy_services::value::Value;
use redundancy_sim::parallel_tasks;
use redundancy_sim::table::Table;
use redundancy_techniques::service_substitution::{replicated_registry, DynamicSubstitution};

use crate::fmt_rate;

const FAIL: f64 = 0.4;

/// Availability with `n` exact providers (no converters).
#[must_use]
pub fn availability_exact(n: usize, trials: usize, seed: u64) -> f64 {
    let registry = replicated_registry("svc", n, FAIL);
    let sub = DynamicSubstitution::new(&registry);
    let mut ctx = ExecContext::new(seed);
    let ok = (0..trials)
        .filter(|_| {
            sub.invoke(&InterfaceId::new("svc"), "echo", &[Value::Int(1)], &mut ctx)
                .is_ok()
        })
        .count();
    ok as f64 / trials as f64
}

/// Availability with `n` exact providers plus `similar` convertible ones.
#[must_use]
pub fn availability_with_converters(n: usize, similar: usize, trials: usize, seed: u64) -> f64 {
    let mut registry = replicated_registry("svc", n, FAIL);
    for i in 0..similar {
        registry.register(Arc::new(
            SimProvider::builder(format!("similar{i}"), InterfaceId::new("svc2"))
                .fail_prob(FAIL)
                .operation("echo2", |args, _| {
                    Ok(args.first().cloned().unwrap_or(Value::Null))
                })
                .build(),
        ));
    }
    registry.register_converter(
        Converter::new(InterfaceId::new("svc"), InterfaceId::new("svc2"))
            .map_operation("echo", "echo2"),
    );
    let sub = DynamicSubstitution::new(&registry);
    let mut ctx = ExecContext::new(seed);
    let ok = (0..trials)
        .filter(|_| {
            sub.invoke(&InterfaceId::new("svc"), "echo", &[Value::Int(1)], &mut ctx)
                .is_ok()
        })
        .count();
    ok as f64 / trials as f64
}

/// Builds the E12 table.
#[must_use]
pub fn run(trials: usize, seed: u64) -> Table {
    run_jobs(trials, seed, 1)
}

/// Like [`run`] with the provider-count sweep sharded across up to
/// `jobs` worker threads; every row builds its own registry and context,
/// so the table is identical for any `jobs`.
#[must_use]
pub fn run_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    let mut table = Table::new(&[
        "providers",
        "availability (exact only)",
        "+2 similar via converter",
        "1 - p^n (prediction)",
    ]);
    let counts = [1usize, 2, 3, 4, 5];
    let tasks: Vec<_> = counts
        .iter()
        .map(|&n| {
            move || {
                (
                    availability_exact(n, trials, seed),
                    availability_with_converters(n, 2, trials, seed),
                )
            }
        })
        .collect();
    let results = parallel_tasks(jobs, tasks);
    for (n, (exact, converted)) in counts.iter().zip(results) {
        table.row_owned(vec![
            n.to_string(),
            fmt_rate(exact),
            fmt_rate(converted),
            fmt_rate(1.0 - FAIL.powi(*n as i32)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 2000;
    const SEED: u64 = 0xe12;

    #[test]
    fn availability_tracks_one_minus_p_to_the_n() {
        for n in [1usize, 2, 3] {
            let a = availability_exact(n, T, SEED);
            let predicted = 1.0 - FAIL.powi(n as i32);
            assert!((a - predicted).abs() < 0.04, "n={n}: {a} vs {predicted}");
        }
    }

    #[test]
    fn converters_raise_availability() {
        let without = availability_exact(2, T, SEED);
        let with = availability_with_converters(2, 2, T, SEED);
        assert!(with > without + 0.05, "with {with} vs without {without}");
        let predicted = 1.0 - FAIL.powi(4);
        assert!(
            (with - predicted).abs() < 0.04,
            "with {with} vs {predicted}"
        );
    }

    #[test]
    fn table_renders_five_rows() {
        assert_eq!(run(300, SEED).len(), 5);
    }

    #[test]
    fn table_is_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(300, SEED, jobs));
    }
}
