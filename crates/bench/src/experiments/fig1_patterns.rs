//! Experiment F1 — the paper's **Figure 1**: compare the three
//! inter-component architectural patterns on identical variant sets.
//!
//! Expected shape: parallel evaluation masks silent wrong outputs (the
//! others need a detectable failure or an acceptance test); sequential
//! alternatives is cheapest in work (it stops at the first success);
//! the parallel patterns win on latency under failures (critical path vs
//! sum of attempts).

use std::sync::Arc;

use redundancy_core::adjudicator::acceptance::FnAcceptance;
use redundancy_core::adjudicator::voting::MajorityVoter;
use redundancy_core::context::ExecContext;
use redundancy_core::obs::{ObsHandle, Observer};
use redundancy_core::patterns::{ParallelEvaluation, ParallelSelection, SequentialAlternatives};
use redundancy_core::variant::BoxedVariant;
use redundancy_faults::correlation::{correlated_versions, CorrelatedSuite};
use redundancy_sim::parallel_tasks;
use redundancy_sim::table::Table;

use crate::fmt_rate;

/// Measured behaviour of one pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternStats {
    /// Fraction of trials delivering the correct output.
    pub reliability: f64,
    /// Mean work units per request.
    pub mean_work: f64,
    /// Mean virtual latency per request.
    pub mean_latency: f64,
}

fn versions(seed: u64) -> Vec<BoxedVariant<u64, u64>> {
    correlated_versions(
        CorrelatedSuite::new(3, 0.25, 0.0, seed),
        |x: &u64| x * 2,
        |c, _| c + 1001,
    )
}

fn acceptance() -> FnAcceptance<impl Fn(&u64, &u64) -> bool> {
    // Explicit adjudicator with perfect coverage of the +1001 corruption.
    FnAcceptance::new("plausible", |x: &u64, out: &u64| *out <= x * 2 + 100)
}

/// Measures one pattern given a closure running a single request.
fn measure<F>(trials: usize, seed: u64, obs: Option<&ObsHandle>, mut run_one: F) -> PatternStats
where
    F: FnMut(&u64, &mut ExecContext) -> Option<u64>,
{
    let mut ctx = match obs {
        Some(handle) => ExecContext::new(seed).with_obs_handle(handle.clone()),
        None => ExecContext::new(seed),
    };
    let mut correct = 0;
    let mut work = 0u64;
    let mut latency = 0u64;
    for x in 0..trials as u64 {
        let before = ctx.cost();
        if run_one(&x, &mut ctx) == Some(x * 2) {
            correct += 1;
        }
        let after = ctx.cost();
        work += after.work_units - before.work_units;
        latency += after.virtual_ns - before.virtual_ns;
    }
    PatternStats {
        reliability: correct as f64 / trials as f64,
        mean_work: work as f64 / trials as f64,
        mean_latency: latency as f64 / trials as f64,
    }
}

/// Measures parallel evaluation (Figure 1a).
#[must_use]
pub fn parallel_evaluation(trials: usize, seed: u64, obs: Option<&ObsHandle>) -> PatternStats {
    let mut pattern = ParallelEvaluation::new(MajorityVoter::new());
    for v in versions(seed) {
        pattern.push_variant(v);
    }
    measure(trials, seed, obs, |x, ctx| {
        pattern.run(x, ctx).into_output()
    })
}

/// Measures parallel selection (Figure 1b).
#[must_use]
pub fn parallel_selection(trials: usize, seed: u64, obs: Option<&ObsHandle>) -> PatternStats {
    let mut pattern = ParallelSelection::new();
    for v in versions(seed) {
        pattern.push_component(v, Box::new(acceptance()));
    }
    measure(trials, seed, obs, |x, ctx| {
        pattern.run(x, ctx).into_output()
    })
}

/// Measures sequential alternatives (Figure 1c).
#[must_use]
pub fn sequential_alternatives(trials: usize, seed: u64, obs: Option<&ObsHandle>) -> PatternStats {
    let mut pattern = SequentialAlternatives::new(acceptance());
    for v in versions(seed) {
        pattern.push_variant(v);
    }
    measure(trials, seed, obs, |x, ctx| {
        pattern.run(x, ctx).into_output()
    })
}

/// Builds the Figure 1 comparison table.
#[must_use]
pub fn run(trials: usize, seed: u64) -> Table {
    run_jobs(trials, seed, 1)
}

/// Like [`run`] with the three pattern rows measured across up to `jobs`
/// worker threads; each row seeds its own context, so the table is
/// identical for any `jobs`.
#[must_use]
pub fn run_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    run_traced_jobs(trials, seed, None, jobs)
}

/// Like [`run`], with every request recorded to `observer` when one is
/// given (what `exp_fig1 --trace` uses).
#[must_use]
pub fn run_traced(trials: usize, seed: u64, observer: Option<Arc<dyn Observer>>) -> Table {
    run_traced_jobs(trials, seed, observer, 1)
}

/// Like [`run_traced`] with rows measured across up to `jobs` worker
/// threads. The table is identical for any `jobs`, but with `jobs > 1`
/// an observer's event stream interleaves rows in scheduling order;
/// pass `jobs = 1` when capturing a stream for replay.
#[must_use]
pub fn run_traced_jobs(
    trials: usize,
    seed: u64,
    observer: Option<Arc<dyn Observer>>,
    jobs: usize,
) -> Table {
    let handle = observer.map(ObsHandle::new);
    let mut table = Table::new(&[
        "Pattern (Figure 1)",
        "Adjudicator",
        "reliability",
        "mean work",
        "mean latency",
    ]);
    type PatternFn = fn(usize, u64, Option<&ObsHandle>) -> PatternStats;
    let specs: [(&str, &str, PatternFn); 3] = [
        (
            "(a) parallel evaluation",
            "implicit majority vote",
            parallel_evaluation,
        ),
        (
            "(b) parallel selection",
            "explicit per-component test",
            parallel_selection,
        ),
        (
            "(c) sequential alternatives",
            "explicit shared test",
            sequential_alternatives,
        ),
    ];
    let tasks: Vec<_> = specs
        .iter()
        .map(|&(_, _, f)| {
            let handle = handle.clone();
            move || f(trials, seed, handle.as_ref())
        })
        .collect();
    let computed = parallel_tasks(jobs, tasks);
    for (&(name, adjudicator, _), stats) in specs.iter().zip(computed) {
        table.row_owned(vec![
            name.to_owned(),
            adjudicator.to_owned(),
            fmt_rate(stats.reliability),
            format!("{:.1}", stats.mean_work),
            format!("{:.1}", stats.mean_latency),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 800;
    const SEED: u64 = 0xf16;

    #[test]
    fn all_patterns_mask_most_failures() {
        // Majority voting needs >= 2 correct versions: P = 0.844 at
        // density 0.25. The selection/sequential patterns need just one
        // acceptable result: P = 1 - 0.25^3 = 0.984.
        let eval = parallel_evaluation(T, SEED, None);
        assert!((eval.reliability - 0.844).abs() < 0.04, "eval: {eval:?}");
        for (name, s) in [
            ("select", parallel_selection(T, SEED, None)),
            ("seq", sequential_alternatives(T, SEED, None)),
        ] {
            assert!(s.reliability > 0.95, "{name}: {s:?}");
        }
    }

    #[test]
    fn sequential_is_cheapest_in_work() {
        let eval = parallel_evaluation(T, SEED, None);
        let seq = sequential_alternatives(T, SEED, None);
        assert!(
            seq.mean_work < eval.mean_work * 0.7,
            "seq {seq:?} vs eval {eval:?}"
        );
    }

    #[test]
    fn parallel_latency_beats_sequential_under_failures() {
        let select = parallel_selection(T, SEED, None);
        let seq = sequential_alternatives(T, SEED, None);
        // Sequential pays attempt sums on failing primaries; parallel pays
        // the (constant) critical path. With a 25%-faulty primary the mean
        // sequential latency must exceed the parallel one is not guaranteed
        // in every configuration, but parallel latency must at least not
        // exceed the all-variants critical path bound.
        assert!(select.mean_latency <= 13.0, "select {select:?}");
        assert!(seq.mean_latency >= 10.0, "seq {seq:?}");
    }

    #[test]
    fn table_renders_three_rows() {
        let table = run(100, SEED);
        assert_eq!(table.len(), 3);
        assert!(table.to_string().contains("parallel evaluation"));
    }

    #[test]
    fn table_is_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(100, SEED, jobs));
    }
}
