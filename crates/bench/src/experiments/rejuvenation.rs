//! Experiment E7 — software rejuvenation (Huang 1995, Garg 1996).
//!
//! (a) Failure rate of an aging server with and without preventive
//! rejuvenation at several cadences. (b) Garg's completion-time model: a
//! checkpointed long-running program rejuvenated every N checkpoints —
//! expected completion time is U-shaped in N.

use redundancy_core::context::ExecContext;
use redundancy_core::rng::SplitMix64;
use redundancy_faults::{FaultSpec, FaultyVariant};
use redundancy_sim::parallel_tasks;
use redundancy_sim::table::Table;
use redundancy_techniques::rejuvenation::{completion_time, CompletionModel, Rejuvenator};

use crate::fmt_rate;

/// Failure rate of an aging server over `calls` requests, rejuvenating
/// every `interval` calls (`u64::MAX` ≈ never).
#[must_use]
pub fn failure_rate(interval: u64, calls: usize, seed: u64) -> f64 {
    let variant = FaultyVariant::builder("server", 5, |x: &u64| x + 1)
        .fault(FaultSpec::aging("leak", 0.0, 0.0015))
        .build();
    let age = variant.age_handle();
    let r = Rejuvenator::new(Box::new(variant), age, interval, 10);
    let mut ctx = ExecContext::new(seed);
    let failures = (0..calls as u64)
        .filter(|x| !r.call(x, &mut ctx).is_ok())
        .count();
    failures as f64 / calls as f64
}

/// Mean completion time at a given rejuvenation cadence (checkpoints).
#[must_use]
pub fn mean_completion(rejuvenate_every: u64, repetitions: usize, seed: u64) -> f64 {
    let model = CompletionModel {
        total_work: 20_000,
        checkpoint_interval: 200,
        checkpoint_cost: 2,
        rejuvenation_cost: 400,
        failure_repair_cost: 2_000,
        hazard_growth: 3e-7,
        rejuvenate_every,
    };
    let mut rng = SplitMix64::new(seed);
    let total: u64 = (0..repetitions)
        .map(|_| completion_time(&model, &mut rng))
        .sum();
    total as f64 / repetitions as f64
}

/// Builds the E7a table: failure rate vs rejuvenation cadence.
#[must_use]
pub fn run_failure_rates(trials: usize, seed: u64) -> Table {
    run_failure_rates_jobs(trials, seed, 1)
}

/// Like [`run_failure_rates`] with the six cadence rows computed across
/// up to `jobs` worker threads; every row seeds its own server and
/// context, so the table is identical for any `jobs`.
#[must_use]
pub fn run_failure_rates_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    let intervals = [25u64, 50, 100, 200, 400, u64::MAX];
    let tasks: Vec<_> = intervals
        .iter()
        .map(|&interval| move || failure_rate(interval, trials, seed))
        .collect();
    let rates = parallel_tasks(jobs, tasks);
    let mut table = Table::new(&["rejuvenation interval (calls)", "failure rate"]);
    for (&interval, rate) in intervals.iter().zip(rates) {
        let label = if interval == u64::MAX {
            "never".to_owned()
        } else {
            interval.to_string()
        };
        table.row_owned(vec![label, fmt_rate(rate)]);
    }
    table
}

/// Builds the E7b table: completion time vs rejuvenate-every-N.
#[must_use]
pub fn run_completion(repetitions: usize, seed: u64) -> Table {
    run_completion_jobs(repetitions, seed, 1)
}

/// Like [`run_completion`] with the eight cadence rows computed across
/// up to `jobs` worker threads; every row seeds its own RNG, so the
/// table is identical for any `jobs`.
#[must_use]
pub fn run_completion_jobs(repetitions: usize, seed: u64, jobs: usize) -> Table {
    let cadences = [0u64, 1, 2, 4, 8, 16, 32, 64];
    let tasks: Vec<_> = cadences
        .iter()
        .map(|&n| move || mean_completion(n, repetitions, seed))
        .collect();
    let times = parallel_tasks(jobs, tasks);
    let mut table = Table::new(&["rejuvenate every N checkpoints", "mean completion time"]);
    for (&n, time) in cadences.iter().zip(times) {
        let label = if n == 0 {
            "never".to_owned()
        } else {
            n.to_string()
        };
        table.row_owned(vec![label, format!("{time:.0}")]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0xe7;

    #[test]
    fn frequent_rejuvenation_suppresses_aging_failures() {
        let frequent = failure_rate(25, 2000, SEED);
        let never = failure_rate(u64::MAX, 2000, SEED);
        assert!(
            frequent * 5.0 < never,
            "frequent {frequent} vs never {never}"
        );
    }

    #[test]
    fn failure_rate_monotone_in_interval() {
        let r25 = failure_rate(25, 3000, SEED);
        let r200 = failure_rate(200, 3000, SEED);
        assert!(r25 < r200, "r25={r25}, r200={r200}");
    }

    #[test]
    fn completion_time_is_u_shaped() {
        let never = mean_completion(0, 40, SEED);
        let sweet = mean_completion(8, 40, SEED);
        let every = mean_completion(1, 40, SEED);
        assert!(sweet < never, "sweet {sweet} !< never {never}");
        assert!(sweet < every, "sweet {sweet} !< every {every}");
    }

    #[test]
    fn tables_render() {
        assert_eq!(run_failure_rates(300, SEED).len(), 6);
        assert_eq!(run_completion(5, SEED).len(), 8);
    }

    #[test]
    fn tables_are_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_failure_rates_jobs(300, SEED, jobs));
        crate::assert_jobs_invariant!(|jobs| run_completion_jobs(5, SEED, jobs));
    }
}
