//! Experiment E6 — the §4.1 "Costs and efficacy of code redundancy"
//! trade-off: N-version programming vs recovery blocks vs self-checking
//! programming on one axis of reliability, and design/execution cost on
//! the other; plus the acceptance-test-coverage sweep that bounds the
//! explicit-adjudicator techniques.
//!
//! Expected shape: NVP pays ~N× execution cost always but needs no
//! bespoke adjudicator; recovery blocks pay extra execution only on
//! failure but live and die by acceptance-test coverage; self-checking
//! matches NVP's latency with recovery blocks' explicit tests.

use redundancy_core::adjudicator::acceptance::FnAcceptance;
use redundancy_core::context::ExecContext;
use redundancy_core::variant::BoxedVariant;
use redundancy_faults::correlation::{correlated_versions, CorrelatedSuite};
use redundancy_faults::spec::{hash_fraction, mix64};
use redundancy_sim::parallel_tasks;
use redundancy_sim::table::Table;
use redundancy_techniques::nvp::NVersion;
use redundancy_techniques::recovery_blocks::RecoveryBlocks;
use redundancy_techniques::self_checking::SelfChecking;

use crate::fmt_rate;

/// One technique's measured point on the cost/efficacy plane.
#[derive(Debug, Clone, PartialEq)]
pub struct CostPoint {
    /// Technique label.
    pub technique: String,
    /// Fraction of correct deliveries.
    pub reliability: f64,
    /// Mean work units per request (execution cost).
    pub mean_work: f64,
    /// Mean virtual latency per request.
    pub mean_latency: f64,
    /// Design cost (number of independently designed artifacts; an
    /// acceptance test counts 0.5).
    pub design_cost: f64,
}

const DENSITY: f64 = 0.25;

fn versions(seed: u64) -> Vec<BoxedVariant<u64, u64>> {
    correlated_versions(
        CorrelatedSuite::new(3, DENSITY, 0.0, seed),
        |x: &u64| x * 2,
        |c, _| c + 1001,
    )
}

/// An acceptance test with tunable coverage: it recognizes the +1001
/// corruption only on a `coverage` fraction of the input space (a test
/// that checks only some properties).
fn coverage_test(coverage: f64, seed: u64) -> FnAcceptance<impl Fn(&u64, &u64) -> bool> {
    FnAcceptance::new("partial-coverage", move |x: &u64, out: &u64| {
        let wrong = *out > x * 2 + 100;
        if !wrong {
            return true;
        }
        // The test notices the wrongness only for covered inputs.
        hash_fraction(mix64(*x, seed ^ 0x00c0_ffee)) >= coverage
    })
}

fn measure<F>(trials: usize, seed: u64, design_cost: f64, label: &str, mut run_one: F) -> CostPoint
where
    F: FnMut(&u64, &mut ExecContext) -> Option<u64>,
{
    let mut ctx = ExecContext::new(seed);
    let mut correct = 0;
    for x in 0..trials as u64 {
        if run_one(&x, &mut ctx) == Some(x * 2) {
            correct += 1;
        }
    }
    let cost = ctx.cost();
    CostPoint {
        technique: label.to_owned(),
        reliability: correct as f64 / trials as f64,
        mean_work: cost.work_units as f64 / trials as f64,
        mean_latency: cost.virtual_ns as f64 / trials as f64,
        design_cost,
    }
}

/// NVP(3): three versions + free implicit adjudicator.
#[must_use]
pub fn nvp_point(trials: usize, seed: u64) -> CostPoint {
    let nvp = NVersion::new(versions(seed));
    measure(trials, seed, 3.0, "N-version programming (3)", |x, ctx| {
        nvp.run(x, ctx).into_output()
    })
}

/// Recovery blocks with an acceptance test of the given coverage.
#[must_use]
pub fn recovery_blocks_point(trials: usize, seed: u64, coverage: f64) -> CostPoint {
    let mut rb = RecoveryBlocks::new(coverage_test(coverage, seed));
    for v in versions(seed) {
        rb = rb.with_alternate(v);
    }
    let label = format!("Recovery blocks (coverage {coverage:.1})");
    measure(trials, seed, 3.5, &label, |x, ctx| {
        rb.run(x, ctx).into_output()
    })
}

/// Self-checking programming (3 tested components, full coverage).
#[must_use]
pub fn self_checking_point(trials: usize, seed: u64) -> CostPoint {
    let mut sc = SelfChecking::new();
    for v in versions(seed) {
        sc = sc.with_tested_component(v, coverage_test(1.0, seed));
    }
    measure(trials, seed, 3.5, "Self-checking programming", |x, ctx| {
        sc.run(x, ctx).into_output()
    })
}

/// Single version baseline.
#[must_use]
pub fn single_point(trials: usize, seed: u64) -> CostPoint {
    let mut all = versions(seed);
    let single = all.remove(0);
    measure(trials, seed, 1.0, "Single version", |x, ctx| {
        let mut child = ctx.fork(0);
        let out = single.execute(x, &mut child).ok();
        ctx.add_sequential_cost(child.cost());
        out
    })
}

/// Builds the E6 table.
#[must_use]
pub fn run(trials: usize, seed: u64) -> Table {
    run_jobs(trials, seed, 1)
}

/// Like [`run`] with the six technique measurements sharded across up to
/// `jobs` worker threads; every point seeds its own context, so the
/// table is identical for any `jobs`.
#[must_use]
pub fn run_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    let mut table = Table::new(&[
        "Technique",
        "reliability",
        "mean work",
        "mean latency",
        "design cost",
    ]);
    let tasks: Vec<_> = (0..6usize)
        .map(|idx| {
            move || match idx {
                0 => single_point(trials, seed),
                1 => nvp_point(trials, seed),
                2 => recovery_blocks_point(trials, seed, 1.0),
                3 => recovery_blocks_point(trials, seed, 0.8),
                4 => recovery_blocks_point(trials, seed, 0.5),
                _ => self_checking_point(trials, seed),
            }
        })
        .collect();
    let points = parallel_tasks(jobs, tasks);
    for p in points {
        table.row_owned(vec![
            p.technique.clone(),
            fmt_rate(p.reliability),
            format!("{:.1}", p.mean_work),
            format!("{:.1}", p.mean_latency),
            format!("{:.1}", p.design_cost),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 1500;
    const SEED: u64 = 0xe6;

    #[test]
    fn redundancy_beats_single_version() {
        let single = single_point(T, SEED);
        let nvp = nvp_point(T, SEED);
        let rb = recovery_blocks_point(T, SEED, 1.0);
        assert!(nvp.reliability > single.reliability + 0.1);
        assert!(rb.reliability > single.reliability + 0.1);
    }

    #[test]
    fn recovery_blocks_cost_less_work_than_nvp() {
        let nvp = nvp_point(T, SEED);
        let rb = recovery_blocks_point(T, SEED, 1.0);
        assert!(
            rb.mean_work < nvp.mean_work * 0.66,
            "rb {} vs nvp {}",
            rb.mean_work,
            nvp.mean_work
        );
    }

    #[test]
    fn acceptance_coverage_bounds_recovery_block_reliability() {
        let full = recovery_blocks_point(T, SEED, 1.0);
        let partial = recovery_blocks_point(T, SEED, 0.5);
        assert!(
            full.reliability > partial.reliability + 0.05,
            "full {} vs partial {}",
            full.reliability,
            partial.reliability
        );
        // With coverage c, a wrong primary output slips through with
        // probability (1-c): reliability ≈ 1 - p·(1-c) - residual.
        assert!(
            partial.reliability < 1.0 - DENSITY * 0.5 + 0.05,
            "partial {}",
            partial.reliability
        );
    }

    #[test]
    fn self_checking_latency_beats_recovery_blocks() {
        let sc = self_checking_point(T, SEED);
        let rb = recovery_blocks_point(T, SEED, 1.0);
        // Self-checking runs spares in parallel: latency ≈ critical path,
        // while recovery blocks serialize retries.
        assert!(
            sc.mean_latency <= rb.mean_latency + 1.0,
            "sc {} vs rb {}",
            sc.mean_latency,
            rb.mean_latency
        );
        // But it pays NVP-like execution cost.
        assert!(
            sc.mean_work > rb.mean_work,
            "sc {} vs rb {}",
            sc.mean_work,
            rb.mean_work
        );
    }

    #[test]
    fn table_renders_six_rows() {
        assert_eq!(run(200, SEED).len(), 6);
    }

    #[test]
    fn table_is_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(200, SEED, jobs));
    }
}
