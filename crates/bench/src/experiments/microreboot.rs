//! Experiment E11 — micro-reboot vs full reboot (Candea's JAGR):
//! recovery time and availability under three reboot policies.
//!
//! Expected shape: micro-rebooting a leaf is orders of magnitude cheaper
//! than a full reboot; the escalating policy keeps that advantage while
//! also curing deep corruption, yielding the best availability.

use redundancy_core::rng::SplitMix64;
use redundancy_sim::parallel_tasks;
use redundancy_sim::table::Table;
use redundancy_techniques::microreboot::{availability_sim, ComponentTree, RebootPolicy};

use crate::fmt_rate;

/// Recovery time for a shallow leaf failure under each policy.
#[must_use]
pub fn shallow_recovery_times() -> Vec<(RebootPolicy, u64, bool)> {
    [
        RebootPolicy::MicroOnly,
        RebootPolicy::Escalating,
        RebootPolicy::Full,
    ]
    .into_iter()
    .map(|policy| {
        let mut tree = ComponentTree::jagr_demo();
        tree.corrupt("app-c2", 0);
        let record = tree.recover("app-c2", policy);
        (policy, record.recovery_time, record.cured)
    })
    .collect()
}

/// Builds the E11 table: availability and mean recovery per policy.
#[must_use]
pub fn run(requests: u64, seed: u64) -> Table {
    run_jobs(requests, seed, 1)
}

/// Like [`run`] with the three policy simulations run across up to
/// `jobs` worker threads; every policy gets its own freshly seeded RNG,
/// so the table is identical for any `jobs`.
#[must_use]
pub fn run_jobs(requests: u64, seed: u64, jobs: usize) -> Table {
    let mut table = Table::new(&[
        "policy",
        "availability",
        "mean recovery time",
        "shallow-failure recovery time",
    ]);
    let shallow = shallow_recovery_times();
    let policies = [
        (RebootPolicy::Full, "full reboot"),
        (RebootPolicy::MicroOnly, "micro-reboot (no escalation)"),
        (RebootPolicy::Escalating, "micro-reboot + escalation (JAGR)"),
    ];
    let tasks: Vec<_> = policies
        .iter()
        .map(|&(policy, _)| {
            move || {
                let mut rng = SplitMix64::new(seed);
                availability_sim(policy, requests, 0.01, 0.2, &mut rng)
            }
        })
        .collect();
    let results = parallel_tasks(jobs, tasks);
    for (&(policy, label), (availability, mean_recovery)) in policies.iter().zip(results) {
        let shallow_time = shallow
            .iter()
            .find(|(p, _, _)| *p == policy)
            .map_or(0, |(_, t, _)| *t);
        table.row_owned(vec![
            label.to_owned(),
            fmt_rate(availability),
            format!("{mean_recovery:.0}"),
            shallow_time.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0xe11;

    #[test]
    fn micro_reboot_shallow_recovery_is_orders_cheaper() {
        let times = shallow_recovery_times();
        let micro = times
            .iter()
            .find(|(p, _, _)| *p == RebootPolicy::MicroOnly)
            .unwrap();
        let full = times
            .iter()
            .find(|(p, _, _)| *p == RebootPolicy::Full)
            .unwrap();
        assert!(micro.2 && full.2, "both cure shallow failures");
        assert!(
            full.1 > micro.1 * 50,
            "full {} vs micro {}",
            full.1,
            micro.1
        );
    }

    #[test]
    fn escalating_policy_has_best_availability() {
        let mut rng = SplitMix64::new(SEED);
        let (a_full, _) = availability_sim(RebootPolicy::Full, 20_000, 0.01, 0.2, &mut rng);
        let (a_micro, _) = availability_sim(RebootPolicy::MicroOnly, 20_000, 0.01, 0.2, &mut rng);
        let (a_esc, _) = availability_sim(RebootPolicy::Escalating, 20_000, 0.01, 0.2, &mut rng);
        assert!(a_esc > a_full, "esc {a_esc} vs full {a_full}");
        // Micro-only pays residual full reboots for deep corruption, so
        // escalation must be at least as good.
        assert!(a_esc >= a_micro - 0.001, "esc {a_esc} vs micro {a_micro}");
    }

    #[test]
    fn table_renders_three_rows() {
        assert_eq!(run(5_000, SEED).len(), 3);
    }

    #[test]
    fn table_is_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(5_000, SEED, jobs));
    }
}
