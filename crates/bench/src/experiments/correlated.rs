//! Experiment E5 — Brilliant/Knight–Leveson: N-version reliability vs
//! inter-version failure correlation.
//!
//! Expected shape: at ρ = 0 the 3-version system far outperforms one
//! version; as ρ → 1 the gain collapses to (and the system degenerates
//! into) single-version reliability — the empirical content of the §4.1
//! "efficacy of explicit redundancy is controversial" paragraph.

use redundancy_core::context::ExecContext;
use redundancy_faults::correlation::{correlated_versions, CorrelatedSuite};
use redundancy_sim::parallel_tasks;
use redundancy_sim::table::Table;
use redundancy_techniques::nvp::NVersion;

use crate::fmt_rate;

/// Reliability of a 3-version system at failure correlation `rho`.
#[must_use]
pub fn reliability_at_rho(rho: f64, density: f64, trials: usize, seed: u64) -> f64 {
    let versions = correlated_versions(
        CorrelatedSuite::new(3, density, rho, seed),
        |x: &u64| x * 2,
        // Same corruptor everywhere: correlated faults also agree on the
        // wrong answer — the worst case for voting.
        |c, _| c + 1001,
    );
    let nvp = NVersion::new(versions);
    let mut ctx = ExecContext::new(seed);
    let correct = (0..trials as u64)
        .filter(|x| nvp.run(x, &mut ctx).into_output() == Some(x * 2))
        .count();
    correct as f64 / trials as f64
}

/// Builds the E5 table: reliability and gain-over-single-version vs ρ.
#[must_use]
pub fn run(trials: usize, seed: u64) -> Table {
    run_jobs(trials, seed, 1)
}

/// Like [`run`] with the ρ sweep sharded across up to `jobs` worker
/// threads; every row seeds its own suite and context, so the table is
/// identical for any `jobs`.
#[must_use]
pub fn run_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    let density = 0.2;
    let single = 1.0 - density;
    let rhos = [0.0, 0.25, 0.5, 0.75, 1.0];
    let tasks: Vec<_> = rhos
        .iter()
        .map(|&rho| move || reliability_at_rho(rho, density, trials, seed))
        .collect();
    let results = parallel_tasks(jobs, tasks);
    let mut table = Table::new(&["rho", "NVP(3) reliability", "single version", "gain"]);
    for (rho, r) in rhos.iter().zip(results) {
        table.row_owned(vec![
            format!("{rho:.2}"),
            fmt_rate(r),
            fmt_rate(single),
            format!("{:+.3}", r - single),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 3000;
    const SEED: u64 = 0xe5;

    #[test]
    fn gain_decreases_monotonically_with_rho() {
        let rs: Vec<f64> = [0.0, 0.5, 1.0]
            .iter()
            .map(|&rho| reliability_at_rho(rho, 0.2, T, SEED))
            .collect();
        assert!(rs[0] > rs[1] + 0.02, "{rs:?}");
        assert!(rs[1] > rs[2] + 0.02, "{rs:?}");
    }

    #[test]
    fn full_correlation_degenerates_to_single_version() {
        let r = reliability_at_rho(1.0, 0.2, T, SEED);
        assert!((r - 0.8).abs() < 0.03, "r={r}");
    }

    #[test]
    fn independence_approaches_the_binomial_prediction() {
        // P(>= 2 of 3 wrong) at p=0.2: 3·0.04·0.8 + 0.008 = 0.104.
        let r = reliability_at_rho(0.0, 0.2, T, SEED);
        assert!((r - 0.896).abs() < 0.03, "r={r}");
    }

    #[test]
    fn table_renders_five_rhos() {
        assert_eq!(run(300, SEED).len(), 5);
    }

    #[test]
    fn table_is_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(300, SEED, jobs));
    }
}
