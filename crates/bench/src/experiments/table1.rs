//! Experiment T1 — regenerate the paper's **Table 1**: the taxonomy
//! dimensions, straight from the framework's type system.

use redundancy_core::taxonomy::{Adjudication, FaultClass, Intention, RedundancyType};
use redundancy_sim::table::Table;

/// Builds Table 1.
#[must_use]
pub fn run() -> Table {
    let mut table = Table::new(&["Dimension", "Values"]);
    table.row_owned(vec![
        "Intention".into(),
        Intention::ALL
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" | "),
    ]);
    table.row_owned(vec![
        "Type".into(),
        RedundancyType::ALL
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" | "),
    ]);
    table.row_owned(vec![
        "Triggers and adjudicators".into(),
        Adjudication::ALL
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" | "),
    ]);
    table.row_owned(vec![
        "Faults addressed".into(),
        format!(
            "interaction - {} | development: {} | {}",
            FaultClass::Malicious,
            FaultClass::Bohrbug,
            FaultClass::Heisenbug
        ),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_four_dimensions() {
        let t = run();
        assert_eq!(t.len(), 4);
        let text = t.to_string();
        for needle in [
            "Intention",
            "deliberate",
            "opportunistic",
            "code",
            "data",
            "environment",
            "preventive",
            "reactive implicit",
            "reactive explicit",
            "Bohrbugs",
            "Heisenbugs",
            "malicious",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
