//! Experiment E10b (ablation) — *which* RX perturbation cures *which*
//! fault type.
//!
//! Four knob-aware fault models (buffer overflow, uninitialized read,
//! message race, overload) are each treated by four single-knob RX
//! schedules and by the full menu. Expected shape: a diagonal — each
//! knob cures exactly its own fault family, the full menu cures all of
//! them, and mismatched knobs leave the fault at its baseline rate.

use redundancy_core::context::ExecContext;
use redundancy_core::variant::BoxedVariant;
use redundancy_faults::{
    Activation, DetectableFailures, EnvKnobs, FaultEffect, FaultSpec, FaultyVariant,
};
use redundancy_sandbox::env::EnvConfig;
use redundancy_sim::parallel_tasks;
use redundancy_sim::table::Table;
use redundancy_techniques::env_perturbation::Rx;

use crate::fmt_rate;

const DENSITY: f64 = 0.4;

fn golden(x: &u64) -> u64 {
    x * 2
}

/// The knob-aware fault families under treatment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobFault {
    /// Cured by allocation padding.
    BufferOverflow,
    /// Cured by zero-filling allocations.
    UninitializedRead,
    /// Re-rolled by shuffling message order.
    MessageRace,
    /// Scaled down by request throttling.
    Overload,
}

impl KnobFault {
    /// All families.
    pub const ALL: [KnobFault; 4] = [
        KnobFault::BufferOverflow,
        KnobFault::UninitializedRead,
        KnobFault::MessageRace,
        KnobFault::Overload,
    ];

    fn label(self) -> &'static str {
        match self {
            KnobFault::BufferOverflow => "buffer overflow",
            KnobFault::UninitializedRead => "uninitialized read",
            KnobFault::MessageRace => "message race",
            KnobFault::Overload => "overload",
        }
    }

    fn activation(self) -> Activation {
        match self {
            KnobFault::BufferOverflow => Activation::BufferOverflow {
                density: DENSITY,
                salt: 0xb0,
                overflow: 48,
            },
            KnobFault::UninitializedRead => Activation::UninitializedRead {
                density: DENSITY,
                salt: 0xb1,
            },
            KnobFault::MessageRace => Activation::MessageRace {
                density: DENSITY,
                salt: 0xb2,
            },
            KnobFault::Overload => Activation::Overload { p: DENSITY },
        }
    }
}

/// The single-knob RX schedules of the ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Grow allocation padding each round.
    PaddingOnly,
    /// Toggle zero-fill on.
    ZeroFillOnly,
    /// Reshuffle message order each round.
    ShuffleOnly,
    /// Throttle admitted load each round.
    ThrottleOnly,
    /// The full RX menu.
    FullMenu,
}

impl Schedule {
    /// All schedules.
    pub const ALL: [Schedule; 5] = [
        Schedule::PaddingOnly,
        Schedule::ZeroFillOnly,
        Schedule::ShuffleOnly,
        Schedule::ThrottleOnly,
        Schedule::FullMenu,
    ];

    fn label(self) -> &'static str {
        match self {
            Schedule::PaddingOnly => "padding only",
            Schedule::ZeroFillOnly => "zero-fill only",
            Schedule::ShuffleOnly => "shuffle only",
            Schedule::ThrottleOnly => "throttle only",
            Schedule::FullMenu => "full RX menu",
        }
    }

    fn apply(self, round: u32, env: EnvConfig) -> EnvConfig {
        match self {
            Schedule::PaddingOnly => env.with_padding(env.alloc_padding + 64),
            Schedule::ZeroFillOnly => env.with_zero_fill(true),
            Schedule::ShuffleOnly => {
                env.with_message_shuffle(env.msg_order_seed.wrapping_add(0x9e37_79b9))
            }
            Schedule::ThrottleOnly => {
                env.with_throttle(env.throttle_permille.saturating_sub(300).max(100))
            }
            Schedule::FullMenu => env.rx_perturbations(round),
        }
    }
}

fn build(
    fault: KnobFault,
) -> (
    BoxedVariant<u64, u64>,
    redundancy_faults::EnvSignature,
    EnvKnobs,
) {
    let v = FaultyVariant::builder("app", 10, golden)
        .fault(FaultSpec::new(
            "bug",
            fault.activation(),
            FaultEffect::Crash,
        ))
        .build();
    let env = v.env_signature();
    let knobs = v.env_knobs();
    (Box::new(v), env, knobs)
}

/// Delivery rate for a fault family under a schedule (6 rounds).
#[must_use]
pub fn delivery_rate(fault: KnobFault, schedule: Schedule, trials: usize, seed: u64) -> f64 {
    let (variant, env, knobs) = build(fault);
    let rx = Rx::new(variant, env, DetectableFailures::new(), 6)
        .with_knobs(knobs)
        .with_schedule(move |round, env| schedule.apply(round, env));
    let mut ctx = ExecContext::new(seed);
    let ok = (0..trials as u64)
        .filter(|x| rx.execute(x, &mut ctx).output() == Some(&golden(x)))
        .count();
    ok as f64 / trials as f64
}

/// Builds the E10b matrix: fault family × schedule.
#[must_use]
pub fn run(trials: usize, seed: u64) -> Table {
    run_jobs(trials, seed, 1)
}

/// Like [`run`] with the 4×5 fault/schedule cells sharded across up to
/// `jobs` worker threads; every cell seeds its own context, so the table
/// is identical for any `jobs`.
#[must_use]
pub fn run_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    let mut headers = vec!["fault \\ RX schedule".to_owned()];
    headers.extend(Schedule::ALL.iter().map(|s| s.label().to_owned()));
    let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&refs);
    let cells: Vec<(KnobFault, Schedule)> = KnobFault::ALL
        .iter()
        .flat_map(|&fault| Schedule::ALL.iter().map(move |&schedule| (fault, schedule)))
        .collect();
    let tasks: Vec<_> = cells
        .iter()
        .map(|&(fault, schedule)| move || delivery_rate(fault, schedule, trials, seed))
        .collect();
    let rates = parallel_tasks(jobs, tasks);
    for (fault, row_rates) in KnobFault::ALL.iter().zip(rates.chunks(Schedule::ALL.len())) {
        let mut row = vec![fault.label().to_owned()];
        row.extend(row_rates.iter().map(|&r| fmt_rate(r)));
        table.row_owned(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 600;
    const SEED: u64 = 0xe10b;

    #[test]
    fn padding_cures_overflows_only() {
        assert!(delivery_rate(KnobFault::BufferOverflow, Schedule::PaddingOnly, T, SEED) > 0.99);
        // Padding does nothing for uninitialized reads.
        let other = delivery_rate(KnobFault::UninitializedRead, Schedule::PaddingOnly, T, SEED);
        assert!((other - (1.0 - DENSITY)).abs() < 0.05, "other {other}");
    }

    #[test]
    fn zero_fill_cures_uninitialized_reads_only() {
        assert!(
            delivery_rate(
                KnobFault::UninitializedRead,
                Schedule::ZeroFillOnly,
                T,
                SEED
            ) > 0.99
        );
        let other = delivery_rate(KnobFault::BufferOverflow, Schedule::ZeroFillOnly, T, SEED);
        assert!((other - (1.0 - DENSITY)).abs() < 0.05, "other {other}");
    }

    #[test]
    fn shuffling_rerolls_races() {
        let cured = delivery_rate(KnobFault::MessageRace, Schedule::ShuffleOnly, T, SEED);
        // Six reshuffles: residual ≈ 0.4^7 ≈ 0.16%.
        assert!(cured > 0.97, "cured {cured}");
        let blind = delivery_rate(KnobFault::BufferOverflow, Schedule::ShuffleOnly, T, SEED);
        assert!((blind - (1.0 - DENSITY)).abs() < 0.05, "blind {blind}");
    }

    #[test]
    fn throttling_tames_overload() {
        let treated = delivery_rate(KnobFault::Overload, Schedule::ThrottleOnly, T, SEED);
        let untreated = delivery_rate(KnobFault::Overload, Schedule::PaddingOnly, T, SEED);
        // Overload is probabilistic, so even wrong-knob retries eventually
        // pass; throttling must still do strictly better.
        assert!(
            treated > untreated - 0.02,
            "treated {treated} vs {untreated}"
        );
        assert!(treated > 0.99, "treated {treated}");
    }

    #[test]
    fn full_menu_cures_everything() {
        // The full menu rotates through all five knobs, so each specific
        // knob is tried only once or twice in six rounds: it cures every
        // family, just less efficiently than the matching single knob
        // (e.g. message races get one reshuffle, residual ≈ 0.4² = 0.16).
        for fault in KnobFault::ALL {
            let rate = delivery_rate(fault, Schedule::FullMenu, T, SEED);
            assert!(rate > 0.8, "{fault:?} under full menu: {rate}");
        }
        assert!(delivery_rate(KnobFault::BufferOverflow, Schedule::FullMenu, T, SEED) > 0.99);
    }

    #[test]
    fn table_renders_four_by_five() {
        let t = run(60, SEED);
        assert_eq!(t.len(), 4);
        assert!(t.to_string().contains("full RX menu"));
    }

    #[test]
    fn table_is_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(60, SEED, jobs));
    }
}
