//! Experiment E16 — robust data structures (Taylor 1980): detection and
//! repair rates by corruption type and burst size.
//!
//! Expected shape: every single corruption of one redundancy element
//! (count, a next pointer, a prev pointer) is detected and repaired from
//! the surviving redundancy; double hits that damage *both* chains start
//! to exceed the redundancy and some become unrepairable.

use redundancy_core::rng::SplitMix64;
use redundancy_sim::parallel_tasks;
use redundancy_sim::table::Table;
use redundancy_techniques::robust_data::{RepairOutcome, RobustList};

use crate::fmt_rate;

/// Detection/repair statistics for one corruption pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairStats {
    /// Corruptions flagged by the audit.
    pub detected: f64,
    /// Corruptions fully repaired.
    pub repaired: f64,
}

/// The corruption patterns swept by the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Damage {
    /// Overwrite the redundant count.
    Count,
    /// Null one next pointer.
    NextNull,
    /// Redirect one next pointer (possible cycle).
    NextRedirect,
    /// Null one prev pointer.
    PrevNull,
    /// One hit on each chain.
    BothChains,
}

impl Damage {
    /// All patterns.
    pub const ALL: [Damage; 5] = [
        Damage::Count,
        Damage::NextNull,
        Damage::NextRedirect,
        Damage::PrevNull,
        Damage::BothChains,
    ];

    fn label(self) -> &'static str {
        match self {
            Damage::Count => "count overwrite",
            Damage::NextNull => "next pointer nulled",
            Damage::NextRedirect => "next pointer redirected",
            Damage::PrevNull => "prev pointer nulled",
            Damage::BothChains => "both chains hit",
        }
    }

    fn apply(self, list: &mut RobustList<u64>, n: usize, rng: &mut SplitMix64) {
        match self {
            Damage::Count => list.corrupt_count(rng.index(100)),
            Damage::NextNull => list.corrupt_next(rng.index(n), None),
            Damage::NextRedirect => {
                let pos = rng.index(n);
                let target = rng.index(n);
                list.corrupt_next(pos, Some(target));
            }
            Damage::PrevNull => list.corrupt_prev(rng.index(n), None),
            Damage::BothChains => {
                // prev first: corrupt_prev locates via the forward chain.
                list.corrupt_prev(rng.index(n), None);
                list.corrupt_next(rng.index(n), None);
            }
        }
    }
}

/// Measures one damage pattern over `trials` random lists.
#[must_use]
pub fn measure(damage: Damage, trials: usize, seed: u64) -> RepairStats {
    let mut rng = SplitMix64::new(seed);
    let mut detected = 0usize;
    let mut repaired = 0usize;
    let mut manifested = 0usize;
    for _ in 0..trials {
        let n = 4 + rng.index(10);
        let mut list: RobustList<u64> = (0..n as u64).collect();
        damage.apply(&mut list, n, &mut rng);
        if list.audit().is_clean() {
            // Damage happened to be a no-op (e.g. count overwritten with
            // the correct value); skip.
            continue;
        }
        manifested += 1;
        detected += 1; // audit flagged it
        if list.repair() == RepairOutcome::Repaired {
            repaired += 1;
        }
    }
    let m = manifested.max(1) as f64;
    RepairStats {
        detected: detected as f64 / m,
        repaired: repaired as f64 / m,
    }
}

/// Builds the E16 table.
#[must_use]
pub fn run(trials: usize, seed: u64) -> Table {
    run_jobs(trials, seed, 1)
}

/// Like [`run`] with the corruption patterns sharded across up to `jobs`
/// worker threads; every pattern seeds its own RNG, so the table is
/// identical for any `jobs`.
#[must_use]
pub fn run_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    let mut table = Table::new(&["corruption", "detected", "repaired"]);
    let tasks: Vec<_> = Damage::ALL
        .iter()
        .map(|&damage| move || measure(damage, trials, seed))
        .collect();
    let results = parallel_tasks(jobs, tasks);
    for (damage, stats) in Damage::ALL.iter().zip(results) {
        table.row_owned(vec![
            damage.label().to_owned(),
            fmt_rate(stats.detected),
            fmt_rate(stats.repaired),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 500;
    const SEED: u64 = 0xe16;

    #[test]
    fn single_corruptions_fully_detected_and_repaired() {
        for damage in [
            Damage::Count,
            Damage::NextNull,
            Damage::NextRedirect,
            Damage::PrevNull,
        ] {
            let stats = measure(damage, T, SEED);
            assert!(
                (stats.detected - 1.0).abs() < f64::EPSILON,
                "{damage:?} detected {}",
                stats.detected
            );
            assert!(
                (stats.repaired - 1.0).abs() < f64::EPSILON,
                "{damage:?} repaired {}",
                stats.repaired
            );
        }
    }

    #[test]
    fn double_chain_hits_exceed_the_redundancy_sometimes() {
        let stats = measure(Damage::BothChains, T, SEED);
        assert!((stats.detected - 1.0).abs() < f64::EPSILON);
        assert!(stats.repaired < 1.0, "double hits cannot all be repaired");
        assert!(
            stats.repaired > 0.1,
            "some double hits are still repairable"
        );
    }

    #[test]
    fn table_renders_five_rows() {
        assert_eq!(run(50, SEED).len(), 5);
    }

    #[test]
    fn table_is_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(50, SEED, jobs));
    }
}
