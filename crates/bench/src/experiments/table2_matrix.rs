//! Experiment T2 — regenerate the paper's **Table 2** and validate its
//! "Faults" column *empirically*.
//!
//! For every technique and every fault class, a standardized scenario
//! measures the rate of **correctly delivered results under fault load**
//! (judged by a golden oracle the techniques themselves never see). The
//! unprotected baseline delivers ≈ 0.70 under our standard faults
//! (density/probability 0.3) and 0.0 under attack, so a cell well above
//! its baseline means the technique *handles* that fault class — which
//! should, and does, agree with the paper's classification. `—` marks
//! class/technique pairs the mechanism does not structurally address.

use std::sync::Arc;

use redundancy_core::adjudicator::acceptance::FnAcceptance;
use redundancy_core::context::ExecContext;
use redundancy_core::obs::{MetricsObserver, MetricsRegistry, ObsHandle, Observer};
use redundancy_core::rng::SplitMix64;
use redundancy_core::variant::Variant as _;
use redundancy_core::variant::{pure_variant, BoxedVariant};
use redundancy_faults::correlation::{correlated_versions, CorrelatedSuite};
use redundancy_faults::{Activation, DetectableFailures, FaultEffect, FaultSpec, FaultyVariant};
use redundancy_sim::parallel_tasks_lpt;
use redundancy_sim::table::Table;
use redundancy_techniques as tech;

use crate::fmt_opt_rate;

/// Standard fault strength used across the matrix.
const DENSITY: f64 = 0.3;

/// Golden function every scenario computes.
fn golden(x: &u64) -> u64 {
    x * 2
}

/// A scenario context, with the experiment's observer attached when one
/// is supplied (so technique spans feed the metrics registry).
fn mk_ctx(seed: u64, obs: Option<&ObsHandle>) -> ExecContext {
    match obs {
        Some(handle) => ExecContext::new(seed).with_obs_handle(handle.clone()),
        None => ExecContext::new(seed),
    }
}

/// Rates of correct delivery per fault class:
/// `[Bohrbug, Heisenbug, Malicious]`.
type Row = [Option<f64>; 3];

fn rate(correct: usize, total: usize) -> Option<f64> {
    Some(correct as f64 / total as f64)
}

/// A faulty single version: silent wrong output on an input region.
fn bohr_version(seed: u64) -> BoxedVariant<u64, u64> {
    FaultyVariant::builder("single", 10, golden)
        .corruptor(|c, _| c + 1001)
        .fault(FaultSpec::bohrbug("bohr", DENSITY, seed))
        .build_boxed()
}

/// A faulty single version: transient crash.
fn heisen_version() -> BoxedVariant<u64, u64> {
    FaultyVariant::builder("single", 10, golden)
        .fault(FaultSpec::heisenbug("heis", DENSITY))
        .build_boxed()
}

/// The unprotected baseline.
fn baseline(trials: usize, seed: u64, obs: Option<&ObsHandle>) -> Row {
    let mut ctx = mk_ctx(seed, obs);
    let bohr = bohr_version(1);
    let bohr_ok = (0..trials as u64)
        .filter(|x| bohr.execute(x, &mut ctx) == Ok(golden(x)))
        .count();
    let heis = heisen_version();
    let heis_ok = (0..trials as u64)
        .filter(|x| heis.execute(x, &mut ctx) == Ok(golden(x)))
        .count();
    // Malicious: every attacked request corrupts the unprotected system.
    [rate(bohr_ok, trials), rate(heis_ok, trials), Some(0.0)]
}

fn nvp(trials: usize, seed: u64, obs: Option<&ObsHandle>) -> Row {
    let mut ctx = mk_ctx(seed, obs);
    // Bohr: three independently developed versions.
    let versions = correlated_versions(
        CorrelatedSuite::new(3, DENSITY, 0.0, seed),
        golden,
        |c, _| c + 1001,
    );
    let nvp = tech::nvp::NVersion::new(versions);
    let bohr_ok = (0..trials as u64)
        .filter(|x| nvp.run(x, &mut ctx).into_output() == Some(golden(x)))
        .count();
    // Heisen: three replicas each transiently crashing.
    let versions: Vec<BoxedVariant<u64, u64>> = (0..3).map(|_| heisen_version()).collect();
    let nvp = tech::nvp::NVersion::new(versions);
    let heis_ok = (0..trials as u64)
        .filter(|x| nvp.run(x, &mut ctx).into_output() == Some(golden(x)))
        .count();
    // Malicious: the attack exploits the common specification — every
    // version produces the same wrong output, the vote ratifies it.
    let mk_attacked = || -> BoxedVariant<u64, u64> {
        FaultyVariant::builder("attacked", 10, golden)
            .attack_detector(|x: &u64| x.is_multiple_of(2))
            .corruptor(|c, _| c + 7777) // same payload effect everywhere
            .fault(FaultSpec::malicious("exploit", 1.0, 42))
            .build_boxed()
    };
    let nvp = tech::nvp::NVersion::new((0..3).map(|_| mk_attacked()).collect());
    let attacked: Vec<u64> = (0..trials as u64 * 2)
        .filter(|x| x % 2 == 0)
        .take(trials)
        .collect();
    let mal_ok = attacked
        .iter()
        .filter(|x| nvp.run(x, &mut ctx).into_output() == Some(golden(x)))
        .count();
    [
        rate(bohr_ok, trials),
        rate(heis_ok, trials),
        rate(mal_ok, trials),
    ]
}

fn recovery_blocks(trials: usize, seed: u64, obs: Option<&ObsHandle>) -> Row {
    let acceptance = || {
        FnAcceptance::new("plausible", |x: &u64, out: &u64| {
            // The corruptor shifts by +1001; a plausibility bound catches it.
            *out <= x * 2 + 100
        })
    };
    let mut ctx = mk_ctx(seed, obs);
    let mut rb = tech::recovery_blocks::RecoveryBlocks::new(acceptance());
    for v in correlated_versions(
        CorrelatedSuite::new(3, DENSITY, 0.0, seed),
        golden,
        |c, _| c + 1001,
    ) {
        rb = rb.with_alternate(v);
    }
    let bohr_ok = (0..trials as u64)
        .filter(|x| rb.run(x, &mut ctx).into_output() == Some(golden(x)))
        .count();
    let mut rb = tech::recovery_blocks::RecoveryBlocks::new(acceptance());
    for _ in 0..3 {
        rb = rb.with_alternate(heisen_version());
    }
    let heis_ok = (0..trials as u64)
        .filter(|x| rb.run(x, &mut ctx).into_output() == Some(golden(x)))
        .count();
    [rate(bohr_ok, trials), rate(heis_ok, trials), None]
}

fn self_checking(trials: usize, seed: u64, obs: Option<&ObsHandle>) -> Row {
    let acceptance = || FnAcceptance::new("plausible", |x: &u64, out: &u64| *out <= x * 2 + 100);
    let mut ctx = mk_ctx(seed, obs);
    let versions = correlated_versions(
        CorrelatedSuite::new(3, DENSITY, 0.0, seed),
        golden,
        |c, _| c + 1001,
    );
    let mut sc = tech::self_checking::SelfChecking::new();
    for v in versions {
        sc = sc.with_tested_component(v, acceptance());
    }
    let bohr_ok = (0..trials as u64)
        .filter(|x| sc.run(x, &mut ctx).into_output() == Some(golden(x)))
        .count();
    let mut sc = tech::self_checking::SelfChecking::new();
    for _ in 0..3 {
        sc = sc.with_tested_component(heisen_version(), acceptance());
    }
    let heis_ok = (0..trials as u64)
        .filter(|x| sc.run(x, &mut ctx).into_output() == Some(golden(x)))
        .count();
    [rate(bohr_ok, trials), rate(heis_ok, trials), None]
}

fn self_optimizing(trials: usize, seed: u64, obs: Option<&ObsHandle>) -> Row {
    // The monitor sees detectable failures (as worst-case latency) and
    // walks away from a failing implementation.
    let mut ctx = mk_ctx(seed, obs);
    let so = tech::self_optimizing::SelfOptimizing::new(50.0)
        .with_implementation(heisen_version())
        .with_implementation(pure_variant("healthy", 20, golden));
    let heis_ok = (0..trials as u64)
        .filter(|x| so.call(x, &mut ctx).result == Ok(golden(x)))
        .count();
    // Silent wrong outputs are invisible to a QoS monitor: no Bohr help.
    [None, rate(heis_ok, trials), None]
}

fn rule_engine(trials: usize, seed: u64, obs: Option<&ObsHandle>) -> Row {
    let mut ctx = mk_ctx(seed, obs);
    // Bohr with *detectable* effect (crash on an input region) — the case
    // exception handling exists for.
    let crashing_bohr: BoxedVariant<u64, u64> = FaultyVariant::builder("primary", 10, golden)
        .fault(FaultSpec::new(
            "crash-region",
            Activation::InputRegion {
                density: DENSITY,
                salt: seed,
            },
            FaultEffect::Crash,
        ))
        .build_boxed();
    let engine =
        tech::rule_engine::RuleEngine::new(crashing_bohr).with_rule(tech::rule_engine::Rule::new(
            "fallback",
            tech::rule_engine::FailureKind::Any,
            pure_variant("handler", 15, golden),
        ));
    let bohr_ok = (0..trials as u64)
        .filter(|x| engine.execute(x, &mut ctx).output() == Some(&golden(x)))
        .count();
    let engine = tech::rule_engine::RuleEngine::new(heisen_version()).with_rule(
        tech::rule_engine::Rule::new(
            "fallback",
            tech::rule_engine::FailureKind::Any,
            pure_variant("handler", 15, golden),
        ),
    );
    let heis_ok = (0..trials as u64)
        .filter(|x| engine.execute(x, &mut ctx).output() == Some(&golden(x)))
        .count();
    [rate(bohr_ok, trials), rate(heis_ok, trials), None]
}

fn wrappers(trials: usize, seed: u64, obs: Option<&ObsHandle>) -> Row {
    let mut ctx = mk_ctx(seed, obs);
    // Bohr: component misbehaves on a known-invalid input precondition
    // (odd inputs, say); the wrapper sanitizes them first.
    let fragile = || -> BoxedVariant<u64, u64> {
        FaultyVariant::builder("fragile", 10, golden)
            .attack_detector(|x: &u64| x % 2 == 1)
            .corruptor(|c, _| c + 1001)
            .fault(FaultSpec::malicious("odd-input-bug", 1.0, 3))
            .build_boxed()
    };
    let wrapper = tech::wrappers::SanitizingWrapper::new(fragile(), |x: &u64| x.is_multiple_of(2))
        .with_sanitizer(|x: &u64| Some(x & !1));
    let bohr_ok = (0..trials as u64)
        .filter(|x| {
            let clean = x & !1;
            wrapper.execute(x, &mut ctx) == Ok(golden(&clean))
        })
        .count();
    // Malicious: heap-smashing writes stopped by the boundary wrapper.
    let mut rng = SplitMix64::new(seed);
    let mut prevented = 0;
    for _ in 0..trials {
        let mut hw = tech::wrappers::HeapWrapper::new(redundancy_sandbox::memory::SimMemory::new(
            0x1000, 0x10000,
        ));
        let a = hw.alloc(64).expect("fits");
        let _b = hw.alloc(64).expect("fits");
        let overflow_len = 65 + rng.range_u64(0, 64);
        let _ = hw.write(a, 0, overflow_len);
        if hw.memory().audit().is_empty() {
            prevented += 1;
        }
    }
    [rate(bohr_ok, trials), None, rate(prevented, trials)]
}

fn robust_data(trials: usize, seed: u64) -> Row {
    // Development faults corrupting structure: single pointer/count hit
    // (Bohr-like deterministic damage) and random transient double hits
    // (Heisen-like): measure full repair.
    let mut rng = SplitMix64::new(seed);
    let mut single_ok = 0;
    let mut burst_ok = 0;
    for _ in 0..trials {
        let n = 4 + rng.index(8);
        let mut list: tech::robust_data::RobustList<u64> = (0..n as u64).collect();
        match rng.index(3) {
            0 => list.corrupt_next(rng.index(n), None),
            1 => list.corrupt_prev(rng.index(n), None),
            _ => list.corrupt_count(rng.index(100)),
        }
        if list.repair() != tech::robust_data::RepairOutcome::Unrepairable {
            single_ok += 1;
        }
        let mut list: tech::robust_data::RobustList<u64> = (0..n as u64).collect();
        // Two independent hits, possibly on both chains.
        list.corrupt_prev(rng.index(n), None);
        list.corrupt_next(rng.index(n), None);
        if list.repair() != tech::robust_data::RepairOutcome::Unrepairable {
            burst_ok += 1;
        }
    }
    [rate(single_ok, trials), rate(burst_ok, trials), None]
}

fn data_diversity(trials: usize, seed: u64, obs: Option<&ObsHandle>) -> Row {
    use tech::data_diversity::{ReExpression, RetryBlock};
    let shift = |k: u64| {
        ReExpression::new(
            format!("shift{k}"),
            move |x: &u64| x.wrapping_add(k),
            move |y: u64| y.wrapping_sub(2 * k),
        )
    };
    let mk_retry = |variant: FaultyVariant<u64, u64>| {
        RetryBlock::new(variant, |x: &u64, out: &u64| *out <= x * 2 + 100)
            .with_reexpression(shift(13))
            .with_reexpression(shift(29))
            .with_reexpression(shift(57))
    };
    let mut ctx = mk_ctx(seed, obs);
    let bohr = FaultyVariant::builder("linear", 10, golden)
        .corruptor(|c, _| c + 1001)
        .fault(FaultSpec::bohrbug("region", DENSITY, seed))
        .build();
    let rb = mk_retry(bohr);
    let bohr_ok = (0..trials as u64)
        .filter(|x| rb.run(x, &mut ctx).into_output() == Some(golden(x)))
        .count();
    let heis = FaultyVariant::builder("linear", 10, golden)
        .fault(FaultSpec::heisenbug("transient", DENSITY))
        .build();
    let rb = mk_retry(heis);
    let heis_ok = (0..trials as u64)
        .filter(|x| rb.run(x, &mut ctx).into_output() == Some(golden(x)))
        .count();
    [rate(bohr_ok, trials), rate(heis_ok, trials), None]
}

fn nvariant_data(trials: usize, seed: u64) -> Row {
    let mut rng = SplitMix64::new(seed);
    let mut detected_or_unharmed = 0;
    for t in 0..trials {
        let mut cell = tech::nvariant_data::NVariantCell::new(3, seed ^ t as u64);
        cell.write(rng.next_u64());
        cell.attack_overwrite(rng.next_u64());
        if cell.read().is_err() {
            detected_or_unharmed += 1;
        }
    }
    [None, None, rate(detected_or_unharmed, trials)]
}

fn rejuvenation(trials: usize, seed: u64, obs: Option<&ObsHandle>) -> Row {
    let variant = FaultyVariant::builder("server", 5, golden)
        .fault(FaultSpec::aging("leak", 0.0, 0.001))
        .build();
    let age = variant.age_handle();
    let r = tech::rejuvenation::Rejuvenator::new(Box::new(variant), age, 50, 10);
    let mut ctx = mk_ctx(seed, obs);
    let heis_ok = (0..trials as u64)
        .filter(|x| r.call(x, &mut ctx).result == Ok(golden(x)))
        .count();
    [None, rate(heis_ok, trials), None]
}

fn env_perturbation(trials: usize, seed: u64, obs: Option<&ObsHandle>) -> Row {
    let mk = |activation: Activation| {
        let v = FaultyVariant::builder("envy", 10, golden)
            .fault(FaultSpec::new("bug", activation, FaultEffect::Crash))
            .build();
        let env = v.env_signature();
        tech::env_perturbation::Rx::new(Box::new(v), env, DetectableFailures::new(), 6)
    };
    let mut ctx = mk_ctx(seed, obs);
    // Bohr cell: environment-blind input-region crash — RX cannot help.
    let rx = mk(Activation::InputRegion {
        density: DENSITY,
        salt: seed,
    });
    let bohr_ok = (0..trials as u64)
        .filter(|x| rx.execute(x, &mut ctx).output() == Some(&golden(x)))
        .count();
    // Heisen cell: environment-sensitive failure — RX's home turf.
    let rx = mk(Activation::EnvSensitive {
        density: DENSITY,
        salt: seed,
    });
    let heis_ok = (0..trials as u64)
        .filter(|x| rx.execute(x, &mut ctx).output() == Some(&golden(x)))
        .count();
    [rate(bohr_ok, trials), rate(heis_ok, trials), None]
}

fn process_replicas(trials: usize, seed: u64) -> Row {
    let mut rng = SplitMix64::new(seed);
    let mut stopped = 0;
    for _ in 0..trials {
        let mut replicas = tech::process_replicas::ProcessReplicas::new(2);
        let target = replicas.leaked_address() + rng.range_u64(0, 64);
        let verdict = replicas.execute(&tech::process_replicas::Request::MemoryAttack {
            addr: target,
            len: 4,
        });
        // Stopped = detected divergence, or uniform fail-stop.
        let uniform_failstop = matches!(
            &verdict,
            tech::process_replicas::ReplicaVerdict::Agreed { result: None }
        );
        if verdict.is_attack() || uniform_failstop {
            stopped += 1;
        }
    }
    [None, None, rate(stopped, trials)]
}

fn service_substitution(trials: usize, seed: u64, obs: Option<&ObsHandle>) -> Row {
    use redundancy_services::provider::{ServiceError, SimProvider};
    use redundancy_services::registry::{InterfaceId, ServiceRegistry};
    use redundancy_services::value::Value;
    use std::sync::Arc;

    // Bohr: providers deterministically reject a region of requests —
    // different regions per provider.
    let mut registry = ServiceRegistry::new();
    for i in 0..3u64 {
        let salt = seed ^ (i * 7919);
        registry.register(Arc::new(
            SimProvider::builder(format!("impl{i}"), InterfaceId::new("svc"))
                .operation("double", move |args, _| {
                    let x = args[0].as_int().unwrap_or(0) as u64;
                    let frac = redundancy_faults::spec::hash_fraction(
                        redundancy_faults::spec::mix64(x, salt),
                    );
                    if frac < DENSITY {
                        Err(ServiceError::Fault("regional defect".into()))
                    } else {
                        Ok(Value::Int((x * 2) as i64))
                    }
                })
                .build(),
        ));
    }
    let sub = tech::service_substitution::DynamicSubstitution::new(&registry);
    let mut ctx = mk_ctx(seed, obs);
    let bohr_ok = (0..trials as u64)
        .filter(|x| {
            sub.invoke(
                &InterfaceId::new("svc"),
                "double",
                &[Value::Int(*x as i64)],
                &mut ctx,
            )
            .map(|r| r.value == Value::Int((x * 2) as i64))
            .unwrap_or(false)
        })
        .count();
    // Heisen: transient unavailability.
    let registry = tech::service_substitution::replicated_registry("svc", 3, DENSITY);
    let sub = tech::service_substitution::DynamicSubstitution::new(&registry);
    let heis_ok = (0..trials as u64)
        .filter(|x| {
            sub.invoke(
                &InterfaceId::new("svc"),
                "echo",
                &[Value::Int(*x as i64)],
                &mut ctx,
            )
            .is_ok()
        })
        .count();
    [rate(bohr_ok, trials), rate(heis_ok, trials), None]
}

fn fault_fixing(trials: usize, seed: u64) -> Row {
    // Fix rate over the seeded-bug corpus; `trials` scales repetitions.
    let fixer = tech::fault_fixing::FaultFixer::default();
    let mut rng = SplitMix64::new(seed);
    let repetitions = (trials / 500).clamp(1, 5);
    let mut fixed = 0;
    let mut total = 0;
    for _ in 0..repetitions {
        for program in redundancy_gp::corpus::corpus() {
            let suite = program.suite(50, &mut rng);
            let report = fixer.fix(&program.faulty, program.arity, &suite, &mut rng);
            total += 1;
            if report.fixed {
                fixed += 1;
            }
        }
    }
    [rate(fixed, total), None, None]
}

fn workarounds(trials: usize, seed: u64) -> Row {
    use tech::workarounds::container::{rules, Container, Op};
    use tech::workarounds::{OpSystem as _, WorkaroundEngine};
    let engine = WorkaroundEngine::new(rules());
    let mut rng = SplitMix64::new(seed);
    // Bohr: state-dependent deterministic faults on random scenarios.
    let scenarios: Vec<(Op, usize, Vec<Op>)> = (0..trials)
        .map(|_| {
            let which = rng.index(2);
            if which == 0 {
                (Op::Add, 1, vec![Op::Add, Op::Add])
            } else {
                (Op::Reverse, 2, vec![Op::AddPair, Op::Reverse, Op::Reverse])
            }
        })
        .collect();
    let mut worked = 0;
    let mut applicable = 0;
    for (fault_op, fault_len, seq) in scenarios {
        let mut system = Container::new().with_fault(fault_op, fault_len);
        if system.execute(&seq).is_ok() {
            continue; // fault did not manifest; not a failure scenario
        }
        applicable += 1;
        if engine.find_workaround(&mut system, &seq).is_ok() {
            worked += 1;
        }
    }
    [rate(worked, applicable.max(1)), None, None]
}

fn checkpoint_recovery(trials: usize, seed: u64, obs: Option<&ObsHandle>) -> Row {
    use redundancy_faults::OracleDetector;
    let mut ctx = mk_ctx(seed, obs);
    let bohr = FaultyVariant::builder("hard", 10, golden)
        .corruptor(|c, _| c + 1001)
        .fault(FaultSpec::bohrbug("region", DENSITY, seed))
        .build_boxed();
    let cr =
        tech::checkpoint_recovery::CheckpointRecovery::new(bohr, OracleDetector::new(golden), 8);
    let bohr_ok = (0..trials as u64)
        .filter(|x| cr.execute(x, &mut ctx).output() == Some(&golden(x)))
        .count();
    let cr = tech::checkpoint_recovery::CheckpointRecovery::new(
        heisen_version(),
        DetectableFailures::new(),
        8,
    );
    let heis_ok = (0..trials as u64)
        .filter(|x| cr.execute(x, &mut ctx).output() == Some(&golden(x)))
        .count();
    [rate(bohr_ok, trials), rate(heis_ok, trials), None]
}

fn microreboot(trials: usize, seed: u64) -> Row {
    use tech::microreboot::{ComponentTree, RebootPolicy};
    let mut rng = SplitMix64::new(seed);
    let mut cured = 0;
    for _ in 0..trials {
        let mut tree = ComponentTree::jagr_demo();
        let leaf = format!("{}-c{}", ["web", "app", "db"][rng.index(3)], rng.index(4));
        let deep = usize::from(rng.chance(0.2));
        tree.corrupt(&leaf, deep);
        if tree.recover(&leaf, RebootPolicy::Escalating).cured {
            cured += 1;
        }
    }
    [None, rate(cured, trials), None]
}

/// Builds the empirical Table 2 matrix.
#[must_use]
pub fn run(trials: usize, seed: u64) -> Table {
    run_jobs(trials, seed, 1)
}

/// Like [`run`] with the technique rows computed across up to `jobs`
/// worker threads. Every row seeds its own contexts, so the rendered
/// table is identical for any `jobs`.
#[must_use]
pub fn run_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    run_traced_jobs(trials, seed, None, jobs).0
}

/// Like [`run`], but every scenario context carries a [`MetricsObserver`]
/// (fanned out to `extra`, when given — e.g. a ring buffer for `--trace`),
/// and the second table reports per-technique recovery latency: mean
/// `SimClock` ticks of technique runs that *recovered* (accepted with
/// dissent), straight from the `recovery_latency_ticks` histograms.
#[must_use]
pub fn run_traced(trials: usize, seed: u64, extra: Option<Arc<dyn Observer>>) -> (Table, Table) {
    run_traced_jobs(trials, seed, extra, 1)
}

/// Like [`run_traced`] with rows computed across up to `jobs` worker
/// threads. Both tables are identical for any `jobs` — the metrics
/// registry aggregates per-span histograms, which are insensitive to the
/// order concurrent rows feed them — but the raw event *stream* an
/// `extra` sink sees interleaves rows in scheduling order when
/// `jobs > 1`; pass `jobs = 1` when capturing a stream for replay.
#[must_use]
pub fn run_traced_jobs(
    trials: usize,
    seed: u64,
    extra: Option<Arc<dyn Observer>>,
    jobs: usize,
) -> (Table, Table) {
    let registry = MetricsRegistry::shared();
    let metrics: Arc<dyn Observer> = Arc::new(MetricsObserver::new(Arc::clone(&registry)));
    let observer = match extra {
        Some(sink) => Arc::new(redundancy_core::obs::FanoutObserver::new(vec![
            metrics, sink,
        ])) as Arc<dyn Observer>,
        None => metrics,
    };
    let handle = ObsHandle::new(observer);
    let obs = Some(&handle);
    let matrix = build_matrix(trials, seed, obs, jobs);
    (matrix, recovery_latency_table(&registry))
}

/// Renders the per-technique recovery-latency table from a registry fed
/// by a [`MetricsObserver`].
#[must_use]
pub fn recovery_latency_table(registry: &MetricsRegistry) -> Table {
    let mut table = Table::new(&[
        "Technique (span)",
        "Recoveries",
        "Mean latency (ticks)",
        "p95 (ticks)",
    ]);
    for (key, hist) in registry.histograms() {
        if key.name != "recovery_latency_ticks" {
            continue;
        }
        table.row_owned(vec![
            key.label.clone(),
            hist.count().to_string(),
            format!("{:.1}", hist.mean().unwrap_or(0.0)),
            hist.quantile(0.95).unwrap_or(0).to_string(),
        ]);
    }
    table
}

fn build_matrix(trials: usize, seed: u64, obs: Option<&ObsHandle>, jobs: usize) -> Table {
    let mut table = Table::new(&[
        "Technique",
        "Classification (paper)",
        "Bohrbugs",
        "Heisenbugs",
        "malicious",
    ]);
    // Each row seeds its own contexts/RNGs, so rows are independent work
    // items: run them across the worker pool. Non-capturing closures
    // adapt the rows that take no observer to the common signature.
    //
    // Rows are wildly heterogeneous — fault fixing runs a GP corpus and
    // takes an order of magnitude longer than, say, rejuvenation — so
    // each carries a relative cost hint and the scheduler claims the
    // heaviest rows first (LPT). Hints only shape the claim order; the
    // table rows stay in presentation order regardless of `jobs`.
    type RowFn = fn(usize, u64, Option<&ObsHandle>) -> Row;
    let specs: Vec<(&str, u64, RowFn)> = vec![
        ("(unprotected baseline)", 2, baseline),
        ("N-version programming", 9, nvp),
        ("Recovery blocks", 4, recovery_blocks),
        ("Self-checking programming", 6, self_checking),
        ("Self-optimizing code", 2, self_optimizing),
        ("Exception handling, rule engines", 4, rule_engine),
        ("Wrappers", 6, wrappers),
        ("Robust data structures, audits", 5, |t, s, _| {
            robust_data(t, s)
        }),
        ("Data diversity", 6, data_diversity),
        ("Data diversity for security", 3, |t, s, _| {
            nvariant_data(t, s)
        }),
        ("Rejuvenation", 2, rejuvenation),
        ("Environment perturbation", 8, env_perturbation),
        ("Process replicas", 6, |t, s, _| process_replicas(t, s)),
        ("Dynamic service substitution", 6, service_substitution),
        ("Fault fixing, genetic programming", 100, |t, s, _| {
            fault_fixing(t, s)
        }),
        ("Automatic workarounds", 8, |t, s, _| workarounds(t, s)),
        ("Checkpoint-recovery", 6, checkpoint_recovery),
        ("Reboot and micro-reboot", 10, |t, s, _| microreboot(t, s)),
    ];
    let tasks: Vec<_> = specs
        .iter()
        .map(|&(_, cost, f)| {
            let handle = obs.cloned();
            (cost, move || f(trials, seed, handle.as_ref()))
        })
        .collect();
    let computed = parallel_tasks_lpt(jobs, tasks);
    let rows: Vec<(&str, Row)> = specs
        .iter()
        .map(|&(name, _, _)| name)
        .zip(computed)
        .collect();
    let entries = tech::table2::entries();
    for (name, row) in rows {
        let classification = entries
            .iter()
            .find(|e| e.name == name)
            .map_or_else(|| "—".to_owned(), |e| e.classification.to_string());
        table.row_owned(vec![
            name.to_owned(),
            classification,
            fmt_opt_rate(row[0]),
            fmt_opt_rate(row[1]),
            fmt_opt_rate(row[2]),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 400;
    const SEED: u64 = 0xbeef;

    fn get(row: Row, i: usize) -> f64 {
        row[i].expect("cell applicable")
    }

    #[test]
    fn baseline_matches_fault_strength() {
        let b = baseline(T, SEED, None);
        assert!((get(b, 0) - 0.7).abs() < 0.08, "bohr {:?}", b[0]);
        assert!((get(b, 1) - 0.7).abs() < 0.08, "heis {:?}", b[1]);
        assert!(get(b, 2).abs() < f64::EPSILON);
    }

    #[test]
    fn code_redundancy_techniques_beat_baseline_on_development_faults() {
        // NVP(3) majority needs two correct versions: P(>=2 correct) at
        // density 0.3 is 0.784 — a real but modest gain over the 0.70
        // baseline. The explicit-adjudicator techniques need only one
        // acceptable alternate: ~1 - 0.3^3 = 0.973.
        let nvp_row = nvp(T, SEED, None);
        assert!(get(nvp_row, 0) > 0.73, "nvp bohr {:?}", nvp_row[0]);
        assert!(get(nvp_row, 1) > 0.73, "nvp heis {:?}", nvp_row[1]);
        for (name, row) in [
            ("recovery-blocks", recovery_blocks(T, SEED, None)),
            ("self-checking", self_checking(T, SEED, None)),
            ("rule-engine", rule_engine(T, SEED, None)),
            ("data-diversity", data_diversity(T, SEED, None)),
        ] {
            assert!(get(row, 0) > 0.85, "{name} bohr {:?}", row[0]);
            assert!(get(row, 1) > 0.85, "{name} heis {:?}", row[1]);
        }
    }

    #[test]
    fn nvp_is_defeated_by_common_mode_attacks() {
        let row = nvp(T, SEED, None);
        assert!(get(row, 2) < 0.05, "malicious {:?}", row[2]);
    }

    #[test]
    fn security_techniques_stop_attacks() {
        assert!(get(nvariant_data(T, SEED), 2) > 0.99);
        assert!(get(process_replicas(T, SEED), 2) > 0.99);
        assert!(get(wrappers(T, SEED, None), 2) > 0.99);
    }

    #[test]
    fn environment_techniques_handle_heisenbugs_not_bohrbugs() {
        let rx = env_perturbation(T, SEED, None);
        assert!(get(rx, 1) > 0.95, "rx heis {:?}", rx[1]);
        assert!(
            get(rx, 0) < 0.8,
            "rx bohr should stay near baseline {:?}",
            rx[0]
        );
        let cr = checkpoint_recovery(T, SEED, None);
        assert!(get(cr, 1) > 0.95, "cr heis {:?}", cr[1]);
        assert!(get(cr, 0) < 0.8, "cr bohr {:?}", cr[0]);
        let rejuv = rejuvenation(T, SEED, None);
        assert!(get(rejuv, 1) > 0.85, "rejuvenation {:?}", rejuv[1]);
    }

    #[test]
    fn opportunistic_code_techniques_fix_bohrbugs() {
        assert!(get(workarounds(T, SEED), 0) > 0.9);
        assert!(get(fault_fixing(600, SEED), 0) > 0.5);
        let sub = service_substitution(T, SEED, None);
        assert!(get(sub, 0) > 0.9, "substitution bohr {:?}", sub[0]);
    }

    #[test]
    fn full_matrix_renders() {
        let table = run(120, SEED);
        assert_eq!(table.len(), 18);
        let text = table.to_string();
        assert!(text.contains("N-version programming"));
        assert!(text.contains("—"));
    }

    #[test]
    fn matrix_is_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(60, SEED, jobs));
    }

    #[test]
    fn traced_run_reports_recovery_latency_per_technique() {
        let (matrix, latency) = run_traced(120, SEED, None);
        assert_eq!(matrix.len(), 18);
        // Techniques that mask faults at density 0.3 must have recovered
        // at least once in 120 trials, and a recovery takes ticks.
        let text = latency.to_string();
        for span in ["n-version", "recovery-blocks", "rule-engine"] {
            assert!(text.contains(span), "missing {span} in:\n{text}");
        }
        assert!(latency.len() >= 3);
    }

    #[test]
    fn traced_run_fans_out_to_extra_observer() {
        let ring = redundancy_core::obs::RingBufferObserver::shared(1 << 16);
        let _ = run_traced(40, SEED, Some(ring.clone() as Arc<dyn Observer>));
        assert!(!ring.is_empty(), "extra sink saw no events");
    }
}
