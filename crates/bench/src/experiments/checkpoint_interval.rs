//! Experiment E17 (extension) — the checkpoint-interval trade-off behind
//! checkpoint-recovery (Elnozahy's survey; Young's √(2·C/λ) rule of
//! thumb).
//!
//! Checkpointing too rarely loses work to each failure; checkpointing too
//! often drowns in checkpoint overhead. Expected shape: completion time
//! is U-shaped in the interval, with the sweet spot near Young's
//! approximation.

use redundancy_core::rng::SplitMix64;
use redundancy_sim::parallel_tasks;
use redundancy_sim::table::Table;
use redundancy_techniques::checkpoint_recovery::long_run;

/// Mean completion time over `repetitions` runs at a given interval
/// (`0` = no checkpoints).
#[must_use]
pub fn mean_completion(
    interval: u64,
    total_work: u64,
    checkpoint_cost: u64,
    fail_prob: f64,
    repetitions: usize,
    seed: u64,
) -> f64 {
    let mut rng = SplitMix64::new(seed);
    let total: u64 = (0..repetitions)
        .map(|_| {
            long_run(total_work, interval, checkpoint_cost, fail_prob, &mut rng).completion_time
        })
        .sum();
    total as f64 / repetitions as f64
}

/// Young's first-order optimal interval: `sqrt(2 * checkpoint_cost / λ)`.
#[must_use]
pub fn young_interval(checkpoint_cost: u64, fail_prob: f64) -> f64 {
    (2.0 * checkpoint_cost as f64 / fail_prob).sqrt()
}

/// Builds the interval sweep table.
#[must_use]
pub fn run(repetitions: usize, seed: u64) -> Table {
    run_jobs(repetitions, seed, 1)
}

/// Like [`run`] with the interval sweep sharded across up to `jobs`
/// worker threads; every interval seeds its own RNG, so the table is
/// identical for any `jobs`.
#[must_use]
pub fn run_jobs(repetitions: usize, seed: u64, jobs: usize) -> Table {
    let total_work = 20_000;
    let checkpoint_cost = 25;
    let fail_prob = 0.002;
    let mut table = Table::new(&["checkpoint interval", "mean completion time"]);
    let intervals = [0u64, 25, 50, 100, 158, 400, 1_000, 2_000];
    let tasks: Vec<_> = intervals
        .iter()
        .map(|&interval| {
            move || {
                mean_completion(
                    interval,
                    total_work,
                    checkpoint_cost,
                    fail_prob,
                    repetitions,
                    seed,
                )
            }
        })
        .collect();
    let results = parallel_tasks(jobs, tasks);
    for (&interval, mean) in intervals.iter().zip(results) {
        let label = if interval == 0 {
            "none (restart from scratch)".to_owned()
        } else {
            interval.to_string()
        };
        table.row_owned(vec![label, format!("{mean:.0}")]);
    }
    table.row_owned(vec![
        format!(
            "(Young's rule: {:.0})",
            young_interval(checkpoint_cost, fail_prob)
        ),
        String::new(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0xe17;

    #[test]
    fn completion_time_is_u_shaped_in_the_interval() {
        let m = |interval| mean_completion(interval, 20_000, 25, 0.002, 10, SEED);
        let tiny = m(10); // checkpoint overhead dominates
        let sweet = m(158); // ≈ Young's interval
        let huge = m(2_000); // loses big chunks to every failure
        assert!(sweet < tiny, "sweet {sweet} !< tiny {tiny}");
        assert!(sweet < huge, "sweet {sweet} !< huge {huge}");
    }

    #[test]
    fn youngs_rule_lands_near_the_measured_optimum() {
        let predicted = young_interval(25, 0.002);
        assert!((predicted - 158.1).abs() < 1.0);
        // The measured optimum over a coarse sweep should be within a
        // factor ~2.5 of the prediction.
        let candidates = [25u64, 50, 100, 158, 400, 1_000];
        let means: Vec<f64> = candidates
            .iter()
            .map(|&i| mean_completion(i, 20_000, 25, 0.002, 10, SEED))
            .collect();
        let best_idx = means
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        let best = candidates[best_idx] as f64;
        assert!(
            best > predicted / 2.5 && best < predicted * 2.5,
            "best {best} vs predicted {predicted}"
        );
    }

    #[test]
    fn no_checkpoints_is_worst_under_failures() {
        let none = mean_completion(0, 20_000, 25, 0.002, 5, SEED);
        let some = mean_completion(158, 20_000, 25, 0.002, 5, SEED);
        assert!(some < none, "some {some} !< none {none}");
    }

    #[test]
    fn table_renders() {
        assert_eq!(run(3, SEED).len(), 9);
    }

    #[test]
    fn table_is_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(3, SEED, jobs));
    }
}
