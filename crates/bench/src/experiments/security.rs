//! Experiment E9 — security through environment/data diversity (Cox 2006,
//! Bruschi 2007, Nguyen-Tuong 2008): attack-stopping rates of process
//! replicas (address partitioning, instruction tagging) and N-variant
//! data, against an unprotected baseline.
//!
//! Expected shape: the unprotected baseline silently serves every attack;
//! with ≥ 2 replicas/variants, every modeled attack is detected or
//! fail-stopped.

use redundancy_core::rng::SplitMix64;
use redundancy_sandbox::vm::Opcode;
use redundancy_sim::parallel_tasks;
use redundancy_sim::table::Table;
use redundancy_techniques::nvariant_data::NVariantCell;
use redundancy_techniques::process_replicas::{ProcessReplicas, ReplicaVerdict, Request};

use crate::fmt_rate;

/// Outcome counts over an attack campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackStats {
    /// Attacks detected via divergence.
    pub detected: usize,
    /// Attacks stopped by uniform fail-stop (all replicas faulted).
    pub failstopped: usize,
    /// Attacks that silently succeeded.
    pub compromised: usize,
}

impl AttackStats {
    /// Fraction of attacks that did *not* silently succeed.
    #[must_use]
    pub fn stopped_rate(&self, total: usize) -> f64 {
        1.0 - self.compromised as f64 / total as f64
    }
}

/// Runs `trials` absolute-address attacks against `n` replicas.
#[must_use]
pub fn memory_attacks(n: usize, trials: usize, seed: u64) -> AttackStats {
    let mut rng = SplitMix64::new(seed);
    let mut stats = AttackStats {
        detected: 0,
        failstopped: 0,
        compromised: 0,
    };
    for _ in 0..trials {
        let mut replicas = ProcessReplicas::new(n);
        // The attacker studied one variant: targets an address valid there.
        let addr = replicas.leaked_address() + rng.range_u64(0, 128);
        match replicas.execute(&Request::MemoryAttack { addr, len: 8 }) {
            ReplicaVerdict::AttackDetected { .. } => stats.detected += 1,
            ReplicaVerdict::Agreed { result: None } => stats.failstopped += 1,
            ReplicaVerdict::Agreed { result: Some(_) } => stats.compromised += 1,
        }
    }
    stats
}

/// Runs `trials` code-injection attacks against `n` replicas.
#[must_use]
pub fn injection_attacks(n: usize, trials: usize, seed: u64) -> AttackStats {
    let mut rng = SplitMix64::new(seed);
    let mut stats = AttackStats {
        detected: 0,
        failstopped: 0,
        compromised: 0,
    };
    let program = vec![Opcode::Arg(0), Opcode::Dup, Opcode::Mul];
    for _ in 0..trials {
        let mut replicas = ProcessReplicas::new(n);
        let request = Request::CodeInjection {
            program: program.clone(),
            args: vec![rng.range_i64(1, 100)],
            payload: vec![Opcode::Push(rng.range_i64(0, 1 << 16)), Opcode::Add],
            position: rng.index(program.len() + 1),
        };
        match replicas.execute(&request) {
            ReplicaVerdict::AttackDetected { .. } => stats.detected += 1,
            ReplicaVerdict::Agreed { result: None } => stats.failstopped += 1,
            ReplicaVerdict::Agreed { result: Some(_) } => stats.compromised += 1,
        }
    }
    stats
}

/// Runs `trials` data-corruption attacks against N-variant cells.
#[must_use]
pub fn data_attacks(n: usize, trials: usize, seed: u64) -> AttackStats {
    let mut rng = SplitMix64::new(seed);
    let mut stats = AttackStats {
        detected: 0,
        failstopped: 0,
        compromised: 0,
    };
    for t in 0..trials {
        if n < 2 {
            // A single-representation cell accepts the overwrite silently.
            stats.compromised += 1;
            continue;
        }
        let mut cell = NVariantCell::new(n, seed ^ t as u64);
        cell.write(rng.next_u64());
        cell.attack_overwrite(rng.next_u64());
        if cell.read().is_err() {
            stats.detected += 1;
        } else {
            stats.compromised += 1;
        }
    }
    stats
}

/// Builds the E9 table: stop rate per attack type and replica count.
#[must_use]
pub fn run(trials: usize, seed: u64) -> Table {
    run_jobs(trials, seed, 1)
}

/// Like [`run`] with the replica-count sweep sharded across up to `jobs`
/// worker threads; every campaign seeds its own RNG, so the table is
/// identical for any `jobs`.
#[must_use]
pub fn run_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    let mut table = Table::new(&[
        "replicas/variants",
        "memory attacks stopped",
        "code injection stopped",
        "data corruption stopped",
    ]);
    let counts = [1usize, 2, 3, 5];
    let tasks: Vec<_> = counts
        .iter()
        .map(|&n| {
            move || {
                (
                    memory_attacks(n, trials, seed).stopped_rate(trials),
                    injection_attacks(n, trials, seed).stopped_rate(trials),
                    data_attacks(n, trials, seed).stopped_rate(trials),
                )
            }
        })
        .collect();
    let results = parallel_tasks(jobs, tasks);
    for (n, (memory, injection, data)) in counts.iter().zip(results) {
        table.row_owned(vec![
            n.to_string(),
            fmt_rate(memory),
            fmt_rate(injection),
            fmt_rate(data),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 300;
    const SEED: u64 = 0xe9;

    #[test]
    fn unprotected_baseline_is_fully_compromised_by_memory_attacks() {
        let stats = memory_attacks(1, T, SEED);
        assert_eq!(stats.compromised, T);
        assert!(stats.stopped_rate(T).abs() < f64::EPSILON);
    }

    #[test]
    fn two_replicas_stop_every_memory_attack() {
        let stats = memory_attacks(2, T, SEED);
        assert_eq!(stats.compromised, 0);
        assert!(stats.detected > 0, "in-partition attacks diverge");
    }

    #[test]
    fn tagging_stops_injection_even_for_one_replica() {
        // A single *tagged* replica already rejects untagged payloads —
        // fail-stop rather than divergence.
        let one = injection_attacks(1, T, SEED);
        assert_eq!(one.compromised, 0);
        let three = injection_attacks(3, T, SEED);
        assert_eq!(three.compromised, 0);
    }

    #[test]
    fn data_variants_detect_uniform_overwrites() {
        assert_eq!(data_attacks(1, T, SEED).compromised, T);
        assert_eq!(data_attacks(2, T, SEED).compromised, 0);
        assert_eq!(data_attacks(5, T, SEED).compromised, 0);
    }

    #[test]
    fn table_renders_four_rows() {
        assert_eq!(run(50, SEED).len(), 4);
    }

    #[test]
    fn table_is_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(50, SEED, jobs));
    }
}
