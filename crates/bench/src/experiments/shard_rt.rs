//! Experiment E21 — the sharded service runtime with per-provider
//! circuit breakers, under bursty arrivals and a sick provider.
//!
//! The scenario: on/off (bursty) open-loop arrivals over a
//! three-provider pool where one provider is *sick* — failing well past
//! the breaker threshold and spiking its latency — and two are healthy,
//! all behind the hedged policy. The table sweeps shards × breaker:
//!
//! - **shards** exercises the scale-out layer
//!   ([`ShardedRuntime`]): with breakers off and non-binding admission
//!   caps, every shard count reproduces the *same* canonical ledger
//!   (`digest` column), so the fan-out provably changes wall-clock
//!   only;
//! - **breaker** shows the profile-driven routing win: the sick
//!   provider trips Open, hedges and rotations route around it, and
//!   the failed-attempt count collapses while the hedged tail holds.
//!
//! With breakers *on* each shard count is its own deterministic system
//! (breakers judge shard-local history), so those digests legitimately
//! differ across shard counts — but stay bit-identical per
//! `(seed, shards)` at any `--jobs`, which is what the smoke gate in
//! `exp_shard` enforces.

use std::sync::Arc;

use redundancy_services::breaker::BreakerConfig;
use redundancy_services::provider::SimProvider;
use redundancy_services::registry::InterfaceId;
use redundancy_services::runtime::{
    PlannedProvider, RequestPolicy, RuntimeConfig, RuntimeReport, Workload,
};
use redundancy_services::shard::ShardedRuntime;
use redundancy_services::value::Value;
use redundancy_services::ArrivalProcess;
use redundancy_sim::table::Table;

use crate::fmt_rate;

/// Shard counts swept by the table, in row order.
pub const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// Base service time of every provider (virtual ns).
const BASE_NS: u64 = 200_000;

/// Builds the scenario pool: one sick provider (60% fail-stop, 10%
/// 20 ms latency spikes) between two healthy ones. Stateless, so shard
/// counts cannot couple through provider state.
fn pool() -> Vec<Arc<dyn PlannedProvider>> {
    (0..3)
        .map(|i| {
            let b = SimProvider::builder(format!("p{i}"), InterfaceId::new("svc"))
                .latency(BASE_NS, BASE_NS / 10)
                .operation("work", |_, _| Ok(Value::Int(1)));
            let b = if i == 1 {
                b.fail_prob(0.60).latency_spike(0.10, 20_000_000)
            } else {
                b
            };
            Arc::new(b.build()) as Arc<dyn PlannedProvider>
        })
        .collect()
}

/// The breaker profile the `breaker=on` rows run under.
#[must_use]
pub fn breaker_config() -> BreakerConfig {
    BreakerConfig {
        window: 32,
        failure_pct: 50,
        min_samples: 16,
        cooldown_ns: 10_000_000, // 10 ms Open before re-probing
        half_open_probes: 3,
        slow_call_ns: 10_000_000, // a 20 ms spike profiles as bad
    }
}

/// The runtime limits shared by every cell: hedged policy, caps sized
/// far above the workload so admission never binds (the regime where
/// the shard-count digest invariance holds exactly).
fn config(breaker: bool) -> RuntimeConfig {
    RuntimeConfig {
        policy: RequestPolicy::Hedged {
            delay_ns: 1_000_000, // hedge after 1 ms without a response
            max_hedges: 2,
        },
        deadline_ns: 100_000_000,
        max_in_flight: 4_096,
        queue_capacity: 4_096,
        breaker: breaker.then(breaker_config),
    }
}

/// The bursty workload: 20 ms bursts at a 50 µs mean gap, 80 ms lulls
/// at 2 ms — a ~4× peak-to-mean arrival ratio.
#[must_use]
pub fn bursty_workload(requests: u64) -> Workload {
    Workload {
        requests,
        arrival: ArrivalProcess::OnOff {
            on_gap_ns: 50_000,
            off_gap_ns: 2_000_000,
            on_ns: 20_000_000,
            off_ns: 80_000_000,
        },
        operation: "work".into(),
        args: vec![],
    }
}

/// Runs one (shards, breaker) cell serially.
#[must_use]
pub fn run_sharded(shards: usize, requests: u64, seed: u64, breaker: bool) -> RuntimeReport {
    run_sharded_jobs(shards, requests, seed, breaker, 1)
}

/// Like [`run_sharded`] with the shard loops spread across up to `jobs`
/// workers of the campaign pool. The report is bit-identical for any
/// `jobs`.
#[must_use]
pub fn run_sharded_jobs(
    shards: usize,
    requests: u64,
    seed: u64,
    breaker: bool,
    jobs: usize,
) -> RuntimeReport {
    ShardedRuntime::new(shards, config(breaker), pool).run_jobs(
        &bursty_workload(requests),
        seed,
        jobs,
    )
}

fn fmt_us(ns: Option<u64>) -> String {
    match ns {
        #[allow(clippy::cast_precision_loss)]
        Some(ns) => format!("{:.1}", ns as f64 / 1_000.0),
        None => "-".to_owned(),
    }
}

/// Builds the E21 table.
#[must_use]
pub fn run(trials: usize, seed: u64) -> Table {
    run_jobs(trials, seed, 1)
}

/// Like [`run`] with each cell's shard loops spread across up to `jobs`
/// workers; the table is identical for any `jobs`.
#[must_use]
pub fn run_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    let mut table = Table::new(&[
        "shards",
        "breaker",
        "ok",
        "failed",
        "shed",
        "attempts failed",
        "brk open/skip/shed",
        "p50 µs",
        "p99 µs",
        "goodput krps",
        "digest",
    ]);
    let requests = trials as u64;
    for breaker in [false, true] {
        for shards in SHARD_COUNTS {
            let report = run_sharded_jobs(shards, requests, seed, breaker, jobs);
            #[allow(clippy::cast_precision_loss)]
            let ok_rate = report.ok as f64 / requests as f64;
            table.row_owned(vec![
                shards.to_string(),
                if breaker { "on" } else { "off" }.to_owned(),
                fmt_rate(ok_rate),
                report.failed.to_string(),
                // `rejected` already counts breaker-shed requests (they
                // resolve Rejected); the brk column breaks them out.
                report.rejected.to_string(),
                report.attempts_failed.to_string(),
                format!(
                    "{}/{}/{}",
                    report.breaker_opens, report.breaker_skips, report.breaker_shed
                ),
                fmt_us(report.latency_quantile(0.5)),
                fmt_us(report.latency_quantile(0.99)),
                format!("{:.1}", report.goodput_per_sec() / 1_000.0),
                format!("{:#018x}", report.ledger_digest()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0xe21;

    #[test]
    fn table_renders_all_shard_breaker_cells() {
        assert_eq!(run(300, SEED).len(), SHARD_COUNTS.len() * 2);
    }

    #[test]
    fn breaker_off_digest_is_shard_count_invariant() {
        let baseline = run_sharded(1, 2_000, SEED, false).ledger_digest();
        for shards in SHARD_COUNTS {
            assert_eq!(
                run_sharded(shards, 2_000, SEED, false).ledger_digest(),
                baseline,
                "shards={shards}"
            );
        }
    }

    #[test]
    fn breaker_cuts_failed_attempts_without_costing_availability() {
        let off = run_sharded(2, 2_000, SEED, false);
        let on = run_sharded(2, 2_000, SEED, true);
        assert!(on.breaker_opens > 0, "the sick provider must trip");
        assert!(
            on.attempts_failed < off.attempts_failed,
            "breaker must cut failed attempts: {} vs {}",
            on.attempts_failed,
            off.attempts_failed
        );
        assert!(on.ok * 100 >= off.ok * 99, "{} vs {}", on.ok, off.ok);
    }

    #[test]
    fn table_is_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(400, SEED, jobs));
    }
}
