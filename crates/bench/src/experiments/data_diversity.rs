//! Experiment E8 — data diversity (Ammann–Knight): failure-region escape
//! via input re-expression.
//!
//! Expected shape: recovery improves with the number of re-expressions
//! (≈ 1 − p^(k+1) for retry blocks on independent regions); N-copy with
//! the same redundancy is weaker than retry (it needs a majority, retry
//! needs one survivor); without any re-expression both inherit the raw
//! program reliability.

use redundancy_core::context::ExecContext;
use redundancy_faults::{FaultSpec, FaultyVariant};
use redundancy_sim::parallel_tasks;
use redundancy_sim::table::Table;
use redundancy_techniques::data_diversity::{NCopy, ReExpression, RetryBlock};

use crate::fmt_rate;

const DENSITY: f64 = 0.3;

fn golden(x: &u64) -> u64 {
    x * 2
}

fn buggy() -> FaultyVariant<u64, u64> {
    FaultyVariant::builder("linear", 10, golden)
        .corruptor(|c, _| c + 1001)
        .fault(FaultSpec::bohrbug("region", DENSITY, 0xda7a))
        .build()
}

fn shift(k: u64) -> ReExpression<u64, u64> {
    ReExpression::new(
        format!("shift{k}"),
        move |x: &u64| x.wrapping_add(k),
        move |y: u64| y.wrapping_sub(2 * k),
    )
}

/// Retry-block recovery rate with `k` re-expressions beyond identity.
#[must_use]
pub fn retry_rate(k: usize, trials: usize, seed: u64) -> f64 {
    let mut rb = RetryBlock::new(buggy(), |x: &u64, out: &u64| *out <= x * 2 + 100);
    for i in 0..k {
        rb = rb.with_reexpression(shift(11 + 13 * i as u64));
    }
    let mut ctx = ExecContext::new(seed);
    let ok = (0..trials as u64)
        .filter(|x| rb.run(x, &mut ctx).into_output() == Some(golden(x)))
        .count();
    ok as f64 / trials as f64
}

/// N-copy recovery rate with `k` re-expressions beyond identity.
#[must_use]
pub fn ncopy_rate(k: usize, trials: usize, seed: u64) -> f64 {
    let mut nc = NCopy::new(buggy());
    for i in 0..k {
        nc = nc.with_reexpression(shift(11 + 13 * i as u64));
    }
    let mut ctx = ExecContext::new(seed);
    let ok = (0..trials as u64)
        .filter(|x| nc.run(x, &mut ctx).into_output() == Some(golden(x)))
        .count();
    ok as f64 / trials as f64
}

/// Builds the E8 table.
#[must_use]
pub fn run(trials: usize, seed: u64) -> Table {
    run_jobs(trials, seed, 1)
}

/// Like [`run`] with the re-expression sweep sharded across up to `jobs`
/// worker threads; every row seeds its own contexts, so the table is
/// identical for any `jobs`.
#[must_use]
pub fn run_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    let mut table = Table::new(&[
        "re-expressions",
        "retry blocks",
        "N-copy (majority)",
        "1 - p^(k+1) (prediction)",
    ]);
    let tasks: Vec<_> = (0..=4usize)
        .map(|k| move || (retry_rate(k, trials, seed), ncopy_rate(k, trials, seed)))
        .collect();
    let results = parallel_tasks(jobs, tasks);
    for (k, (retry, ncopy)) in results.into_iter().enumerate() {
        table.row_owned(vec![
            k.to_string(),
            fmt_rate(retry),
            fmt_rate(ncopy),
            fmt_rate(1.0 - DENSITY.powi(k as i32 + 1)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 1500;
    const SEED: u64 = 0xe8;

    #[test]
    fn zero_reexpressions_inherit_program_reliability() {
        let r = retry_rate(0, T, SEED);
        assert!((r - (1.0 - DENSITY)).abs() < 0.04, "r={r}");
    }

    #[test]
    fn retry_rate_grows_with_reexpressions() {
        let r0 = retry_rate(0, T, SEED);
        let r2 = retry_rate(2, T, SEED);
        let r4 = retry_rate(4, T, SEED);
        assert!(r2 > r0 + 0.1, "r0={r0}, r2={r2}");
        assert!(r4 >= r2, "r2={r2}, r4={r4}");
        assert!(r4 > 0.97, "r4={r4}");
    }

    #[test]
    fn retry_tracks_the_independence_prediction() {
        let r3 = retry_rate(3, T, SEED);
        let prediction = 1.0 - DENSITY.powi(4);
        assert!(
            (r3 - prediction).abs() < 0.04,
            "r3={r3}, predicted {prediction}"
        );
    }

    #[test]
    fn retry_beats_ncopy_at_equal_redundancy() {
        let retry = retry_rate(2, T, SEED);
        let ncopy = ncopy_rate(2, T, SEED);
        assert!(
            retry > ncopy + 0.02,
            "retry {retry} should beat N-copy {ncopy}"
        );
    }

    #[test]
    fn table_renders_five_rows() {
        assert_eq!(run(200, SEED).len(), 5);
    }

    #[test]
    fn table_is_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(200, SEED, jobs));
    }
}
