//! Experiment E20 — the event-loop service runtime under degradation:
//! hedged requests vs failover vs no redundancy, across healthy,
//! tail-spiky, flaky and wearing-out provider pools.
//!
//! Expected shape: under latency spikes, hedging collapses the p99/p999
//! tail (the spike is outrun by a duplicate sent to a healthy sibling)
//! at a small extra-attempt cost; under fail-stop flakiness, failover
//! and hedging both recover most requests a single attempt loses; under
//! wear-out, redundancy delays but cannot prevent the decline. All
//! latencies are *virtual* nanoseconds from the deterministic event
//! loop — bit-identical per seed on any host.

use std::sync::Arc;

use redundancy_services::provider::SimProvider;
use redundancy_services::recovery::Backoff;
use redundancy_services::registry::InterfaceId;
use redundancy_services::runtime::{
    PlannedProvider, RequestPolicy, RuntimeConfig, RuntimeReport, ServiceRuntime, Workload,
};
use redundancy_services::value::Value;
use redundancy_sim::parallel_tasks;
use redundancy_sim::table::Table;

use crate::fmt_rate;

/// The provider-degradation scenarios, in table order.
pub const SCENARIOS: [&str; 4] = ["healthy", "spiky", "flaky", "wearing"];

/// The request policies compared per scenario, in table order.
pub const POLICIES: [&str; 3] = ["single", "hedged", "failover"];

/// Base service time of every provider (virtual ns).
const BASE_NS: u64 = 200_000;

/// Builds the three-provider pool for one scenario.
fn pool(scenario: &str) -> Vec<Arc<dyn PlannedProvider>> {
    (0..3)
        .map(|i| {
            let b = SimProvider::builder(format!("{scenario}{i}"), InterfaceId::new("svc"))
                .latency(BASE_NS, BASE_NS / 10)
                .operation("work", |_, _| Ok(Value::Int(1)));
            let b = match scenario {
                "healthy" => b,
                // 2% of invocations stall an extra 20 ms — the classic
                // long-tail profile hedging targets.
                "spiky" => b.latency_spike(0.02, 20_000_000),
                // 10% fail-stop responses.
                "flaky" => b.fail_prob(0.10),
                // Starts near-healthy, degrades with every call served.
                "wearing" => b.fail_prob(0.01).wear_out(0.0003),
                other => panic!("unknown scenario {other:?}"),
            };
            Arc::new(b.build()) as Arc<dyn PlannedProvider>
        })
        .collect()
}

/// The runtime limits shared by every cell, with the policy plugged in.
fn config(policy: &str) -> RuntimeConfig {
    let policy = match policy {
        "single" => RequestPolicy::Single,
        "hedged" => RequestPolicy::Hedged {
            delay_ns: 1_000_000, // hedge after 1 ms without a response
            max_hedges: 2,
        },
        "failover" => RequestPolicy::Failover {
            max_attempts: 3,
            backoff: Backoff::Exponential {
                base_ns: 500_000,
                factor: 2,
                cap_ns: 4_000_000,
            },
        },
        other => panic!("unknown policy {other:?}"),
    };
    RuntimeConfig {
        policy,
        deadline_ns: 100_000_000, // 100 ms budget per request
        max_in_flight: 256,
        queue_capacity: 1_024,
        breaker: None,
    }
}

/// Runs one (scenario, policy) cell: `requests` open-loop arrivals at a
/// 100 µs mean gap through a fresh three-provider pool.
#[must_use]
pub fn run_cell(scenario: &str, policy: &str, requests: u64, seed: u64) -> RuntimeReport {
    let runtime = ServiceRuntime::new(pool(scenario), config(policy));
    let workload = Workload::poisson(requests, 100_000, "work");
    runtime.run(&workload, seed)
}

fn fmt_us(ns: Option<u64>) -> String {
    match ns {
        #[allow(clippy::cast_precision_loss)]
        Some(ns) => format!("{:.1}", ns as f64 / 1_000.0),
        None => "-".to_owned(),
    }
}

/// Builds the E20 table.
#[must_use]
pub fn run(trials: usize, seed: u64) -> Table {
    run_jobs(trials, seed, 1)
}

/// Like [`run`] with the 12 (scenario × policy) cells sharded across up
/// to `jobs` worker threads; every cell builds its own pool and event
/// loop, so the table is identical for any `jobs`.
#[must_use]
pub fn run_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    let mut table = Table::new(&[
        "scenario",
        "policy",
        "ok",
        "deadline",
        "shed",
        "p50 µs",
        "p99 µs",
        "p999 µs",
        "hedge f/w/c",
        "failovers",
        "goodput krps",
    ]);
    let requests = trials as u64;
    let cells: Vec<(&str, &str)> = SCENARIOS
        .iter()
        .flat_map(|s| POLICIES.iter().map(move |p| (*s, *p)))
        .collect();
    let tasks: Vec<_> = cells
        .iter()
        .map(|&(scenario, policy)| move || run_cell(scenario, policy, requests, seed))
        .collect();
    let reports = parallel_tasks(jobs, tasks);
    for ((scenario, policy), report) in cells.iter().zip(reports) {
        #[allow(clippy::cast_precision_loss)]
        let ok_rate = report.ok as f64 / report.ledger.len() as f64;
        table.row_owned(vec![
            (*scenario).to_owned(),
            (*policy).to_owned(),
            fmt_rate(ok_rate),
            report.deadline_exceeded.to_string(),
            report.rejected.to_string(),
            fmt_us(report.latency_quantile(0.5)),
            fmt_us(report.latency_quantile(0.99)),
            fmt_us(report.latency_quantile(0.999)),
            format!(
                "{}/{}/{}",
                report.hedges_fired, report.hedges_won, report.hedges_cancelled
            ),
            report.failovers.to_string(),
            format!("{:.1}", report.goodput_per_sec() / 1_000.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0xe20;

    #[test]
    fn table_renders_all_scenario_policy_cells() {
        assert_eq!(run(300, SEED).len(), SCENARIOS.len() * POLICIES.len());
    }

    #[test]
    fn ledger_is_bit_identical_per_seed() {
        let first = run_cell("spiky", "hedged", 2_000, SEED);
        let second = run_cell("spiky", "hedged", 2_000, SEED);
        assert_eq!(first, second, "same seed ⇒ same per-request ledger");
        assert_eq!(first.ledger_digest(), second.ledger_digest());
        assert_ne!(
            first.ledger_digest(),
            run_cell("spiky", "hedged", 2_000, SEED + 1).ledger_digest()
        );
    }

    #[test]
    fn hedging_beats_single_on_the_tail_under_spikes() {
        let single = run_cell("spiky", "single", 4_000, SEED);
        let hedged = run_cell("spiky", "hedged", 4_000, SEED);
        let (s99, h99) = (
            single.latency_quantile(0.99).unwrap(),
            hedged.latency_quantile(0.99).unwrap(),
        );
        let (s999, h999) = (
            single.latency_quantile(0.999).unwrap(),
            hedged.latency_quantile(0.999).unwrap(),
        );
        assert!(h99 < s99, "hedged p99 {h99} must beat single {s99}");
        assert!(h999 < s999, "hedged p999 {h999} must beat single {s999}");
        assert!(hedged.hedges_won > 0, "tail wins come from hedges");
    }

    #[test]
    fn redundancy_recovers_requests_flakiness_loses() {
        let single = run_cell("flaky", "single", 2_000, SEED);
        let hedged = run_cell("flaky", "hedged", 2_000, SEED);
        let failover = run_cell("flaky", "failover", 2_000, SEED);
        assert!(single.ok < 2_000, "10% flakiness must lose some requests");
        assert!(hedged.ok > single.ok, "{} vs {}", hedged.ok, single.ok);
        assert!(failover.ok > single.ok, "{} vs {}", failover.ok, single.ok);
        assert!(failover.failovers > 0);
    }

    #[test]
    fn table_is_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(200, SEED, jobs));
    }
}
