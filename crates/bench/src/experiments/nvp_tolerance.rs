//! Experiment E4 — the `2k + 1` rule: N-version reliability vs the
//! number of versions and the per-version failure density, plus the
//! adjudicator ablation (majority vs plurality vs median).
//!
//! Expected shape: for densities below 0.5, reliability grows with N
//! (and the marginal gain shrinks); for densities at or above 0.5 adding
//! versions *hurts* — the majority is more likely wrong than right.

use redundancy_core::adjudicator::voting::{MajorityVoter, MedianVoter, PluralityVoter};
use redundancy_core::adjudicator::Adjudicator;
use redundancy_core::context::ExecContext;
use redundancy_faults::correlation::{correlated_versions, CorrelatedSuite};
use redundancy_sim::parallel_tasks;
use redundancy_sim::table::Table;
use redundancy_techniques::nvp::NVersion;

use crate::fmt_rate;

/// Reliability of an N-version system with independent failure regions.
#[must_use]
pub fn reliability(n: usize, density: f64, trials: usize, seed: u64) -> f64 {
    reliability_with(n, density, trials, seed, MajorityVoter::new())
}

/// Reliability under a chosen adjudicator.
#[must_use]
pub fn reliability_with(
    n: usize,
    density: f64,
    trials: usize,
    seed: u64,
    adjudicator: impl Adjudicator<u64> + 'static,
) -> f64 {
    let versions = correlated_versions(
        CorrelatedSuite::new(n, density, 0.0, seed),
        |x: &u64| x * 2,
        // Version-specific corruption offset: independent wrong values,
        // the assumption behind the 2k+1 rule.
        |c, rng| c + 1 + rng.range_u64(0, 1_000_000),
    );
    let nvp = NVersion::with_adjudicator(versions, adjudicator);
    let mut ctx = ExecContext::new(seed);
    let correct = (0..trials as u64)
        .filter(|x| nvp.run(x, &mut ctx).into_output() == Some(x * 2))
        .count();
    correct as f64 / trials as f64
}

/// Builds the E4 table: rows = N, columns = densities.
#[must_use]
pub fn run(trials: usize, seed: u64) -> Table {
    run_jobs(trials, seed, 1)
}

/// Like [`run`] with the 16 (N, density) cells computed across up to
/// `jobs` worker threads; every cell seeds its own versions and context,
/// so the table is identical for any `jobs`.
#[must_use]
pub fn run_jobs(trials: usize, seed: u64, jobs: usize) -> Table {
    let densities = [0.05, 0.15, 0.30, 0.50];
    let ns = [1usize, 3, 5, 7];
    let tasks: Vec<_> = ns
        .iter()
        .flat_map(|&n| {
            densities
                .iter()
                .map(move |&density| move || reliability(n, density, trials, seed))
        })
        .collect();
    let rates = parallel_tasks(jobs, tasks);

    let mut headers: Vec<String> = vec!["N (tolerates k)".into()];
    headers.extend(densities.iter().map(|d| format!("p={d}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for (row, n) in ns.iter().enumerate() {
        let mut cells = vec![format!("{n} (k={})", (n - 1) / 2)];
        for col in 0..densities.len() {
            cells.push(fmt_rate(rates[row * densities.len() + col]));
        }
        table.row_owned(cells);
    }
    table
}

/// Builds the adjudicator-ablation table at N = 5.
#[must_use]
pub fn run_adjudicator_ablation(trials: usize, seed: u64) -> Table {
    let mut table = Table::new(&["Adjudicator", "p=0.15", "p=0.30"]);
    table.row_owned(vec![
        "majority".into(),
        fmt_rate(reliability_with(
            5,
            0.15,
            trials,
            seed,
            MajorityVoter::new(),
        )),
        fmt_rate(reliability_with(
            5,
            0.30,
            trials,
            seed,
            MajorityVoter::new(),
        )),
    ]);
    table.row_owned(vec![
        "plurality".into(),
        fmt_rate(reliability_with(
            5,
            0.15,
            trials,
            seed,
            PluralityVoter::new(),
        )),
        fmt_rate(reliability_with(
            5,
            0.30,
            trials,
            seed,
            PluralityVoter::new(),
        )),
    ]);
    table.row_owned(vec![
        "median".into(),
        fmt_rate(reliability_with(5, 0.15, trials, seed, MedianVoter::new())),
        fmt_rate(reliability_with(5, 0.30, trials, seed, MedianVoter::new())),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 1500;
    const SEED: u64 = 0xe4;

    #[test]
    fn reliability_grows_with_n_below_half() {
        let r1 = reliability(1, 0.3, T, SEED);
        let r3 = reliability(3, 0.3, T, SEED);
        let r5 = reliability(5, 0.3, T, SEED);
        assert!(r3 > r1 + 0.05, "r1={r1}, r3={r3}");
        assert!(r5 > r3 - 0.02, "r3={r3}, r5={r5}");
    }

    #[test]
    fn crossover_at_one_half() {
        // At p = 0.5 with independent wrong values the majority needs
        // >= 2 *agreeing* outputs; wrong outputs disagree with each other,
        // so NVP still delivers when >= 2 of 3 are correct: ~0.5. But at
        // p clearly above 0.5 the correct plurality collapses.
        let r1 = reliability(1, 0.5, T, SEED);
        let r3 = reliability(3, 0.5, T, SEED);
        assert!((r1 - 0.5).abs() < 0.06, "r1={r1}");
        assert!((r3 - 0.5).abs() < 0.08, "r3={r3}");
    }

    #[test]
    fn plurality_is_at_least_as_lenient_as_majority() {
        let maj = reliability_with(5, 0.3, T, SEED, MajorityVoter::new());
        let plu = reliability_with(5, 0.3, T, SEED, PluralityVoter::new());
        assert!(plu >= maj - 0.02, "maj={maj}, plu={plu}");
    }

    #[test]
    fn median_tolerates_scattered_corruption() {
        let med = reliability_with(5, 0.3, T, SEED, MedianVoter::new());
        // Median needs only >half correct, like majority, but never
        // rejects: with corruptions scattered far away it matches or beats.
        assert!(med > 0.8, "median {med}");
    }

    #[test]
    fn tables_render() {
        assert_eq!(run(200, SEED).len(), 4);
        assert_eq!(run_adjudicator_ablation(200, SEED).len(), 3);
    }

    #[test]
    fn table_is_identical_for_any_job_count() {
        crate::assert_jobs_invariant!(|jobs| run_jobs(200, SEED, jobs));
    }
}
