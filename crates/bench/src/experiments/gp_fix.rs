//! Experiment E14 — GP fault fixing (Weimer 2009, Arcuri 2008): fix rate
//! over the seeded-bug corpus vs search budget.
//!
//! Expected shape: fix rate grows with both generations and population;
//! the corpus is mostly fixable with a moderate budget because repairs
//! are a small edit away from the faulty program (the population is
//! seeded with its mutants).

use redundancy_core::rng::SplitMix64;
use redundancy_gp::corpus::corpus;
use redundancy_gp::engine::GpParams;
use redundancy_sim::table::Table;
use redundancy_techniques::fault_fixing::FaultFixer;

use crate::fmt_rate;

/// Fix statistics for one GP budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixStats {
    /// Programs fully fixed / total.
    pub fix_rate: f64,
    /// Mean best-fitness fraction across programs.
    pub mean_fitness: f64,
    /// Mean generations used by successful fixes.
    pub mean_generations: f64,
}

/// Runs the corpus under a GP budget, `repetitions` times with different
/// suites.
#[must_use]
pub fn corpus_fix_stats(
    population: usize,
    generations: usize,
    repetitions: usize,
    seed: u64,
) -> FixStats {
    let fixer = FaultFixer::new(GpParams {
        population,
        generations,
        ..GpParams::default()
    });
    let mut rng = SplitMix64::new(seed);
    let mut fixed = 0usize;
    let mut total = 0usize;
    let mut fitness_sum = 0.0;
    let mut generations_sum = 0usize;
    for _ in 0..repetitions {
        for program in corpus() {
            let suite = program.suite(50, &mut rng);
            let report = fixer.fix(&program.faulty, program.arity, &suite, &mut rng);
            total += 1;
            fitness_sum += report.best_fitness as f64 / report.total_tests as f64;
            if report.fixed {
                fixed += 1;
                generations_sum += report.generations;
            }
        }
    }
    FixStats {
        fix_rate: fixed as f64 / total as f64,
        mean_fitness: fitness_sum / total as f64,
        mean_generations: if fixed == 0 {
            f64::NAN
        } else {
            generations_sum as f64 / fixed as f64
        },
    }
}

/// Builds the E14 table: fix rate vs budget.
#[must_use]
pub fn run(repetitions: usize, seed: u64) -> Table {
    let mut table = Table::new(&[
        "population x generations",
        "fix rate",
        "mean fitness",
        "mean generations (fixed)",
    ]);
    for (population, generations) in [(20, 10), (50, 40), (150, 80)] {
        let stats = corpus_fix_stats(population, generations, repetitions, seed);
        table.row_owned(vec![
            format!("{population} x {generations}"),
            fmt_rate(stats.fix_rate),
            fmt_rate(stats.mean_fitness),
            if stats.mean_generations.is_nan() {
                "—".to_owned()
            } else {
                format!("{:.1}", stats.mean_generations)
            },
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0xe14;

    #[test]
    fn bigger_budget_fixes_more() {
        let tiny = corpus_fix_stats(10, 3, 2, SEED);
        let large = corpus_fix_stats(150, 80, 2, SEED);
        assert!(
            large.fix_rate > tiny.fix_rate + 0.2,
            "tiny {tiny:?} vs large {large:?}"
        );
        assert!(large.fix_rate > 0.6, "large {large:?}");
    }

    #[test]
    fn fitness_is_high_even_when_not_fully_fixed() {
        let stats = corpus_fix_stats(50, 20, 1, SEED);
        assert!(stats.mean_fitness > 0.8, "{stats:?}");
        assert!(stats.mean_fitness >= stats.fix_rate);
    }

    #[test]
    fn table_renders_three_rows() {
        assert_eq!(run(1, SEED).len(), 3);
    }
}
