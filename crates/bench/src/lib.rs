//! Experiment regenerators for the paper's tables, figure, and
//! quantitative claims.
//!
//! Each module under [`experiments`] reproduces one artifact (see
//! `EXPERIMENTS.md` at the repository root for the index) and is exposed
//! both as a library function returning a [`Table`] — unit-tested for its
//! qualitative shape — and as a binary (`exp_*`) that prints it.
//!
//! The default trial counts keep every binary under a few seconds; set
//! the `REDUNDANCY_TRIALS` environment variable to raise them for tighter
//! confidence intervals.
//!
//! [`Table`]: redundancy_sim::table::Table

#![warn(missing_docs)]

pub mod experiments;

/// Default number of Monte-Carlo trials, overridable via the
/// `REDUNDANCY_TRIALS` environment variable.
#[must_use]
pub fn default_trials() -> usize {
    std::env::var("REDUNDANCY_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000)
}

/// The fixed seed experiments run under (reproducibility); override with
/// `REDUNDANCY_SEED`.
#[must_use]
pub fn default_seed() -> u64 {
    std::env::var("REDUNDANCY_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5eed_2008)
}

/// The worker-thread count for experiment campaigns: `--jobs N` on the
/// command line, else the `REDUNDANCY_JOBS` environment variable, else
/// the hardware's available parallelism.
///
/// Results are bit-for-bit identical for any value (see
/// [`redundancy_sim::parallel`]); the knob only trades wall-clock time
/// for cores.
#[must_use]
pub fn jobs_arg() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            if let Some(n) = args.next().and_then(|s| s.parse().ok()) {
                return n;
            }
        } else if let Some(n) = arg.strip_prefix("--jobs=").and_then(|s| s.parse().ok()) {
            return n;
        }
    }
    match std::env::var("REDUNDANCY_JOBS") {
        Ok(value) => match parse_jobs_env(&value) {
            Ok(jobs) => jobs,
            Err(warning) => {
                if let Some(warning) = warning {
                    eprintln!("{warning}");
                }
                redundancy_sim::available_jobs()
            }
        },
        Err(_) => redundancy_sim::available_jobs(),
    }
}

/// Parses a `REDUNDANCY_JOBS` value: `Ok(n)` for a positive integer,
/// `Err(None)` for an empty value (treated as unset), `Err(Some(msg))`
/// for a set-but-ignored value — [`jobs_arg`] prints the message so a
/// typo (`REDUNDANCY_JOBS=0`, `=abc`) doesn't silently re-serialize the
/// campaign on the hardware default.
fn parse_jobs_env(value: &str) -> Result<usize, Option<String>> {
    match value.trim().parse::<usize>() {
        Ok(jobs) if jobs > 0 => Ok(jobs),
        _ if value.trim().is_empty() => Err(None),
        _ => Err(Some(format!(
            "warning: ignoring REDUNDANCY_JOBS={value:?}: expected a positive integer, \
             using available parallelism"
        ))),
    }
}

/// Default sampling interval of the campaign flight recorder.
pub const DEFAULT_MONITOR_INTERVAL_MS: u64 = 500;

/// How the `--monitor` family of flags resolved for this invocation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MonitorArgs {
    /// Whether the flight recorder should run at all.
    pub enabled: bool,
    /// Sampling interval in milliseconds (`None` = default 500 ms).
    pub interval_ms: Option<u64>,
    /// `--monitor-prom=PATH`: write Prometheus text format here.
    pub prometheus: Option<String>,
    /// `--monitor-jsonl=PATH`: append JSONL snapshots here.
    pub jsonl: Option<String>,
}

/// Resolves the flight-recorder knobs from command-line arguments and
/// the `REDUNDANCY_MONITOR_MS` environment variable.
///
/// `--monitor` turns the recorder on; `--monitor-interval-ms N` (or
/// `=N`), `--monitor-prom=PATH` and `--monitor-jsonl=PATH` each imply
/// it. A valid `REDUNDANCY_MONITOR_MS` turns it on at that interval
/// (explicit flags win); an invalid one still turns it on but returns a
/// warning naming the variable and value — same warn-once contract as
/// `REDUNDANCY_JOBS` — and falls back to the default interval.
pub fn monitor_args<I: Iterator<Item = String>>(
    args: I,
    env_ms: Option<&str>,
) -> (MonitorArgs, Option<String>) {
    let mut resolved = MonitorArgs::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if arg == "--monitor" {
            resolved.enabled = true;
        } else if arg == "--monitor-interval-ms" {
            if let Some(ms) = args.next().and_then(|s| s.parse().ok()) {
                resolved.interval_ms = Some(ms);
                resolved.enabled = true;
            }
        } else if let Some(ms) = arg
            .strip_prefix("--monitor-interval-ms=")
            .and_then(|s| s.parse().ok())
        {
            resolved.interval_ms = Some(ms);
            resolved.enabled = true;
        } else if let Some(path) = arg.strip_prefix("--monitor-prom=") {
            resolved.prometheus = Some(path.to_owned());
            resolved.enabled = true;
        } else if let Some(path) = arg.strip_prefix("--monitor-jsonl=") {
            resolved.jsonl = Some(path.to_owned());
            resolved.enabled = true;
        }
    }
    let mut warning = None;
    if let Some(value) = env_ms {
        match parse_monitor_env(value) {
            Ok(ms) => {
                resolved.enabled = true;
                if resolved.interval_ms.is_none() {
                    resolved.interval_ms = Some(ms);
                }
            }
            Err(None) => {}
            Err(Some(message)) => {
                // The user asked for monitoring, however garbled: run it
                // at the default interval rather than silently not.
                resolved.enabled = true;
                warning = Some(message);
            }
        }
    }
    (resolved, warning)
}

/// Parses a `REDUNDANCY_MONITOR_MS` value: `Ok(ms)` for a positive
/// integer, `Err(None)` for an empty value (treated as unset),
/// `Err(Some(msg))` for a set-but-unusable value.
fn parse_monitor_env(value: &str) -> Result<u64, Option<String>> {
    match value.trim().parse::<u64>() {
        Ok(ms) if ms > 0 => Ok(ms),
        _ if value.trim().is_empty() => Err(None),
        _ => Err(Some(format!(
            "warning: ignoring REDUNDANCY_MONITOR_MS={value:?}: expected a positive integer \
             of milliseconds, monitoring at the default {DEFAULT_MONITOR_INTERVAL_MS} ms"
        ))),
    }
}

/// Starts the campaign flight recorder if this invocation asked for it
/// (`--monitor` / `--monitor-interval-ms` / `--monitor-prom=` /
/// `--monitor-jsonl=` / `REDUNDANCY_MONITOR_MS`); prints the warn-once
/// message for an invalid environment value. The `exp_*` binaries call
/// this at the top of `main` and hold the guard for their lifetime —
/// dropping it writes the final snapshot and switches telemetry off.
#[must_use]
pub fn monitor_from_args() -> Option<redundancy_sim::CampaignMonitor> {
    let env = std::env::var("REDUNDANCY_MONITOR_MS").ok();
    let (resolved, warning) = monitor_args(std::env::args(), env.as_deref());
    if let Some(warning) = warning {
        eprintln!("{warning}");
    }
    if !resolved.enabled {
        return None;
    }
    let config = redundancy_sim::MonitorConfig {
        interval: std::time::Duration::from_millis(
            resolved.interval_ms.unwrap_or(DEFAULT_MONITOR_INTERVAL_MS),
        ),
        live: true,
        prometheus_path: resolved.prometheus.map(std::path::PathBuf::from),
        jsonl_path: resolved.jsonl.map(std::path::PathBuf::from),
    };
    Some(redundancy_sim::CampaignMonitor::start(config))
}

/// Whether `--trace` was passed on the command line: `exp_*` binaries
/// that support it attach a [`RingBufferObserver`] and print the trace
/// [`summary`] (and per-technique metrics) after their tables.
///
/// [`RingBufferObserver`]: redundancy_core::obs::RingBufferObserver
/// [`summary`]: redundancy_core::obs::summary
#[must_use]
pub fn trace_enabled() -> bool {
    std::env::args().any(|arg| arg == "--trace")
}

/// Asserts that an experiment is **jobs-invariant**: the rendered table
/// must be byte-identical whether its campaign runs serially or sharded
/// across worker threads. Pass a closure mapping a job count to anything
/// `Display` (typically `|jobs| run_jobs(trials, SEED, jobs)`); the
/// macro renders it at `jobs = 1` and requires the same bytes at
/// `jobs = 2` and `jobs = 8`.
///
/// Every experiment with a `run_jobs` entry point carries this test —
/// parallelism must only ever trade wall-clock time for cores, never
/// change results.
///
/// # Examples
///
/// ```
/// redundancy_bench::assert_jobs_invariant!(|jobs| {
///     format!("a table that ignores its {} workers", usize::from(jobs > 0))
/// });
/// ```
#[macro_export]
macro_rules! assert_jobs_invariant {
    ($make:expr) => {{
        #[allow(unused_mut)]
        let mut make = $make;
        let serial = make(1usize).to_string();
        for jobs in [2usize, 8] {
            assert_eq!(serial, make(jobs).to_string(), "jobs={jobs}");
        }
    }};
}

/// Formats a rate as a fixed-width string.
#[must_use]
pub fn fmt_rate(rate: f64) -> String {
    format!("{rate:.3}")
}

/// Formats an optional rate ("—" when not applicable).
#[must_use]
pub fn fmt_opt_rate(rate: Option<f64>) -> String {
    rate.map_or_else(|| "   —".to_owned(), |r| format!("{r:.3}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_env_values_parse_warn_or_stay_silent() {
        assert_eq!(parse_jobs_env("4"), Ok(4));
        assert_eq!(parse_jobs_env(" 16 "), Ok(16));
        // Empty is "unset": silent fallback.
        assert_eq!(parse_jobs_env(""), Err(None));
        assert_eq!(parse_jobs_env("  "), Err(None));
        // Garbage and zero warn, naming the variable and the value.
        for bad in ["0", "abc", "-2"] {
            let warning = parse_jobs_env(bad)
                .expect_err("bad value falls back")
                .expect("bad value warns");
            assert!(
                warning.contains("REDUNDANCY_JOBS") && warning.contains(bad),
                "warning must name the variable and the value: {warning}"
            );
        }
    }

    #[test]
    fn monitor_env_values_parse_warn_or_stay_silent() {
        assert_eq!(parse_monitor_env("250"), Ok(250));
        assert_eq!(parse_monitor_env(" 1000 "), Ok(1000));
        assert_eq!(parse_monitor_env(""), Err(None));
        assert_eq!(parse_monitor_env("  "), Err(None));
        for bad in ["0", "fast", "-5"] {
            let warning = parse_monitor_env(bad)
                .expect_err("bad value falls back")
                .expect("bad value warns");
            assert!(
                warning.contains("REDUNDANCY_MONITOR_MS") && warning.contains(bad),
                "warning must name the variable and the value: {warning}"
            );
        }
    }

    fn resolve(args: &[&str], env: Option<&str>) -> (MonitorArgs, Option<String>) {
        monitor_args(args.iter().map(ToString::to_string), env)
    }

    #[test]
    fn monitor_flags_resolve_and_imply_enablement() {
        let (off, warning) = resolve(&["exp", "--jobs", "4"], None);
        assert_eq!(off, MonitorArgs::default());
        assert!(warning.is_none());

        let (on, _) = resolve(&["exp", "--monitor"], None);
        assert!(on.enabled);
        assert_eq!(on.interval_ms, None);

        for args in [
            &["exp", "--monitor-interval-ms", "50"][..],
            &["exp", "--monitor-interval-ms=50"][..],
        ] {
            let (resolved, _) = resolve(args, None);
            assert!(resolved.enabled, "interval flag implies --monitor");
            assert_eq!(resolved.interval_ms, Some(50));
        }

        let (paths, _) = resolve(
            &[
                "exp",
                "--monitor-prom=/tmp/m.prom",
                "--monitor-jsonl=m.jsonl",
            ],
            None,
        );
        assert!(paths.enabled, "export paths imply --monitor");
        assert_eq!(paths.prometheus.as_deref(), Some("/tmp/m.prom"));
        assert_eq!(paths.jsonl.as_deref(), Some("m.jsonl"));
    }

    #[test]
    fn monitor_env_enables_but_explicit_interval_wins() {
        let (from_env, warning) = resolve(&["exp"], Some("250"));
        assert!(from_env.enabled);
        assert_eq!(from_env.interval_ms, Some(250));
        assert!(warning.is_none());

        let (explicit, _) = resolve(&["exp", "--monitor-interval-ms=50"], Some("250"));
        assert_eq!(explicit.interval_ms, Some(50));

        // Garbage env still turns monitoring on, at the default interval,
        // and surfaces the warn-once message.
        let (garbled, warning) = resolve(&["exp"], Some("fast"));
        assert!(garbled.enabled);
        assert_eq!(garbled.interval_ms, None);
        assert!(warning
            .expect("garbage warns")
            .contains("REDUNDANCY_MONITOR_MS"));

        // Empty env is "unset": silent, stays off.
        let (unset, warning) = resolve(&["exp"], Some(""));
        assert!(!unset.enabled);
        assert!(warning.is_none());
    }
}
