//! Experiment regenerators for the paper's tables, figure, and
//! quantitative claims.
//!
//! Each module under [`experiments`] reproduces one artifact (see
//! `EXPERIMENTS.md` at the repository root for the index) and is exposed
//! both as a library function returning a [`Table`] — unit-tested for its
//! qualitative shape — and as a binary (`exp_*`) that prints it.
//!
//! The default trial counts keep every binary under a few seconds; set
//! the `REDUNDANCY_TRIALS` environment variable to raise them for tighter
//! confidence intervals.
//!
//! [`Table`]: redundancy_sim::table::Table

#![warn(missing_docs)]

pub mod experiments;

/// Default number of Monte-Carlo trials, overridable via the
/// `REDUNDANCY_TRIALS` environment variable.
#[must_use]
pub fn default_trials() -> usize {
    std::env::var("REDUNDANCY_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000)
}

/// The fixed seed experiments run under (reproducibility); override with
/// `REDUNDANCY_SEED`.
#[must_use]
pub fn default_seed() -> u64 {
    std::env::var("REDUNDANCY_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5eed_2008)
}

/// The worker-thread count for experiment campaigns: `--jobs N` on the
/// command line, else the `REDUNDANCY_JOBS` environment variable, else
/// the hardware's available parallelism.
///
/// Results are bit-for-bit identical for any value (see
/// [`redundancy_sim::parallel`]); the knob only trades wall-clock time
/// for cores.
#[must_use]
pub fn jobs_arg() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            if let Some(n) = args.next().and_then(|s| s.parse().ok()) {
                return n;
            }
        } else if let Some(n) = arg.strip_prefix("--jobs=").and_then(|s| s.parse().ok()) {
            return n;
        }
    }
    match std::env::var("REDUNDANCY_JOBS") {
        Ok(value) => match parse_jobs_env(&value) {
            Ok(jobs) => jobs,
            Err(warning) => {
                if let Some(warning) = warning {
                    eprintln!("{warning}");
                }
                redundancy_sim::available_jobs()
            }
        },
        Err(_) => redundancy_sim::available_jobs(),
    }
}

/// Parses a `REDUNDANCY_JOBS` value: `Ok(n)` for a positive integer,
/// `Err(None)` for an empty value (treated as unset), `Err(Some(msg))`
/// for a set-but-ignored value — [`jobs_arg`] prints the message so a
/// typo (`REDUNDANCY_JOBS=0`, `=abc`) doesn't silently re-serialize the
/// campaign on the hardware default.
fn parse_jobs_env(value: &str) -> Result<usize, Option<String>> {
    match value.trim().parse::<usize>() {
        Ok(jobs) if jobs > 0 => Ok(jobs),
        _ if value.trim().is_empty() => Err(None),
        _ => Err(Some(format!(
            "warning: ignoring REDUNDANCY_JOBS={value:?}: expected a positive integer, \
             using available parallelism"
        ))),
    }
}

/// Whether `--trace` was passed on the command line: `exp_*` binaries
/// that support it attach a [`RingBufferObserver`] and print the trace
/// [`summary`] (and per-technique metrics) after their tables.
///
/// [`RingBufferObserver`]: redundancy_core::obs::RingBufferObserver
/// [`summary`]: redundancy_core::obs::summary
#[must_use]
pub fn trace_enabled() -> bool {
    std::env::args().any(|arg| arg == "--trace")
}

/// Asserts that an experiment is **jobs-invariant**: the rendered table
/// must be byte-identical whether its campaign runs serially or sharded
/// across worker threads. Pass a closure mapping a job count to anything
/// `Display` (typically `|jobs| run_jobs(trials, SEED, jobs)`); the
/// macro renders it at `jobs = 1` and requires the same bytes at
/// `jobs = 2` and `jobs = 8`.
///
/// Every experiment with a `run_jobs` entry point carries this test —
/// parallelism must only ever trade wall-clock time for cores, never
/// change results.
///
/// # Examples
///
/// ```
/// redundancy_bench::assert_jobs_invariant!(|jobs| {
///     format!("a table that ignores its {} workers", usize::from(jobs > 0))
/// });
/// ```
#[macro_export]
macro_rules! assert_jobs_invariant {
    ($make:expr) => {{
        #[allow(unused_mut)]
        let mut make = $make;
        let serial = make(1usize).to_string();
        for jobs in [2usize, 8] {
            assert_eq!(serial, make(jobs).to_string(), "jobs={jobs}");
        }
    }};
}

/// Formats a rate as a fixed-width string.
#[must_use]
pub fn fmt_rate(rate: f64) -> String {
    format!("{rate:.3}")
}

/// Formats an optional rate ("—" when not applicable).
#[must_use]
pub fn fmt_opt_rate(rate: Option<f64>) -> String {
    rate.map_or_else(|| "   —".to_owned(), |r| format!("{r:.3}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_env_values_parse_warn_or_stay_silent() {
        assert_eq!(parse_jobs_env("4"), Ok(4));
        assert_eq!(parse_jobs_env(" 16 "), Ok(16));
        // Empty is "unset": silent fallback.
        assert_eq!(parse_jobs_env(""), Err(None));
        assert_eq!(parse_jobs_env("  "), Err(None));
        // Garbage and zero warn, naming the variable and the value.
        for bad in ["0", "abc", "-2"] {
            let warning = parse_jobs_env(bad)
                .expect_err("bad value falls back")
                .expect("bad value warns");
            assert!(
                warning.contains("REDUNDANCY_JOBS") && warning.contains(bad),
                "warning must name the variable and the value: {warning}"
            );
        }
    }
}
