//! Runs every experiment regenerator in sequence (the full reproduction).
//!
//! Pass `--jobs N` to compute independent experiment cells across N
//! worker threads (default: all cores). Every table is identical for
//! any value — parallelism only changes wall-clock time.

use redundancy_bench::experiments as exp;
use redundancy_bench::{default_seed, default_trials, jobs_arg};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    // E19 scripts worker kills and catches them; keep the default
    // hook's backtraces for real panics only.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !redundancy_sim::ChaosPlan::is_chaos_panic(info.payload()) {
            default_hook(info);
        }
    }));
    let trials = default_trials();
    let seed = default_seed();
    let jobs = jobs_arg();
    let rule = "=".repeat(72);

    println!("{rule}\nT1 — Table 1\n{rule}");
    print!("{}", exp::table1::run());
    println!("{rule}\nT2 — Table 2 (empirical)\n{rule}");
    print!("{}", exp::table2_matrix::run_jobs(trials, seed, jobs));
    println!("{rule}\nF1 — Figure 1 patterns\n{rule}");
    print!("{}", exp::fig1_patterns::run_jobs(trials, seed, jobs));
    println!("{rule}\nE4 — 2k+1 tolerance\n{rule}");
    print!("{}", exp::nvp_tolerance::run_jobs(trials, seed, jobs));
    println!("{rule}\nE5 — correlated faults\n{rule}");
    print!("{}", exp::correlated::run(trials, seed));
    println!("{rule}\nE6 — cost/efficacy\n{rule}");
    print!("{}", exp::cost_efficacy::run(trials, seed));
    println!("{rule}\nE7a — rejuvenation failure rates\n{rule}");
    print!(
        "{}",
        exp::rejuvenation::run_failure_rates_jobs(trials, seed, jobs)
    );
    println!("{rule}\nE7b — completion-time U-curve\n{rule}");
    print!("{}", exp::rejuvenation::run_completion_jobs(60, seed, jobs));
    println!("{rule}\nE8 — data diversity\n{rule}");
    print!("{}", exp::data_diversity::run(trials, seed));
    println!("{rule}\nE9 — security diversity\n{rule}");
    print!("{}", exp::security::run(trials.min(1000), seed));
    println!("{rule}\nE10 — RX vs re-execution\n{rule}");
    print!("{}", exp::rx::run(trials, seed));
    println!("{rule}\nE10b — RX knob ablation\n{rule}");
    print!("{}", exp::rx_ablation::run(trials, seed));
    println!("{rule}\nE11 — reboot policies\n{rule}");
    print!("{}", exp::microreboot::run_jobs(50_000, seed, jobs));
    println!("{rule}\nE12 — service substitution\n{rule}");
    print!("{}", exp::substitution::run(trials, seed));
    println!("{rule}\nE13 — automatic workarounds\n{rule}");
    print!("{}", exp::workarounds::run(trials, seed));
    println!("{rule}\nE14 — GP fault fixing\n{rule}");
    print!("{}", exp::gp_fix::run(3, seed));
    println!("{rule}\nE15 — healer wrappers\n{rule}");
    print!("{}", exp::wrappers::run(trials, seed));
    println!("{rule}\nE16 — robust data structures\n{rule}");
    print!("{}", exp::robust_data::run(trials, seed));
    println!("{rule}\nE17 — checkpoint-interval U-curve\n{rule}");
    print!("{}", exp::checkpoint_interval::run(60, seed));
    println!("{rule}\nE18 — eager adjudication early exit\n{rule}");
    print!("{}", exp::early_exit::run_jobs(trials, seed, jobs));
    print!("{}", exp::early_exit::run_quorum_jobs(trials, seed, jobs));
    println!("{rule}\nE19 — resumable campaigns: interval vs work lost\n{rule}");
    print!("{}", exp::resume::run_jobs(128, seed, jobs));
    println!("{rule}\nE20 — event-loop service runtime\n{rule}");
    print!("{}", exp::services_rt::run_jobs(trials, seed, jobs));
}
