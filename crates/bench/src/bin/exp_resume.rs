//! Extension experiment: resumable campaigns — checkpoint interval vs
//! work lost to an injected kill, plus the traced chaos smoke check.
//!
//! `--smoke` runs a reduced configuration suitable for CI
//! (`make chaos-smoke`).

use redundancy_bench::experiments::resume;
use redundancy_bench::{default_seed, jobs_arg};
use redundancy_core::obs::telemetry::{Counter, Telemetry};
use redundancy_sim::ChaosPlan;

fn main() {
    let monitor = redundancy_bench::monitor_from_args();
    // The chaos experiment reports its injected faults from the flight
    // recorder, so keep telemetry on even without --monitor.
    Telemetry::global().set_enabled(true);
    // The experiment *scripts* worker kills and catches them; keep the
    // default hook's backtraces for real panics only.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !ChaosPlan::is_chaos_panic(info.payload()) {
            default_hook(info);
        }
    }));
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let trials = if smoke { 64 } else { 256 };
    let seed = default_seed();
    println!("E19 — resumable campaigns: checkpoint interval vs work lost");
    println!(
        "({trials} trials, kill injected before trial {})\n",
        trials * 3 / 4
    );
    print!("{}", resume::run_jobs(trials, seed, jobs_arg()));
    let kills = resume::chaos_smoke(if smoke { 60 } else { 120 }, seed, jobs_arg());
    println!(
        "\nchaos smoke: PASS — traced campaign survived {kills} scripted kill(s); \
         resumed summary and event stream byte-identical to the clean run"
    );
    let recorded = Telemetry::global().snapshot();
    println!(
        "flight recorder: {} worker kill(s), {} cancel fuse(s), {} injected delay(s); \
         pool caught {} panic(s), suppressed {} duplicate(s)",
        recorded.counter(Counter::ChaosKills),
        recorded.counter(Counter::ChaosCancels),
        recorded.counter(Counter::ChaosDelays),
        recorded.counter(Counter::PoolPanicsCaught),
        recorded.counter(Counter::PoolPanicsSuppressed),
    );
    drop(monitor);
}
