//! Experiment E8: failure-region escape by input re-expression.

use redundancy_bench::{default_seed, default_trials, jobs_arg};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    println!("E8 — data diversity (fault density 0.3)\n");
    print!(
        "{}",
        redundancy_bench::experiments::data_diversity::run_jobs(
            default_trials(),
            default_seed(),
            jobs_arg()
        )
    );
}
