//! Flight-recorder smoke check (`make monitor-smoke`).
//!
//! Runs one campaign twice — bare, then under a fast-sampling
//! [`CampaignMonitor`] exporting Prometheus text and JSONL snapshots to
//! temporary files — and verifies the recorder's whole contract: the
//! monitored summary is bit-identical to the bare one, the Prometheus
//! output passes the exposition-format validator and names the expected
//! metric families, and every JSONL line is well-formed.

use std::time::Duration;

use redundancy_core::cost::Cost;
use redundancy_core::obs::prometheus;
use redundancy_sim::monitor::validate_json_line;
use redundancy_sim::{Campaign, CampaignMonitor, MonitorConfig, TrialOutcome, TrialSummary};

const TRIALS: usize = 4_000;
const SEED: u64 = 0x5eed_2008;

/// A deterministic trial slow enough (~20µs of integer spin) that the
/// campaign spans several 10 ms sampling intervals.
fn spin_trial(seed: u64, _i: usize) -> TrialOutcome {
    let mut acc = seed | 1;
    for _ in 0..4_000 {
        acc = acc
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
    }
    let cost = Cost::of_invocation(1, acc % 7);
    match acc % 10 {
        0 => TrialOutcome::Undetected { cost },
        1 | 2 => TrialOutcome::Detected { cost },
        _ => TrialOutcome::Correct { cost },
    }
}

fn run_campaign(jobs: usize) -> TrialSummary {
    Campaign::new(TRIALS).run_parallel(SEED, jobs, spin_trial)
}

fn main() {
    let jobs = redundancy_bench::jobs_arg();
    println!("monitor smoke — flight recorder on a {TRIALS}-trial campaign ({jobs} jobs)");

    let baseline = run_campaign(jobs);

    let stamp = std::process::id();
    let prom_path = std::env::temp_dir().join(format!("redundancy-monitor-{stamp}.prom"));
    let jsonl_path = std::env::temp_dir().join(format!("redundancy-monitor-{stamp}.jsonl"));
    let monitor = CampaignMonitor::start(MonitorConfig {
        interval: Duration::from_millis(10),
        live: false,
        prometheus_path: Some(prom_path.clone()),
        jsonl_path: Some(jsonl_path.clone()),
    });
    let monitored = run_campaign(jobs);
    monitor.stop();

    assert_eq!(
        monitored, baseline,
        "monitoring must never change campaign results"
    );
    println!("summary bit-identical with monitor on: OK");

    let prom = std::fs::read_to_string(&prom_path).expect("prometheus export written");
    let families = match prometheus::validate(&prom) {
        Ok(families) => families,
        Err(err) => panic!("prometheus export failed validation: {err}"),
    };
    for name in [
        "redundancy_trials_scheduled_total",
        "redundancy_trials_correct_total",
        "redundancy_chunks_claimed_total",
        "redundancy_worker_busy_ns_total",
        "redundancy_trial_ns_bucket",
        "redundancy_chunk_claim_ns_count",
    ] {
        assert!(
            prom.contains(name),
            "prometheus export missing expected metric {name}"
        );
    }
    println!("prometheus export valid: {families} metric families");

    let jsonl = std::fs::read_to_string(&jsonl_path).expect("jsonl export written");
    let snapshots = jsonl.lines().count();
    assert!(snapshots >= 1, "monitor recorded no JSONL snapshots");
    for (i, line) in jsonl.lines().enumerate() {
        if let Err(err) = validate_json_line(line) {
            panic!("malformed JSONL snapshot on line {}: {err}", i + 1);
        }
        assert!(
            line.contains("\"trials_per_sec\"") && line.contains("\"counters\""),
            "JSONL snapshot missing expected fields: {line}"
        );
    }
    println!("jsonl export valid: {snapshots} snapshot(s)");

    let _ = std::fs::remove_file(&prom_path);
    let _ = std::fs::remove_file(&jsonl_path);
    println!("\nmonitor smoke: PASS — identical results, parseable Prometheus and JSONL export");
}
