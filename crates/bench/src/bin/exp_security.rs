//! Experiment E9: attack-stopping rates of diversity-based defenses.

use redundancy_bench::{default_seed, default_trials, jobs_arg};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    println!("E9 — attacks stopped vs replica/variant count\n");
    print!(
        "{}",
        redundancy_bench::experiments::security::run_jobs(
            default_trials().min(1000),
            default_seed(),
            jobs_arg()
        )
    );
}
