//! Experiment E15: heap-smash prevention by wrappers and padding.

use redundancy_bench::{default_seed, default_trials, jobs_arg};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    println!("E15 — heap smashing (64-byte buffers, 1..=128-byte overflows)\n");
    print!(
        "{}",
        redundancy_bench::experiments::wrappers::run_jobs(
            default_trials(),
            default_seed(),
            jobs_arg()
        )
    );
}
