//! Regenerates Figure 1 as a quantitative pattern comparison.
//!
//! Pass `--trace` to also capture the structured event stream and print
//! its aggregate summary, and `--jobs N` to measure the three patterns
//! across N worker threads (default: all cores; the table is identical
//! for any value).

use std::sync::Arc;

use redundancy_bench::{default_seed, default_trials, jobs_arg};
use redundancy_core::obs::{summary, Observer, RingBufferObserver};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    let trials = default_trials();
    let jobs = jobs_arg();
    let trace = redundancy_bench::trace_enabled();
    let ring = RingBufferObserver::shared(1 << 18);
    let observer = trace.then(|| ring.clone() as Arc<dyn Observer>);

    println!("Figure 1 — architectural patterns on identical variants");
    println!("(3 variants, 25% independent fault density, {trials} requests, {jobs} jobs)\n");
    print!(
        "{}",
        redundancy_bench::experiments::fig1_patterns::run_traced_jobs(
            trials,
            default_seed(),
            observer,
            jobs
        )
    );

    if trace {
        println!(
            "\n--trace summary (most recent {} events kept):\n",
            ring.capacity()
        );
        print!("{}", summary(&ring.events()));
        if ring.dropped() > 0 {
            println!("({} older events evicted)", ring.dropped());
        }
    }
}
