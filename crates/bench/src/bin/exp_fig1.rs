//! Regenerates Figure 1 as a quantitative pattern comparison.

use redundancy_bench::{default_seed, default_trials};

fn main() {
    let trials = default_trials();
    println!("Figure 1 — architectural patterns on identical variants");
    println!("(3 variants, 25% independent fault density, {trials} requests)\n");
    print!(
        "{}",
        redundancy_bench::experiments::fig1_patterns::run(trials, default_seed())
    );
}
