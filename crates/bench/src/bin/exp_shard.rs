//! Experiment E21: the sharded service runtime with per-provider
//! circuit breakers — bursty arrivals, one sick provider, hedged
//! policy.
//!
//! `--smoke` runs a reduced request count and then enforces the PR's
//! acceptance gates (`make services-shard-smoke`):
//!
//! 1. with breakers off, shards ∈ {1, 2, 8} reproduce a bit-identical
//!    ledger digest (sharding changes wall-clock only);
//! 2. with breakers on, a fixed shard count is jobs-invariant (same
//!    digest on 1 or 4 pool workers);
//! 3. the breaker measurably cuts failed attempts vs the breakerless
//!    run, with hedged p99 no worse than the single-loop baseline;
//! 4. the service/breaker telemetry totals are scheduling-invariant:
//!    the same counters whether the shard loops run serially or
//!    in parallel.

use redundancy_bench::experiments::shard_rt;
use redundancy_bench::{default_seed, default_trials, jobs_arg};
use redundancy_core::obs::telemetry::{Counter, Telemetry};

/// Sums the service-runtime counters that must not depend on how shard
/// loops were scheduled onto pool workers.
fn service_totals() -> Vec<(Counter, u64)> {
    let snapshot = Telemetry::global().snapshot();
    Counter::ALL
        .iter()
        .filter(|c| c.name().starts_with("service_"))
        .map(|&c| (c, snapshot.counter(c)))
        .collect()
}

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    // Time is virtual, so the smoke run can afford the full default
    // scale — and needs it: at 8 shards each breaker judges only its
    // own slice, so tiny workloads never fill the profile windows.
    let trials = if smoke { 2_000 } else { default_trials() };
    let seed = default_seed();
    let shards = redundancy_services::config::shards_from_env(8);
    println!(
        "E21 — sharded service runtime with circuit breakers ({trials} requests/cell, \
         3 providers with one sick, bursty on/off arrivals, hedged policy; \
         REDUNDANCY_SHARDS resolved to {shards} for ad-hoc runs)\n"
    );
    print!("{}", shard_rt::run_jobs(trials, seed, jobs_arg()));
    if !smoke {
        return;
    }
    let requests = trials as u64;

    // Gate 1: breaker-off digests are shard-count invariant.
    let baseline = shard_rt::run_sharded(1, requests, seed, false);
    for shards in shard_rt::SHARD_COUNTS {
        let report = shard_rt::run_sharded(shards, requests, seed, false);
        assert_eq!(
            report.ledger_digest(),
            baseline.ledger_digest(),
            "shards={shards} digest drifted from the single-loop baseline"
        );
    }

    // Gate 2: breaker-on runs are jobs-invariant at a fixed shard count.
    let on_serial = shard_rt::run_sharded_jobs(8, requests, seed, true, 1);
    let on_parallel = shard_rt::run_sharded_jobs(8, requests, seed, true, 4);
    assert_eq!(
        on_serial, on_parallel,
        "breaker run must be bit-identical on 1 and 4 pool workers"
    );

    // Gate 3: the breaker cuts failed attempts without losing the tail.
    let off = shard_rt::run_sharded(8, requests, seed, false);
    assert!(on_serial.breaker_opens > 0, "sick provider must trip");
    assert!(
        on_serial.attempts_failed < off.attempts_failed,
        "breaker must cut failed attempts: {} (on) vs {} (off)",
        on_serial.attempts_failed,
        off.attempts_failed
    );
    let p99_on = on_serial.latency_quantile(0.99).expect("ledger not empty");
    let p99_base = baseline.latency_quantile(0.99).expect("ledger not empty");
    assert!(
        p99_on <= p99_base,
        "hedged p99 with breakers ({p99_on}) must not regress the \
         single-loop baseline ({p99_base})"
    );

    // Gate 4: telemetry totals are scheduling-invariant. Run the same
    // campaign serially and on 4 workers; the service counter deltas
    // must agree exactly. (In-binary rather than a unit test: counters
    // are process-global, so this needs a process to itself.)
    let telemetry = Telemetry::global();
    let was_enabled = telemetry.is_enabled();
    telemetry.set_enabled(true);
    telemetry.reset();
    let _ = shard_rt::run_sharded_jobs(8, requests, seed, true, 1);
    let serial_totals = service_totals();
    telemetry.reset();
    let _ = shard_rt::run_sharded_jobs(8, requests, seed, true, 4);
    let parallel_totals = service_totals();
    telemetry.set_enabled(was_enabled);
    for ((counter, serial), (_, parallel)) in serial_totals.iter().zip(&parallel_totals) {
        assert_eq!(
            serial,
            parallel,
            "{} total depends on pool scheduling",
            counter.name()
        );
    }
    let shard_runs = serial_totals
        .iter()
        .find(|(c, _)| *c == Counter::ServiceShardRuns)
        .map_or(0, |(_, v)| *v);
    assert_eq!(shard_runs, 8, "one shard-run count per shard");

    println!(
        "\nshard smoke: PASS — digest {:#018x} at shards {{1,2,8}}, breaker cut \
         failed attempts {} → {}, p99 {:.1} µs ≤ baseline {:.1} µs, telemetry \
         scheduling-invariant",
        baseline.ledger_digest(),
        off.attempts_failed,
        on_serial.attempts_failed,
        p99_on as f64 / 1_000.0,
        p99_base as f64 / 1_000.0,
    );
}
