//! Experiment E10: RX vs plain re-execution by fault type.

use redundancy_bench::{default_seed, default_trials, jobs_arg};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    println!("E10 — recovery by fault type (density 0.35, 6 attempts)\n");
    print!(
        "{}",
        redundancy_bench::experiments::rx::run_jobs(default_trials(), default_seed(), jobs_arg())
    );
}
