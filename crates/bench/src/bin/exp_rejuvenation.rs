//! Experiment E7: rejuvenation cadence and the completion-time U-curve.

use redundancy_bench::{default_seed, default_trials};

fn main() {
    let seed = default_seed();
    println!("E7a — aging-failure rate vs rejuvenation cadence\n");
    print!(
        "{}",
        redundancy_bench::experiments::rejuvenation::run_failure_rates(default_trials(), seed)
    );
    println!("\nE7b — completion time vs rejuvenate-every-N-checkpoints (Garg)\n");
    print!(
        "{}",
        redundancy_bench::experiments::rejuvenation::run_completion(60, seed)
    );
}
