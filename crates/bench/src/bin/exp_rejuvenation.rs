//! Experiment E7: rejuvenation cadence and the completion-time U-curve.

use redundancy_bench::{default_seed, default_trials, jobs_arg};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    let seed = default_seed();
    let jobs = jobs_arg();
    println!("E7a — aging-failure rate vs rejuvenation cadence\n");
    print!(
        "{}",
        redundancy_bench::experiments::rejuvenation::run_failure_rates_jobs(
            default_trials(),
            seed,
            jobs
        )
    );
    println!("\nE7b — completion time vs rejuvenate-every-N-checkpoints (Garg)\n");
    print!(
        "{}",
        redundancy_bench::experiments::rejuvenation::run_completion_jobs(60, seed, jobs)
    );
}
