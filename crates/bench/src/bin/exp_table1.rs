//! Regenerates the paper's Table 1 (taxonomy dimensions).

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    println!("Table 1 — taxonomy for redundancy-based mechanisms\n");
    print!("{}", redundancy_bench::experiments::table1::run());
}
