//! Experiment E13: workaround success vs intrinsic redundancy degree.

use redundancy_bench::{default_seed, default_trials, jobs_arg};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    println!("E13 — failures worked around vs equivalence rules known\n");
    print!(
        "{}",
        redundancy_bench::experiments::workarounds::run_jobs(
            default_trials(),
            default_seed(),
            jobs_arg()
        )
    );
}
