//! Experiment E6: the cost/efficacy frontier of code redundancy.

use redundancy_bench::{default_seed, default_trials, jobs_arg};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    println!("E6 — cost vs efficacy (fault density 0.25)\n");
    print!(
        "{}",
        redundancy_bench::experiments::cost_efficacy::run_jobs(
            default_trials(),
            default_seed(),
            jobs_arg()
        )
    );
}
