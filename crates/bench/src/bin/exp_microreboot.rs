//! Experiment E11: reboot policies on the JAGR component tree.

use redundancy_bench::{default_seed, jobs_arg};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    println!("E11 — availability and recovery time by reboot policy\n");
    print!(
        "{}",
        redundancy_bench::experiments::microreboot::run_jobs(50_000, default_seed(), jobs_arg())
    );
}
