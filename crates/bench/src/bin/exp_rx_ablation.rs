//! Ablation: which RX perturbation knob cures which fault family.

use redundancy_bench::{default_seed, default_trials, jobs_arg};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    println!("E10b — RX knob ablation (fault density 0.4, 6 rounds)\n");
    print!(
        "{}",
        redundancy_bench::experiments::rx_ablation::run_jobs(
            default_trials(),
            default_seed(),
            jobs_arg()
        )
    );
}
