//! Experiment E4: the 2k+1 rule and the adjudicator ablation.

use redundancy_bench::{default_seed, default_trials, jobs_arg};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    let trials = default_trials();
    let seed = default_seed();
    let jobs = jobs_arg();
    println!("E4 — N-version reliability vs N and fault density\n");
    print!(
        "{}",
        redundancy_bench::experiments::nvp_tolerance::run_jobs(trials, seed, jobs)
    );
    println!("\nAdjudicator ablation at N = 5:\n");
    print!(
        "{}",
        redundancy_bench::experiments::nvp_tolerance::run_adjudicator_ablation(trials, seed)
    );
}
