//! Experiment E12: availability vs number of alternative providers.

use redundancy_bench::{default_seed, default_trials, jobs_arg};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    println!("E12 — dynamic service substitution (provider failure rate 0.4)\n");
    print!(
        "{}",
        redundancy_bench::experiments::substitution::run_jobs(
            default_trials(),
            default_seed(),
            jobs_arg()
        )
    );
}
