//! Extension experiment: the checkpoint-interval U-curve (Young's rule).

use redundancy_bench::{default_seed, jobs_arg};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    println!("E17 — completion time vs checkpoint interval");
    println!("(20k work units, checkpoint cost 25, failure rate 0.002/unit)\n");
    print!(
        "{}",
        redundancy_bench::experiments::checkpoint_interval::run_jobs(
            60,
            default_seed(),
            jobs_arg()
        )
    );
}
