//! Experiment E18: what eager adjudication saves — cost and recovery
//! latency vs N and quorum size under both decision policies.

use redundancy_bench::{default_seed, default_trials, jobs_arg};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    let trials = default_trials();
    let seed = default_seed();
    let jobs = jobs_arg();
    println!("E18 — eager vs exhaustive adjudication, majority voting vs N\n");
    print!(
        "{}",
        redundancy_bench::experiments::early_exit::run_jobs(trials, seed, jobs)
    );
    println!("\nQuorum sweep at N = 5:\n");
    print!(
        "{}",
        redundancy_bench::experiments::early_exit::run_quorum_jobs(trials, seed, jobs)
    );
}
