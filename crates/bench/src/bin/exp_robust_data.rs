//! Experiment E16: robust-structure detection and repair rates.

use redundancy_bench::{default_seed, default_trials, jobs_arg};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    println!("E16 — robust data structures under corruption\n");
    print!(
        "{}",
        redundancy_bench::experiments::robust_data::run_jobs(
            default_trials(),
            default_seed(),
            jobs_arg()
        )
    );
}
