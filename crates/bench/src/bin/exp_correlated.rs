//! Experiment E5: reliability collapse under correlated faults.

use redundancy_bench::{default_seed, default_trials};

fn main() {
    println!("E5 — NVP(3) reliability vs failure correlation (density 0.2)\n");
    print!(
        "{}",
        redundancy_bench::experiments::correlated::run(default_trials(), default_seed())
    );
}
