//! Experiment E5: reliability collapse under correlated faults.

use redundancy_bench::{default_seed, default_trials, jobs_arg};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    println!("E5 — NVP(3) reliability vs failure correlation (density 0.2)\n");
    print!(
        "{}",
        redundancy_bench::experiments::correlated::run_jobs(
            default_trials(),
            default_seed(),
            jobs_arg()
        )
    );
}
