//! Experiment E20: the event-loop service runtime under degradation —
//! hedged requests and failover budgets vs no redundancy.
//!
//! `--smoke` runs a reduced request count suitable for CI
//! (`make services-smoke`); the full run uses `REDUNDANCY_TRIALS`
//! requests per cell (default 2000).

use redundancy_bench::experiments::services_rt;
use redundancy_bench::{default_seed, default_trials, jobs_arg};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let trials = if smoke { 300 } else { default_trials() };
    let seed = default_seed();
    println!(
        "E20 — event-loop service runtime ({trials} requests/cell, 3 providers, \
         100 µs mean interarrival, 100 ms deadline)\n"
    );
    print!("{}", services_rt::run_jobs(trials, seed, jobs_arg()));
    if smoke {
        // The CI gate: the determinism claim, re-proven end to end.
        let a = services_rt::run_cell("spiky", "hedged", trials as u64, seed);
        let b = services_rt::run_cell("spiky", "hedged", trials as u64, seed);
        assert_eq!(
            a.ledger_digest(),
            b.ledger_digest(),
            "seeded ledger must be bit-identical"
        );
        println!(
            "\nservices smoke: PASS — ledger digest {:#018x} reproduced",
            a.ledger_digest()
        );
    }
}
