//! Regenerates the paper's Table 2 with empirical fault-class validation.
//!
//! Pass `--trace` to also capture the structured event stream of every
//! scenario and print its aggregate summary, and `--jobs N` to compute
//! the technique rows across N worker threads (default: all cores; the
//! tables are identical for any value).

use std::sync::Arc;

use redundancy_bench::{default_seed, default_trials, jobs_arg};
use redundancy_core::obs::{summary, Observer, RingBufferObserver};

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    let trials = default_trials();
    let seed = default_seed();
    let jobs = jobs_arg();
    let trace = redundancy_bench::trace_enabled();
    let ring = RingBufferObserver::shared(1 << 18);
    let extra = trace.then(|| ring.clone() as Arc<dyn Observer>);

    println!("Table 2 — classification + empirical delivery rate under fault load");
    println!("({trials} trials per cell, fault strength 0.3, seed {seed:#x}, {jobs} jobs)\n");
    let (matrix, latency) =
        redundancy_bench::experiments::table2_matrix::run_traced_jobs(trials, seed, extra, jobs);
    print!("{matrix}");
    println!("\nStatic classification (as printed in the paper):\n");
    print!("{}", redundancy_techniques::table2::render());
    println!("\nPer-technique recovery latency (SimClock ticks; a recovery is a");
    println!("technique run accepted despite dissenting/failed variants):\n");
    print!("{latency}");

    if trace {
        println!(
            "\n--trace summary (most recent {} events kept):\n",
            ring.capacity()
        );
        print!("{}", summary(&ring.events()));
        if ring.dropped() > 0 {
            println!("({} older events evicted)", ring.dropped());
        }
    }
}
