//! Regenerates the paper's Table 2 with empirical fault-class validation.

use redundancy_bench::{default_seed, default_trials};

fn main() {
    let trials = default_trials();
    let seed = default_seed();
    println!("Table 2 — classification + empirical delivery rate under fault load");
    println!("({trials} trials per cell, fault strength 0.3, seed {seed:#x})\n");
    print!(
        "{}",
        redundancy_bench::experiments::table2_matrix::run(trials, seed)
    );
    println!("\nStatic classification (as printed in the paper):\n");
    print!("{}", redundancy_techniques::table2::render());
}
