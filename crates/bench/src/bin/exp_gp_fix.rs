//! Experiment E14: GP fix rate vs search budget.

use redundancy_bench::default_seed;

fn main() {
    let _monitor = redundancy_bench::monitor_from_args();
    println!("E14 — GP fault fixing on the seeded-bug corpus (3 repetitions)\n");
    print!(
        "{}",
        redundancy_bench::experiments::gp_fix::run(3, default_seed())
    );
}
