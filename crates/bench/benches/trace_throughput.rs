//! Traced vs untraced campaign overhead (host-time).
//!
//! The question this family answers: what does full execution tracing
//! *cost* on top of an otherwise identical campaign? Each worker count
//! benches the untraced driver and its traced twin **back to back** —
//! on a noisy host, thermal and scheduling drift between measurements
//! taken minutes apart easily exceeds the per-event cost being
//! measured, so only adjacent measurements make a meaningful ratio.
//!
//! The traced path under test is the zero-allocation hot path: interned
//! [`Symbol`]s for every dynamic label, `Copy` events, per-worker
//! arenas (pooled collector + pooled span-id allocator), shard buffers
//! recycled through the [`ShardPool`], and the streaming merger's
//! in-order fast path. The `trace_alloc` integration test pins the
//! zero-allocations-per-event claim; this bench records what that buys
//! in wall-clock terms. Run with
//! `CRITERION_JSON_OUT=BENCH_campaign.json` (see `make bench-trace`) to
//! mirror the numbers into JSON.
//!
//! [`Symbol`]: redundancy_core::obs::Symbol
//! [`ShardPool`]: redundancy_core::obs::ShardPool

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redundancy_core::adjudicator::voting::MajorityVoter;
use redundancy_core::context::ExecContext;
use redundancy_core::obs::RingBufferObserver;
use redundancy_core::patterns::ParallelEvaluation;
use redundancy_core::variant::BoxedVariant;
use redundancy_faults::FaultPlan;
use redundancy_sim::trial::{Campaign, TrialOutcome};

const TRIALS: usize = 1000;
const CAMPAIGN_SEED: u64 = 2008;
const WORK: u64 = 25;
const DENSITY: f64 = 0.25;
/// Event capacity of the traced benches' ring sink — much smaller than
/// the campaign's total event count, so the bench exercises the
/// bounded-sink path the streaming merge exists for.
const RING_CAPACITY: usize = 4096;

fn golden(x: &u64) -> u64 {
    x * 2
}

/// The same 3-version NVP ensemble `campaign_throughput` runs: each
/// version carries its own seeded Bohrbug, trials cost well under a
/// microsecond — the adversarial case for tracing overhead.
fn nvp_pattern() -> ParallelEvaluation<u64, u64> {
    let plan = FaultPlan::bohrbugs(7, 3, DENSITY);
    let mut pattern = ParallelEvaluation::new(MajorityVoter::new());
    for slot in 0..plan.slots() {
        let shift = 1001 * (slot as u64 + 1);
        let variant: BoxedVariant<u64, u64> = Box::new(plan.build_variant_corrupting(
            slot,
            format!("v{slot}"),
            WORK,
            golden,
            move |c, _| c + shift,
        ));
        pattern.push_variant(variant);
    }
    pattern
}

fn traced_nvp_trial(
    pattern: &ParallelEvaluation<u64, u64>,
    ctx: &mut ExecContext,
    i: usize,
) -> TrialOutcome {
    let input = i as u64;
    let report = pattern.run(&input, ctx);
    let cost = ctx.cost();
    match report.verdict.output() {
        Some(out) if *out == golden(&input) => TrialOutcome::Correct { cost },
        Some(_) => TrialOutcome::Undetected { cost },
        None => TrialOutcome::Detected { cost },
    }
}

fn nvp_trial(pattern: &ParallelEvaluation<u64, u64>, seed: u64, i: usize) -> TrialOutcome {
    let mut ctx = ExecContext::new(seed);
    traced_nvp_trial(pattern, &mut ctx, i)
}

fn bench_trace(c: &mut Criterion) {
    let pattern = nvp_pattern();
    let campaign = Campaign::new(TRIALS);

    // Guard before timing: tracing must never change what the campaign
    // computes, only how long it takes.
    let untraced = campaign.run(CAMPAIGN_SEED, |seed, i| nvp_trial(&pattern, seed, i));
    for jobs in [1usize, 2, 8] {
        let traced = campaign.run_traced_parallel(
            CAMPAIGN_SEED,
            jobs,
            RingBufferObserver::shared(RING_CAPACITY),
            |ctx, _seed, i| traced_nvp_trial(&pattern, ctx, i),
        );
        assert_eq!(untraced, traced, "traced summary diverged at jobs={jobs}");
    }

    let mut group = c.benchmark_group("trace");
    for jobs in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new(format!("untraced_{TRIALS}_jobs"), jobs),
            &jobs,
            |b, &jobs| {
                b.iter(|| {
                    campaign
                        .run_parallel(CAMPAIGN_SEED, jobs, |seed, i| nvp_trial(&pattern, seed, i))
                });
            },
        );
        // The sink is reused across iterations (it overwrites in place),
        // so the measurement sees steady-state arena/pool recycling
        // rather than first-iteration warmup.
        let sink = RingBufferObserver::shared(RING_CAPACITY);
        group.bench_with_input(
            BenchmarkId::new(format!("traced_{TRIALS}_jobs"), jobs),
            &jobs,
            |b, &jobs| {
                b.iter(|| {
                    campaign.run_traced_parallel(
                        CAMPAIGN_SEED,
                        jobs,
                        sink.clone(),
                        |ctx, _seed, i| traced_nvp_trial(&pattern, ctx, i),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
