//! Overhead of the observability layer on the pattern hot path.
//!
//! Three configurations of the same `ParallelEvaluation` run:
//!
//! - `bare` — no observer attached (the `Option<ObsHandle>` is `None`);
//! - `noop` — a [`NoopObserver`] attached: the handle is present but its
//!   cached `enabled` flag short-circuits event construction. The issue's
//!   acceptance bar is ≤ ~1% overhead vs. `bare`;
//! - `ring` — a [`RingBufferObserver`] actually recording, as the upper
//!   reference point for what full capture costs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use redundancy_core::adjudicator::voting::MajorityVoter;
use redundancy_core::context::ExecContext;
use redundancy_core::obs::{NoopObserver, RingBufferObserver};
use redundancy_core::patterns::ParallelEvaluation;
use redundancy_core::variant::pure_variant;

fn nvp(n: usize) -> ParallelEvaluation<u64, u64> {
    let mut p = ParallelEvaluation::new(MajorityVoter::new());
    for i in 0..n {
        p.push_variant(pure_variant(&format!("v{i}"), 10, |x: &u64| x * 2));
    }
    p
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    let p = nvp(3);

    group.bench_function("parallel_evaluation/bare", |b| {
        let mut ctx = ExecContext::new(1);
        b.iter(|| p.run(std::hint::black_box(&7), &mut ctx).into_output());
    });

    group.bench_function("parallel_evaluation/noop", |b| {
        let mut ctx = ExecContext::new(1).with_observer(Arc::new(NoopObserver));
        b.iter(|| p.run(std::hint::black_box(&7), &mut ctx).into_output());
    });

    group.bench_function("parallel_evaluation/ring", |b| {
        let ring = RingBufferObserver::shared(1 << 12);
        let mut ctx = ExecContext::new(1).with_observer(ring);
        b.iter(|| p.run(std::hint::black_box(&7), &mut ctx).into_output());
    });

    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
