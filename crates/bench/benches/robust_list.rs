//! Overhead of Taylor-style structural redundancy (E16 companion):
//! RobustList operations and audits vs a plain VecDeque.

use std::collections::VecDeque;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redundancy_techniques::robust_data::RobustList;

fn bench_robust_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("robust_list");
    for n in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::new("push_pop_robust", n), &n, |b, &n| {
            b.iter(|| {
                let mut list = RobustList::new();
                for i in 0..n {
                    list.push_back(i);
                }
                while list.pop_front().is_some() {}
                list.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("push_pop_vecdeque", n), &n, |b, &n| {
            b.iter(|| {
                let mut list = VecDeque::new();
                for i in 0..n {
                    list.push_back(i);
                }
                while list.pop_front().is_some() {}
                list.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("audit", n), &n, |b, &n| {
            let list: RobustList<usize> = (0..n).collect();
            b.iter(|| list.audit().is_clean());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_robust_list);
criterion_main!(benches);
