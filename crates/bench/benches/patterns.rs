//! Overhead of the three Figure 1 pattern engines (host-time, Criterion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redundancy_core::adjudicator::acceptance::FnAcceptance;
use redundancy_core::adjudicator::voting::MajorityVoter;
use redundancy_core::context::ExecContext;
use redundancy_core::patterns::{ParallelEvaluation, ParallelSelection, SequentialAlternatives};
use redundancy_core::variant::pure_variant;

fn bench_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("patterns");
    for n in [3usize, 5, 9] {
        group.bench_with_input(BenchmarkId::new("parallel_evaluation", n), &n, |b, &n| {
            let mut p = ParallelEvaluation::new(MajorityVoter::new());
            for i in 0..n {
                p.push_variant(pure_variant(&format!("v{i}"), 10, |x: &u64| x * 2));
            }
            let mut ctx = ExecContext::new(1);
            b.iter(|| p.run(std::hint::black_box(&7), &mut ctx).into_output());
        });
        group.bench_with_input(BenchmarkId::new("parallel_selection", n), &n, |b, &n| {
            let mut p = ParallelSelection::new();
            for i in 0..n {
                p.push_component(
                    pure_variant(&format!("v{i}"), 10, |x: &u64| x * 2),
                    Box::new(FnAcceptance::new("any", |_: &u64, _: &u64| true)),
                );
            }
            let mut ctx = ExecContext::new(1);
            b.iter(|| p.run(std::hint::black_box(&7), &mut ctx).into_output());
        });
        group.bench_with_input(
            BenchmarkId::new("sequential_alternatives", n),
            &n,
            |b, &n| {
                let mut p =
                    SequentialAlternatives::new(FnAcceptance::new("any", |_: &u64, _: &u64| true));
                for i in 0..n {
                    p.push_variant(pure_variant(&format!("v{i}"), 10, |x: &u64| x * 2));
                }
                let mut ctx = ExecContext::new(1);
                b.iter(|| p.run(std::hint::black_box(&7), &mut ctx).into_output());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_patterns);
criterion_main!(benches);
