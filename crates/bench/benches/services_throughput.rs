//! The `bench-services` family: event-loop runtime throughput and tail
//! latency under each scenario × policy cell of E20.
//!
//! Two kinds of measurement share the JSON mirror
//! (`CRITERION_JSON_OUT=BENCH_campaign.json`, see `make bench-services`):
//!
//! - `services/loop/…` — **wall-clock** cost of driving one full
//!   workload (2000 open-loop requests, three providers) through the
//!   event loop, i.e. simulator throughput on this host;
//! - `services/virtual/…` — **virtual-time** service metrics lifted out
//!   of the deterministic [`RuntimeReport`] via `iter_custom`:
//!   nanoseconds-per-request (the reciprocal of virtual req/sec) and
//!   the p99/p999 request latency. These are properties of the modeled
//!   system, bit-identical per seed on any host — the guard below
//!   re-proves that before anything is timed.
//!
//! [`RuntimeReport`]: redundancy_services::runtime::RuntimeReport

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use redundancy_bench::experiments::services_rt::{run_cell, POLICIES, SCENARIOS};
use redundancy_bench::experiments::shard_rt::run_sharded;

const REQUESTS: u64 = 2_000;
const SEED: u64 = 0x5eed_2008;
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn bench_services(c: &mut Criterion) {
    // Guard before timing: the ledger must be bit-identical per seed,
    // or the virtual families below are measuring noise.
    for scenario in SCENARIOS {
        for policy in POLICIES {
            let a = run_cell(scenario, policy, REQUESTS, SEED);
            let b = run_cell(scenario, policy, REQUESTS, SEED);
            assert_eq!(
                a.ledger_digest(),
                b.ledger_digest(),
                "non-deterministic ledger at {scenario}/{policy}"
            );
        }
    }

    let mut group = c.benchmark_group("services");
    for scenario in SCENARIOS {
        for policy in POLICIES {
            group.bench_function(format!("loop/{scenario}-{policy}/{REQUESTS}"), |b| {
                b.iter(|| run_cell(scenario, policy, REQUESTS, SEED));
            });
        }
    }

    // Virtual-time families: constant per seed, reported through
    // iter_custom so they land in the same mirror as the wall numbers.
    for scenario in SCENARIOS {
        for policy in POLICIES {
            let report = run_cell(scenario, policy, REQUESTS, SEED);
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let ns_per_req = (1e9 / report.offered_per_sec()).round() as u64;
            let p99 = report.latency_quantile(0.99).unwrap_or(0);
            let p999 = report.latency_quantile(0.999).unwrap_or(0);
            for (metric, ns) in [
                ("virtual_ns_per_req", ns_per_req),
                ("virtual_p99", p99),
                ("virtual_p999", p999),
            ] {
                group.bench_function(format!("{metric}/{scenario}-{policy}"), |b| {
                    b.iter_custom(|iters| Duration::from_nanos(ns.saturating_mul(iters)));
                });
            }
        }
    }

    // Sharded families: wall-clock cost of the same spiky/hedged
    // workload fanned across N event loops on the worker pool. Guard
    // first: every shard count must reproduce the shards=1 digest
    // (breakers off, caps non-binding), or the merge is broken.
    let baseline = run_sharded(1, REQUESTS, SEED, false).ledger_digest();
    for shards in SHARD_COUNTS {
        assert_eq!(
            run_sharded(shards, REQUESTS, SEED, false).ledger_digest(),
            baseline,
            "shards={shards} digest drifted from the single-loop baseline"
        );
    }
    for shards in SHARD_COUNTS {
        group.bench_function(format!("sharded/spiky-hedged-s{shards}/{REQUESTS}"), |b| {
            b.iter(|| run_sharded(shards, REQUESTS, SEED, false));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_services);
criterion_main!(benches);
