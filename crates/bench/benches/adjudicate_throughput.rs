//! Adjudication throughput: branchless SoA column kernels vs the
//! scalar voters (host-time).
//!
//! The headline family is `adjudicate/columns_majority_n3`: majority
//! vote over pre-packed [`OutcomeColumns`] at arity 3 — the TMR shape —
//! with verdicts written into a reused buffer via
//! [`OutcomeColumns::adjudicate_into`], so the hot loop is zero-alloc.
//! The acceptance bar from the batch-adjudication work is ≥ 100 M
//! outcome-votes/sec on one core for this family: each pass adjudicates
//! `ROWS` rows × 3 votes, so the bar translates to a median of at most
//! `ROWS * 3 / 100e6` seconds per pass (~123 µs at `ROWS = 4096`).
//!
//! Companions:
//!
//! - `columns_majority_n7`, `columns_plurality_n3`,
//!   `columns_quorum2_n3`, `columns_unanimity_n3`: the other rules and
//!   a wider arity over the same columns.
//! - `pack_rows_n3`: the cost of interning + packing rows into columns,
//!   measured separately so the vote kernels above stay pure.
//! - `vote_row_majority_n3`: the single-row zero-alloc kernel the
//!   pattern engines call through `adjudicate_batch_row`.
//! - `scalar_majority_n3`: the historical AoS `MajorityVoter` over the
//!   same rows — the baseline the column kernels are measured against.
//!
//! Every kernel is asserted verdict-identical to the scalar voter on
//! the bench data before anything is timed. Run with
//! `CRITERION_JSON_OUT=BENCH_campaign.json` (see `make bench-campaign`)
//! to mirror the numbers into the shared JSON; the recorder merges by
//! label, so this binary and `campaign_throughput` coexist in one file.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redundancy_core::adjudicator::voting::MajorityVoter;
use redundancy_core::adjudicator::{batch, Adjudicator, OutcomeColumns, RowVerdict, VoteRule};
use redundancy_core::outcome::{VariantFailure, VariantOutcome};

/// Rows per adjudication pass. One pass at arity 3 is `ROWS * 3`
/// outcome-votes; the ≥ 100 M votes/sec bar is ~123 µs per pass.
const ROWS: usize = 4096;
const SEED: u64 = 0xad00_2008;
/// One slot in ~8 fails; survivors draw from a small value set so
/// agreement classes actually form (and occasionally disagree).
const FAIL_ONE_IN: u64 = 8;
const DISTINCT_VALUES: u64 = 3;

/// SplitMix64 — deterministic bench data, no RNG dependency.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic campaign's worth of outcome rows: mostly-agreeing
/// ensembles with seeded failures and occasional silent deviations.
fn rows(arity: usize) -> Vec<Vec<Option<u64>>> {
    (0..ROWS)
        .map(|i| {
            (0..arity)
                .map(|slot| {
                    let draw = mix(SEED ^ (i as u64) << 8 ^ slot as u64);
                    if draw % FAIL_ONE_IN == 0 {
                        None
                    } else {
                        Some(draw % DISTINCT_VALUES)
                    }
                })
                .collect()
        })
        .collect()
}

fn row_to_outcomes(row: &[Option<u64>]) -> Vec<VariantOutcome<u64>> {
    row.iter()
        .enumerate()
        .map(|(i, v)| match v {
            Some(v) => VariantOutcome::ok(format!("v{i}"), *v),
            None => VariantOutcome::failed(format!("v{i}"), VariantFailure::Timeout),
        })
        .collect()
}

fn pack(rows: &[Vec<Option<u64>>], arity: usize) -> OutcomeColumns<u64> {
    let mut columns = OutcomeColumns::with_row_capacity(arity, rows.len());
    for row in rows {
        columns.push_row(row);
    }
    columns
}

fn bench_adjudicate(c: &mut Criterion) {
    assert!(batch::enabled(), "batch path must be on for this bench");
    let rows3 = rows(3);
    let rows7 = rows(7);
    let columns3 = pack(&rows3, 3);
    let columns7 = pack(&rows7, 7);
    let aos3: Vec<Vec<VariantOutcome<u64>>> = rows3.iter().map(|r| row_to_outcomes(r)).collect();
    let majority = MajorityVoter::new();

    // Guard the equivalence contract on the bench data before timing:
    // the column kernel must reproduce the scalar voter verdict exactly.
    let verdicts = columns3.adjudicate(VoteRule::Majority);
    for (verdict, outcomes) in verdicts.iter().zip(&aos3) {
        assert_eq!(
            verdict.to_verdict(&columns3),
            majority.adjudicate(outcomes),
            "column kernel diverged from MajorityVoter on bench data"
        );
    }

    let mut group = c.benchmark_group("adjudicate");

    // Headline: majority over pre-packed columns, reused verdict buffer.
    // votes/sec = ROWS * arity / seconds-per-pass.
    let mut out: Vec<RowVerdict> = Vec::with_capacity(ROWS);
    group.bench_function(BenchmarkId::new("columns_majority_n3", ROWS), |b| {
        b.iter(|| {
            columns3.adjudicate_into(VoteRule::Majority, &mut out);
            std::hint::black_box(out.len())
        });
    });
    group.bench_function(BenchmarkId::new("columns_majority_n7", ROWS), |b| {
        b.iter(|| {
            columns7.adjudicate_into(VoteRule::Majority, &mut out);
            std::hint::black_box(out.len())
        });
    });
    group.bench_function(BenchmarkId::new("columns_plurality_n3", ROWS), |b| {
        b.iter(|| {
            columns3.adjudicate_into(VoteRule::Plurality, &mut out);
            std::hint::black_box(out.len())
        });
    });
    group.bench_function(BenchmarkId::new("columns_quorum2_n3", ROWS), |b| {
        b.iter(|| {
            columns3.adjudicate_into(VoteRule::Quorum(2), &mut out);
            std::hint::black_box(out.len())
        });
    });
    group.bench_function(BenchmarkId::new("columns_unanimity_n3", ROWS), |b| {
        b.iter(|| {
            columns3.adjudicate_into(VoteRule::Unanimity, &mut out);
            std::hint::black_box(out.len())
        });
    });

    // Packing cost: interning + bitset assembly, kept out of the vote
    // kernels above. Clears and refills one reused column set per pass.
    let mut packer: OutcomeColumns<u64> = OutcomeColumns::with_row_capacity(3, ROWS);
    group.bench_function(BenchmarkId::new("pack_rows_n3", ROWS), |b| {
        b.iter(|| {
            packer.clear();
            for row in &rows3 {
                packer.push_row(row);
            }
            std::hint::black_box(packer.rows())
        });
    });

    // Single-row kernel: the engines' per-trial entry point.
    group.bench_function(BenchmarkId::new("vote_row_majority_n3", ROWS), |b| {
        b.iter(|| {
            let mut accepted = 0usize;
            for outcomes in &aos3 {
                accepted += usize::from(
                    batch::vote_row(VoteRule::Majority, |a, b| a == b, outcomes).is_accepted(),
                );
            }
            std::hint::black_box(accepted)
        });
    });

    // Historical AoS baseline: the scalar voter over the same rows.
    group.bench_function(BenchmarkId::new("scalar_majority_n3", ROWS), |b| {
        b.iter(|| {
            let mut accepted = 0usize;
            for outcomes in &aos3 {
                accepted += usize::from(majority.adjudicate(outcomes).is_accepted());
            }
            std::hint::black_box(accepted)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_adjudicate);
criterion_main!(benches);
