//! Cost of the voting adjudicators at various N.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redundancy_core::adjudicator::voting::{MajorityVoter, MedianVoter, PluralityVoter};
use redundancy_core::adjudicator::Adjudicator;
use redundancy_core::outcome::VariantOutcome;

fn outcomes(n: usize) -> Vec<VariantOutcome<u64>> {
    (0..n)
        .map(|i| VariantOutcome::ok(format!("v{i}"), if i % 4 == 0 { 99 } else { 42 }))
        .collect()
}

fn bench_adjudicators(c: &mut Criterion) {
    let mut group = c.benchmark_group("adjudicators");
    for n in [3usize, 7, 15, 31] {
        let outs = outcomes(n);
        group.bench_with_input(BenchmarkId::new("majority", n), &outs, |b, outs| {
            let adj = MajorityVoter::new();
            b.iter(|| adj.adjudicate(std::hint::black_box(outs)).is_accepted());
        });
        group.bench_with_input(BenchmarkId::new("plurality", n), &outs, |b, outs| {
            let adj = PluralityVoter::new();
            b.iter(|| adj.adjudicate(std::hint::black_box(outs)).is_accepted());
        });
        group.bench_with_input(BenchmarkId::new("median", n), &outs, |b, outs| {
            let adj = MedianVoter::new();
            b.iter(|| adj.adjudicate(std::hint::black_box(outs)).is_accepted());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adjudicators);
criterion_main!(benches);
