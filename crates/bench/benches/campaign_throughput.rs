//! Serial vs parallel Monte-Carlo campaign throughput (host-time).
//!
//! Runs the same 1000-trial NVP campaign through [`Campaign::run`] and
//! through [`Campaign::run_parallel`] at several worker counts. Both
//! drivers produce bit-identical summaries (asserted here before
//! measuring), so the only thing that varies is wall-clock time. Run
//! with `CRITERION_JSON_OUT=BENCH_campaign.json` (see `make
//! bench-campaign`) to mirror the numbers into JSON.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redundancy_core::adjudicator::voting::MajorityVoter;
use redundancy_core::context::ExecContext;
use redundancy_core::patterns::ParallelEvaluation;
use redundancy_core::variant::BoxedVariant;
use redundancy_faults::FaultPlan;
use redundancy_sim::trial::{Campaign, TrialOutcome};

const TRIALS: usize = 1000;
const CAMPAIGN_SEED: u64 = 2008;
const WORK: u64 = 25;
const DENSITY: f64 = 0.25;

fn golden(x: &u64) -> u64 {
    x * 2
}

/// A 3-version NVP ensemble where each version carries its own seeded
/// Bohrbug — the workload every campaign below re-runs 1000 times.
fn nvp_pattern() -> ParallelEvaluation<u64, u64> {
    let plan = FaultPlan::bohrbugs(7, 3, DENSITY);
    let mut pattern = ParallelEvaluation::new(MajorityVoter::new());
    for slot in 0..plan.slots() {
        let shift = 1001 * (slot as u64 + 1);
        let variant: BoxedVariant<u64, u64> = Box::new(plan.build_variant_corrupting(
            slot,
            format!("v{slot}"),
            WORK,
            golden,
            move |c, _| c + shift,
        ));
        pattern.push_variant(variant);
    }
    pattern
}

fn nvp_trial(pattern: &ParallelEvaluation<u64, u64>, seed: u64, i: usize) -> TrialOutcome {
    let mut ctx = ExecContext::new(seed);
    let input = i as u64;
    let report = pattern.run(&input, &mut ctx);
    let cost = ctx.cost();
    match report.verdict.output() {
        Some(out) if *out == golden(&input) => TrialOutcome::Correct { cost },
        Some(_) => TrialOutcome::Undetected { cost },
        None => TrialOutcome::Detected { cost },
    }
}

fn bench_campaign(c: &mut Criterion) {
    let pattern = nvp_pattern();
    let campaign = Campaign::new(TRIALS);

    // Guard the determinism contract before timing anything: the
    // parallel driver must reproduce the serial summary exactly.
    let serial = campaign.run(CAMPAIGN_SEED, |seed, i| nvp_trial(&pattern, seed, i));
    for jobs in [2, 8] {
        let parallel =
            campaign.run_parallel(CAMPAIGN_SEED, jobs, |seed, i| nvp_trial(&pattern, seed, i));
        assert_eq!(serial, parallel, "summary diverged at jobs={jobs}");
    }

    let mut group = c.benchmark_group("campaign");
    group.bench_function(BenchmarkId::new("serial", TRIALS), |b| {
        b.iter(|| campaign.run(CAMPAIGN_SEED, |seed, i| nvp_trial(&pattern, seed, i)));
    });
    for jobs in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new(format!("parallel_{TRIALS}_jobs"), jobs),
            &jobs,
            |b, &jobs| {
                b.iter(|| {
                    campaign
                        .run_parallel(CAMPAIGN_SEED, jobs, |seed, i| nvp_trial(&pattern, seed, i))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
