//! Serial vs parallel Monte-Carlo campaign throughput (host-time).
//!
//! Three workload families, all driven through [`Campaign`]:
//!
//! - **Light** (`campaign/serial`, `campaign/parallel_*`): the original
//!   1000-trial NVP campaign where each trial costs well under a
//!   microsecond. This is the adversarial case for a parallel driver —
//!   any per-trial scheduling overhead shows up directly.
//! - **Heavy** (`campaign/serial_heavy`, `campaign/parallel_heavy_*`):
//!   100 trials with a deterministic ~10 µs compute spin per trial,
//!   modelling campaigns whose trials do real work. Here chunked
//!   claiming plus the persistent pool should approach linear speedup
//!   on multi-core hosts.
//! - **Traced** (`campaign/traced_parallel_*`): the light campaign with
//!   full execution tracing into a bounded ring sink, measuring the
//!   pooled-shard + streaming-merge path of
//!   [`Campaign::run_traced_parallel`].
//! - **Monitored** (`campaign/monitored_parallel_*`): the light campaign
//!   again, but with the flight recorder live — global telemetry on and
//!   a background [`CampaignMonitor`] sampling it — quantifying the
//!   recorder's overhead against `campaign/parallel_*` (budget: ≤ 2%).
//!   Benched back-to-back with its unmonitored twin at each worker
//!   count so host drift doesn't masquerade as recorder overhead.
//!
//! Every parallel driver is asserted bit-identical to its serial
//! counterpart before anything is timed, so the only thing that varies
//! is wall-clock time. Run with `CRITERION_JSON_OUT=BENCH_campaign.json`
//! (see `make bench-campaign`) to mirror the numbers into JSON.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redundancy_core::adjudicator::batch;
use redundancy_core::adjudicator::voting::MajorityVoter;
use redundancy_core::context::ExecContext;
use redundancy_core::obs::RingBufferObserver;
use redundancy_core::patterns::ParallelEvaluation;
use redundancy_core::variant::BoxedVariant;
use redundancy_faults::FaultPlan;
use redundancy_sim::trial::{Campaign, TrialOutcome};
use redundancy_sim::{CampaignMonitor, MonitorConfig};

const TRIALS: usize = 1000;
const TRIALS_HEAVY: usize = 100;
const CAMPAIGN_SEED: u64 = 2008;
const WORK: u64 = 25;
const DENSITY: f64 = 0.25;
/// Iterations of the heavy-trial spin loop; ~10 µs of multiply/rotate
/// work per trial on a contemporary core.
const HEAVY_SPIN: u64 = 10_000;
/// Event capacity of the traced benches' ring sink — deliberately much
/// smaller than the campaign's total event count, so the bench exercises
/// the bounded-sink path the streaming merge exists for.
const RING_CAPACITY: usize = 4096;

fn golden(x: &u64) -> u64 {
    x * 2
}

/// A 3-version NVP ensemble where each version carries its own seeded
/// Bohrbug — the workload every campaign below re-runs.
fn nvp_pattern() -> ParallelEvaluation<u64, u64> {
    let plan = FaultPlan::bohrbugs(7, 3, DENSITY);
    let mut pattern = ParallelEvaluation::new(MajorityVoter::new());
    for slot in 0..plan.slots() {
        let shift = 1001 * (slot as u64 + 1);
        let variant: BoxedVariant<u64, u64> = Box::new(plan.build_variant_corrupting(
            slot,
            format!("v{slot}"),
            WORK,
            golden,
            move |c, _| c + shift,
        ));
        pattern.push_variant(variant);
    }
    pattern
}

fn nvp_trial(pattern: &ParallelEvaluation<u64, u64>, seed: u64, i: usize) -> TrialOutcome {
    let mut ctx = ExecContext::new(seed);
    traced_nvp_trial(pattern, &mut ctx, i)
}

/// The same trial against a caller-supplied context, so the traced
/// drivers (which attach an observer to the context) can share it.
fn traced_nvp_trial(
    pattern: &ParallelEvaluation<u64, u64>,
    ctx: &mut ExecContext,
    i: usize,
) -> TrialOutcome {
    let input = i as u64;
    let report = pattern.run(&input, ctx);
    let cost = ctx.cost();
    match report.verdict.output() {
        Some(out) if *out == golden(&input) => TrialOutcome::Correct { cost },
        Some(_) => TrialOutcome::Undetected { cost },
        None => TrialOutcome::Detected { cost },
    }
}

/// Deterministic compute spin: ~10 µs of serially-dependent integer
/// work. Seeded, so identical across runs and worker counts.
fn spin(seed: u64) -> u64 {
    let mut acc = seed | 1;
    for _ in 0..HEAVY_SPIN {
        acc = acc.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(7) ^ seed;
    }
    acc
}

fn heavy_nvp_trial(pattern: &ParallelEvaluation<u64, u64>, seed: u64, i: usize) -> TrialOutcome {
    std::hint::black_box(spin(seed));
    nvp_trial(pattern, seed, i)
}

fn bench_campaign(c: &mut Criterion) {
    let pattern = nvp_pattern();
    let campaign = Campaign::new(TRIALS);
    let heavy = Campaign::new(TRIALS_HEAVY);

    // Guard the determinism contract before timing anything: every
    // parallel driver must reproduce the serial summary exactly.
    let serial = campaign.run(CAMPAIGN_SEED, |seed, i| nvp_trial(&pattern, seed, i));
    let serial_heavy = heavy.run(CAMPAIGN_SEED, |seed, i| heavy_nvp_trial(&pattern, seed, i));
    for jobs in [2, 8] {
        let parallel =
            campaign.run_parallel(CAMPAIGN_SEED, jobs, |seed, i| nvp_trial(&pattern, seed, i));
        assert_eq!(serial, parallel, "summary diverged at jobs={jobs}");
        let parallel_heavy = heavy.run_parallel(CAMPAIGN_SEED, jobs, |seed, i| {
            heavy_nvp_trial(&pattern, seed, i)
        });
        assert_eq!(
            serial_heavy, parallel_heavy,
            "heavy summary diverged at jobs={jobs}"
        );
        let traced = campaign.run_traced_parallel(
            CAMPAIGN_SEED,
            jobs,
            RingBufferObserver::shared(RING_CAPACITY),
            |ctx, _seed, i| traced_nvp_trial(&pattern, ctx, i),
        );
        assert_eq!(serial, traced, "traced summary diverged at jobs={jobs}");
    }

    let mut group = c.benchmark_group("campaign");

    // Light workload: sub-microsecond trials. Each unmonitored bench is
    // immediately followed by its flight-recorder-live twin: on a noisy
    // host, thermal and scheduling drift between measurements taken
    // minutes apart easily exceeds the recorder's few-ns-per-trial cost,
    // so the overhead comparison only means something when the two
    // measurements are back to back. The monitor guard is scoped to the
    // monitored bench alone, so every unmonitored bench still measures
    // the recorder truly off (one relaxed load per hook).
    group.bench_function(BenchmarkId::new("serial", TRIALS), |b| {
        b.iter(|| campaign.run(CAMPAIGN_SEED, |seed, i| nvp_trial(&pattern, seed, i)));
    });
    for jobs in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new(format!("parallel_{TRIALS}_jobs"), jobs),
            &jobs,
            |b, &jobs| {
                b.iter(|| {
                    campaign
                        .run_parallel(CAMPAIGN_SEED, jobs, |seed, i| nvp_trial(&pattern, seed, i))
                });
            },
        );
        let monitor = CampaignMonitor::start(MonitorConfig {
            interval: Duration::from_millis(200),
            live: false,
            prometheus_path: None,
            jsonl_path: None,
        });
        let monitored =
            campaign.run_parallel(CAMPAIGN_SEED, jobs, |seed, i| nvp_trial(&pattern, seed, i));
        assert_eq!(
            serial, monitored,
            "summary diverged with monitor live at jobs={jobs}"
        );
        group.bench_with_input(
            BenchmarkId::new(format!("monitored_parallel_{TRIALS}_jobs"), jobs),
            &jobs,
            |b, &jobs| {
                b.iter(|| {
                    campaign
                        .run_parallel(CAMPAIGN_SEED, jobs, |seed, i| nvp_trial(&pattern, seed, i))
                });
            },
        );
        drop(monitor);
    }

    // Batch-adjudication A/B: the same light campaign with the
    // branchless row kernel disabled, benched back-to-back against
    // `parallel_{TRIALS}_jobs/1` above so host drift doesn't masquerade
    // as kernel speedup. Bit-identity under the toggle is asserted
    // before timing (and pinned for good by the `batch_invariance`
    // integration test).
    batch::set_enabled(false);
    let batchoff = campaign.run_parallel(CAMPAIGN_SEED, 1, |seed, i| nvp_trial(&pattern, seed, i));
    assert_eq!(serial, batchoff, "summary diverged with batch path off");
    group.bench_with_input(
        BenchmarkId::new(format!("batchoff_parallel_{TRIALS}_jobs"), 1usize),
        &1usize,
        |b, &jobs| {
            b.iter(|| {
                campaign.run_parallel(CAMPAIGN_SEED, jobs, |seed, i| nvp_trial(&pattern, seed, i))
            });
        },
    );
    batch::set_enabled(true);

    // Heavy workload: ~10 µs of compute per trial.
    group.bench_function(BenchmarkId::new("serial_heavy", TRIALS_HEAVY), |b| {
        b.iter(|| heavy.run(CAMPAIGN_SEED, |seed, i| heavy_nvp_trial(&pattern, seed, i)));
    });
    for jobs in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new(format!("parallel_heavy_{TRIALS_HEAVY}_jobs"), jobs),
            &jobs,
            |b, &jobs| {
                b.iter(|| {
                    heavy.run_parallel(CAMPAIGN_SEED, jobs, |seed, i| {
                        heavy_nvp_trial(&pattern, seed, i)
                    })
                });
            },
        );
    }

    // Traced: pooled shards + streaming merge into a bounded ring sink.
    // The sink is reused across iterations (it overwrites in place), so
    // the measurement sees steady-state pooled-shard recycling rather
    // than first-iteration allocation.
    for jobs in [1usize, 2, 4, 8] {
        let sink = RingBufferObserver::shared(RING_CAPACITY);
        group.bench_with_input(
            BenchmarkId::new(format!("traced_parallel_{TRIALS}_jobs"), jobs),
            &jobs,
            |b, &jobs| {
                b.iter(|| {
                    campaign.run_traced_parallel(
                        CAMPAIGN_SEED,
                        jobs,
                        sink.clone(),
                        |ctx, _seed, i| traced_nvp_trial(&pattern, ctx, i),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
