//! Per-write overhead of the boundary-checking healer wrapper (E15).

use criterion::{criterion_group, criterion_main, Criterion};
use redundancy_sandbox::memory::SimMemory;
use redundancy_techniques::wrappers::HeapWrapper;

fn bench_wrappers(c: &mut Criterion) {
    let mut group = c.benchmark_group("heap_writes");
    group.bench_function("unchecked", |b| {
        let mut mem = SimMemory::new(0x1000, 0x100000);
        let seg = mem.alloc(4096).expect("fits");
        b.iter(|| mem.write_unchecked(seg, std::hint::black_box(128), 64));
    });
    group.bench_function("wrapped", |b| {
        let mut heap = HeapWrapper::new(SimMemory::new(0x1000, 0x100000));
        let seg = heap.alloc(4096).expect("fits");
        b.iter(|| heap.write(seg, std::hint::black_box(128), 64));
    });
    group.finish();
}

criterion_group!(benches, bench_wrappers);
criterion_main!(benches);
