//! Data diversity (paper §4.2; Ammann & Knight 1988).
//!
//! Instead of diversifying the *code*, data diversity re-expresses the
//! *input*: a failure that depends on a specific input condition can be
//! avoided by running the same program on a logically equivalent input.
//! Ammann and Knight's two embodiments are both here:
//!
//! - [`RetryBlock`] — on failure, re-express the input and try again
//!   (sequential-alternatives pattern, explicit adjudicator);
//! - [`NCopy`] — run the program on several re-expressions in parallel
//!   and vote (parallel-evaluation pattern, implicit adjudicator).
//!
//! An *exact* re-expression comes with a decoder mapping the output back,
//! so results stay comparable.
//!
//! Classification (Table 2): deliberate / data / reactive-expl./impl. /
//! development.

use std::sync::Arc;

use redundancy_core::adjudicator::voting::MajorityVoter;
use redundancy_core::adjudicator::{Adjudicator, Decision};
use redundancy_core::context::ExecContext;
use redundancy_core::obs::{CostSnapshot, Point, SpanKind, SpanStatus};
use redundancy_core::outcome::{RejectionReason, VariantFailure, VariantOutcome, Verdict};
use redundancy_core::patterns::{emit_verdict, verdict_status, DecisionPolicy};
use redundancy_core::taxonomy::{
    Adjudication, ArchitecturalPattern, Classification, FaultSet, Intention, RedundancyType,
};
use redundancy_core::technique::{Technique, TechniqueEntry};
use redundancy_core::variant::{run_contained, BoxedVariant, FnVariant, Variant};

/// Table 2 row for data diversity.
pub const ENTRY: TechniqueEntry = TechniqueEntry {
    name: "Data diversity",
    classification: Classification::new(
        Intention::Deliberate,
        RedundancyType::Data,
        Adjudication::ReactiveMixed,
        FaultSet::DEVELOPMENT,
    ),
    patterns: &[
        ArchitecturalPattern::ParallelEvaluation,
        ArchitecturalPattern::SequentialAlternatives,
    ],
    citations: &["Ammann & Knight 1988"],
};

/// An exact input re-expression: `decode(f(encode(x))) == f(x)` for a
/// correct `f`.
pub struct ReExpression<I, O> {
    name: String,
    encode: Arc<dyn Fn(&I) -> I + Send + Sync>,
    decode: Arc<dyn Fn(O) -> O + Send + Sync>,
}

impl<I, O> Clone for ReExpression<I, O> {
    fn clone(&self) -> Self {
        Self {
            name: self.name.clone(),
            encode: Arc::clone(&self.encode),
            decode: Arc::clone(&self.decode),
        }
    }
}

impl<I, O> ReExpression<I, O> {
    /// Creates a re-expression from an encoder and the matching output
    /// decoder.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        encode: impl Fn(&I) -> I + Send + Sync + 'static,
        decode: impl Fn(O) -> O + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            encode: Arc::new(encode),
            decode: Arc::new(decode),
        }
    }

    /// The identity re-expression.
    #[must_use]
    pub fn identity() -> Self
    where
        I: Clone + 'static,
        O: 'static,
    {
        Self::new("identity", I::clone, |o| o)
    }

    /// The re-expression's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Encodes an input.
    #[must_use]
    pub fn encode(&self, input: &I) -> I {
        (self.encode)(input)
    }

    /// Decodes an output.
    #[must_use]
    pub fn decode(&self, output: O) -> O {
        (self.decode)(output)
    }
}

/// Wraps a program so that it executes on a re-expressed input and
/// decodes the result — one "copy" of N-copy programming.
fn reexpressed_variant<I, O>(
    program: Arc<dyn Variant<I, O>>,
    re: ReExpression<I, O>,
) -> BoxedVariant<I, O>
where
    I: Send + Sync + 'static,
    O: Send + Sync + 'static,
{
    let name = format!("{}@{}", program.name(), re.name());
    Box::new(FnVariant::new(
        name,
        move |input: &I, ctx: &mut ExecContext| {
            let encoded = re.encode(input);
            program.execute(&encoded, ctx).map(|o| re.decode(o))
        },
    ))
}

type AcceptFn<I, O> = Box<dyn Fn(&I, &O) -> bool + Send + Sync>;

/// Ammann–Knight retry blocks: run the program; if the (explicit)
/// acceptance check rejects, re-express the input and retry.
pub struct RetryBlock<I, O> {
    program: Arc<dyn Variant<I, O>>,
    reexpressions: Vec<ReExpression<I, O>>,
    accept: AcceptFn<I, O>,
}

impl<I, O> RetryBlock<I, O>
where
    I: Send + Sync + 'static,
    O: Send + Sync + 'static,
{
    /// Creates a retry block around `program` with an acceptance check.
    /// The identity re-expression is always tried first.
    #[must_use]
    pub fn new(
        program: impl Variant<I, O> + 'static,
        accept: impl Fn(&I, &O) -> bool + Send + Sync + 'static,
    ) -> Self
    where
        I: Clone,
    {
        Self {
            program: Arc::new(program),
            reexpressions: vec![ReExpression::identity()],
            accept: Box::new(accept),
        }
    }

    /// Adds a re-expression to try on failure.
    #[must_use]
    pub fn with_reexpression(mut self, re: ReExpression<I, O>) -> Self {
        self.reexpressions.push(re);
        self
    }

    /// Number of re-expressions (including identity).
    #[must_use]
    pub fn reexpressions(&self) -> usize {
        self.reexpressions.len()
    }

    /// Accepts a decision policy for uniformity with [`NCopy`]. Retry
    /// blocks are *inherently* eager — re-expressions after the first
    /// accepted result never run — so the policy changes nothing and
    /// [`policy`](Self::policy) always reports [`DecisionPolicy::Eager`].
    #[must_use]
    pub fn with_policy(self, _policy: DecisionPolicy) -> Self {
        self
    }

    /// The decision policy in effect (always [`DecisionPolicy::Eager`]).
    #[must_use]
    pub fn policy(&self) -> DecisionPolicy {
        DecisionPolicy::Eager
    }

    /// Runs the retry block.
    pub fn run(&self, input: &I, ctx: &mut ExecContext) -> Verdict<O> {
        let span = ctx.obs_begin(|| SpanKind::Technique {
            name: "retry-block",
        });
        let before = ctx.cost();
        let verdict = self.run_inner(input, ctx);
        emit_verdict(ctx, &verdict);
        ctx.obs_end(
            span,
            verdict_status(&verdict),
            ctx.cost().delta_since(before).snapshot(),
        );
        verdict
    }

    fn run_inner(&self, input: &I, ctx: &mut ExecContext) -> Verdict<O> {
        let mut attempts = 0;
        for (i, re) in self.reexpressions.iter().enumerate() {
            if i > 0 {
                ctx.obs_emit(|| Point::Reexpression {
                    name: redundancy_core::obs::Symbol::intern(re.name()),
                    attempt: u32::try_from(i).unwrap_or(u32::MAX),
                });
            }
            let variant = reexpressed_variant(Arc::clone(&self.program), re.clone());
            let mut child = ctx.fork(i as u64);
            let outcome: VariantOutcome<O> = run_contained(variant.as_ref(), input, &mut child);
            ctx.add_sequential_cost(outcome.cost);
            attempts += 1;
            if let Ok(output) = outcome.result {
                if (self.accept)(input, &output) {
                    return Verdict::accepted(output, 1, attempts - 1);
                }
            }
        }
        Verdict::rejected(RejectionReason::AcceptanceFailed)
    }
}

/// Ammann–Knight N-copy programming: the same program runs on N
/// re-expressed inputs in parallel; an implicit voter merges the decoded
/// outputs.
pub struct NCopy<I, O> {
    program: Arc<dyn Variant<I, O>>,
    reexpressions: Vec<ReExpression<I, O>>,
    adjudicator: Box<dyn Adjudicator<O>>,
    policy: DecisionPolicy,
}

impl<I, O> NCopy<I, O>
where
    I: Send + Sync + 'static,
    O: Clone + PartialEq + Send + Sync + 'static,
{
    /// Creates an N-copy structure with majority voting; the identity
    /// re-expression is always included.
    #[must_use]
    pub fn new(program: impl Variant<I, O> + 'static) -> Self
    where
        I: Clone,
    {
        Self {
            program: Arc::new(program),
            reexpressions: vec![ReExpression::identity()],
            adjudicator: Box::new(MajorityVoter::new()),
            policy: DecisionPolicy::Exhaustive,
        }
    }

    /// Adds a re-expression (one more copy).
    #[must_use]
    pub fn with_reexpression(mut self, re: ReExpression<I, O>) -> Self {
        self.reexpressions.push(re);
        self
    }

    /// Sets the decision policy. Under [`DecisionPolicy::Eager`] the vote
    /// concludes as soon as a quorum of decoded outputs is mathematically
    /// fixed: remaining copies are skipped and never forked, so their cost
    /// is saved. The disposition and accepted output always match
    /// `Exhaustive`.
    #[must_use]
    pub fn with_policy(mut self, policy: DecisionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The decision policy in effect.
    #[must_use]
    pub fn policy(&self) -> DecisionPolicy {
        self.policy
    }

    /// Number of copies.
    #[must_use]
    pub fn copies(&self) -> usize {
        self.reexpressions.len()
    }

    /// Runs all copies and votes.
    pub fn run(&self, input: &I, ctx: &mut ExecContext) -> Verdict<O> {
        let span = ctx.obs_begin(|| SpanKind::Technique { name: "n-copy" });
        let before = ctx.cost();
        let verdict = match self.policy {
            DecisionPolicy::Exhaustive => self.run_exhaustive(input, ctx),
            DecisionPolicy::Eager => self.run_eager(input, ctx),
        };
        emit_verdict(ctx, &verdict);
        ctx.obs_end(
            span,
            verdict_status(&verdict),
            ctx.cost().delta_since(before).snapshot(),
        );
        verdict
    }

    fn run_exhaustive(&self, input: &I, ctx: &mut ExecContext) -> Verdict<O> {
        let mut outcomes = Vec::with_capacity(self.reexpressions.len());
        let mut costs = Vec::with_capacity(self.reexpressions.len());
        for (i, re) in self.reexpressions.iter().enumerate() {
            let variant = reexpressed_variant(Arc::clone(&self.program), re.clone());
            let mut child = ctx.fork(i as u64);
            let outcome = run_contained(variant.as_ref(), input, &mut child);
            costs.push(outcome.cost);
            outcomes.push(outcome);
        }
        ctx.add_parallel_costs(costs);
        self.adjudicator.adjudicate(&outcomes)
    }

    fn run_eager(&self, input: &I, ctx: &mut ExecContext) -> Verdict<O> {
        let total = self.reexpressions.len();
        let mut judge = self.adjudicator.begin_incremental(total);
        let mut outcomes: Vec<VariantOutcome<O>> = Vec::with_capacity(total);
        let mut verdict: Option<Verdict<O>> = None;
        for (i, re) in self.reexpressions.iter().enumerate() {
            if verdict.is_some() {
                // Quorum already fixed: this copy is never forked or run,
                // but its skip is first-class in the trace.
                let name = format!("{}@{}", self.program.name(), re.name());
                let span = ctx.obs_begin(|| SpanKind::Variant {
                    name: name.as_str().into(),
                });
                ctx.obs_end(
                    span,
                    SpanStatus::Failed { kind: "skipped" },
                    CostSnapshot::ZERO,
                );
                outcomes.push(VariantOutcome::failed(name, VariantFailure::Skipped));
                continue;
            }
            let variant = reexpressed_variant(Arc::clone(&self.program), re.clone());
            let mut child = ctx.fork(i as u64);
            let outcome = run_contained(variant.as_ref(), input, &mut child);
            let decision = judge.feed(&outcome);
            outcomes.push(outcome);
            if decision.is_final() {
                ctx.obs_emit(|| Point::EarlyDecision {
                    executed: i + 1,
                    total,
                });
                verdict = Some(match decision {
                    Decision::Decided(v) => v,
                    _ => judge.finish(&outcomes),
                });
            }
        }
        ctx.add_parallel_costs(outcomes.iter().map(|o| o.cost));
        verdict.unwrap_or_else(|| judge.finish(&outcomes))
    }
}

/// Marker type carrying the Table 2 metadata for data diversity.
#[derive(Debug, Clone, Copy, Default)]
pub struct DataDiversity;

impl Technique for DataDiversity {
    fn name(&self) -> &'static str {
        ENTRY.name
    }

    fn classification(&self) -> Classification {
        ENTRY.classification
    }

    fn patterns(&self) -> &'static [ArchitecturalPattern] {
        ENTRY.patterns
    }

    fn citations(&self) -> &'static [&'static str] {
        ENTRY.citations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redundancy_faults::{FaultSpec, FaultyVariant};

    /// A linear program (f(x) = 2x + 6) with a Bohrbug on ~30% of inputs.
    /// Linearity gives exact re-expressions: f(x) = f(x + k) - 2k.
    fn buggy_linear(density: f64) -> FaultyVariant<i64, i64> {
        FaultyVariant::builder("linear", 10, |x: &i64| 2 * x + 6)
            .corruptor(|correct, _| correct + 1000)
            .fault(FaultSpec::bohrbug("input-bug", density, 99))
            .build()
    }

    fn shift(k: i64) -> ReExpression<i64, i64> {
        ReExpression::new(
            format!("shift{k}"),
            move |x: &i64| x + k,
            move |y: i64| y - 2 * k,
        )
    }

    #[test]
    fn reexpression_is_exact_on_correct_program() {
        let re = shift(5);
        let f = |x: i64| 2 * x + 6;
        for x in -20..20 {
            assert_eq!(re.decode(f(re.encode(&x))), f(x));
        }
    }

    #[test]
    fn retry_block_escapes_input_dependent_failures() {
        let program = buggy_linear(0.3);
        // Oracle acceptance for the test: we know the correct answer.
        let rb = RetryBlock::new(program, |x: &i64, out: &i64| *out == 2 * x + 6)
            .with_reexpression(shift(1))
            .with_reexpression(shift(2))
            .with_reexpression(shift(3));
        let mut ctx = ExecContext::new(0);
        let recovered = (0..500i64)
            .filter(|x| rb.run(x, &mut ctx).is_accepted())
            .count();
        // Residual failure ≈ 0.3^4 ≈ 0.8%: expect ≥ 480 of 500.
        assert!(recovered >= 480, "recovered only {recovered}/500");
        assert_eq!(rb.reexpressions(), 4);
    }

    #[test]
    fn retry_block_rejects_when_all_reexpressions_fail() {
        let program = buggy_linear(1.0); // fails everywhere
        let rb = RetryBlock::new(program, |x: &i64, out: &i64| *out == 2 * x + 6)
            .with_reexpression(shift(1));
        let mut ctx = ExecContext::new(0);
        assert!(!rb.run(&7, &mut ctx).is_accepted());
    }

    #[test]
    fn ncopy_outvotes_minority_failing_copy() {
        let program = buggy_linear(0.25);
        let nc = NCopy::new(program)
            .with_reexpression(shift(11))
            .with_reexpression(shift(23));
        assert_eq!(nc.copies(), 3);
        let mut ctx = ExecContext::new(1);
        let ok = (0..500i64)
            .filter(|x| nc.run(x, &mut ctx).into_output() == Some(2 * x + 6))
            .count();
        // Majority of 3 copies at p=0.25 ≈ 1 - (3·0.25²·0.75 + 0.25³) ≈ 0.84.
        // (Yes: N-copy is weaker than retry at equal redundancy — the vote
        // needs two agreeing copies while retry needs just one survivor.)
        assert!(ok >= 380, "only {ok}/500 correct");
    }

    #[test]
    fn ncopy_without_diversity_inherits_program_failures() {
        let program = buggy_linear(0.25);
        let nc = NCopy::new(program); // single copy, identity only
        let mut ctx = ExecContext::new(2);
        let ok = (0..400i64)
            .filter(|x| nc.run(x, &mut ctx).into_output() == Some(2 * x + 6))
            .count();
        let rate = ok as f64 / 400.0;
        assert!((rate - 0.75).abs() < 0.07, "rate {rate}");
    }

    #[test]
    fn eager_ncopy_matches_exhaustive_disposition_at_lower_cost() {
        let mk = |policy| {
            NCopy::new(buggy_linear(0.25))
                .with_reexpression(shift(11))
                .with_reexpression(shift(23))
                .with_policy(policy)
        };
        let exhaustive = mk(DecisionPolicy::Exhaustive);
        let eager = mk(DecisionPolicy::Eager);
        assert_eq!(eager.policy(), DecisionPolicy::Eager);
        let mut c1 = ExecContext::new(1);
        let mut c2 = ExecContext::new(1);
        for x in 0..300i64 {
            let a = exhaustive.run(&x, &mut c1);
            let b = eager.run(&x, &mut c2);
            assert_eq!(a.is_accepted(), b.is_accepted(), "x={x}");
            assert_eq!(a.output(), b.output(), "x={x}");
        }
        // Majority of 3 usually fixes after 2 agreeing copies: the third
        // copy is skipped and its work saved.
        assert!(
            c2.cost().work_units < c1.cost().work_units,
            "eager {} vs exhaustive {}",
            c2.cost().work_units,
            c1.cost().work_units
        );
    }

    #[test]
    fn retry_block_policy_is_inherently_eager() {
        let rb = RetryBlock::new(buggy_linear(0.0), |x: &i64, out: &i64| *out == 2 * x + 6)
            .with_policy(DecisionPolicy::Exhaustive);
        assert_eq!(rb.policy(), DecisionPolicy::Eager);
    }

    #[test]
    fn retry_cost_is_paid_only_on_failure() {
        let program = buggy_linear(0.0); // no fault
        let rb = RetryBlock::new(program, |x: &i64, out: &i64| *out == 2 * x + 6)
            .with_reexpression(shift(1));
        let mut ctx = ExecContext::new(0);
        let verdict = rb.run(&5, &mut ctx);
        assert!(verdict.is_accepted());
        assert_eq!(ctx.cost().invocations, 1);
    }

    #[test]
    fn entry_matches_table2() {
        assert_eq!(ENTRY.classification.redundancy, RedundancyType::Data);
        assert_eq!(
            ENTRY.classification.adjudication,
            Adjudication::ReactiveMixed
        );
        assert_eq!(ENTRY.classification.faults, FaultSet::DEVELOPMENT);
        assert_eq!(DataDiversity.name(), "Data diversity");
        assert_eq!(DataDiversity.patterns().len(), 2);
    }
}
