//! Process replicas / N-variant systems (paper §4.3; Cox 2006, Bruschi
//! 2007).
//!
//! The same program runs as N replicas in *artificially diversified
//! environments*: disjoint address-space partitions and variant-specific
//! instruction tags. A benign request behaves identically in every
//! replica; an attack — which must send the *same* input to all replicas
//! — cannot simultaneously compromise environments that disagree on
//! address layout and code tags, so at least one replica crashes or
//! diverges, and the implicit comparison detects the attack.
//!
//! Classification (Table 2): deliberate / environment / reactive-implicit
//! / malicious.

use std::sync::Arc;

use redundancy_core::obs::{ObsHandle, Observer, Point};
use redundancy_core::patterns::DecisionPolicy;
use redundancy_core::taxonomy::{
    Adjudication, ArchitecturalPattern, Classification, FaultSet, Intention, RedundancyType,
};
use redundancy_core::technique::{Technique, TechniqueEntry};
use redundancy_sandbox::memory::SimMemory;
use redundancy_sandbox::vm::{tag_program, Instr, Opcode, TaggedVm};

/// Table 2 row for process replicas.
pub const ENTRY: TechniqueEntry = TechniqueEntry {
    name: "Process replicas",
    classification: Classification::new(
        Intention::Deliberate,
        RedundancyType::Environment,
        Adjudication::ReactiveImplicit,
        FaultSet::MALICIOUS,
    ),
    patterns: &[ArchitecturalPattern::ParallelEvaluation],
    citations: &["Cox 2006", "Bruschi 2007"],
};

/// A request processed by the replicated system.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A benign computation: run `program` (opcodes) on `args`.
    Compute {
        /// Program opcodes (compiled with each replica's tag).
        program: Vec<Opcode>,
        /// Input arguments.
        args: Vec<i64>,
    },
    /// A memory attack writing `len` bytes at an absolute address.
    MemoryAttack {
        /// Target absolute address.
        addr: u64,
        /// Bytes written.
        len: u64,
    },
    /// A code-injection attack: `program` runs with `payload` spliced in
    /// at `position`, compiled with the attacker's (unknown) tag.
    CodeInjection {
        /// The legitimate program opcodes.
        program: Vec<Opcode>,
        /// Input arguments.
        args: Vec<i64>,
        /// The injected opcodes (attacker-supplied, untagged).
        payload: Vec<Opcode>,
        /// Where the payload is spliced.
        position: usize,
    },
}

/// What the replicated system concluded about a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaVerdict {
    /// All replicas agreed; the request was served.
    Agreed {
        /// The agreed result (computations only; attacks that "succeed"
        /// uniformly would also land here — see tests for why they
        /// cannot).
        result: Option<i64>,
    },
    /// Replicas diverged — the signature of an attack. Serving stops.
    AttackDetected {
        /// Per-replica observations (for forensics).
        observations: Vec<String>,
    },
}

impl ReplicaVerdict {
    /// Whether an attack was flagged.
    #[must_use]
    pub fn is_attack(&self) -> bool {
        matches!(self, ReplicaVerdict::AttackDetected { .. })
    }
}

struct Replica {
    tag: u16,
    memory: SimMemory,
    vm: TaggedVm,
}

/// An N-replica execution environment with disjoint address partitions
/// and per-replica instruction tags.
///
/// # Examples
///
/// ```
/// use redundancy_sandbox::vm::Opcode;
/// use redundancy_techniques::process_replicas::{ProcessReplicas, Request};
///
/// let mut replicas = ProcessReplicas::new(2);
/// let verdict = replicas.execute(&Request::Compute {
///     program: vec![Opcode::Arg(0), Opcode::Dup, Opcode::Mul],
///     args: vec![9],
/// });
/// assert!(!verdict.is_attack());
/// ```
pub struct ProcessReplicas {
    replicas: Vec<Replica>,
    /// Bytes each replica allocates at start (a victim buffer).
    victim_len: u64,
    obs: Option<ObsHandle>,
    policy: DecisionPolicy,
}

impl ProcessReplicas {
    /// Creates `n` replicas with disjoint partitions and distinct tags,
    /// each holding one victim buffer.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one replica");
        let victim_len = 256;
        let replicas = (0..n)
            .map(|i| {
                // Partition i occupies [i * 2^32, i * 2^32 + 2^20).
                let base = (i as u64) << 32;
                let mut memory = SimMemory::new(base.max(0x1000), 1 << 20);
                let _ = memory.alloc(victim_len).expect("partition fits victim");
                Replica {
                    tag: (i + 1) as u16,
                    memory,
                    vm: TaggedVm::new((i + 1) as u16),
                }
            })
            .collect();
        Self {
            replicas,
            victim_len,
            obs: None,
            policy: DecisionPolicy::Exhaustive,
        }
    }

    /// Sets the decision policy. Under [`DecisionPolicy::Eager`] serving
    /// stops at the *first* replica that diverges from replica 0 — the
    /// attack verdict is already fixed, so the remaining replicas never
    /// process the request and are recorded as skipped in the forensic
    /// observations. Benign (unanimous) requests still run everywhere.
    #[must_use]
    pub fn with_policy(mut self, policy: DecisionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The decision policy in effect.
    #[must_use]
    pub fn policy(&self) -> DecisionPolicy {
        self.policy
    }

    /// Attaches an observer; replica divergence emits a
    /// [`Point::ReplicaDivergence`] carrying the per-replica observations.
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.obs = Some(ObsHandle::new(observer));
        self
    }

    /// Number of replicas.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// An address that is mapped in replica 0 — what an attacker who
    /// studied one variant would target.
    #[must_use]
    pub fn leaked_address(&self) -> u64 {
        self.replicas[0].memory.partition_base() + self.victim_len / 2
    }

    /// Processes a request replica by replica and compares behavior. Under
    /// [`DecisionPolicy::Eager`] the comparison is streamed: the first
    /// divergence fixes the attack verdict and the remaining replicas are
    /// skipped.
    pub fn execute(&mut self, request: &Request) -> ReplicaVerdict {
        let n = self.replicas.len();
        let policy = self.policy;
        let obs = self.obs.as_ref();
        match request {
            Request::Compute { program, args } => {
                let replicas = &self.replicas;
                streamed_comparison(policy, obs, n, |i| {
                    let r = &replicas[i];
                    let tagged: Vec<Instr> = tag_program(program, r.tag);
                    r.vm.execute(&tagged, args).map_err(|e| e.to_string())
                })
            }
            Request::MemoryAttack { addr, len } => {
                let replicas = &mut self.replicas;
                streamed_comparison(policy, obs, n, |i| {
                    replicas[i]
                        .memory
                        .write_absolute(*addr, *len)
                        .map(|()| 0)
                        .map_err(|e| e.to_string())
                })
            }
            Request::CodeInjection {
                program,
                args,
                payload,
                position,
            } => {
                let replicas = &self.replicas;
                streamed_comparison(policy, obs, n, |i| {
                    let r = &replicas[i];
                    let mut tagged: Vec<Instr> = tag_program(program, r.tag);
                    let injected: Vec<Instr> = tag_program(payload, 0); // attacker tag
                    let at = (*position).min(tagged.len());
                    for (k, instr) in injected.into_iter().enumerate() {
                        tagged.insert(at + k, instr);
                    }
                    r.vm.execute(&tagged, args).map_err(|e| e.to_string())
                })
            }
        }
    }
}

/// Runs `run(i)` for each replica, comparing against replica 0 as results
/// stream in. Exhaustive: every replica runs, then the full set is
/// compared — byte-identical to the historical behavior. Eager: the first
/// divergence fixes `AttackDetected`; replicas never run after it and are
/// recorded as skipped observations.
fn streamed_comparison(
    policy: DecisionPolicy,
    obs: Option<&ObsHandle>,
    n: usize,
    mut run: impl FnMut(usize) -> Result<i64, String>,
) -> ReplicaVerdict {
    let mut results: Vec<Result<i64, String>> = Vec::with_capacity(n);
    let mut executed = n;
    for i in 0..n {
        let result = run(i);
        let diverged = i > 0
            && !matches!(
                (&result, &results[0]),
                (Ok(a), Ok(b)) if a == b
            )
            && !matches!((&result, &results[0]), (Err(_), Err(_)));
        results.push(result);
        if diverged && policy == DecisionPolicy::Eager {
            executed = i + 1;
            break;
        }
    }
    let first = &results[0];
    let unanimous = results.iter().all(|r| match (r, first) {
        (Ok(a), Ok(b)) => a == b,
        (Err(_), Err(_)) => true, // all fail => consistent rejection
        _ => false,
    });
    if unanimous {
        ReplicaVerdict::Agreed {
            result: first.as_ref().ok().copied(),
        }
    } else {
        let mut observations: Vec<String> = results
            .into_iter()
            .map(|r| match r {
                Ok(v) => format!("completed with {v}"),
                Err(e) => format!("faulted: {e}"),
            })
            .collect();
        for _ in executed..n {
            observations.push(format!(
                "skipped: attack already detected after {executed} of {n} replicas"
            ));
        }
        if let Some(obs) = obs {
            // Divergence is the rare (attack) path, so interning the
            // joined observation report here is off the hot loop.
            let detail = redundancy_core::obs::Symbol::intern(&observations.join(" | "));
            obs.emit(0, move || Point::ReplicaDivergence { detail });
        }
        ReplicaVerdict::AttackDetected { observations }
    }
}

impl Technique for ProcessReplicas {
    fn name(&self) -> &'static str {
        ENTRY.name
    }

    fn classification(&self) -> Classification {
        ENTRY.classification
    }

    fn patterns(&self) -> &'static [ArchitecturalPattern] {
        ENTRY.patterns
    }

    fn citations(&self) -> &'static [&'static str] {
        ENTRY.citations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_program() -> Vec<Opcode> {
        vec![Opcode::Arg(0), Opcode::Dup, Opcode::Mul]
    }

    #[test]
    fn benign_requests_agree() {
        let mut replicas = ProcessReplicas::new(3);
        let verdict = replicas.execute(&Request::Compute {
            program: square_program(),
            args: vec![12],
        });
        assert_eq!(verdict, ReplicaVerdict::Agreed { result: Some(144) });
    }

    #[test]
    fn absolute_address_attack_is_detected_with_two_replicas() {
        let mut replicas = ProcessReplicas::new(2);
        let target = replicas.leaked_address();
        let verdict = replicas.execute(&Request::MemoryAttack {
            addr: target,
            len: 8,
        });
        // Mapped in replica 0's partition, unmapped in replica 1's: the
        // divergence betrays the attack.
        assert!(verdict.is_attack());
        if let ReplicaVerdict::AttackDetected { observations } = verdict {
            assert!(observations[0].contains("completed"));
            assert!(observations[1].contains("faulted"));
        }
    }

    #[test]
    fn single_process_misses_the_same_attack() {
        // The unprotected baseline: one process, the write lands, nothing
        // is detected — silent compromise.
        let mut single = ProcessReplicas::new(1);
        let target = single.leaked_address();
        let verdict = single.execute(&Request::MemoryAttack {
            addr: target,
            len: 8,
        });
        assert!(!verdict.is_attack(), "single replica cannot detect");
    }

    #[test]
    fn code_injection_rejected_by_all_tagged_replicas() {
        let mut replicas = ProcessReplicas::new(2);
        let verdict = replicas.execute(&Request::CodeInjection {
            program: square_program(),
            args: vec![5],
            payload: vec![Opcode::Push(0x41), Opcode::Add],
            position: 1,
        });
        // Every tagged replica faults on the untagged payload: consistent
        // rejection — the attack is stopped (fail-stop, not divergence).
        match verdict {
            ReplicaVerdict::Agreed { result } => assert_eq!(result, None),
            ReplicaVerdict::AttackDetected { .. } => {}
        }
        // Either way the payload never executed anywhere. Compare with an
        // untagged VM, which runs it happily:
        let untagged = TaggedVm::untagged();
        let mut program = tag_program(&square_program(), 0);
        program.insert(
            1,
            Instr {
                tag: 0,
                op: Opcode::Push(0x41),
            },
        );
        assert!(untagged.execute(&program, &[5]).is_ok());
    }

    #[test]
    fn attacks_missing_every_partition_fail_stop_everywhere() {
        let mut replicas = ProcessReplicas::new(3);
        let verdict = replicas.execute(&Request::MemoryAttack {
            addr: 0xffff_ffff_ffff_0000,
            len: 8,
        });
        // All replicas fault identically: the attack is stopped even
        // without divergence.
        match verdict {
            ReplicaVerdict::Agreed { result } => assert_eq!(result, None),
            ReplicaVerdict::AttackDetected { .. } => panic!("uniform faults are fail-stop"),
        }
    }

    #[test]
    fn detection_rate_over_address_sweep() {
        // Sweep attack addresses across replica 0's partition: with >= 2
        // replicas, every mapped-in-0 address is detected.
        let mut replicas = ProcessReplicas::new(2);
        let base = replicas.replicas[0].memory.partition_base();
        let mut detected = 0;
        let mut tried = 0;
        for offset in (0..256u64).step_by(16) {
            let verdict = replicas.execute(&Request::MemoryAttack {
                addr: base + offset,
                len: 4,
            });
            tried += 1;
            if verdict.is_attack() {
                detected += 1;
            }
        }
        assert_eq!(detected, tried, "all in-partition attacks must be caught");
    }

    #[test]
    fn eager_policy_stops_replicas_at_first_divergence() {
        let mut eager = ProcessReplicas::new(4).with_policy(DecisionPolicy::Eager);
        assert_eq!(eager.policy(), DecisionPolicy::Eager);
        let target = eager.leaked_address();
        let verdict = eager.execute(&Request::MemoryAttack {
            addr: target,
            len: 8,
        });
        assert!(verdict.is_attack());
        if let ReplicaVerdict::AttackDetected { observations } = verdict {
            // Replica 1 diverges from replica 0; replicas 2 and 3 never
            // process the request.
            assert_eq!(observations.len(), 4);
            assert!(observations[0].contains("completed"));
            assert!(observations[1].contains("faulted"));
            assert!(observations[2].starts_with("skipped"));
            assert!(observations[3].starts_with("skipped"));
        }
    }

    #[test]
    fn eager_policy_matches_exhaustive_verdicts() {
        let mut exhaustive = ProcessReplicas::new(3);
        let mut eager = ProcessReplicas::new(3).with_policy(DecisionPolicy::Eager);
        let requests = vec![
            Request::Compute {
                program: square_program(),
                args: vec![7],
            },
            Request::MemoryAttack {
                addr: exhaustive.leaked_address(),
                len: 8,
            },
            Request::MemoryAttack {
                addr: 0xffff_ffff_ffff_0000,
                len: 8,
            },
            Request::CodeInjection {
                program: square_program(),
                args: vec![5],
                payload: vec![Opcode::Push(0x41), Opcode::Add],
                position: 1,
            },
        ];
        for request in &requests {
            let a = exhaustive.execute(request);
            let b = eager.execute(request);
            assert_eq!(a.is_attack(), b.is_attack(), "{request:?}");
            if let (ReplicaVerdict::Agreed { result: ra }, ReplicaVerdict::Agreed { result: rb }) =
                (&a, &b)
            {
                assert_eq!(ra, rb, "{request:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_panics() {
        let _ = ProcessReplicas::new(0);
    }

    #[test]
    fn entry_matches_table2() {
        assert_eq!(ENTRY.classification.faults, FaultSet::MALICIOUS);
        assert_eq!(
            ENTRY.classification.adjudication,
            Adjudication::ReactiveImplicit
        );
        assert_eq!(ENTRY.classification.redundancy, RedundancyType::Environment);
        let r = ProcessReplicas::new(1);
        assert_eq!(r.name(), "Process replicas");
        assert_eq!(r.replicas(), 1);
    }
}
