//! Wrappers (paper §4.1; Popov 2001, Chang 2009, Salles 1999, Fetzer
//! 2001).
//!
//! Wrappers mediate component interactions to *prevent* failures before
//! they happen: sanitizing arguments for incompletely specified COTS
//! components (Popov, Chang), and bounding heap writes to stop smashing
//! attacks (Fetzer's "healers"). Both flavors are implemented here:
//!
//! - [`SanitizingWrapper`] — validates/sanitizes inputs before the call;
//! - [`HeapWrapper`] — intercepts every heap write against
//!   [`SimMemory`] and refuses
//!   boundary violations, turning silent corruption into a detectable
//!   (and harmless) error.
//!
//! Classification (Table 2): deliberate / code / preventive / Bohrbugs +
//! malicious.
//!
//! Wrappers are *intra-component*: they have no redundant executions of
//! their own to decide over, so there is no decision policy to set here.
//! They compose with the eager pattern engines for free instead — a
//! wrapped variant charges the same execution context as an unwrapped
//! one, so when a pattern running under
//! [`DecisionPolicy::Eager`](redundancy_core::patterns::DecisionPolicy)
//! fixes its verdict, in-flight wrapped variants observe the cancellation
//! token at their next charge exactly like bare variants do (see the
//! `wrapped_variants_cooperate_with_eager_cancellation` test).

use redundancy_core::context::ExecContext;
use redundancy_core::outcome::VariantFailure;
use redundancy_core::taxonomy::{
    Adjudication, ArchitecturalPattern, Classification, FaultClass, FaultSet, Intention,
    RedundancyType,
};
use redundancy_core::technique::{Technique, TechniqueEntry};
use redundancy_core::variant::{BoxedVariant, Variant};
use redundancy_sandbox::memory::{MemoryFault, SegmentId, SimMemory};

/// Table 2 row for wrappers.
pub const ENTRY: TechniqueEntry = TechniqueEntry {
    name: "Wrappers",
    classification: Classification::new(
        Intention::Deliberate,
        RedundancyType::Code,
        Adjudication::Preventive,
        FaultSet::BOHRBUGS.with(FaultClass::Malicious),
    ),
    patterns: &[ArchitecturalPattern::IntraComponent],
    citations: &["Popov 2001", "Chang 2009", "Salles 1999", "Fetzer 2001"],
};

/// What a sanitizing wrapper decided about an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputDisposition {
    /// The input was already acceptable.
    Clean,
    /// The input was repaired before the call.
    Sanitized,
    /// The input was rejected outright.
    Rejected,
}

type Sanitizer<I> = Box<dyn Fn(&I) -> Option<I> + Send + Sync>;

/// A wrapper that checks (and optionally repairs) inputs before they
/// reach a wrapped component — the COTS-protection wrappers of Popov and
/// the healing interfaces of Chang.
pub struct SanitizingWrapper<I, O> {
    inner: BoxedVariant<I, O>,
    is_valid: Box<dyn Fn(&I) -> bool + Send + Sync>,
    sanitize: Option<Sanitizer<I>>,
}

impl<I, O> SanitizingWrapper<I, O> {
    /// Wraps `inner`, rejecting inputs failing `is_valid`.
    #[must_use]
    pub fn new(
        inner: BoxedVariant<I, O>,
        is_valid: impl Fn(&I) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self {
            inner,
            is_valid: Box::new(is_valid),
            sanitize: None,
        }
    }

    /// Installs a sanitizer: invalid inputs are repaired when the
    /// sanitizer returns `Some`, rejected otherwise.
    #[must_use]
    pub fn with_sanitizer(
        mut self,
        sanitize: impl Fn(&I) -> Option<I> + Send + Sync + 'static,
    ) -> Self {
        self.sanitize = Some(Box::new(sanitize));
        self
    }

    /// Classifies an input without executing.
    #[must_use]
    pub fn disposition(&self, input: &I) -> InputDisposition {
        if (self.is_valid)(input) {
            InputDisposition::Clean
        } else if let Some(sanitize) = &self.sanitize {
            if sanitize(input).is_some() {
                InputDisposition::Sanitized
            } else {
                InputDisposition::Rejected
            }
        } else {
            InputDisposition::Rejected
        }
    }
}

impl<I, O> Variant<I, O> for SanitizingWrapper<I, O>
where
    I: Send + Sync,
    O: Send + Sync,
{
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn execute(&self, input: &I, ctx: &mut ExecContext) -> Result<O, VariantFailure> {
        use redundancy_core::obs::Point;
        if (self.is_valid)(input) {
            return self.inner.execute(input, ctx);
        }
        if let Some(sanitize) = &self.sanitize {
            if let Some(repaired) = sanitize(input) {
                ctx.obs_emit(|| Point::Sanitized {
                    action: "rewritten",
                });
                return self.inner.execute(&repaired, ctx);
            }
        }
        ctx.obs_emit(|| Point::Sanitized { action: "rejected" });
        Err(VariantFailure::error(
            "wrapper rejected an invalid interaction",
        ))
    }

    fn design_cost(&self) -> f64 {
        self.inner.design_cost()
    }
}

/// A boundary-checking heap interface — Fetzer's healer: all writes go
/// through [`HeapWrapper::write`], which refuses boundary violations that
/// the unchecked path would turn into silent corruption.
#[derive(Debug)]
pub struct HeapWrapper {
    memory: SimMemory,
    prevented: u64,
    obs: Option<redundancy_core::obs::ObsHandle>,
}

impl HeapWrapper {
    /// Wraps a simulated memory.
    #[must_use]
    pub fn new(memory: SimMemory) -> Self {
        Self {
            memory,
            prevented: 0,
            obs: None,
        }
    }

    /// Attaches an observer; every prevented smash emits a
    /// [`redundancy_core::obs::Point::Sanitized`] point.
    #[must_use]
    pub fn with_observer(
        mut self,
        observer: std::sync::Arc<dyn redundancy_core::obs::Observer>,
    ) -> Self {
        self.obs = Some(redundancy_core::obs::ObsHandle::new(observer));
        self
    }

    /// Allocates a buffer.
    ///
    /// # Errors
    ///
    /// Propagates [`MemoryFault::OutOfMemory`].
    pub fn alloc(&mut self, len: u64) -> Result<SegmentId, MemoryFault> {
        self.memory.alloc(len)
    }

    /// Frees a buffer.
    ///
    /// # Errors
    ///
    /// Propagates [`MemoryFault::UnknownSegment`] on double frees.
    pub fn free(&mut self, segment: SegmentId) -> Result<(), MemoryFault> {
        self.memory.free(segment)
    }

    /// Checked write: refuses boundary violations (and counts them as
    /// prevented smashes).
    ///
    /// # Errors
    ///
    /// Returns the [`MemoryFault`] the unchecked write would have turned
    /// into silent corruption.
    pub fn write(&mut self, segment: SegmentId, offset: u64, len: u64) -> Result<(), MemoryFault> {
        match self.memory.write(segment, offset, len) {
            Ok(()) => Ok(()),
            Err(fault) => {
                if matches!(fault, MemoryFault::BoundsViolation { .. }) {
                    self.prevented += 1;
                    if let Some(obs) = &self.obs {
                        obs.emit(0, || redundancy_core::obs::Point::Sanitized {
                            action: "refused-write",
                        });
                    }
                }
                Err(fault)
            }
        }
    }

    /// Number of smashes this wrapper prevented.
    #[must_use]
    pub fn prevented_smashes(&self) -> u64 {
        self.prevented
    }

    /// The wrapped memory (for audits).
    #[must_use]
    pub fn memory(&self) -> &SimMemory {
        &self.memory
    }

    /// Unwraps the memory.
    #[must_use]
    pub fn into_inner(self) -> SimMemory {
        self.memory
    }
}

impl Technique for HeapWrapper {
    fn name(&self) -> &'static str {
        ENTRY.name
    }

    fn classification(&self) -> Classification {
        ENTRY.classification
    }

    fn patterns(&self) -> &'static [ArchitecturalPattern] {
        ENTRY.patterns
    }

    fn citations(&self) -> &'static [&'static str] {
        ENTRY.citations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redundancy_core::variant::pure_variant;

    #[test]
    fn wrapped_variants_cooperate_with_eager_cancellation() {
        use redundancy_core::adjudicator::voting::MajorityVoter;
        use redundancy_core::patterns::{DecisionPolicy, ExecutionMode, ParallelEvaluation};
        use redundancy_core::variant::FnVariant;

        // A wrapper around a long-running component: the wrapper passes
        // the input through, and the inner loop charges the (cancellable)
        // context on every step.
        let slow: BoxedVariant<i32, i32> =
            Box::new(FnVariant::new("slow", |x: &i32, ctx: &mut ExecContext| {
                for _ in 0..2_000 {
                    ctx.charge(1).map_err(|_| VariantFailure::Timeout)?;
                    std::thread::sleep(std::time::Duration::from_micros(500));
                }
                Ok(*x)
            }));
        let wrapped: BoxedVariant<i32, i32> =
            Box::new(SanitizingWrapper::new(slow, |x: &i32| *x >= 0));
        let p = ParallelEvaluation::new(MajorityVoter::new())
            .with_mode(ExecutionMode::Threaded)
            .with_policy(DecisionPolicy::Eager)
            .with_variant(pure_variant("a", 10, |x: &i32| x * 2))
            .with_variant(pure_variant("b", 20, |x: &i32| x * 2))
            .with_variant(wrapped);
        let mut ctx = ExecContext::new(3);
        let report = p.run(&10, &mut ctx);

        // The two agreeing fast variants fix the majority; the wrapped
        // straggler notices the token through its inner charges.
        assert_eq!(report.output(), Some(&20));
        assert_eq!(report.outcomes[2].result, Err(VariantFailure::Cancelled));
        assert_eq!(report.cancelled(), 1);
    }

    #[test]
    fn heap_wrapper_prevents_all_smashes() {
        // Unprotected run: overflowing writes corrupt neighbors.
        let mut raw = SimMemory::new(0x1000, 0x10000);
        let a = raw.alloc(16).unwrap();
        let _b = raw.alloc(16).unwrap();
        let _ = raw.write_unchecked(a, 8, 16).unwrap();
        assert!(!raw.audit().is_empty(), "baseline must corrupt");

        // Wrapped run: the same writes are refused, memory stays clean.
        let mut wrapped = HeapWrapper::new(SimMemory::new(0x1000, 0x10000));
        let a = wrapped.alloc(16).unwrap();
        let _b = wrapped.alloc(16).unwrap();
        assert!(wrapped.write(a, 8, 16).is_err());
        assert!(wrapped.write(a, 0, 16).is_ok());
        assert!(wrapped.memory().audit().is_empty());
        assert_eq!(wrapped.prevented_smashes(), 1);
    }

    #[test]
    fn heap_wrapper_passes_legal_traffic() {
        let mut wrapped = HeapWrapper::new(SimMemory::new(0, 0x1000));
        let a = wrapped.alloc(100).unwrap();
        for off in (0..100).step_by(10) {
            assert!(wrapped.write(a, off, 10).is_ok());
        }
        assert_eq!(wrapped.prevented_smashes(), 0);
        wrapped.free(a).unwrap();
        let mem = wrapped.into_inner();
        assert_eq!(mem.live_segments(), 0);
    }

    #[test]
    fn sanitizing_wrapper_passes_valid_inputs() {
        let wrapper =
            SanitizingWrapper::new(pure_variant("sqrt-ish", 5, |x: &i64| x / 2), |x: &i64| {
                *x >= 0
            });
        let mut ctx = ExecContext::new(0);
        assert_eq!(wrapper.execute(&10, &mut ctx), Ok(5));
        assert_eq!(wrapper.disposition(&10), InputDisposition::Clean);
    }

    #[test]
    fn sanitizing_wrapper_rejects_without_sanitizer() {
        let wrapper =
            SanitizingWrapper::new(pure_variant("inner", 5, |x: &i64| x / 2), |x: &i64| *x >= 0);
        let mut ctx = ExecContext::new(0);
        assert!(matches!(
            wrapper.execute(&-10, &mut ctx),
            Err(VariantFailure::Error { .. })
        ));
        assert_eq!(wrapper.disposition(&-10), InputDisposition::Rejected);
    }

    #[test]
    fn sanitizing_wrapper_repairs_when_possible() {
        let wrapper =
            SanitizingWrapper::new(pure_variant("inner", 5, |x: &i64| x * 2), |x: &i64| *x >= 0)
                .with_sanitizer(|x: &i64| Some(x.abs()));
        let mut ctx = ExecContext::new(0);
        assert_eq!(wrapper.execute(&-21, &mut ctx), Ok(42));
        assert_eq!(wrapper.disposition(&-21), InputDisposition::Sanitized);
    }

    #[test]
    fn sanitizer_may_still_reject() {
        let wrapper =
            SanitizingWrapper::new(pure_variant("inner", 5, |x: &i64| *x), |x: &i64| *x >= 0)
                .with_sanitizer(|x: &i64| if *x > -100 { Some(-x) } else { None });
        let mut ctx = ExecContext::new(0);
        assert_eq!(wrapper.execute(&-5, &mut ctx), Ok(5));
        assert!(wrapper.execute(&-500, &mut ctx).is_err());
        assert_eq!(wrapper.disposition(&-500), InputDisposition::Rejected);
    }

    #[test]
    fn wrapper_prevents_malicious_interaction_bohrbug() {
        // A component with a Bohrbug on negative inputs (div rounds the
        // wrong way, say). The wrapper prevents the activation entirely.
        use redundancy_faults::{FaultSpec, FaultyVariant};
        let fragile = FaultyVariant::builder("fragile", 5, |x: &i64| x * 3)
            .corruptor(|c, _| c - 1)
            .attack_detector(|x: &i64| *x < 0)
            .fault(FaultSpec::malicious("neg-input-bug", 1.0, 3))
            .build_boxed();
        let wrapper = SanitizingWrapper::new(fragile, |x: &i64| *x >= 0)
            .with_sanitizer(|x: &i64| Some(x.abs()));
        let mut ctx = ExecContext::new(0);
        // Without the wrapper, -7 triggers the corruption; with it, the
        // input is repaired before reaching the component.
        assert_eq!(wrapper.execute(&-7, &mut ctx), Ok(21));
    }

    #[test]
    fn entry_matches_table2() {
        assert_eq!(ENTRY.classification.adjudication, Adjudication::Preventive);
        assert!(ENTRY.classification.faults.contains(FaultClass::Bohrbug));
        assert!(ENTRY.classification.faults.contains(FaultClass::Malicious));
        assert!(!ENTRY.classification.faults.contains(FaultClass::Heisenbug));
        let hw = HeapWrapper::new(SimMemory::new(0, 16));
        assert_eq!(hw.name(), "Wrappers");
    }
}
