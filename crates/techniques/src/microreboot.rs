//! Reboot and micro-reboot (paper §5.2; Candea's JAGR 2003, Zhang 2007).
//!
//! Rebooting discards a corrupted execution environment wholesale. Candea
//! et al. refine the brute-force full reboot into *micro-reboots* of the
//! smallest failing component, escalating to enclosing components (and
//! ultimately the whole system) only when the localized reboot does not
//! cure the failure. The pay-off is recovery time proportional to the
//! faulty component's size instead of the whole system's — measured by
//! experiment E11.
//!
//! Classification (Table 2): opportunistic / environment /
//! reactive-explicit / Heisenbugs.

use std::collections::HashMap;
use std::sync::Arc;

use redundancy_core::obs::{ObsHandle, Observer, Point, Symbol};
use redundancy_core::rng::SplitMix64;
use redundancy_core::taxonomy::{
    Adjudication, ArchitecturalPattern, Classification, FaultSet, Intention, RedundancyType,
};
use redundancy_core::technique::{Technique, TechniqueEntry};

/// Table 2 row for reboot and micro-reboot.
pub const ENTRY: TechniqueEntry = TechniqueEntry {
    name: "Reboot and micro-reboot",
    classification: Classification::new(
        Intention::Opportunistic,
        RedundancyType::Environment,
        Adjudication::ReactiveExplicit,
        FaultSet::HEISENBUGS,
    ),
    patterns: &[ArchitecturalPattern::IntraComponent],
    citations: &["Candea 2003 (JAGR)", "Zhang 2007"],
};

/// A node in the component tree.
#[derive(Debug, Clone)]
struct Component {
    name: String,
    /// The name interned once at insertion, so reboot events copy a
    /// symbol instead of cloning the `String`.
    symbol: Symbol,
    parent: Option<usize>,
    children: Vec<usize>,
    /// Restart cost of this component alone (its children add theirs).
    own_restart_cost: u64,
    /// Whether the component currently holds corrupted state.
    corrupted: bool,
}

/// The reboot policy under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RebootPolicy {
    /// Always reboot the whole system.
    Full,
    /// Reboot only the failing leaf component (never escalate).
    MicroOnly,
    /// Micro-reboot first, escalate to the parent on repeated failure
    /// (the JAGR recursive-reboot policy).
    Escalating,
}

/// Result of handling one failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Virtual time spent rebooting.
    pub recovery_time: u64,
    /// Number of reboot operations performed.
    pub reboots: u32,
    /// Whether the corruption was actually cleared.
    pub cured: bool,
}

/// A restartable component tree (an application server and its
/// subsystems, in JAGR's setting).
#[derive(Debug, Clone, Default)]
pub struct ComponentTree {
    components: Vec<Component>,
    index: HashMap<String, usize>,
    obs: Option<ObsHandle>,
}

impl ComponentTree {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches an observer; every reboot emits a [`Point::Reboot`]
    /// recording the rebooted component and the escalation depth.
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.obs = Some(ObsHandle::new(observer));
        self
    }

    fn emit_reboot(&self, idx: usize, depth: u32, clock: u64) {
        if let Some(obs) = &self.obs {
            let component = self.components[idx].symbol;
            obs.emit(clock, move || Point::Reboot { component, depth });
        }
    }

    /// Adds a root component.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_root(&mut self, name: impl Into<String>, restart_cost: u64) -> &mut Self {
        self.insert(name.into(), None, restart_cost);
        self
    }

    /// Adds a child component under `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is unknown or the name is already taken.
    pub fn add_child(
        &mut self,
        parent: &str,
        name: impl Into<String>,
        restart_cost: u64,
    ) -> &mut Self {
        let parent_idx = *self.index.get(parent).expect("unknown parent component");
        self.insert(name.into(), Some(parent_idx), restart_cost);
        self
    }

    fn insert(&mut self, name: String, parent: Option<usize>, restart_cost: u64) {
        assert!(
            !self.index.contains_key(&name),
            "component name already used"
        );
        let idx = self.components.len();
        self.components.push(Component {
            symbol: Symbol::intern(&name),
            name: name.clone(),
            parent,
            children: Vec::new(),
            own_restart_cost: restart_cost,
            corrupted: false,
        });
        if let Some(p) = parent {
            self.components[p].children.push(idx);
        }
        self.index.insert(name, idx);
    }

    /// Number of components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Marks a component's state as corrupted (a failure manifested
    /// there). `scope_up` marks that many ancestors as corrupted too — a
    /// failure whose root cause lives above the observed symptom, the
    /// case that defeats non-escalating micro-reboots.
    ///
    /// # Panics
    ///
    /// Panics if the component is unknown.
    pub fn corrupt(&mut self, name: &str, scope_up: usize) {
        let mut idx = *self.index.get(name).expect("unknown component");
        self.components[idx].corrupted = true;
        for _ in 0..scope_up {
            match self.components[idx].parent {
                Some(p) => {
                    self.components[p].corrupted = true;
                    idx = p;
                }
                None => break,
            }
        }
    }

    /// Whether any component holds corrupted state.
    #[must_use]
    pub fn any_corrupted(&self) -> bool {
        self.components.iter().any(|c| c.corrupted)
    }

    /// Names of the currently corrupted components (for diagnostics).
    #[must_use]
    pub fn corrupted_components(&self) -> Vec<&str> {
        self.components
            .iter()
            .filter(|c| c.corrupted)
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Total restart cost of the subtree rooted at `idx`.
    fn subtree_cost(&self, idx: usize) -> u64 {
        let mut total = self.components[idx].own_restart_cost;
        for &child in &self.components[idx].children {
            total += self.subtree_cost(child);
        }
        total
    }

    /// Restarts the subtree rooted at `idx`, clearing corruption there.
    fn reboot_subtree(&mut self, idx: usize) -> u64 {
        let cost = self.subtree_cost(idx);
        let mut stack = vec![idx];
        while let Some(i) = stack.pop() {
            self.components[i].corrupted = false;
            stack.extend(self.components[i].children.iter().copied());
        }
        cost
    }

    fn root_of(&self, mut idx: usize) -> usize {
        while let Some(p) = self.components[idx].parent {
            idx = p;
        }
        idx
    }

    /// Handles a failure observed at component `name` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the component is unknown.
    pub fn recover(&mut self, name: &str, policy: RebootPolicy) -> RecoveryRecord {
        let observed = *self.index.get(name).expect("unknown component");
        match policy {
            RebootPolicy::Full => {
                let root = self.root_of(observed);
                let time = self.reboot_subtree(root);
                self.emit_reboot(root, 0, time);
                RecoveryRecord {
                    recovery_time: time,
                    reboots: 1,
                    cured: !self.any_corrupted(),
                }
            }
            RebootPolicy::MicroOnly => {
                let time = self.reboot_subtree(observed);
                self.emit_reboot(observed, 0, time);
                RecoveryRecord {
                    recovery_time: time,
                    reboots: 1,
                    cured: !self.any_corrupted(),
                }
            }
            RebootPolicy::Escalating => {
                let mut time = 0;
                let mut reboots = 0;
                let mut scope = observed;
                loop {
                    time += self.reboot_subtree(scope);
                    self.emit_reboot(scope, reboots, time);
                    reboots += 1;
                    if !self.any_corrupted() {
                        return RecoveryRecord {
                            recovery_time: time,
                            reboots,
                            cured: true,
                        };
                    }
                    match self.components[scope].parent {
                        Some(p) => scope = p,
                        None => {
                            return RecoveryRecord {
                                recovery_time: time,
                                reboots,
                                cured: !self.any_corrupted(),
                            }
                        }
                    }
                }
            }
        }
    }

    /// A three-tier application-server tree (JAGR's setting): root →
    /// tiers → per-tier components, for tests and experiment E11.
    #[must_use]
    pub fn jagr_demo() -> ComponentTree {
        let mut tree = ComponentTree::new();
        tree.add_root("server", 1000);
        for (tier, tier_cost) in [("web", 200u64), ("app", 300), ("db", 500)] {
            tree.add_child("server", tier, tier_cost);
            for i in 0..4 {
                tree.add_child(tier, format!("{tier}-c{i}"), 20);
            }
        }
        tree
    }
}

/// Availability over a horizon of `requests` with component failures
/// arriving at `failure_rate` per request, recovered under `policy`.
/// Returns `(availability, mean_recovery_time)`. A fraction `deep_frac`
/// of failures corrupt one level above the observed component.
#[must_use]
pub fn availability_sim(
    policy: RebootPolicy,
    requests: u64,
    failure_rate: f64,
    deep_frac: f64,
    rng: &mut SplitMix64,
) -> (f64, f64) {
    let mut tree = ComponentTree::jagr_demo();
    let leaves: Vec<String> = (0..4)
        .flat_map(|i| {
            ["web", "app", "db"]
                .iter()
                .map(move |t| format!("{t}-c{i}"))
                .collect::<Vec<_>>()
        })
        .collect();
    let mut downtime: u64 = 0;
    let mut recoveries = 0u64;
    let mut recovery_total: u64 = 0;
    let service_time_per_request: u64 = 10;
    for _ in 0..requests {
        if rng.chance(failure_rate) {
            let leaf = rng.choose(&leaves).expect("leaves exist").clone();
            let scope_up = usize::from(rng.chance(deep_frac));
            tree.corrupt(&leaf, scope_up);
            let record = tree.recover(&leaf, policy);
            // Uncured corruption keeps failing until a full reboot: charge
            // the remaining cleanup as extra downtime.
            let residual = if record.cured {
                0
            } else {
                tree.recover("server", RebootPolicy::Full).recovery_time
            };
            downtime += record.recovery_time + residual;
            recovery_total += record.recovery_time + residual;
            recoveries += 1;
        }
    }
    let uptime = requests * service_time_per_request;
    let availability = uptime as f64 / (uptime + downtime) as f64;
    let mean_recovery = if recoveries == 0 {
        0.0
    } else {
        recovery_total as f64 / recoveries as f64
    };
    (availability, mean_recovery)
}

/// Marker type carrying the Table 2 metadata.
#[derive(Debug, Clone, Copy, Default)]
pub struct MicroReboot;

impl Technique for MicroReboot {
    fn name(&self) -> &'static str {
        ENTRY.name
    }

    fn classification(&self) -> Classification {
        ENTRY.classification
    }

    fn patterns(&self) -> &'static [ArchitecturalPattern] {
        ENTRY.patterns
    }

    fn citations(&self) -> &'static [&'static str] {
        ENTRY.citations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_reboot_is_much_cheaper_than_full() {
        let mut tree = ComponentTree::jagr_demo();
        tree.corrupt("db-c1", 0);
        let micro = tree.recover("db-c1", RebootPolicy::MicroOnly);
        assert!(micro.cured);
        assert_eq!(micro.recovery_time, 20);

        let mut tree = ComponentTree::jagr_demo();
        tree.corrupt("db-c1", 0);
        let full = tree.recover("db-c1", RebootPolicy::Full);
        assert!(full.cured);
        // Full reboot: 1000 + (200+300+500) + 12*20 = 2240.
        assert_eq!(full.recovery_time, 2240);
        assert!(full.recovery_time > micro.recovery_time * 50);
    }

    #[test]
    fn micro_only_fails_on_deep_corruption() {
        let mut tree = ComponentTree::jagr_demo();
        tree.corrupt("db-c1", 1); // the db tier itself is corrupted
        let micro = tree.recover("db-c1", RebootPolicy::MicroOnly);
        assert!(!micro.cured, "leaf reboot cannot clear tier corruption");
        assert!(tree.any_corrupted());
    }

    #[test]
    fn escalation_cures_deep_corruption() {
        let mut tree = ComponentTree::jagr_demo();
        tree.corrupt("db-c1", 1);
        let rec = tree.recover("db-c1", RebootPolicy::Escalating);
        assert!(rec.cured);
        assert_eq!(rec.reboots, 2, "leaf then tier");
        // Leaf (20) + tier subtree (500 + 4*20 = 580).
        assert_eq!(rec.recovery_time, 600);
        assert!(!tree.any_corrupted());
    }

    #[test]
    fn escalation_reaches_root_when_needed() {
        let mut tree = ComponentTree::jagr_demo();
        tree.corrupt("db-c1", 2); // leaf, tier, and server corrupted
        let rec = tree.recover("db-c1", RebootPolicy::Escalating);
        assert!(rec.cured);
        assert_eq!(rec.reboots, 3);
    }

    #[test]
    fn availability_ranking_matches_the_paper() {
        let mut rng = SplitMix64::new(11);
        let (a_full, t_full) = availability_sim(RebootPolicy::Full, 20_000, 0.01, 0.2, &mut rng);
        let (a_esc, t_esc) =
            availability_sim(RebootPolicy::Escalating, 20_000, 0.01, 0.2, &mut rng);
        assert!(
            a_esc > a_full,
            "escalating {a_esc} should beat full {a_full}"
        );
        assert!(t_esc < t_full, "esc {t_esc} !< full {t_full}");
    }

    #[test]
    fn tree_construction_and_accessors() {
        let tree = ComponentTree::jagr_demo();
        assert_eq!(tree.len(), 1 + 3 + 12);
        assert!(!tree.is_empty());
        assert!(!tree.any_corrupted());
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn unknown_parent_panics() {
        let mut tree = ComponentTree::new();
        tree.add_child("ghost", "x", 1);
    }

    #[test]
    #[should_panic(expected = "already used")]
    fn duplicate_name_panics() {
        let mut tree = ComponentTree::new();
        tree.add_root("a", 1);
        tree.add_root("a", 1);
    }

    #[test]
    fn entry_matches_table2() {
        assert_eq!(ENTRY.classification.intention, Intention::Opportunistic);
        assert_eq!(ENTRY.classification.faults, FaultSet::HEISENBUGS);
        assert_eq!(MicroReboot.name(), "Reboot and micro-reboot");
    }
}
