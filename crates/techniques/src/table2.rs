//! The registry that regenerates the paper's Table 2.
//!
//! [`entries`] returns every technique's [`TechniqueEntry`] in the
//! paper's row order; [`render`] prints them as the table. The
//! conformance tests below pin each row to the classification printed in
//! the paper — any drift in a technique's declared taxonomy breaks the
//! build.

use redundancy_core::technique::{render_table2, TechniqueEntry};

/// All Table 2 rows, in the paper's order.
#[must_use]
pub fn entries() -> Vec<TechniqueEntry> {
    vec![
        crate::nvp::ENTRY,
        crate::recovery_blocks::ENTRY,
        crate::self_checking::ENTRY,
        crate::self_optimizing::ENTRY,
        crate::rule_engine::ENTRY,
        crate::wrappers::ENTRY,
        crate::robust_data::ENTRY,
        crate::data_diversity::ENTRY,
        crate::nvariant_data::ENTRY,
        crate::rejuvenation::ENTRY,
        crate::env_perturbation::ENTRY,
        crate::process_replicas::ENTRY,
        crate::service_substitution::ENTRY,
        crate::fault_fixing::ENTRY,
        crate::workarounds::ENTRY,
        crate::checkpoint_recovery::ENTRY,
        crate::microreboot::ENTRY,
    ]
}

/// Renders Table 2 as fixed-width text.
#[must_use]
pub fn render() -> String {
    render_table2(&entries())
}

#[cfg(test)]
mod tests {
    use super::*;
    use redundancy_core::taxonomy::{
        Adjudication, FaultClass, FaultSet, Intention, RedundancyType,
    };

    #[test]
    fn seventeen_rows_in_paper_order() {
        let names: Vec<&str> = entries().iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec![
                "N-version programming",
                "Recovery blocks",
                "Self-checking programming",
                "Self-optimizing code",
                "Exception handling, rule engines",
                "Wrappers",
                "Robust data structures, audits",
                "Data diversity",
                "Data diversity for security",
                "Rejuvenation",
                "Environment perturbation",
                "Process replicas",
                "Dynamic service substitution",
                "Fault fixing, genetic programming",
                "Automatic workarounds",
                "Checkpoint-recovery",
                "Reboot and micro-reboot",
            ]
        );
    }

    /// The full conformance check: every cell of Table 2, as printed in
    /// the paper.
    #[test]
    fn classifications_match_the_paper_exactly() {
        use Adjudication::{Preventive, ReactiveExplicit, ReactiveImplicit, ReactiveMixed};
        use Intention::{Deliberate, Opportunistic};
        use RedundancyType::{Code, Data, Environment};
        let dev = FaultSet::DEVELOPMENT;
        let expected: Vec<(&str, Intention, RedundancyType, Adjudication, FaultSet)> = vec![
            (
                "N-version programming",
                Deliberate,
                Code,
                ReactiveImplicit,
                dev,
            ),
            ("Recovery blocks", Deliberate, Code, ReactiveExplicit, dev),
            (
                "Self-checking programming",
                Deliberate,
                Code,
                ReactiveMixed,
                dev,
            ),
            (
                "Self-optimizing code",
                Deliberate,
                Code,
                ReactiveExplicit,
                dev,
            ),
            (
                "Exception handling, rule engines",
                Deliberate,
                Code,
                ReactiveExplicit,
                dev,
            ),
            (
                "Wrappers",
                Deliberate,
                Code,
                Preventive,
                FaultSet::BOHRBUGS.with(FaultClass::Malicious),
            ),
            (
                "Robust data structures, audits",
                Deliberate,
                Data,
                ReactiveImplicit,
                dev,
            ),
            ("Data diversity", Deliberate, Data, ReactiveMixed, dev),
            (
                "Data diversity for security",
                Deliberate,
                Data,
                ReactiveImplicit,
                FaultSet::MALICIOUS,
            ),
            (
                "Rejuvenation",
                Deliberate,
                Environment,
                Preventive,
                FaultSet::HEISENBUGS,
            ),
            (
                "Environment perturbation",
                Deliberate,
                Environment,
                ReactiveExplicit,
                dev,
            ),
            (
                "Process replicas",
                Deliberate,
                Environment,
                ReactiveImplicit,
                FaultSet::MALICIOUS,
            ),
            (
                "Dynamic service substitution",
                Opportunistic,
                Code,
                ReactiveExplicit,
                dev,
            ),
            (
                "Fault fixing, genetic programming",
                Opportunistic,
                Code,
                ReactiveExplicit,
                FaultSet::BOHRBUGS,
            ),
            (
                "Automatic workarounds",
                Opportunistic,
                Code,
                ReactiveExplicit,
                dev,
            ),
            (
                "Checkpoint-recovery",
                Opportunistic,
                Environment,
                ReactiveExplicit,
                FaultSet::HEISENBUGS,
            ),
            (
                "Reboot and micro-reboot",
                Opportunistic,
                Environment,
                ReactiveExplicit,
                FaultSet::HEISENBUGS,
            ),
        ];
        let actual = entries();
        assert_eq!(actual.len(), expected.len());
        for (entry, (name, intention, redundancy, adjudication, faults)) in
            actual.iter().zip(expected)
        {
            assert_eq!(entry.name, name);
            assert_eq!(entry.classification.intention, intention, "{name}");
            assert_eq!(entry.classification.redundancy, redundancy, "{name}");
            assert_eq!(entry.classification.adjudication, adjudication, "{name}");
            assert_eq!(entry.classification.faults, faults, "{name}");
        }
    }

    #[test]
    fn every_entry_has_citations_and_patterns() {
        for entry in entries() {
            assert!(
                !entry.citations.is_empty(),
                "{} lacks citations",
                entry.name
            );
            assert!(!entry.patterns.is_empty(), "{} lacks patterns", entry.name);
        }
    }

    #[test]
    fn rendered_table_contains_every_row() {
        let table = render();
        for entry in entries() {
            assert!(table.contains(entry.name), "missing {}", entry.name);
        }
        assert!(table.contains("deliberate"));
        assert!(table.contains("opportunistic"));
        assert!(table.contains("preventive"));
    }

    #[test]
    fn deliberate_vs_opportunistic_split_matches_sections_4_and_5() {
        let deliberate = entries()
            .iter()
            .filter(|e| e.classification.intention == Intention::Deliberate)
            .count();
        let opportunistic = entries()
            .iter()
            .filter(|e| e.classification.intention == Intention::Opportunistic)
            .count();
        assert_eq!(deliberate, 12);
        assert_eq!(opportunistic, 5);
    }
}
