//! Checkpoint-recovery (paper §5.2; Elnozahy et al. 2002).
//!
//! Periodically saved consistent states serve as safe rollback points:
//! when the system fails, it is restored to the latest checkpoint and
//! *re-executed without changing anything*, relying on the spontaneous
//! non-determinism of the environment to avoid the failure. This
//! opportunistic use of environment redundancy defeats transient
//! Heisenbugs and is powerless against deterministic Bohrbugs — both
//! directions are tested below.
//!
//! Classification (Table 2): opportunistic / environment /
//! reactive-explicit / Heisenbugs.

use redundancy_core::context::ExecContext;
use redundancy_core::outcome::{VariantFailure, VariantOutcome};
use redundancy_core::rng::SplitMix64;
use redundancy_core::taxonomy::{
    Adjudication, ArchitecturalPattern, Classification, FaultSet, Intention, RedundancyType,
};
use redundancy_core::technique::{Technique, TechniqueEntry};
use redundancy_core::variant::{run_contained, BoxedVariant};
use redundancy_faults::FailureDetector;

/// Table 2 row for checkpoint-recovery.
pub const ENTRY: TechniqueEntry = TechniqueEntry {
    name: "Checkpoint-recovery",
    classification: Classification::new(
        Intention::Opportunistic,
        RedundancyType::Environment,
        Adjudication::ReactiveExplicit,
        FaultSet::HEISENBUGS,
    ),
    patterns: &[ArchitecturalPattern::SequentialAlternatives],
    citations: &["Elnozahy 2002", "Wang 1995"],
};

/// How a protected execution concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryOutcome<O> {
    /// Succeeded without rollback.
    Clean(O),
    /// Succeeded after one or more rollback/re-execution cycles.
    Recovered {
        /// The final output.
        output: O,
        /// Number of rollbacks performed.
        rollbacks: u32,
    },
    /// Retries exhausted.
    Failed(VariantFailure),
}

impl<O> RecoveryOutcome<O> {
    /// The delivered output, if any.
    #[must_use]
    pub fn output(&self) -> Option<&O> {
        match self {
            RecoveryOutcome::Clean(o) | RecoveryOutcome::Recovered { output: o, .. } => Some(o),
            RecoveryOutcome::Failed(_) => None,
        }
    }
}

/// Checkpoint-recovery around a single computation: on detected failure,
/// roll back (pay `rollback_cost`) and re-execute identically.
pub struct CheckpointRecovery<I, O> {
    variant: BoxedVariant<I, O>,
    detector: Box<dyn FailureDetector<I, O>>,
    max_retries: u32,
    rollback_cost: u64,
}

impl<I, O> CheckpointRecovery<I, O> {
    /// Creates the wrapper.
    #[must_use]
    pub fn new(
        variant: BoxedVariant<I, O>,
        detector: impl FailureDetector<I, O> + 'static,
        max_retries: u32,
    ) -> Self {
        Self {
            variant,
            detector: Box::new(detector),
            max_retries,
            rollback_cost: 20,
        }
    }

    /// Sets the virtual cost of one rollback (restoring the checkpoint).
    #[must_use]
    pub fn with_rollback_cost(mut self, cost: u64) -> Self {
        self.rollback_cost = cost;
        self
    }

    /// Executes with rollback-and-retry protection.
    pub fn execute(&self, input: &I, ctx: &mut ExecContext) -> RecoveryOutcome<O> {
        use redundancy_core::obs::{Point, SpanKind, SpanStatus};

        let span = ctx.obs_begin(|| SpanKind::Technique {
            name: "checkpoint-recovery",
        });
        let before = ctx.cost();
        ctx.obs_emit(|| Point::Checkpoint { label: "entry" });
        let result = self.execute_inner(input, ctx);
        let status = match &result {
            RecoveryOutcome::Clean(_) => SpanStatus::Ok,
            RecoveryOutcome::Recovered { rollbacks, .. } => SpanStatus::Accepted {
                support: 1,
                dissent: *rollbacks as usize,
            },
            RecoveryOutcome::Failed(failure) => SpanStatus::Failed {
                kind: failure.kind(),
            },
        };
        ctx.obs_end(span, status, ctx.cost().delta_since(before).snapshot());
        result
    }

    fn execute_inner(&self, input: &I, ctx: &mut ExecContext) -> RecoveryOutcome<O> {
        use redundancy_core::obs::Point;

        let mut last_failure = VariantFailure::Omission;
        for attempt in 0..=self.max_retries {
            let mut child = ctx.fork(u64::from(attempt));
            let outcome: VariantOutcome<O> =
                run_contained(self.variant.as_ref(), input, &mut child);
            ctx.add_sequential_cost(outcome.cost);
            if !self.detector.detect(input, &outcome) {
                if let Ok(output) = outcome.result {
                    return if attempt == 0 {
                        RecoveryOutcome::Clean(output)
                    } else {
                        RecoveryOutcome::Recovered {
                            output,
                            rollbacks: attempt,
                        }
                    };
                }
            }
            last_failure = match outcome.result {
                Err(f) => f,
                Ok(_) => VariantFailure::error("detector rejected the output"),
            };
            ctx.advance_ns(self.rollback_cost);
            ctx.obs_emit(|| Point::Rollback {
                label: "checkpoint",
            });
        }
        RecoveryOutcome::Failed(last_failure)
    }
}

impl<I, O> Technique for CheckpointRecovery<I, O> {
    fn name(&self) -> &'static str {
        ENTRY.name
    }

    fn classification(&self) -> Classification {
        ENTRY.classification
    }

    fn patterns(&self) -> &'static [ArchitecturalPattern] {
        ENTRY.patterns
    }

    fn citations(&self) -> &'static [&'static str] {
        ENTRY.citations
    }
}

/// Statistics from a long-running checkpointed execution (experiment
/// support): total time, failures survived, work lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LongRunStats {
    /// Virtual time to completion.
    pub completion_time: u64,
    /// Failures encountered.
    pub failures: u64,
    /// Work units lost to rollbacks.
    pub lost_work: u64,
}

/// Simulates a long computation of `total_work` units with a transient
/// failure probability per unit, checkpointing every `interval` units
/// (cost `checkpoint_cost` each); on failure, work since the last
/// checkpoint is lost. `interval == 0` means no checkpoints (restart from
/// scratch).
#[must_use]
pub fn long_run(
    total_work: u64,
    interval: u64,
    checkpoint_cost: u64,
    fail_prob_per_unit: f64,
    rng: &mut SplitMix64,
) -> LongRunStats {
    let mut clock = 0u64;
    let mut committed = 0u64;
    let mut since_checkpoint = 0u64;
    let mut failures = 0u64;
    let mut lost = 0u64;
    // Bounded: configurations that essentially never finish (e.g. no
    // checkpoints under heavy failure) saturate at the cap instead of
    // spinning forever.
    let cap = total_work.saturating_mul(100).max(1_000_000);
    while committed + since_checkpoint < total_work && clock < cap {
        clock += 1;
        if rng.chance(fail_prob_per_unit) {
            failures += 1;
            lost += since_checkpoint;
            since_checkpoint = 0; // roll back to the last checkpoint
            continue;
        }
        since_checkpoint += 1;
        if interval > 0 && since_checkpoint >= interval {
            committed += since_checkpoint;
            since_checkpoint = 0;
            clock += checkpoint_cost;
        }
    }
    LongRunStats {
        completion_time: clock,
        failures,
        lost_work: lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redundancy_faults::{DetectableFailures, FaultSpec, FaultyVariant, OracleDetector};

    fn heisen_variant(p: f64) -> BoxedVariant<i64, i64> {
        FaultyVariant::builder("flaky", 10, |x: &i64| x * 2)
            .fault(FaultSpec::heisenbug("transient", p))
            .build_boxed()
    }

    fn bohr_variant(density: f64) -> BoxedVariant<i64, i64> {
        FaultyVariant::builder("hard", 10, |x: &i64| x * 2)
            .corruptor(|c, _| c + 1)
            .fault(FaultSpec::bohrbug("logic", density, 5))
            .build_boxed()
    }

    #[test]
    fn recovers_heisenbugs() {
        let cr = CheckpointRecovery::new(heisen_variant(0.6), DetectableFailures::new(), 15);
        let mut ctx = ExecContext::new(1);
        let mut failed = 0;
        for x in 0..300i64 {
            match cr.execute(&x, &mut ctx) {
                RecoveryOutcome::Clean(v) | RecoveryOutcome::Recovered { output: v, .. } => {
                    assert_eq!(v, x * 2);
                }
                RecoveryOutcome::Failed(_) => failed += 1,
            }
        }
        // Residual ≈ 0.6^16 ≈ 0.03%: essentially everything recovers.
        assert!(failed <= 2, "failed {failed}");
    }

    #[test]
    fn cannot_recover_bohrbugs() {
        // Deterministic wrong output on a fixed input region: identical
        // re-execution reproduces it forever. (Oracle detector so the
        // wrong output is at least *detected*.)
        let cr =
            CheckpointRecovery::new(bohr_variant(0.5), OracleDetector::new(|x: &i64| x * 2), 10);
        let mut ctx = ExecContext::new(2);
        let mut recovered = 0;
        let mut failed = 0;
        for x in 0..300i64 {
            match cr.execute(&x, &mut ctx) {
                RecoveryOutcome::Recovered { .. } => recovered += 1,
                RecoveryOutcome::Failed(_) => failed += 1,
                RecoveryOutcome::Clean(_) => {}
            }
        }
        assert_eq!(recovered, 0, "re-execution must not fix Bohrbugs");
        assert!(failed > 100, "failed {failed}");
    }

    #[test]
    fn clean_runs_skip_rollbacks() {
        let cr = CheckpointRecovery::new(heisen_variant(0.0), DetectableFailures::new(), 5);
        let mut ctx = ExecContext::new(3);
        assert_eq!(cr.execute(&4, &mut ctx), RecoveryOutcome::Clean(8));
        assert_eq!(ctx.cost().invocations, 1);
    }

    #[test]
    fn rollback_cost_is_charged() {
        let cr = CheckpointRecovery::new(heisen_variant(1.0), DetectableFailures::new(), 3)
            .with_rollback_cost(100);
        let mut ctx = ExecContext::new(4);
        assert!(matches!(
            cr.execute(&1, &mut ctx),
            RecoveryOutcome::Failed(_)
        ));
        // 4 attempts (1 + 3 retries), 4 rollback charges.
        assert_eq!(ctx.cost().invocations, 4);
        assert!(ctx.cost().virtual_ns >= 400);
    }

    #[test]
    fn long_run_checkpointing_beats_restart_from_scratch() {
        let mut rng = SplitMix64::new(5);
        let with_ckpt = long_run(5_000, 100, 2, 0.002, &mut rng);
        let without = long_run(5_000, 0, 0, 0.002, &mut rng);
        assert!(
            with_ckpt.completion_time < without.completion_time,
            "ckpt {} !< none {}",
            with_ckpt.completion_time,
            without.completion_time
        );
        assert!(with_ckpt.lost_work < without.lost_work);
        assert!(with_ckpt.failures > 0);
    }

    #[test]
    fn long_run_zero_failures_is_just_overhead() {
        let mut rng = SplitMix64::new(6);
        let stats = long_run(1_000, 100, 5, 0.0, &mut rng);
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.lost_work, 0);
        // 1000 work + 10 checkpoints * 5.
        assert_eq!(stats.completion_time, 1_050);
    }

    #[test]
    fn outcome_accessors() {
        let c: RecoveryOutcome<i32> = RecoveryOutcome::Clean(1);
        assert_eq!(c.output(), Some(&1));
        let f: RecoveryOutcome<i32> = RecoveryOutcome::Failed(VariantFailure::Timeout);
        assert_eq!(f.output(), None);
    }

    #[test]
    fn entry_matches_table2() {
        assert_eq!(ENTRY.classification.intention, Intention::Opportunistic);
        assert_eq!(ENTRY.classification.redundancy, RedundancyType::Environment);
        assert_eq!(ENTRY.classification.faults, FaultSet::HEISENBUGS);
        let cr = CheckpointRecovery::new(heisen_variant(0.0), DetectableFailures::new(), 1);
        assert_eq!(cr.name(), "Checkpoint-recovery");
    }
}
