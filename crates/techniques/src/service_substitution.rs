//! Dynamic service substitution (paper §5.1; Subramanian 2008, Taher
//! 2006, Sadjadi 2005, Mosincat 2008).
//!
//! Popular services have multiple independently operated implementations
//! — redundancy that exists *without* anyone designing it into the
//! application. When an invocation fails, the runtime discovers another
//! provider of the same interface (or, via converters, of a *similar*
//! interface) and transparently re-binds.
//!
//! Classification (Table 2): opportunistic / code / reactive-explicit /
//! development.

use std::sync::Arc;

use redundancy_core::context::ExecContext;
use redundancy_core::taxonomy::{
    Adjudication, ArchitecturalPattern, Classification, FaultSet, Intention, RedundancyType,
};
use redundancy_core::technique::{Technique, TechniqueEntry};
use redundancy_services::provider::ServiceError;
use redundancy_services::registry::{InterfaceId, ServiceRegistry};
use redundancy_services::value::Value;

/// Table 2 row for dynamic service substitution.
pub const ENTRY: TechniqueEntry = TechniqueEntry {
    name: "Dynamic service substitution",
    classification: Classification::new(
        Intention::Opportunistic,
        RedundancyType::Code,
        Adjudication::ReactiveExplicit,
        FaultSet::DEVELOPMENT,
    ),
    patterns: &[ArchitecturalPattern::SequentialAlternatives],
    citations: &[
        "Subramanian 2008",
        "Taher 2006",
        "Sadjadi 2005",
        "Mosincat 2008",
    ],
};

/// How a substituted invocation concluded.
#[derive(Debug, Clone, PartialEq)]
pub struct SubstitutionReport {
    /// The result value.
    pub value: Value,
    /// Id of the provider that finally served the request.
    pub served_by: String,
    /// Providers tried before success (0 = primary worked).
    pub substitutions: usize,
    /// Whether an interface converter was needed.
    pub converted: bool,
}

/// The substitution runtime: exact-interface fail-over first, then
/// similar interfaces through converters.
pub struct DynamicSubstitution<'r> {
    registry: &'r ServiceRegistry,
    use_converters: bool,
}

impl<'r> DynamicSubstitution<'r> {
    /// Creates the runtime over a registry, converters enabled.
    #[must_use]
    pub fn new(registry: &'r ServiceRegistry) -> Self {
        Self {
            registry,
            use_converters: true,
        }
    }

    /// Disables converter-based substitution (exact interfaces only) —
    /// the ablation knob of experiment E12.
    #[must_use]
    pub fn without_converters(mut self) -> Self {
        self.use_converters = false;
        self
    }

    /// Accepts a decision policy for uniformity with the parallel
    /// techniques. Substitution is *inherently* eager — fail-over stops at
    /// the first provider that serves the request, and later candidates
    /// are never invoked — so the policy changes nothing;
    /// [`policy`](Self::policy) always reports
    /// [`DecisionPolicy`](redundancy_core::patterns::DecisionPolicy)`::Eager`.
    #[must_use]
    pub fn with_policy(self, _policy: redundancy_core::patterns::DecisionPolicy) -> Self {
        self
    }

    /// The decision policy in effect (always `Eager`).
    #[must_use]
    pub fn policy(&self) -> redundancy_core::patterns::DecisionPolicy {
        redundancy_core::patterns::DecisionPolicy::Eager
    }

    /// Invokes `operation` on some provider of `interface`, substituting
    /// on failure.
    ///
    /// # Errors
    ///
    /// Returns the last [`ServiceError`] when every candidate (exact and
    /// convertible) failed, or `Unavailable` when none exists.
    pub fn invoke(
        &self,
        interface: &InterfaceId,
        operation: &str,
        args: &[Value],
        ctx: &mut ExecContext,
    ) -> Result<SubstitutionReport, ServiceError> {
        use redundancy_core::obs::{SpanKind, SpanStatus};

        let span = ctx.obs_begin(|| SpanKind::Technique {
            name: "service-substitution",
        });
        let before = ctx.cost();
        let result = self.invoke_inner(interface, operation, args, ctx);
        let status = match &result {
            Ok(report) if report.substitutions == 0 => SpanStatus::Ok,
            Ok(report) => SpanStatus::Accepted {
                support: 1,
                dissent: report.substitutions,
            },
            Err(_) => SpanStatus::Failed { kind: "service" },
        };
        ctx.obs_end(span, status, ctx.cost().delta_since(before).snapshot());
        result
    }

    fn invoke_inner(
        &self,
        interface: &InterfaceId,
        operation: &str,
        args: &[Value],
        ctx: &mut ExecContext,
    ) -> Result<SubstitutionReport, ServiceError> {
        use redundancy_core::obs::Symbol;
        let mut substitutions = 0;
        let mut last_error = ServiceError::Unavailable;
        // The provider whose failure we are failing over from, if any.
        // Interned: provider ids and interface names form a small fixed
        // vocabulary, so rebind events carry symbols, not fresh strings.
        let mut failed_from: Option<Symbol> = None;
        for provider in self.registry.providers_of(interface) {
            if let Some(from) = failed_from.take() {
                let to = Symbol::intern(provider.id());
                let name = Symbol::intern(interface.name());
                ctx.obs_emit(move || redundancy_core::obs::Point::ServiceRebind {
                    interface: name,
                    from,
                    to,
                });
            }
            match provider.invoke(operation, args, ctx) {
                Ok(value) => {
                    return Ok(SubstitutionReport {
                        value,
                        served_by: provider.id().to_owned(),
                        substitutions,
                        converted: false,
                    });
                }
                Err(err) => {
                    last_error = err;
                    substitutions += 1;
                    failed_from = Some(Symbol::intern(provider.id()));
                }
            }
        }
        if self.use_converters {
            for (provider, converter) in self.registry.convertible_providers(interface) {
                if let Some(from) = failed_from.take() {
                    let to = Symbol::intern(provider.id());
                    let name = Symbol::intern(interface.name());
                    ctx.obs_emit(move || redundancy_core::obs::Point::ServiceRebind {
                        interface: name,
                        from,
                        to,
                    });
                }
                let op = converter.operation(operation);
                let adapted = converter.arguments(args);
                match provider.invoke(op, &adapted, ctx) {
                    Ok(value) => {
                        return Ok(SubstitutionReport {
                            value: converter.result(value),
                            served_by: provider.id().to_owned(),
                            substitutions,
                            converted: true,
                        });
                    }
                    Err(err) => {
                        last_error = err;
                        substitutions += 1;
                        failed_from = Some(Symbol::intern(provider.id()));
                    }
                }
            }
        }
        Err(last_error)
    }

    /// Convenience: candidate providers for an interface, in the order
    /// substitution would try them (ids only).
    #[must_use]
    pub fn candidates(&self, interface: &InterfaceId) -> Vec<String> {
        let mut ids: Vec<String> = self
            .registry
            .providers_of(interface)
            .iter()
            .map(|p| p.id().to_owned())
            .collect();
        if self.use_converters {
            ids.extend(
                self.registry
                    .convertible_providers(interface)
                    .iter()
                    .map(|(p, _)| p.id().to_owned()),
            );
        }
        ids
    }
}

impl Technique for DynamicSubstitution<'_> {
    fn name(&self) -> &'static str {
        ENTRY.name
    }

    fn classification(&self) -> Classification {
        ENTRY.classification
    }

    fn patterns(&self) -> &'static [ArchitecturalPattern] {
        ENTRY.patterns
    }

    fn citations(&self) -> &'static [&'static str] {
        ENTRY.citations
    }
}

/// Builds a registry with `n` interchangeable providers of `interface`,
/// each failing with probability `fail_prob` (for tests and experiment
/// E12).
#[must_use]
pub fn replicated_registry(interface: &str, n: usize, fail_prob: f64) -> ServiceRegistry {
    use redundancy_services::provider::SimProvider;
    let mut registry = ServiceRegistry::new();
    for i in 0..n {
        registry.register(Arc::new(
            SimProvider::builder(format!("{interface}.impl{i}"), InterfaceId::new(interface))
                .fail_prob(fail_prob)
                .operation("echo", |args, _| {
                    Ok(args.first().cloned().unwrap_or(Value::Null))
                })
                .build(),
        ));
    }
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use redundancy_services::provider::SimProvider;
    use redundancy_services::registry::Converter;

    #[test]
    fn primary_serves_when_healthy() {
        let registry = replicated_registry("echo", 3, 0.0);
        let sub = DynamicSubstitution::new(&registry);
        let mut ctx = ExecContext::new(1);
        let report = sub
            .invoke(
                &InterfaceId::new("echo"),
                "echo",
                &[Value::Int(5)],
                &mut ctx,
            )
            .unwrap();
        assert_eq!(report.value, Value::Int(5));
        assert_eq!(report.served_by, "echo.impl0");
        assert_eq!(report.substitutions, 0);
        assert!(!report.converted);
    }

    #[test]
    fn substitutes_past_dead_providers() {
        let mut registry = ServiceRegistry::new();
        for (id, fail) in [("dead1", 1.0), ("dead2", 1.0), ("alive", 0.0)] {
            registry.register(Arc::new(
                SimProvider::builder(id, InterfaceId::new("svc"))
                    .fail_prob(fail)
                    .operation("op", |_, _| Ok(Value::Int(1)))
                    .build(),
            ));
        }
        let sub = DynamicSubstitution::new(&registry);
        let mut ctx = ExecContext::new(2);
        let report = sub
            .invoke(&InterfaceId::new("svc"), "op", &[], &mut ctx)
            .unwrap();
        assert_eq!(report.served_by, "alive");
        assert_eq!(report.substitutions, 2);
    }

    #[test]
    fn converter_extends_the_candidate_pool() {
        let mut registry = ServiceRegistry::new();
        registry.register(Arc::new(
            SimProvider::builder("native-dead", InterfaceId::new("weather"))
                .fail_prob(1.0)
                .operation("forecast", |_, _| Ok(Value::Null))
                .build(),
        ));
        // A similar service with a different operation name and Fahrenheit
        // output.
        registry.register(Arc::new(
            SimProvider::builder("meteo", InterfaceId::new("meteo"))
                .operation("prevision", |_, _| Ok(Value::Int(77)))
                .build(),
        ));
        registry.register_converter(
            Converter::new(InterfaceId::new("weather"), InterfaceId::new("meteo"))
                .map_operation("forecast", "prevision")
                .adapt_result(|v| match v {
                    Value::Int(f) => Value::Int((f - 32) * 5 / 9),
                    other => other,
                }),
        );
        let sub = DynamicSubstitution::new(&registry);
        let mut ctx = ExecContext::new(3);
        let report = sub
            .invoke(&InterfaceId::new("weather"), "forecast", &[], &mut ctx)
            .unwrap();
        assert_eq!(report.value, Value::Int(25));
        assert_eq!(report.served_by, "meteo");
        assert!(report.converted);

        // Without converters the same call fails.
        let strict = DynamicSubstitution::new(&registry).without_converters();
        let mut ctx = ExecContext::new(3);
        assert!(strict
            .invoke(&InterfaceId::new("weather"), "forecast", &[], &mut ctx)
            .is_err());
    }

    #[test]
    fn availability_grows_with_provider_count() {
        let availability = |n: usize| {
            let registry = replicated_registry("svc", n, 0.4);
            let sub = DynamicSubstitution::new(&registry);
            let mut ctx = ExecContext::new(4);
            let ok = (0..500)
                .filter(|_| {
                    sub.invoke(&InterfaceId::new("svc"), "echo", &[Value::Int(1)], &mut ctx)
                        .is_ok()
                })
                .count();
            ok as f64 / 500.0
        };
        let a1 = availability(1);
        let a2 = availability(2);
        let a4 = availability(4);
        assert!(a2 > a1 + 0.1, "a1={a1}, a2={a2}");
        assert!(a4 > a2, "a2={a2}, a4={a4}");
        assert!(a4 > 0.95, "a4={a4}");
    }

    #[test]
    fn exhausted_candidates_report_last_error() {
        let registry = replicated_registry("svc", 2, 1.0);
        let sub = DynamicSubstitution::new(&registry);
        let mut ctx = ExecContext::new(5);
        assert_eq!(
            sub.invoke(&InterfaceId::new("svc"), "echo", &[], &mut ctx),
            Err(ServiceError::Unavailable)
        );
    }

    #[test]
    fn candidates_lists_in_substitution_order() {
        let registry = replicated_registry("svc", 2, 0.0);
        let sub = DynamicSubstitution::new(&registry);
        assert_eq!(
            sub.candidates(&InterfaceId::new("svc")),
            vec!["svc.impl0", "svc.impl1"]
        );
    }

    #[test]
    fn entry_matches_table2() {
        assert_eq!(ENTRY.classification.intention, Intention::Opportunistic);
        assert_eq!(ENTRY.classification.redundancy, RedundancyType::Code);
        assert_eq!(
            ENTRY.classification.adjudication,
            Adjudication::ReactiveExplicit
        );
        let registry = ServiceRegistry::new();
        let sub = DynamicSubstitution::new(&registry);
        assert_eq!(sub.name(), "Dynamic service substitution");
    }
}
