//! Self-checking programming (paper §4.1; Laprie et al. 1990, Yau &
//! Cheung 1975).
//!
//! Each functionality is implemented by *self-checking components* running
//! in parallel: an "acting" component and "hot spares". A self-checking
//! component is either a variant with a built-in acceptance test (explicit
//! adjudicator) or a pair of independently designed variants with a final
//! comparison (implicit adjudicator). No rollback is ever needed: when the
//! acting component fails, a hot spare's already-validated result is used.
//!
//! Classification (Table 2): deliberate / code / reactive-expl./impl. /
//! development.

use redundancy_core::adjudicator::acceptance::{AcceptanceTest, BoxedAcceptance, FnAcceptance};
use redundancy_core::context::ExecContext;
use redundancy_core::outcome::VariantFailure;
use redundancy_core::patterns::{DecisionPolicy, ExecutionMode, ParallelSelection, PatternReport};
use redundancy_core::taxonomy::{
    Adjudication, ArchitecturalPattern, Classification, FaultSet, Intention, RedundancyType,
};
use redundancy_core::technique::{Technique, TechniqueEntry};
use redundancy_core::variant::{BoxedVariant, FnVariant, Variant};

/// Table 2 row for self-checking programming.
pub const ENTRY: TechniqueEntry = TechniqueEntry {
    name: "Self-checking programming",
    classification: Classification::new(
        Intention::Deliberate,
        RedundancyType::Code,
        Adjudication::ReactiveMixed,
        FaultSet::DEVELOPMENT,
    ),
    patterns: &[ArchitecturalPattern::ParallelSelection],
    citations: &["Laprie 1990", "Yau 1975", "Dobson 2006"],
};

/// A variant made of a *pair* of independently designed implementations
/// whose results are compared — the implicit-adjudicator flavor of a
/// self-checking component. Divergence is reported as a detectable error.
pub struct ComparedPair<I, O> {
    name: String,
    left: BoxedVariant<I, O>,
    right: BoxedVariant<I, O>,
}

impl<I, O> ComparedPair<I, O> {
    /// Creates a compared pair.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        left: BoxedVariant<I, O>,
        right: BoxedVariant<I, O>,
    ) -> Self {
        Self {
            name: name.into(),
            left,
            right,
        }
    }
}

impl<I, O> Variant<I, O> for ComparedPair<I, O>
where
    I: Send + Sync,
    O: PartialEq + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&self, input: &I, ctx: &mut ExecContext) -> Result<O, VariantFailure> {
        let a = self.left.execute(input, ctx)?;
        let b = self.right.execute(input, ctx)?;
        if a == b {
            Ok(a)
        } else {
            Err(VariantFailure::error(format!(
                "self-check divergence in component `{}`",
                self.name
            )))
        }
    }

    fn design_cost(&self) -> f64 {
        self.left.design_cost() + self.right.design_cost()
    }
}

/// A self-checking program: acting component first, hot spares behind it,
/// all executing in parallel.
pub struct SelfChecking<I, O> {
    pattern: ParallelSelection<I, O>,
    components: usize,
}

impl<I, O> SelfChecking<I, O>
where
    I: 'static,
    O: 'static,
{
    /// Creates an empty self-checking program.
    #[must_use]
    pub fn new() -> Self {
        Self {
            pattern: ParallelSelection::new(),
            components: 0,
        }
    }

    /// Adds a component with a built-in acceptance test (explicit
    /// adjudicator). The first component added is the acting one.
    #[must_use]
    pub fn with_tested_component(
        mut self,
        variant: BoxedVariant<I, O>,
        test: impl AcceptanceTest<I, O> + 'static,
    ) -> Self {
        self.pattern.push_component(variant, Box::new(test));
        self.components += 1;
        self
    }

    /// Adds a component made of two compared implementations (implicit
    /// adjudicator).
    #[must_use]
    pub fn with_compared_pair(
        mut self,
        name: &str,
        left: BoxedVariant<I, O>,
        right: BoxedVariant<I, O>,
    ) -> Self
    where
        I: Send + Sync,
        O: PartialEq + Send + Sync,
    {
        let pair: BoxedVariant<I, O> = Box::new(ComparedPair::new(name, left, right));
        // The pair already rejects divergence internally; the component's
        // acceptance test only needs to accept what survived comparison.
        let accept_all: BoxedAcceptance<I, O> =
            Box::new(FnAcceptance::new("pair-survived", |_: &I, _: &O| true));
        self.pattern.push_component(pair, accept_all);
        self.components += 1;
        self
    }

    /// Switches to real threads.
    #[must_use]
    pub fn threaded(mut self) -> Self {
        self.pattern = self.pattern.with_mode(ExecutionMode::Threaded);
        self
    }

    /// Sets the decision policy. Under [`DecisionPolicy::Eager`] the run
    /// concludes as soon as the acting result validates: hot spares whose
    /// turn never comes are skipped (sequential mode) or cooperatively
    /// cancelled (threaded mode) instead of finishing their now-useless
    /// executions.
    #[must_use]
    pub fn with_policy(mut self, policy: DecisionPolicy) -> Self {
        self.pattern = self.pattern.with_policy(policy);
        self
    }

    /// The decision policy in effect.
    #[must_use]
    pub fn policy(&self) -> DecisionPolicy {
        self.pattern.policy()
    }

    /// Number of self-checking components.
    #[must_use]
    pub fn components(&self) -> usize {
        self.components
    }

    /// Runs all components in parallel and selects the acting result (or
    /// the first validated hot spare).
    pub fn run(&self, input: &I, ctx: &mut ExecContext) -> PatternReport<O>
    where
        I: Sync,
        O: Send + Clone,
    {
        redundancy_core::patterns::run_technique_span(ctx, "self-checking", |ctx| {
            self.pattern.run(input, ctx)
        })
    }
}

impl<I, O> Default for SelfChecking<I, O>
where
    I: 'static,
    O: 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<I, O> Technique for SelfChecking<I, O> {
    fn name(&self) -> &'static str {
        ENTRY.name
    }

    fn classification(&self) -> Classification {
        ENTRY.classification
    }

    fn patterns(&self) -> &'static [ArchitecturalPattern] {
        ENTRY.patterns
    }

    fn citations(&self) -> &'static [&'static str] {
        ENTRY.citations
    }
}

/// A helper building a crash-only variant for tests and experiments.
#[must_use]
pub fn always_failing<I, O>(name: &str) -> BoxedVariant<I, O>
where
    I: Send + Sync + 'static,
    O: Send + Sync + 'static,
{
    let label = name.to_owned();
    Box::new(FnVariant::new(name, move |_: &I, _: &mut ExecContext| {
        Err(VariantFailure::crash(format!("{label} failed")))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use redundancy_core::variant::pure_variant;

    fn positive() -> FnAcceptance<impl Fn(&i64, &i64) -> bool> {
        FnAcceptance::new("positive", |_: &i64, out: &i64| *out > 0)
    }

    #[test]
    fn acting_component_wins_when_valid() {
        let sc = SelfChecking::new()
            .with_tested_component(pure_variant("acting", 10, |x: &i64| x + 1), positive())
            .with_tested_component(pure_variant("spare", 10, |x: &i64| x + 2), positive());
        let mut ctx = ExecContext::new(0);
        let report = sc.run(&1, &mut ctx);
        assert_eq!(report.output(), Some(&2));
        assert_eq!(report.selected.as_deref(), Some("acting"));
        assert_eq!(sc.components(), 2);
    }

    #[test]
    fn hot_spare_replaces_failing_acting_component() {
        let sc = SelfChecking::new()
            .with_tested_component(always_failing("acting"), positive())
            .with_tested_component(pure_variant("spare", 10, |x: &i64| x + 2), positive());
        let mut ctx = ExecContext::new(0);
        let report = sc.run(&1, &mut ctx);
        assert_eq!(report.output(), Some(&3));
        assert_eq!(report.selected.as_deref(), Some("spare"));
    }

    #[test]
    fn no_rollback_needed_costs_critical_path() {
        // Unlike recovery blocks, the spare has already run: switching
        // costs nothing extra — virtual time is the critical path.
        let sc = SelfChecking::new()
            .with_tested_component(pure_variant("acting", 30, |_: &i64| -1), positive())
            .with_tested_component(pure_variant("spare", 50, |x: &i64| *x), positive());
        let mut ctx = ExecContext::new(0);
        let report = sc.run(&7, &mut ctx);
        assert_eq!(report.output(), Some(&7));
        assert_eq!(report.cost.virtual_ns, 50);
    }

    #[test]
    fn compared_pair_detects_divergence() {
        let sc = SelfChecking::new()
            .with_compared_pair(
                "pair",
                pure_variant("impl-a", 5, |x: &i64| x * 2),
                pure_variant("impl-b-buggy", 5, |x: &i64| x * 2 + 1),
            )
            .with_tested_component(pure_variant("spare", 5, |x: &i64| x * 2), positive());
        let mut ctx = ExecContext::new(0);
        let report = sc.run(&4, &mut ctx);
        // The diverging pair is discarded; the spare's validated result wins.
        assert_eq!(report.output(), Some(&8));
        assert_eq!(report.selected.as_deref(), Some("spare"));
    }

    #[test]
    fn compared_pair_passes_agreeing_results() {
        let sc = SelfChecking::new().with_compared_pair(
            "pair",
            pure_variant("impl-a", 5, |x: &i64| x * 2),
            pure_variant("impl-b", 7, |x: &i64| x + x),
        );
        let mut ctx = ExecContext::new(0);
        assert_eq!(sc.run(&4, &mut ctx).into_output(), Some(8));
    }

    #[test]
    fn pair_design_cost_is_doubled() {
        let pair: ComparedPair<i64, i64> = ComparedPair::new(
            "pair",
            pure_variant("a", 5, |x: &i64| *x),
            pure_variant("b", 5, |x: &i64| *x),
        );
        assert!((Variant::<i64, i64>::design_cost(&pair) - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    fn all_components_failing_rejects() {
        let sc: SelfChecking<i64, i64> = SelfChecking::new()
            .with_tested_component(always_failing("a"), positive())
            .with_tested_component(always_failing("b"), positive());
        let mut ctx = ExecContext::new(0);
        assert!(!sc.run(&1, &mut ctx).is_accepted());
    }

    #[test]
    fn eager_policy_skips_hot_spares_once_acting_validates() {
        let mk = |policy| {
            SelfChecking::new()
                .with_tested_component(pure_variant("acting", 10, |x: &i64| x + 1), positive())
                .with_tested_component(pure_variant("spare1", 10, |x: &i64| x + 1), positive())
                .with_tested_component(pure_variant("spare2", 10, |x: &i64| x + 1), positive())
                .with_policy(policy)
        };
        let mut c1 = ExecContext::new(4);
        let exhaustive = mk(DecisionPolicy::Exhaustive).run(&1, &mut c1);
        let mut c2 = ExecContext::new(4);
        let eager = mk(DecisionPolicy::Eager).run(&1, &mut c2);

        assert_eq!(eager.output(), exhaustive.output());
        assert_eq!(eager.selected, exhaustive.selected);
        assert_eq!(eager.executed(), 1, "acting result decides immediately");
        assert_eq!(eager.skipped(), 2);
        assert!(c2.cost().work_units < c1.cost().work_units);
    }

    #[test]
    fn entry_matches_table2() {
        assert_eq!(
            ENTRY.classification.adjudication,
            Adjudication::ReactiveMixed
        );
        assert_eq!(ENTRY.classification.faults, FaultSet::DEVELOPMENT);
        assert_eq!(ENTRY.patterns, &[ArchitecturalPattern::ParallelSelection]);
        let sc: SelfChecking<i64, i64> = SelfChecking::new();
        assert_eq!(sc.name(), "Self-checking programming");
    }
}

/// A *stateful* self-checking system, as deployed long-term: components
/// that fail validation are **discarded** and the next hot spare is
/// promoted to acting — "an acting component that fails is discarded and
/// replaced by the hot spare" (Laprie et al., paper §4.1). Execution thus
/// progressively consumes the initial explicit redundancy; when the last
/// component is discarded the system fail-stops.
pub struct SelfCheckingSystem<I, O> {
    components: Vec<(BoxedVariant<I, O>, BoxedAcceptance<I, O>)>,
    alive: Vec<std::sync::atomic::AtomicBool>,
}

impl<I, O> SelfCheckingSystem<I, O> {
    /// Creates an empty system.
    #[must_use]
    pub fn new() -> Self {
        Self {
            components: Vec::new(),
            alive: Vec::new(),
        }
    }

    /// Adds a self-checking component (variant + built-in acceptance
    /// test). The first added is the initial acting component.
    #[must_use]
    pub fn with_component(
        mut self,
        variant: BoxedVariant<I, O>,
        test: impl AcceptanceTest<I, O> + 'static,
    ) -> Self {
        self.components.push((variant, Box::new(test)));
        self.alive.push(std::sync::atomic::AtomicBool::new(true));
        self
    }

    /// Number of components still in service.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.alive
            .iter()
            .filter(|a| a.load(std::sync::atomic::Ordering::Relaxed))
            .count()
    }

    /// Index of the current acting component, if any survive.
    #[must_use]
    pub fn acting(&self) -> Option<usize> {
        self.alive
            .iter()
            .position(|a| a.load(std::sync::atomic::Ordering::Relaxed))
    }

    /// Serves one request: all surviving components run in parallel, each
    /// validated by its own test; the acting (lowest surviving index)
    /// validated result is delivered. Components whose result fails
    /// validation are permanently discarded.
    ///
    /// # Errors
    ///
    /// Returns [`VariantFailure::Omission`] when no component survives,
    /// or an error describing the exhaustion of this request's spares.
    pub fn serve(&self, input: &I, ctx: &mut ExecContext) -> Result<O, VariantFailure>
    where
        I: Send + Sync,
        O: Send + Sync + Clone,
    {
        use std::sync::atomic::Ordering;
        if self.remaining() == 0 {
            return Err(VariantFailure::Omission);
        }
        let mut delivered: Option<O> = None;
        for (idx, (variant, test)) in self.components.iter().enumerate() {
            if !self.alive[idx].load(Ordering::Relaxed) {
                continue;
            }
            let mut child = ctx.fork(idx as u64);
            let outcome =
                redundancy_core::variant::run_contained(variant.as_ref(), input, &mut child);
            ctx.add_sequential_cost(outcome.cost);
            let valid = outcome.output().is_some_and(|out| test.accept(input, out));
            if valid {
                if delivered.is_none() {
                    delivered = outcome.result.ok();
                }
            } else {
                // Failed self-check: discard the component for good.
                self.alive[idx].store(false, Ordering::Relaxed);
            }
        }
        delivered.ok_or_else(|| {
            VariantFailure::error("every self-checking component was discarded this request")
        })
    }
}

impl<I, O> Default for SelfCheckingSystem<I, O> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod system_tests {
    use super::*;
    use redundancy_core::adjudicator::acceptance::FnAcceptance;
    use redundancy_core::context::ExecContext;
    use redundancy_core::variant::pure_variant;
    use redundancy_faults::{FaultSpec, FaultyVariant};

    fn positive() -> FnAcceptance<impl Fn(&i64, &i64) -> bool> {
        FnAcceptance::new("positive", |_: &i64, out: &i64| *out > 0)
    }

    #[test]
    fn failing_acting_component_is_discarded_permanently() {
        let system = SelfCheckingSystem::new()
            .with_component(pure_variant("acting-bad", 5, |_: &i64| -1), positive())
            .with_component(pure_variant("spare", 5, |x: &i64| x + 1), positive());
        let mut ctx = ExecContext::new(1);
        assert_eq!(system.acting(), Some(0));
        assert_eq!(system.serve(&1, &mut ctx), Ok(2));
        // The acting component was discarded; the spare is promoted.
        assert_eq!(system.acting(), Some(1));
        assert_eq!(system.remaining(), 1);
        // Subsequent requests no longer pay for the dead component.
        let before = ctx.cost().invocations;
        assert_eq!(system.serve(&2, &mut ctx), Ok(3));
        assert_eq!(ctx.cost().invocations - before, 1);
    }

    #[test]
    fn redundancy_is_progressively_consumed() {
        // Components with transient faults are discarded one by one; the
        // system serves until the pool is exhausted, then fail-stops.
        let mk = |name: &str, p: f64| -> BoxedVariant<i64, i64> {
            FaultyVariant::builder(name, 5, |x: &i64| x + 1)
                .fault(FaultSpec::heisenbug("flaky", p))
                .build_boxed()
        };
        let system = SelfCheckingSystem::new()
            .with_component(mk("c0", 0.2), positive())
            .with_component(mk("c1", 0.2), positive())
            .with_component(mk("c2", 0.2), positive())
            .with_component(mk("c3", 0.2), positive());
        let mut ctx = ExecContext::new(9);
        let mut served = 0;
        let mut history = Vec::new();
        for x in 0..400i64 {
            match system.serve(&x, &mut ctx) {
                Ok(out) => {
                    assert_eq!(out, x + 1);
                    served += 1;
                }
                Err(_) => break,
            }
            history.push(system.remaining());
        }
        // Monotone consumption of the redundancy pool. (The final
        // discards happen inside the failing request, after the last
        // history entry.)
        assert!(history.windows(2).all(|w| w[1] <= w[0]));
        assert!(served > 3, "served only {served}");
        assert_eq!(system.remaining(), 0);
        assert!(system.serve(&1, &mut ctx).is_err());
    }

    #[test]
    fn healthy_components_survive_indefinitely() {
        let system = SelfCheckingSystem::new()
            .with_component(pure_variant("good", 5, |x: &i64| x + 1), positive())
            .with_component(pure_variant("spare", 5, |x: &i64| x + 1), positive());
        let mut ctx = ExecContext::new(2);
        for x in 0..200i64 {
            assert_eq!(system.serve(&x, &mut ctx), Ok(x + 1));
        }
        assert_eq!(system.remaining(), 2);
    }

    #[test]
    fn empty_system_fail_stops() {
        let system: SelfCheckingSystem<i64, i64> = SelfCheckingSystem::new();
        let mut ctx = ExecContext::new(3);
        assert_eq!(system.serve(&1, &mut ctx), Err(VariantFailure::Omission));
    }
}
