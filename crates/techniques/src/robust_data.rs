//! Robust data structures and software audits (paper §4.2; Taylor 1980,
//! Connet 1972).
//!
//! Taylor-style robust storage structures carry *redundant structural
//! information* — an element count, node identifiers, and double links —
//! so that an audit can detect corrupted pointers or counters and a
//! repair procedure can reconstruct the damaged part from the surviving
//! redundancy. The redundant information is itself the implicit
//! adjudicator: no external detector is needed.
//!
//! Classification (Table 2): deliberate / data / reactive-implicit /
//! development.

use std::sync::Arc;

use redundancy_core::obs::{ObsHandle, Observer, Point};
use redundancy_core::taxonomy::{
    Adjudication, ArchitecturalPattern, Classification, FaultSet, Intention, RedundancyType,
};
use redundancy_core::technique::{Technique, TechniqueEntry};

/// Table 2 row for robust data structures and audits.
pub const ENTRY: TechniqueEntry = TechniqueEntry {
    name: "Robust data structures, audits",
    classification: Classification::new(
        Intention::Deliberate,
        RedundancyType::Data,
        Adjudication::ReactiveImplicit,
        FaultSet::DEVELOPMENT,
    ),
    patterns: &[ArchitecturalPattern::IntraComponent],
    citations: &["Taylor 1980", "Connet 1972"],
};

#[derive(Debug, Clone, PartialEq, Eq)]
struct Node<T> {
    value: T,
    /// Stable node identifier (creation order) — redundant ordering
    /// information usable during repair.
    id: u64,
    next: Option<usize>,
    prev: Option<usize>,
}

/// What an audit found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Human-readable descriptions of every inconsistency found.
    pub findings: Vec<String>,
}

impl AuditReport {
    /// Whether the structure is consistent.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The outcome of a repair attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairOutcome {
    /// Nothing was wrong.
    CleanAlready,
    /// Damage was found and fully repaired (a follow-up audit is clean).
    Repaired,
    /// Damage was found but could not be repaired from the surviving
    /// redundancy.
    Unrepairable,
}

/// A doubly linked list with Taylor-style structural redundancy: element
/// count, node ids and double links.
///
/// # Examples
///
/// ```
/// use redundancy_techniques::robust_data::RobustList;
///
/// let mut list = RobustList::new();
/// list.push_back(1);
/// list.push_back(2);
/// assert_eq!(list.to_vec(), vec![&1, &2]);
/// assert!(list.audit().is_clean());
/// ```
#[derive(Debug, Clone)]
pub struct RobustList<T> {
    nodes: Vec<Option<Node<T>>>,
    head: Option<usize>,
    tail: Option<usize>,
    /// Redundant element count.
    count: usize,
    next_id: u64,
    obs: Option<ObsHandle>,
}

impl<T: PartialEq> PartialEq for RobustList<T> {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality; an attached observer is not part of the
        // list's value.
        self.nodes == other.nodes
            && self.head == other.head
            && self.tail == other.tail
            && self.count == other.count
            && self.next_id == other.next_id
    }
}

impl<T: Eq> Eq for RobustList<T> {}

impl<T> RobustList<T> {
    /// Creates an empty list.
    #[must_use]
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            head: None,
            tail: None,
            count: 0,
            next_id: 0,
            obs: None,
        }
    }

    /// Attaches an observer; audits emit [`Point::Audit`] and repairs
    /// emit [`Point::Repair`].
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.obs = Some(ObsHandle::new(observer));
        self
    }

    /// Appends a value.
    pub fn push_back(&mut self, value: T) {
        let idx = self.nodes.len();
        let node = Node {
            value,
            id: self.next_id,
            next: None,
            prev: self.tail,
        };
        self.next_id += 1;
        self.nodes.push(Some(node));
        if let Some(tail) = self.tail {
            if let Some(Some(t)) = self.nodes.get_mut(tail) {
                t.next = Some(idx);
            }
        } else {
            self.head = Some(idx);
        }
        self.tail = Some(idx);
        self.count += 1;
    }

    /// Removes and returns the first value.
    pub fn pop_front(&mut self) -> Option<T> {
        let head = self.head?;
        let node = self.nodes.get_mut(head)?.take()?;
        self.head = node.next;
        match node.next {
            Some(next) => {
                if let Some(Some(n)) = self.nodes.get_mut(next) {
                    n.prev = None;
                }
            }
            None => self.tail = None,
        }
        self.count -= 1;
        Some(node.value)
    }

    /// The redundant element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the list is empty (by count).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Values in order, walking the forward chain (with a cycle guard).
    #[must_use]
    pub fn to_vec(&self) -> Vec<&T> {
        let mut out = Vec::new();
        let mut cursor = self.head;
        let mut steps = 0;
        while let Some(idx) = cursor {
            if steps > self.nodes.len() {
                break; // cycle: stop rather than loop forever
            }
            match self.nodes.get(idx).and_then(Option::as_ref) {
                Some(node) => {
                    out.push(&node.value);
                    cursor = node.next;
                }
                None => break,
            }
            steps += 1;
        }
        out
    }

    fn forward_walk(&self) -> Result<Vec<usize>, String> {
        let mut visited = Vec::new();
        let mut cursor = self.head;
        while let Some(idx) = cursor {
            if visited.len() > self.nodes.len() {
                return Err("cycle in forward chain".to_owned());
            }
            let node = self
                .nodes
                .get(idx)
                .and_then(Option::as_ref)
                .ok_or_else(|| format!("next pointer to dead slot {idx}"))?;
            visited.push(idx);
            cursor = node.next;
        }
        Ok(visited)
    }

    fn backward_walk(&self) -> Result<Vec<usize>, String> {
        let mut visited = Vec::new();
        let mut cursor = self.tail;
        while let Some(idx) = cursor {
            if visited.len() > self.nodes.len() {
                return Err("cycle in backward chain".to_owned());
            }
            let node = self
                .nodes
                .get(idx)
                .and_then(Option::as_ref)
                .ok_or_else(|| format!("prev pointer to dead slot {idx}"))?;
            visited.push(idx);
            cursor = node.prev;
        }
        visited.reverse();
        Ok(visited)
    }

    /// Audits the structure: checks the forward chain, the backward
    /// chain, their agreement, and the redundant count.
    #[must_use]
    pub fn audit(&self) -> AuditReport {
        let mut findings = Vec::new();
        let live = self.nodes.iter().filter(|n| n.is_some()).count();
        match self.forward_walk() {
            Ok(forward) => {
                if forward.len() != self.count {
                    findings.push(format!(
                        "count mismatch: chain has {} nodes, count says {}",
                        forward.len(),
                        self.count
                    ));
                }
                if forward.len() != live {
                    findings.push(format!(
                        "forward chain covers {} of {live} live nodes",
                        forward.len()
                    ));
                }
                if let Some(&last) = forward.last() {
                    if self.tail != Some(last) {
                        findings.push("tail does not match the end of the forward chain".into());
                    }
                }
                // Check prev pointers against the forward order.
                for pair in forward.windows(2) {
                    let (a, b) = (pair[0], pair[1]);
                    let prev_of_b = self.nodes[b].as_ref().and_then(|n| n.prev);
                    if prev_of_b != Some(a) {
                        findings.push(format!("prev pointer of slot {b} disagrees with chain"));
                    }
                }
                if let Some(&first) = forward.first() {
                    if self.nodes[first].as_ref().and_then(|n| n.prev).is_some() {
                        findings.push("head node has a prev pointer".into());
                    }
                }
            }
            Err(problem) => findings.push(problem),
        }
        if let Some(obs) = &self.obs {
            let errors = findings.len() as u64;
            obs.emit(0, move || Point::Audit {
                clean: errors == 0,
                errors,
            });
        }
        AuditReport { findings }
    }

    /// Attempts to repair detected damage from the surviving redundancy:
    /// if the backward chain is intact it is authoritative (next pointers
    /// and count are rebuilt from it); if only the count disagrees with an
    /// intact forward chain, the count is recomputed; prev-pointer damage
    /// is rebuilt from an intact forward chain.
    pub fn repair(&mut self) -> RepairOutcome {
        let outcome = self.repair_inner();
        if let Some(obs) = &self.obs {
            let label = match outcome {
                RepairOutcome::CleanAlready => "clean-already",
                RepairOutcome::Repaired => "full",
                RepairOutcome::Unrepairable => "unrepairable",
            };
            obs.emit(0, || Point::Repair { outcome: label });
        }
        outcome
    }

    fn repair_inner(&mut self) -> RepairOutcome {
        if self.audit().is_clean() {
            return RepairOutcome::CleanAlready;
        }
        let live = self.nodes.iter().filter(|n| n.is_some()).count();
        // Prefer the forward chain when complete.
        if let Ok(forward) = self.forward_walk() {
            if forward.len() == live {
                self.rebuild_from(&forward);
                return self.verify_repair();
            }
        }
        // Fall back to the backward chain.
        if let Ok(backward) = self.backward_walk() {
            if backward.len() == live {
                self.rebuild_from(&backward);
                return self.verify_repair();
            }
        }
        RepairOutcome::Unrepairable
    }

    fn rebuild_from(&mut self, order: &[usize]) {
        for (pos, &idx) in order.iter().enumerate() {
            let prev = if pos == 0 { None } else { Some(order[pos - 1]) };
            let next = order.get(pos + 1).copied();
            if let Some(Some(node)) = self.nodes.get_mut(idx) {
                node.prev = prev;
                node.next = next;
            }
        }
        self.head = order.first().copied();
        self.tail = order.last().copied();
        self.count = order.len();
    }

    fn verify_repair(&self) -> RepairOutcome {
        if self.audit().is_clean() {
            RepairOutcome::Repaired
        } else {
            RepairOutcome::Unrepairable
        }
    }

    // ----- corruption hooks (fault injection for experiments/tests) -----

    /// Overwrites the `next` pointer of the node at live position `pos`.
    pub fn corrupt_next(&mut self, pos: usize, new_next: Option<usize>) {
        if let Ok(forward) = self.forward_walk() {
            if let Some(&idx) = forward.get(pos) {
                if let Some(Some(node)) = self.nodes.get_mut(idx) {
                    node.next = new_next;
                }
            }
        }
    }

    /// Overwrites the `prev` pointer of the node at live position `pos`.
    pub fn corrupt_prev(&mut self, pos: usize, new_prev: Option<usize>) {
        if let Ok(forward) = self.forward_walk() {
            if let Some(&idx) = forward.get(pos) {
                if let Some(Some(node)) = self.nodes.get_mut(idx) {
                    node.prev = new_prev;
                }
            }
        }
    }

    /// Corrupts the redundant count.
    pub fn corrupt_count(&mut self, new_count: usize) {
        self.count = new_count;
    }
}

impl<T> Default for RobustList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FromIterator<T> for RobustList<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut list = RobustList::new();
        for item in iter {
            list.push_back(item);
        }
        list
    }
}

impl<T> Technique for RobustList<T> {
    fn name(&self) -> &'static str {
        ENTRY.name
    }

    fn classification(&self) -> Classification {
        ENTRY.classification
    }

    fn patterns(&self) -> &'static [ArchitecturalPattern] {
        ENTRY.patterns
    }

    fn citations(&self) -> &'static [&'static str] {
        ENTRY.citations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> RobustList<usize> {
        (0..n).collect()
    }

    #[test]
    fn basic_operations() {
        let mut list = sample(3);
        assert_eq!(list.len(), 3);
        assert_eq!(list.to_vec(), vec![&0, &1, &2]);
        assert_eq!(list.pop_front(), Some(0));
        assert_eq!(list.len(), 2);
        assert_eq!(list.to_vec(), vec![&1, &2]);
        assert!(list.audit().is_clean());
        assert_eq!(list.pop_front(), Some(1));
        assert_eq!(list.pop_front(), Some(2));
        assert_eq!(list.pop_front(), None);
        assert!(list.is_empty());
        assert!(list.audit().is_clean());
    }

    #[test]
    fn audit_detects_count_corruption() {
        let mut list = sample(5);
        list.corrupt_count(3);
        let report = list.audit();
        assert!(!report.is_clean());
        assert!(report.findings.iter().any(|f| f.contains("count mismatch")));
    }

    #[test]
    fn audit_detects_truncating_next_corruption() {
        let mut list = sample(5);
        list.corrupt_next(1, None); // chain now ends after 2 nodes
        let report = list.audit();
        assert!(!report.is_clean());
    }

    #[test]
    fn audit_detects_cycle() {
        let mut list = sample(4);
        list.corrupt_next(3, Some(0)); // tail loops back to head
        let report = list.audit();
        assert!(!report.is_clean());
        assert!(report.findings.iter().any(|f| f.contains("cycle")));
    }

    #[test]
    fn audit_detects_prev_corruption() {
        let mut list = sample(4);
        list.corrupt_prev(2, Some(0));
        let report = list.audit();
        assert!(!report.is_clean());
        assert!(report.findings.iter().any(|f| f.contains("prev")));
    }

    #[test]
    fn repairs_count_from_intact_chain() {
        let mut list = sample(5);
        list.corrupt_count(99);
        assert_eq!(list.repair(), RepairOutcome::Repaired);
        assert_eq!(list.len(), 5);
        assert!(list.audit().is_clean());
    }

    #[test]
    fn repairs_next_damage_from_backward_chain() {
        let mut list = sample(5);
        list.corrupt_next(1, None);
        assert_eq!(list.repair(), RepairOutcome::Repaired);
        assert_eq!(list.to_vec(), vec![&0, &1, &2, &3, &4]);
        assert!(list.audit().is_clean());
    }

    #[test]
    fn repairs_prev_damage_from_forward_chain() {
        let mut list = sample(5);
        list.corrupt_prev(3, None);
        assert_eq!(list.repair(), RepairOutcome::Repaired);
        assert!(list.audit().is_clean());
    }

    #[test]
    fn double_corruption_of_both_chains_is_unrepairable() {
        let mut list = sample(6);
        // Break the backward chain first (corrupt_prev locates positions
        // via the forward chain, so it must still be intact), then the
        // forward chain: afterwards neither walk covers all live nodes.
        list.corrupt_prev(4, None);
        list.corrupt_next(2, None);
        assert_eq!(list.repair(), RepairOutcome::Unrepairable);
    }

    #[test]
    fn clean_repair_is_noop() {
        let mut list = sample(3);
        assert_eq!(list.repair(), RepairOutcome::CleanAlready);
    }

    #[test]
    fn iteration_survives_cycles_gracefully() {
        let mut list = sample(3);
        list.corrupt_next(2, Some(0));
        // to_vec stops instead of hanging.
        let v = list.to_vec();
        assert!(v.len() <= 4);
    }

    #[test]
    fn entry_matches_table2() {
        assert_eq!(ENTRY.classification.redundancy, RedundancyType::Data);
        assert_eq!(
            ENTRY.classification.adjudication,
            Adjudication::ReactiveImplicit
        );
        let list: RobustList<u8> = RobustList::new();
        assert_eq!(list.name(), "Robust data structures, audits");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Any single pointer corruption is repairable, and repair
            /// restores the exact element sequence.
            #[test]
            fn single_next_corruption_is_repairable(
                n in 2usize..12,
                pos_frac in 0.0f64..1.0,
                target_frac in 0.0f64..1.0,
            ) {
                let mut list: RobustList<usize> = (0..n).collect();
                let pos = ((n as f64 - 1.0) * pos_frac) as usize;
                let target = Some(((n as f64 - 1.0) * target_frac) as usize);
                list.corrupt_next(pos, target);
                let outcome = list.repair();
                prop_assert_ne!(outcome, RepairOutcome::Unrepairable);
                prop_assert!(list.audit().is_clean());
                let values: Vec<usize> = list.to_vec().into_iter().copied().collect();
                prop_assert_eq!(values, (0..n).collect::<Vec<_>>());
            }

            /// Count corruption never loses data.
            #[test]
            fn count_corruption_is_always_repairable(n in 0usize..12, bogus in 0usize..100) {
                let mut list: RobustList<usize> = (0..n).collect();
                list.corrupt_count(bogus);
                let outcome = list.repair();
                prop_assert_ne!(outcome, RepairOutcome::Unrepairable);
                prop_assert_eq!(list.len(), n);
            }

            /// Audit is sound: an untouched list always audits clean, and
            /// pop/push sequences keep it clean.
            #[test]
            fn audit_clean_under_normal_operation(ops in proptest::collection::vec(0u8..2, 0..40)) {
                let mut list: RobustList<u32> = RobustList::new();
                let mut model: std::collections::VecDeque<u32> = Default::default();
                let mut counter = 0u32;
                for op in ops {
                    if op == 0 {
                        list.push_back(counter);
                        model.push_back(counter);
                        counter += 1;
                    } else {
                        prop_assert_eq!(list.pop_front(), model.pop_front());
                    }
                    prop_assert!(list.audit().is_clean());
                    prop_assert_eq!(list.len(), model.len());
                }
                let values: Vec<u32> = list.to_vec().into_iter().copied().collect();
                let expect: Vec<u32> = model.into_iter().collect();
                prop_assert_eq!(values, expect);
            }
        }
    }
}
