//! Every fault-handling technique of the paper's Table 2, implemented.
//!
//! Each module implements one technique family as a *working mechanism*
//! (not a stub), declares its taxonomy classification as a
//! [`TechniqueEntry`], and is exercised by unit tests against the fault
//! classes it targets. The [`table2`] module collects all entries and
//! regenerates the paper's Table 2; conformance tests there pin every row
//! to the paper's classification.
//!
//! | Module | Technique (Table 2 row) |
//! |---|---|
//! | [`nvp`] | N-version programming |
//! | [`recovery_blocks`] | Recovery blocks |
//! | [`self_checking`] | Self-checking programming |
//! | [`self_optimizing`] | Self-optimizing code |
//! | [`rule_engine`] | Exception handling, rule engines |
//! | [`wrappers`] | Wrappers |
//! | [`robust_data`] | Robust data structures, audits |
//! | [`data_diversity`] | Data diversity |
//! | [`nvariant_data`] | Data diversity for security |
//! | [`rejuvenation`] | Rejuvenation |
//! | [`env_perturbation`] | Environment perturbation (RX) |
//! | [`process_replicas`] | Process replicas |
//! | [`service_substitution`] | Dynamic service substitution |
//! | [`fault_fixing`] | Fault fixing, genetic programming |
//! | [`workarounds`] | Automatic workarounds |
//! | [`checkpoint_recovery`] | Checkpoint-recovery |
//! | [`microreboot`] | Reboot and micro-reboot |
//!
//! [`TechniqueEntry`]: redundancy_core::technique::TechniqueEntry

#![warn(missing_docs)]

pub mod checkpoint_recovery;
pub mod data_diversity;
pub mod env_perturbation;
pub mod fault_fixing;
pub mod microreboot;
pub mod nvariant_data;
pub mod nvp;
pub mod process_replicas;
pub mod recovery_blocks;
pub mod rejuvenation;
pub mod robust_data;
pub mod rule_engine;
pub mod self_checking;
pub mod self_optimizing;
pub mod service_substitution;
pub mod table2;
pub mod workarounds;
pub mod wrappers;
