//! Recovery blocks (paper §4.1; Randell 1975).
//!
//! Independently designed alternates execute *sequentially*: the primary
//! runs first; an explicitly designed acceptance test judges its result;
//! on rejection the system rolls back to a consistent state and tries the
//! next alternate. Compared to N-version programming, execution cost is
//! paid only on failure, but the adjudicator must be designed explicitly
//! and its coverage bounds the achievable reliability (experiment E6).
//!
//! Classification (Table 2): deliberate / code / reactive-explicit /
//! development.

use std::sync::Arc;

use std::sync::Mutex;

use redundancy_core::adjudicator::acceptance::AcceptanceTest;
use redundancy_core::context::ExecContext;
use redundancy_core::patterns::{DecisionPolicy, PatternReport, SequentialAlternatives};
use redundancy_core::taxonomy::{
    Adjudication, ArchitecturalPattern, Classification, FaultSet, Intention, RedundancyType,
};
use redundancy_core::technique::{Technique, TechniqueEntry};
use redundancy_core::variant::BoxedVariant;
use redundancy_sandbox::process::{ProcessCheckpoint, SimProcess};

/// Table 2 row for recovery blocks.
pub const ENTRY: TechniqueEntry = TechniqueEntry {
    name: "Recovery blocks",
    classification: Classification::new(
        Intention::Deliberate,
        RedundancyType::Code,
        Adjudication::ReactiveExplicit,
        FaultSet::DEVELOPMENT,
    ),
    patterns: &[ArchitecturalPattern::SequentialAlternatives],
    citations: &["Randell 1975", "Dobson 2006"],
};

/// A recovery-block structure: `ensure <test> by <primary> else by
/// <alternate> ... else error`.
///
/// When a [`SimProcess`] is attached, the block checkpoints it before the
/// primary and restores the checkpoint before every alternate — Randell's
/// recovery cache.
///
/// # Examples
///
/// ```
/// use redundancy_core::adjudicator::acceptance::FnAcceptance;
/// use redundancy_core::context::ExecContext;
/// use redundancy_core::variant::pure_variant;
/// use redundancy_techniques::recovery_blocks::RecoveryBlocks;
///
/// let rb = RecoveryBlocks::new(FnAcceptance::new("nonneg", |_: &i64, out: &i64| *out >= 0))
///     .with_alternate(pure_variant("primary", 10, |_x: &i64| -1)) // faulty
///     .with_alternate(pure_variant("backup", 30, |x: &i64| x * 2));
/// let mut ctx = ExecContext::new(0);
/// assert_eq!(rb.run(&4, &mut ctx).into_output(), Some(8));
/// ```
pub struct RecoveryBlocks<I, O> {
    pattern: SequentialAlternatives<I, O>,
    alternates: usize,
    checkpoint_setup: Option<CheckpointSetup>,
}

type CheckpointSetup = (
    Arc<Mutex<SimProcess>>,
    Arc<Mutex<Option<ProcessCheckpoint>>>,
);

impl<I, O> RecoveryBlocks<I, O> {
    /// Creates a recovery-block structure with the given acceptance test.
    #[must_use]
    pub fn new(test: impl AcceptanceTest<I, O> + 'static) -> Self {
        Self {
            pattern: SequentialAlternatives::new(test),
            alternates: 0,
            checkpoint_setup: None,
        }
    }

    /// Adds an alternate (the first added is the primary).
    #[must_use]
    pub fn with_alternate(mut self, alternate: BoxedVariant<I, O>) -> Self {
        self.pattern.push_variant(alternate);
        self.alternates += 1;
        self
    }

    /// Attaches a process whose state is checkpointed before the primary
    /// and restored before each alternate.
    #[must_use]
    pub fn with_process(self, process: Arc<Mutex<SimProcess>>) -> Self {
        let checkpoint: Arc<Mutex<Option<ProcessCheckpoint>>> = Arc::new(Mutex::new(None));
        let ckpt = Arc::clone(&checkpoint);
        let proc_for_rollback = Arc::clone(&process);
        let mut this = self;
        this.pattern = this.pattern.with_rollback(move |_ctx| {
            let mut proc = proc_for_rollback
                .lock()
                .expect("recovery-block state lock is never poisoned");
            if let Some(saved) = ckpt
                .lock()
                .expect("recovery-block state lock is never poisoned")
                .as_ref()
            {
                proc.restore(saved);
            }
        });
        // Wrap the run by taking the checkpoint lazily on first attempt:
        // store it in the shared slot at run entry via the stored closure.
        this.checkpoint_setup = Some((process, checkpoint));
        this
    }

    /// Number of alternates (including the primary).
    #[must_use]
    pub fn alternates(&self) -> usize {
        self.alternates
    }

    /// Accepts a decision policy for uniformity with the parallel
    /// techniques. Recovery blocks are *inherently* eager — alternates
    /// after the first accepted result never start — so the policy changes
    /// nothing; [`policy`](Self::policy) always reports
    /// [`DecisionPolicy::Eager`].
    #[must_use]
    pub fn with_policy(mut self, policy: DecisionPolicy) -> Self {
        self.pattern = self.pattern.with_policy(policy);
        self
    }

    /// The decision policy in effect (always [`DecisionPolicy::Eager`]).
    #[must_use]
    pub fn policy(&self) -> DecisionPolicy {
        self.pattern.policy()
    }

    /// Runs the recovery block.
    pub fn run(&self, input: &I, ctx: &mut ExecContext) -> PatternReport<O>
    where
        O: Clone,
    {
        redundancy_core::patterns::run_technique_span(ctx, "recovery-blocks", |ctx| {
            if let Some((process, slot)) = &self.checkpoint_setup {
                *slot
                    .lock()
                    .expect("recovery-block state lock is never poisoned") = Some(
                    process
                        .lock()
                        .expect("recovery-block state lock is never poisoned")
                        .checkpoint(),
                );
                ctx.obs_emit(|| redundancy_core::obs::Point::Checkpoint {
                    label: "sim-process",
                });
            }
            self.pattern.run(input, ctx)
        })
    }
}

impl<I, O> Technique for RecoveryBlocks<I, O> {
    fn name(&self) -> &'static str {
        ENTRY.name
    }

    fn classification(&self) -> Classification {
        ENTRY.classification
    }

    fn patterns(&self) -> &'static [ArchitecturalPattern] {
        ENTRY.patterns
    }

    fn citations(&self) -> &'static [&'static str] {
        ENTRY.citations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redundancy_core::adjudicator::acceptance::FnAcceptance;
    use redundancy_core::outcome::VariantFailure;
    use redundancy_core::variant::pure_variant;
    use redundancy_core::variant::FnVariant;

    fn nonneg() -> FnAcceptance<impl Fn(&i64, &i64) -> bool> {
        FnAcceptance::new("nonneg", |_: &i64, out: &i64| *out >= 0)
    }

    #[test]
    fn policy_is_inherently_eager_and_a_no_op() {
        let mk = |policy| {
            RecoveryBlocks::new(nonneg())
                .with_alternate(pure_variant("primary", 10, |_x: &i64| -1))
                .with_alternate(pure_variant("backup", 30, |x: &i64| x * 2))
                .with_policy(policy)
        };
        let eager = mk(DecisionPolicy::Eager);
        assert_eq!(eager.policy(), DecisionPolicy::Eager);
        let exhaustive = mk(DecisionPolicy::Exhaustive);
        assert_eq!(exhaustive.policy(), DecisionPolicy::Eager);
        let mut c1 = ExecContext::new(0);
        let mut c2 = ExecContext::new(0);
        let a = eager.run(&4, &mut c1);
        let b = exhaustive.run(&4, &mut c2);
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn primary_cost_only_when_primary_passes() {
        let rb = RecoveryBlocks::new(nonneg())
            .with_alternate(pure_variant("primary", 10, |x: &i64| x + 1))
            .with_alternate(pure_variant("backup", 100, |x: &i64| x + 2));
        let mut ctx = ExecContext::new(0);
        let report = rb.run(&1, &mut ctx);
        assert_eq!(report.into_output(), Some(2));
        assert_eq!(ctx.cost().virtual_ns, 10, "backup must not have run");
    }

    #[test]
    fn falls_through_on_rejection_and_crash() {
        let crasher: BoxedVariant<i64, i64> =
            Box::new(FnVariant::new("crasher", |_: &i64, _: &mut ExecContext| {
                Err(VariantFailure::crash("boom"))
            }));
        let rb = RecoveryBlocks::new(nonneg())
            .with_alternate(pure_variant("bad-output", 5, |_: &i64| -7))
            .with_alternate(crasher)
            .with_alternate(pure_variant("good", 5, |x: &i64| x * 3));
        let mut ctx = ExecContext::new(0);
        assert_eq!(rb.run(&3, &mut ctx).into_output(), Some(9));
        assert_eq!(rb.alternates(), 3);
    }

    #[test]
    fn acceptance_coverage_bounds_reliability() {
        // A weak acceptance test (accepts everything) lets the faulty
        // primary's wrong output through: the explicit adjudicator is the
        // bottleneck, exactly the §4.1 trade-off.
        let weak = FnAcceptance::new("weak", |_: &i64, _: &i64| true);
        let rb = RecoveryBlocks::new(weak)
            .with_alternate(pure_variant("faulty", 5, |_: &i64| -7))
            .with_alternate(pure_variant("good", 5, |x: &i64| *x));
        let mut ctx = ExecContext::new(0);
        assert_eq!(rb.run(&3, &mut ctx).into_output(), Some(-7));
    }

    #[test]
    fn process_state_rolls_back_between_alternates() {
        let process = Arc::new(Mutex::new(SimProcess::new(1, 0, 0x1000)));
        process
            .lock()
            .expect("recovery-block state lock is never poisoned")
            .set("balance", 100);

        // The faulty primary corrupts the balance then produces a bad
        // output; the alternate must observe the original balance.
        let p1 = Arc::clone(&process);
        let primary: BoxedVariant<i64, i64> = Box::new(FnVariant::new(
            "corrupting-primary",
            move |_: &i64, _: &mut ExecContext| {
                p1.lock()
                    .expect("recovery-block state lock is never poisoned")
                    .set("balance", -999);
                Ok(-1)
            },
        ));
        let p2 = Arc::clone(&process);
        let alternate: BoxedVariant<i64, i64> = Box::new(FnVariant::new(
            "alternate",
            move |x: &i64, _: &mut ExecContext| {
                let balance = p2
                    .lock()
                    .expect("recovery-block state lock is never poisoned")
                    .get("balance")
                    .unwrap_or(0);
                Ok(balance + x)
            },
        ));
        let rb = RecoveryBlocks::new(nonneg())
            .with_alternate(primary)
            .with_alternate(alternate)
            .with_process(Arc::clone(&process));
        let mut ctx = ExecContext::new(0);
        let out = rb.run(&1, &mut ctx).into_output();
        assert_eq!(out, Some(101), "alternate saw corrupted state");
        assert_eq!(
            process
                .lock()
                .expect("recovery-block state lock is never poisoned")
                .get("balance"),
            Some(100)
        );
    }

    #[test]
    fn exhausting_alternates_reports_rejection() {
        let rb = RecoveryBlocks::new(nonneg())
            .with_alternate(pure_variant("a", 1, |_: &i64| -1))
            .with_alternate(pure_variant("b", 1, |_: &i64| -2));
        let mut ctx = ExecContext::new(0);
        assert!(!rb.run(&1, &mut ctx).is_accepted());
    }

    #[test]
    fn entry_matches_table2() {
        assert_eq!(ENTRY.classification.intention, Intention::Deliberate);
        assert_eq!(ENTRY.classification.redundancy, RedundancyType::Code);
        assert_eq!(
            ENTRY.classification.adjudication,
            Adjudication::ReactiveExplicit
        );
        assert_eq!(ENTRY.classification.faults, FaultSet::DEVELOPMENT);
        let rb: RecoveryBlocks<i64, i64> = RecoveryBlocks::new(nonneg());
        assert_eq!(rb.name(), "Recovery blocks");
        assert_eq!(
            rb.patterns(),
            &[ArchitecturalPattern::SequentialAlternatives]
        );
    }
}
