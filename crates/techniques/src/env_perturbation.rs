//! Environment perturbation — RX (paper §4.3; Qin, Tucek, Zhou 2007).
//!
//! "Treating bugs as allergies": when a failure is detected, roll back to
//! a checkpoint and *re-execute in a modified environment* — padded
//! allocations, zero-filled memory, shuffled message order, different
//! priority, throttled load. Failures caused by environmental conditions
//! (a large class of Heisenbugs, plus environment-dependent Bohrbugs such
//! as overflow-triggered crashes) disappear under the right perturbation.
//!
//! Classification (Table 2): deliberate / environment / reactive-explicit
//! / development.

use redundancy_core::context::ExecContext;
use redundancy_core::outcome::{VariantFailure, VariantOutcome};
use redundancy_core::taxonomy::{
    Adjudication, ArchitecturalPattern, Classification, FaultSet, Intention, RedundancyType,
};
use redundancy_core::technique::{Technique, TechniqueEntry};
use redundancy_core::variant::{run_contained, BoxedVariant};
use redundancy_faults::{EnvKnobs, EnvSignature, FailureDetector, KnobSnapshot};
use redundancy_sandbox::env::EnvConfig;

/// Table 2 row for environment perturbation.
pub const ENTRY: TechniqueEntry = TechniqueEntry {
    name: "Environment perturbation",
    classification: Classification::new(
        Intention::Deliberate,
        RedundancyType::Environment,
        Adjudication::ReactiveExplicit,
        FaultSet::DEVELOPMENT,
    ),
    patterns: &[ArchitecturalPattern::SequentialAlternatives],
    citations: &["Qin 2007 (RX)"],
};

/// How an RX-protected execution concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum RxOutcome<O> {
    /// The original execution succeeded.
    CleanRun(O),
    /// A failure was detected and a perturbed re-execution recovered.
    Recovered {
        /// The recovered output.
        output: O,
        /// Number of perturbation rounds needed.
        rounds: u32,
        /// The environment that finally worked.
        environment: EnvConfig,
    },
    /// Every perturbation round failed too.
    Failed(VariantFailure),
}

impl<O> RxOutcome<O> {
    /// The delivered output, if any.
    #[must_use]
    pub fn output(&self) -> Option<&O> {
        match self {
            RxOutcome::CleanRun(o) | RxOutcome::Recovered { output: o, .. } => Some(o),
            RxOutcome::Failed(_) => None,
        }
    }
}

/// The perturbation schedule: maps a retry round to the environment to
/// try. The default is the full RX menu
/// ([`EnvConfig::rx_perturbations`]); single-knob schedules support the
/// ablation of experiment E10b.
pub type PerturbationSchedule = Box<dyn Fn(u32, EnvConfig) -> EnvConfig + Send + Sync>;

/// The RX executor: detector-triggered rollback and re-execution under
/// progressively perturbed environments.
pub struct Rx<I, O> {
    variant: BoxedVariant<I, O>,
    env_signature: EnvSignature,
    env_knobs: Option<EnvKnobs>,
    schedule: PerturbationSchedule,
    detector: Box<dyn FailureDetector<I, O>>,
    max_rounds: u32,
}

impl<I, O> Rx<I, O> {
    /// Creates an RX executor.
    ///
    /// `env_signature` must be the signature handle the variant's
    /// environment-sensitive faults read. The detector is the explicit
    /// adjudicator (sensors/exception monitors in the original system).
    #[must_use]
    pub fn new(
        variant: BoxedVariant<I, O>,
        env_signature: EnvSignature,
        detector: impl FailureDetector<I, O> + 'static,
        max_rounds: u32,
    ) -> Self {
        Self {
            variant,
            env_signature,
            env_knobs: None,
            schedule: Box::new(|round, env| env.rx_perturbations(round)),
            detector: Box::new(detector),
            max_rounds,
        }
    }

    /// Also drives concrete environment knobs (for knob-aware faults such
    /// as [`Activation::BufferOverflow`](redundancy_faults::Activation)).
    #[must_use]
    pub fn with_knobs(mut self, knobs: EnvKnobs) -> Self {
        self.env_knobs = Some(knobs);
        self
    }

    /// Replaces the perturbation schedule (default: the full RX menu).
    #[must_use]
    pub fn with_schedule(
        mut self,
        schedule: impl Fn(u32, EnvConfig) -> EnvConfig + Send + Sync + 'static,
    ) -> Self {
        self.schedule = Box::new(schedule);
        self
    }

    fn apply_env(&self, env: &EnvConfig) {
        self.env_signature.set(env.signature());
        if let Some(knobs) = &self.env_knobs {
            knobs.set(KnobSnapshot {
                padding: env.alloc_padding,
                zero_fill: env.zero_fill,
                order_seed: env.msg_order_seed,
                priority: env.priority,
                throttle_permille: env.throttle_permille,
            });
        }
    }

    /// Executes with RX protection. The environment is restored to the
    /// baseline before returning (so calls do not leak perturbations).
    pub fn execute(&self, input: &I, ctx: &mut ExecContext) -> RxOutcome<O> {
        use redundancy_core::obs::{SpanKind, SpanStatus};

        let span = ctx.obs_begin(|| SpanKind::Technique {
            name: "env-perturbation-rx",
        });
        let before = ctx.cost();
        let result = self.execute_inner(input, ctx);
        let status = match &result {
            RxOutcome::CleanRun(_) => SpanStatus::Ok,
            RxOutcome::Recovered { rounds, .. } => SpanStatus::Accepted {
                support: 1,
                dissent: *rounds as usize,
            },
            RxOutcome::Failed(failure) => SpanStatus::Failed {
                kind: failure.kind(),
            },
        };
        ctx.obs_end(span, status, ctx.cost().delta_since(before).snapshot());
        result
    }

    fn execute_inner(&self, input: &I, ctx: &mut ExecContext) -> RxOutcome<O> {
        let baseline = EnvConfig::baseline();
        self.apply_env(&baseline);
        let mut child = ctx.fork(0);
        let outcome = run_contained(self.variant.as_ref(), input, &mut child);
        ctx.add_sequential_cost(outcome.cost);
        if !self.detector.detect(input, &outcome) {
            if let Ok(output) = outcome.result {
                return RxOutcome::CleanRun(output);
            }
        }
        let mut last_failure = failure_of(&outcome);
        let mut env = baseline;
        for round in 0..self.max_rounds {
            // Perturb the environment (RX's ordered menu of changes) and
            // re-execute from the rollback point.
            env = (self.schedule)(round, env);
            self.apply_env(&env);
            ctx.obs_emit(|| redundancy_core::obs::Point::Perturbation {
                knob: "rx-menu",
                attempt: round + 1,
            });
            let mut child = ctx.fork(u64::from(round) + 1);
            let retry = run_contained(self.variant.as_ref(), input, &mut child);
            ctx.add_sequential_cost(retry.cost);
            if !self.detector.detect(input, &retry) {
                if let Ok(output) = retry.result {
                    self.apply_env(&baseline);
                    return RxOutcome::Recovered {
                        output,
                        rounds: round + 1,
                        environment: env,
                    };
                }
            }
            last_failure = failure_of(&retry);
        }
        self.apply_env(&baseline);
        RxOutcome::Failed(last_failure)
    }
}

fn failure_of<O>(outcome: &VariantOutcome<O>) -> VariantFailure {
    match &outcome.result {
        Ok(_) => VariantFailure::error("detector rejected the output"),
        Err(f) => f.clone(),
    }
}

impl<I, O> Technique for Rx<I, O> {
    fn name(&self) -> &'static str {
        ENTRY.name
    }

    fn classification(&self) -> Classification {
        ENTRY.classification
    }

    fn patterns(&self) -> &'static [ArchitecturalPattern] {
        ENTRY.patterns
    }

    fn citations(&self) -> &'static [&'static str] {
        ENTRY.citations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redundancy_faults::{
        Activation, DetectableFailures, FaultEffect, FaultSpec, FaultyVariant,
    };

    /// A variant whose crash depends on the environment: for a given env,
    /// `density` of inputs crash; a perturbed env re-rolls the set.
    fn env_sensitive(density: f64) -> (BoxedVariant<i64, i64>, EnvSignature) {
        let v = FaultyVariant::builder("env-bug", 5, |x: &i64| x * 2)
            .fault(FaultSpec::new(
                "overflow-ish",
                Activation::EnvSensitive { density, salt: 7 },
                FaultEffect::Crash,
            ))
            .build();
        let env = v.env_signature();
        (Box::new(v), env)
    }

    /// A variant with a pure input-region Bohrbug (environment-blind).
    fn env_blind(density: f64) -> (BoxedVariant<i64, i64>, EnvSignature) {
        let v = FaultyVariant::builder("hard-bug", 5, |x: &i64| x * 2)
            .fault(FaultSpec::new(
                "logic-bug",
                Activation::InputRegion { density, salt: 7 },
                FaultEffect::Crash,
            ))
            .build();
        let env = v.env_signature();
        (Box::new(v), env)
    }

    #[test]
    fn clean_runs_pass_through() {
        let (variant, env) = env_sensitive(0.0);
        let rx = Rx::new(variant, env, DetectableFailures::new(), 5);
        let mut ctx = ExecContext::new(1);
        assert_eq!(rx.execute(&21, &mut ctx), RxOutcome::CleanRun(42));
    }

    #[test]
    fn recovers_env_sensitive_failures() {
        let (variant, env) = env_sensitive(0.4);
        let rx = Rx::new(variant, env, DetectableFailures::new(), 6);
        let mut ctx = ExecContext::new(2);
        let mut clean = 0;
        let mut recovered = 0;
        let mut failed = 0;
        for x in 0..400i64 {
            match rx.execute(&x, &mut ctx) {
                RxOutcome::CleanRun(v) => {
                    assert_eq!(v, x * 2);
                    clean += 1;
                }
                RxOutcome::Recovered { output, rounds, .. } => {
                    assert_eq!(output, x * 2);
                    assert!(rounds >= 1);
                    recovered += 1;
                }
                RxOutcome::Failed(_) => failed += 1,
            }
        }
        assert!(clean > 180, "clean {clean}");
        assert!(recovered > 100, "recovered {recovered}");
        // Residual: 0.4^7 ≈ 0.2% of 400 ≈ 1.
        assert!(failed <= 8, "failed {failed}");
    }

    #[test]
    fn does_not_recover_environment_blind_bohrbugs() {
        let (variant, env) = env_blind(0.4);
        let rx = Rx::new(variant, env, DetectableFailures::new(), 6);
        let mut ctx = ExecContext::new(3);
        let mut recovered = 0;
        let mut failed = 0;
        for x in 0..400i64 {
            match rx.execute(&x, &mut ctx) {
                RxOutcome::CleanRun(_) => {}
                RxOutcome::Recovered { .. } => recovered += 1,
                RxOutcome::Failed(_) => failed += 1,
            }
        }
        assert_eq!(recovered, 0, "input-region bugs must not respond to RX");
        assert!(failed > 120, "failed {failed}");
    }

    #[test]
    fn environment_is_restored_after_recovery() {
        let (variant, env) = env_sensitive(0.9);
        let baseline_sig = EnvConfig::baseline().signature();
        let rx = Rx::new(variant, env.clone(), DetectableFailures::new(), 10);
        let mut ctx = ExecContext::new(4);
        for x in 0..20i64 {
            let _ = rx.execute(&x, &mut ctx);
            assert_eq!(env.get(), baseline_sig);
        }
    }

    #[test]
    fn zero_rounds_never_recovers() {
        let (variant, env) = env_sensitive(1.0);
        let rx = Rx::new(variant, env, DetectableFailures::new(), 0);
        let mut ctx = ExecContext::new(5);
        assert!(matches!(rx.execute(&1, &mut ctx), RxOutcome::Failed(_)));
    }

    #[test]
    fn rx_outcome_accessors() {
        let ok: RxOutcome<i32> = RxOutcome::CleanRun(5);
        assert_eq!(ok.output(), Some(&5));
        let failed: RxOutcome<i32> = RxOutcome::Failed(VariantFailure::Timeout);
        assert_eq!(failed.output(), None);
    }

    #[test]
    fn entry_matches_table2() {
        assert_eq!(ENTRY.classification.redundancy, RedundancyType::Environment);
        assert_eq!(
            ENTRY.classification.adjudication,
            Adjudication::ReactiveExplicit
        );
        assert_eq!(ENTRY.classification.faults, FaultSet::DEVELOPMENT);
        let (variant, env) = env_sensitive(0.0);
        let rx = Rx::new(variant, env, DetectableFailures::new(), 1);
        assert_eq!(rx.name(), "Environment perturbation");
    }
}
