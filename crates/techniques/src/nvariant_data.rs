//! Data diversity for security (paper §4.2; Nguyen-Tuong, Evans, Knight
//! et al. 2008).
//!
//! N-variant *data* systems store the same logical value under N
//! different encodings (here: XOR masks and an additive bias), with the
//! property that identical concrete bit patterns decode to *different*
//! values in different variants. An attacker who overwrites the stored
//! representation with a chosen concrete value (a data-corruption attack
//! cannot choose per-variant payloads — it writes the same bytes
//! everywhere) therefore produces decoded values that disagree, and the
//! implicit comparison detects the attack.
//!
//! Classification (Table 2): deliberate / data / reactive-implicit /
//! malicious.

use redundancy_core::patterns::DecisionPolicy;
use redundancy_core::rng::SplitMix64;
use redundancy_core::taxonomy::{
    Adjudication, ArchitecturalPattern, Classification, FaultSet, Intention, RedundancyType,
};
use redundancy_core::technique::{Technique, TechniqueEntry};

/// Table 2 row for data diversity for security.
pub const ENTRY: TechniqueEntry = TechniqueEntry {
    name: "Data diversity for security",
    classification: Classification::new(
        Intention::Deliberate,
        RedundancyType::Data,
        Adjudication::ReactiveImplicit,
        FaultSet::MALICIOUS,
    ),
    patterns: &[ArchitecturalPattern::ParallelEvaluation],
    citations: &["Nguyen-Tuong 2008", "Cox 2006"],
};

/// The error reported when variant decodings disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttackDetected {
    /// Number of variants that disagreed with the first.
    pub disagreeing: usize,
}

impl std::fmt::Display for AttackDetected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "data corruption attack detected: {} variant(s) disagree",
            self.disagreeing
        )
    }
}

impl std::error::Error for AttackDetected {}

/// One storage variant: an XOR mask plus an additive bias. Chosen so that
/// no two variants use the same transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Encoding {
    mask: u64,
    bias: u64,
}

impl Encoding {
    fn encode(self, value: u64) -> u64 {
        (value ^ self.mask).wrapping_add(self.bias)
    }

    fn decode(self, stored: u64) -> u64 {
        stored.wrapping_sub(self.bias) ^ self.mask
    }
}

/// A memory cell stored under N diverse encodings.
///
/// # Examples
///
/// ```
/// use redundancy_techniques::nvariant_data::NVariantCell;
///
/// let mut cell = NVariantCell::new(3, 42);
/// cell.write(7);
/// assert_eq!(cell.read(), Ok(7));
///
/// // A data-corruption attack overwrites all stored copies with the
/// // same concrete bit pattern — and is detected on the next read.
/// cell.attack_overwrite(0xdead_beef);
/// assert!(cell.read().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct NVariantCell {
    variants: Vec<(Encoding, u64)>,
    obs: Option<redundancy_core::obs::ObsHandle>,
    policy: DecisionPolicy,
}

impl PartialEq for NVariantCell {
    fn eq(&self, other: &Self) -> bool {
        // Value equality; an attached observer is not part of the cell.
        self.variants == other.variants
    }
}

impl Eq for NVariantCell {}

impl NVariantCell {
    /// Creates a cell with `n` diversely encoded variants, initialized to
    /// zero. Encodings are derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` — a single variant cannot detect anything.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 2, "need at least two variants to compare");
        let mut rng = SplitMix64::new(seed);
        let mut variants = Vec::with_capacity(n);
        // Variant 0 is the "natural" encoding, as in the paper's design
        // where one variant runs the original representation.
        variants.push((Encoding { mask: 0, bias: 0 }, 0));
        for _ in 1..n {
            let mask = rng.next_u64() | 1; // never the identity mask
            let bias = rng.next_u64();
            variants.push((Encoding { mask, bias }, Encoding { mask, bias }.encode(0)));
        }
        Self {
            variants,
            obs: None,
            policy: DecisionPolicy::Exhaustive,
        }
    }

    /// Sets the decision policy. Under [`DecisionPolicy::Eager`] a read
    /// short-circuits at the *first* disagreeing decoding — the attack
    /// verdict is already fixed — instead of decoding and comparing every
    /// remaining variant. Detection is unchanged; the reported
    /// `disagreeing` count then reflects only the comparisons actually
    /// performed.
    #[must_use]
    pub fn with_policy(mut self, policy: DecisionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The decision policy in effect.
    #[must_use]
    pub fn policy(&self) -> DecisionPolicy {
        self.policy
    }

    /// Attaches an observer; detected corruption emits a
    /// [`redundancy_core::obs::Point::ReplicaDivergence`] point.
    #[must_use]
    pub fn with_observer(
        mut self,
        observer: std::sync::Arc<dyn redundancy_core::obs::Observer>,
    ) -> Self {
        self.obs = Some(redundancy_core::obs::ObsHandle::new(observer));
        self
    }

    /// Number of variants.
    #[must_use]
    pub fn variants(&self) -> usize {
        self.variants.len()
    }

    /// Writes a value through the legitimate interface (each variant
    /// encodes it with its own transformation).
    pub fn write(&mut self, value: u64) {
        for (encoding, stored) in &mut self.variants {
            *stored = encoding.encode(value);
        }
    }

    /// Reads the value, comparing all variant decodings.
    ///
    /// # Errors
    ///
    /// Returns [`AttackDetected`] when decodings disagree.
    pub fn read(&self) -> Result<u64, AttackDetected> {
        let first = self.variants[0].0.decode(self.variants[0].1);
        let mut disagreement = self
            .variants
            .iter()
            .skip(1)
            .map(|(enc, stored)| enc.decode(*stored) != first);
        let disagreeing = match self.policy {
            DecisionPolicy::Exhaustive => disagreement.filter(|&d| d).count(),
            // The first disagreement fixes the verdict; later variants are
            // never decoded or compared.
            DecisionPolicy::Eager => usize::from(disagreement.any(|d| d)),
        };
        if disagreeing == 0 {
            Ok(first)
        } else {
            if let Some(obs) = &self.obs {
                obs.emit(0, || redundancy_core::obs::Point::ReplicaDivergence {
                    detail: redundancy_core::obs::Symbol::intern(&format!(
                        "{disagreeing} of {} encodings disagree",
                        self.variants.len()
                    )),
                });
            }
            Err(AttackDetected { disagreeing })
        }
    }

    /// Simulates a data-corruption attack: the attacker writes the same
    /// concrete bit pattern over every stored variant (it cannot tailor
    /// the payload per variant without knowing the secret encodings).
    pub fn attack_overwrite(&mut self, concrete: u64) {
        for (_, stored) in &mut self.variants {
            *stored = concrete;
        }
    }

    /// Simulates a partial attack corrupting only variant `idx`.
    pub fn attack_single(&mut self, idx: usize, concrete: u64) {
        if let Some((_, stored)) = self.variants.get_mut(idx) {
            *stored = concrete;
        }
    }
}

impl Technique for NVariantCell {
    fn name(&self) -> &'static str {
        ENTRY.name
    }

    fn classification(&self) -> Classification {
        ENTRY.classification
    }

    fn patterns(&self) -> &'static [ArchitecturalPattern] {
        ENTRY.patterns
    }

    fn citations(&self) -> &'static [&'static str] {
        ENTRY.citations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legitimate_roundtrip() {
        let mut cell = NVariantCell::new(3, 1);
        for v in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
            cell.write(v);
            assert_eq!(cell.read(), Ok(v));
        }
    }

    #[test]
    fn uniform_overwrite_is_detected() {
        let mut cell = NVariantCell::new(2, 2);
        cell.write(10);
        cell.attack_overwrite(10); // even writing the "correct" raw value
        let err = cell.read().unwrap_err();
        assert!(err.disagreeing >= 1);
    }

    #[test]
    fn single_variant_corruption_is_detected() {
        let mut cell = NVariantCell::new(3, 3);
        cell.write(77);
        cell.attack_single(2, 0x41414141);
        assert!(cell.read().is_err());
    }

    #[test]
    fn detection_rate_is_total_over_many_attacks() {
        let mut rng = SplitMix64::new(9);
        let mut detected = 0;
        let trials = 2000;
        for t in 0..trials {
            let mut cell = NVariantCell::new(2, t);
            cell.write(rng.next_u64());
            cell.attack_overwrite(rng.next_u64());
            if cell.read().is_err() {
                detected += 1;
            }
        }
        // A uniform overwrite evades detection only if the same pattern
        // decodes identically under both encodings — probability ~2^-64.
        assert_eq!(detected, trials);
    }

    #[test]
    fn more_variants_more_disagreement() {
        let mut cell = NVariantCell::new(5, 4);
        cell.write(1);
        cell.attack_overwrite(999);
        let err = cell.read().unwrap_err();
        assert!(err.disagreeing >= 3, "disagreeing {}", err.disagreeing);
        assert_eq!(cell.variants(), 5);
    }

    #[test]
    fn eager_policy_detects_the_same_attacks() {
        let mut rng = SplitMix64::new(17);
        for t in 0..500 {
            let mut exhaustive = NVariantCell::new(4, t);
            let mut eager = NVariantCell::new(4, t).with_policy(DecisionPolicy::Eager);
            let value = rng.next_u64();
            exhaustive.write(value);
            eager.write(value);
            assert_eq!(exhaustive.read().is_err(), eager.read().is_err());
            let payload = rng.next_u64();
            exhaustive.attack_overwrite(payload);
            eager.attack_overwrite(payload);
            assert_eq!(exhaustive.read().is_err(), eager.read().is_err(), "t={t}");
        }
    }

    #[test]
    fn eager_read_short_circuits_the_count() {
        let mut cell = NVariantCell::new(5, 4).with_policy(DecisionPolicy::Eager);
        assert_eq!(cell.policy(), DecisionPolicy::Eager);
        cell.write(1);
        cell.attack_overwrite(999);
        // Only the comparison that fixed the verdict is reported.
        assert_eq!(cell.read().unwrap_err().disagreeing, 1);
    }

    #[test]
    #[should_panic(expected = "at least two variants")]
    fn single_variant_cell_panics() {
        let _ = NVariantCell::new(1, 0);
    }

    #[test]
    fn display_of_detection() {
        assert!(AttackDetected { disagreeing: 2 }
            .to_string()
            .contains("2 variant(s)"));
    }

    #[test]
    fn entry_matches_table2() {
        assert_eq!(ENTRY.classification.faults, FaultSet::MALICIOUS);
        assert_eq!(
            ENTRY.classification.adjudication,
            Adjudication::ReactiveImplicit
        );
        let cell = NVariantCell::new(2, 0);
        assert_eq!(cell.name(), "Data diversity for security");
    }
}
