//! Automatic workarounds (paper §5.1; Carzaniga, Gorla, Pezzè 2008).
//!
//! Complex systems offer the same functionality through *different
//! combinations of elementary operations* — intrinsic redundancy nobody
//! designed for fault tolerance. When an operation sequence fails, the
//! technique rewrites it into equivalent sequences (using declared
//! equivalences of the API) and executes them until one works, mimicking
//! — and exceeding — what a resourceful user would try by hand.
//!
//! Classification (Table 2): opportunistic / code / reactive-explicit /
//! development.

use std::collections::VecDeque;
use std::sync::Arc;

use redundancy_core::obs::{ObsHandle, Observer, Point};
use redundancy_core::taxonomy::{
    Adjudication, ArchitecturalPattern, Classification, FaultSet, Intention, RedundancyType,
};
use redundancy_core::technique::{Technique, TechniqueEntry};

/// Table 2 row for automatic workarounds.
pub const ENTRY: TechniqueEntry = TechniqueEntry {
    name: "Automatic workarounds",
    classification: Classification::new(
        Intention::Opportunistic,
        RedundancyType::Code,
        Adjudication::ReactiveExplicit,
        FaultSet::DEVELOPMENT,
    ),
    patterns: &[ArchitecturalPattern::IntraComponent],
    citations: &["Carzaniga 2008 (SEAMS)", "Carzaniga 2008 (STTT)"],
};

/// A declared equivalence between two operation sequences: anywhere
/// `from` occurs, it may be replaced by `to` with the same intended
/// effect. Rules are applied in both directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteRule<Op> {
    /// The pattern to replace.
    pub from: Vec<Op>,
    /// The equivalent replacement.
    pub to: Vec<Op>,
}

impl<Op> RewriteRule<Op> {
    /// Creates a rule.
    #[must_use]
    pub fn new(from: Vec<Op>, to: Vec<Op>) -> Self {
        Self { from, to }
    }
}

/// The system under repair: executes an operation sequence, either
/// producing a state/output or failing.
pub trait OpSystem<Op> {
    /// The observable result of a sequence.
    type Output: PartialEq;

    /// Executes the sequence.
    ///
    /// # Errors
    ///
    /// Returns a message describing the failure.
    fn execute(&mut self, sequence: &[Op]) -> Result<Self::Output, String>;
}

/// A found workaround.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workaround<Op> {
    /// The equivalent sequence that succeeded.
    pub sequence: Vec<Op>,
    /// Number of candidate sequences executed before this one.
    pub attempts: usize,
}

/// The workaround engine: a set of rewrite rules over an operation
/// alphabet.
#[derive(Clone)]
pub struct WorkaroundEngine<Op> {
    rules: Vec<RewriteRule<Op>>,
    max_candidates: usize,
    max_depth: usize,
    obs: Option<ObsHandle>,
}

impl<Op: std::fmt::Debug> std::fmt::Debug for WorkaroundEngine<Op> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkaroundEngine")
            .field("rules", &self.rules)
            .field("max_candidates", &self.max_candidates)
            .field("max_depth", &self.max_depth)
            .field("observed", &self.obs.is_some())
            .finish()
    }
}

impl<Op: Clone + PartialEq> WorkaroundEngine<Op> {
    /// Creates an engine with the given equivalence rules.
    #[must_use]
    pub fn new(rules: Vec<RewriteRule<Op>>) -> Self {
        Self {
            rules,
            max_candidates: 200,
            max_depth: 4,
            obs: None,
        }
    }

    /// Attaches an observer; each workaround search emits a
    /// [`Point::Workaround`] with its outcome.
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.obs = Some(ObsHandle::new(observer));
        self
    }

    /// Caps the number of candidate sequences generated (default 200).
    #[must_use]
    pub fn with_max_candidates(mut self, max: usize) -> Self {
        self.max_candidates = max;
        self
    }

    /// Caps the rewrite depth (default 4).
    #[must_use]
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Number of rules.
    #[must_use]
    pub fn rules(&self) -> usize {
        self.rules.len()
    }

    /// All sequences reachable from `seq` by applying one rule once (both
    /// directions, every position).
    fn neighbors(&self, seq: &[Op]) -> Vec<Vec<Op>> {
        let mut out = Vec::new();
        for rule in &self.rules {
            for (pattern, replacement) in [(&rule.from, &rule.to), (&rule.to, &rule.from)] {
                if pattern.is_empty() || pattern.len() > seq.len() {
                    continue;
                }
                for start in 0..=(seq.len() - pattern.len()) {
                    if seq[start..start + pattern.len()] == pattern[..] {
                        let mut candidate =
                            Vec::with_capacity(seq.len() - pattern.len() + replacement.len());
                        candidate.extend_from_slice(&seq[..start]);
                        candidate.extend_from_slice(replacement);
                        candidate.extend_from_slice(&seq[start + pattern.len()..]);
                        out.push(candidate);
                    }
                }
            }
        }
        out
    }

    /// Enumerates equivalent sequences breadth-first (closest rewrites
    /// first — the "likelihood of success" ordering of the paper is
    /// approximated by edit proximity), excluding `seq` itself.
    #[must_use]
    pub fn equivalent_sequences(&self, seq: &[Op]) -> Vec<Vec<Op>> {
        let mut seen: Vec<Vec<Op>> = vec![seq.to_vec()];
        let mut queue: VecDeque<(Vec<Op>, usize)> = VecDeque::new();
        let mut out = Vec::new();
        queue.push_back((seq.to_vec(), 0));
        while let Some((current, depth)) = queue.pop_front() {
            if depth >= self.max_depth || out.len() >= self.max_candidates {
                break;
            }
            for candidate in self.neighbors(&current) {
                if seen.contains(&candidate) {
                    continue;
                }
                seen.push(candidate.clone());
                out.push(candidate.clone());
                if out.len() >= self.max_candidates {
                    break;
                }
                queue.push_back((candidate, depth + 1));
            }
        }
        out
    }

    /// Reacts to a failure of `seq` on `system`: tries equivalent
    /// sequences until one succeeds.
    ///
    /// # Errors
    ///
    /// Returns the number of attempts when no equivalent sequence
    /// succeeds.
    pub fn find_workaround<S: OpSystem<Op>>(
        &self,
        system: &mut S,
        seq: &[Op],
    ) -> Result<Workaround<Op>, usize> {
        let mut attempts = 0;
        for candidate in self.equivalent_sequences(seq) {
            attempts += 1;
            if system.execute(&candidate).is_ok() {
                if let Some(obs) = &self.obs {
                    obs.emit(0, || Point::Workaround {
                        rule: redundancy_core::obs::Symbol::intern(&format!(
                            "bfs-candidate-{}",
                            attempts - 1
                        )),
                        applied: true,
                    });
                }
                return Ok(Workaround {
                    sequence: candidate,
                    attempts: attempts - 1,
                });
            }
        }
        if let Some(obs) = &self.obs {
            obs.emit(0, || Point::Workaround {
                rule: redundancy_core::obs::Symbol::intern(&format!("exhausted-after-{attempts}")),
                applied: false,
            });
        }
        Err(attempts)
    }
}

impl<Op> Technique for WorkaroundEngine<Op> {
    fn name(&self) -> &'static str {
        ENTRY.name
    }

    fn classification(&self) -> Classification {
        ENTRY.classification
    }

    fn patterns(&self) -> &'static [ArchitecturalPattern] {
        ENTRY.patterns
    }

    fn citations(&self) -> &'static [&'static str] {
        ENTRY.citations
    }
}

/// A ready-made container API for tests and experiments: a sequence-built
/// integer container with genuinely redundant operations.
pub mod container {
    use super::{OpSystem, RewriteRule};

    /// Operations of the container API.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum Op {
        /// Append one element with value 1.
        Add,
        /// Append two elements with value 1 (bulk variant).
        AddPair,
        /// Remove the last element.
        RemoveLast,
        /// Clear the container.
        Clear,
        /// Reverse the container.
        Reverse,
        /// Reverse twice (identity, but a different code path).
        DoubleReverse,
    }

    /// The container, with an optional seeded fault: a chosen operation
    /// fails when the container length equals a trigger value (a classic
    /// state-dependent Bohrbug).
    #[derive(Debug, Clone, Default)]
    pub struct Container {
        items: Vec<u8>,
        fault_op: Option<Op>,
        fault_len: usize,
        pub(crate) executions: usize,
    }

    impl Container {
        /// A fault-free container.
        #[must_use]
        pub fn new() -> Self {
            Self::default()
        }

        /// Seeds a Bohrbug: `op` fails whenever the current length is
        /// `len`.
        #[must_use]
        pub fn with_fault(mut self, op: Op, len: usize) -> Self {
            self.fault_op = Some(op);
            self.fault_len = len;
            self
        }

        /// How many sequences this container executed (for experiments).
        #[must_use]
        pub fn executions(&self) -> usize {
            self.executions
        }

        fn apply(&mut self, op: Op) -> Result<(), String> {
            if self.fault_op == Some(op) && self.items.len() == self.fault_len {
                return Err(format!("injected fault: {op:?} at len {}", self.fault_len));
            }
            match op {
                Op::Add => self.items.push(1),
                Op::AddPair => {
                    self.items.push(1);
                    self.items.push(1);
                }
                Op::RemoveLast => {
                    self.items.pop().ok_or("remove on empty container")?;
                }
                Op::Clear => self.items.clear(),
                Op::Reverse => self.items.reverse(),
                Op::DoubleReverse => {} // reverse twice = identity
            }
            Ok(())
        }
    }

    impl OpSystem<Op> for Container {
        type Output = Vec<u8>;

        fn execute(&mut self, sequence: &[Op]) -> Result<Vec<u8>, String> {
            self.executions += 1;
            self.items.clear();
            for &op in sequence {
                self.apply(op)?;
            }
            Ok(self.items.clone())
        }
    }

    /// The API's intrinsic equivalences.
    #[must_use]
    pub fn rules() -> Vec<RewriteRule<Op>> {
        vec![
            // add; add ≡ add-pair
            RewriteRule::new(vec![Op::Add, Op::Add], vec![Op::AddPair]),
            // reverse; reverse ≡ double-reverse (both identities)
            RewriteRule::new(vec![Op::Reverse, Op::Reverse], vec![Op::DoubleReverse]),
            // add; remove-last ≡ (nothing)
            RewriteRule::new(vec![Op::Add, Op::RemoveLast], vec![]),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::container::{rules, Container, Op};
    use super::*;

    #[test]
    fn neighbors_apply_rules_both_ways() {
        let engine = WorkaroundEngine::new(rules());
        let neighbors = engine.neighbors(&[Op::Add, Op::Add]);
        assert!(neighbors.contains(&vec![Op::AddPair]));
        let back = engine.neighbors(&[Op::AddPair]);
        assert!(back.contains(&vec![Op::Add, Op::Add]));
    }

    #[test]
    fn equivalent_sequences_preserve_semantics() {
        let engine = WorkaroundEngine::new(rules());
        let seq = vec![Op::Add, Op::Add, Op::Reverse, Op::Reverse];
        let mut clean = Container::new();
        let expected = clean.execute(&seq).unwrap();
        for candidate in engine.equivalent_sequences(&seq) {
            let mut fresh = Container::new();
            assert_eq!(
                fresh.execute(&candidate).unwrap(),
                expected,
                "candidate {candidate:?} is not equivalent"
            );
        }
    }

    #[test]
    fn workaround_escapes_state_dependent_fault() {
        // `Add` fails when the container holds exactly 1 element, so
        // add;add breaks. The equivalent add-pair path works around it.
        let mut system = Container::new().with_fault(Op::Add, 1);
        let seq = vec![Op::Add, Op::Add];
        assert!(system.execute(&seq).is_err(), "fault must manifest");
        let engine = WorkaroundEngine::new(rules());
        let workaround = engine.find_workaround(&mut system, &seq).unwrap();
        assert_eq!(workaround.sequence, vec![Op::AddPair]);
        let mut fresh = Container::new().with_fault(Op::Add, 1);
        assert_eq!(fresh.execute(&workaround.sequence).unwrap(), vec![1, 1]);
    }

    #[test]
    fn workaround_escapes_reverse_fault() {
        // Reverse fails at length 2; double-reverse is the workaround.
        let mut system = Container::new().with_fault(Op::Reverse, 2);
        let seq = vec![Op::AddPair, Op::Reverse, Op::Reverse];
        assert!(system.execute(&seq).is_err());
        let engine = WorkaroundEngine::new(rules());
        let workaround = engine.find_workaround(&mut system, &seq).unwrap();
        assert!(workaround.sequence.contains(&Op::DoubleReverse));
    }

    #[test]
    fn no_rules_no_workaround() {
        let mut system = Container::new().with_fault(Op::Add, 1);
        let engine: WorkaroundEngine<Op> = WorkaroundEngine::new(vec![]);
        assert_eq!(
            engine.find_workaround(&mut system, &[Op::Add, Op::Add]),
            Err(0)
        );
    }

    #[test]
    fn unworkable_failure_reports_attempts() {
        // Fault on AddPair AND on Add-at-1: every equivalent path fails.
        #[derive(Default)]
        struct Hopeless;
        impl OpSystem<Op> for Hopeless {
            type Output = ();
            fn execute(&mut self, _seq: &[Op]) -> Result<(), String> {
                Err("always fails".into())
            }
        }
        let engine = WorkaroundEngine::new(rules());
        let err = engine
            .find_workaround(&mut Hopeless, &[Op::Add, Op::Add])
            .unwrap_err();
        assert!(err >= 1);
    }

    #[test]
    fn candidate_budget_is_respected() {
        let engine = WorkaroundEngine::new(rules()).with_max_candidates(3);
        let seq = vec![Op::Add; 8];
        assert!(engine.equivalent_sequences(&seq).len() <= 3);
    }

    #[test]
    fn more_rules_more_workarounds() {
        // Intrinsic-redundancy degree sweep (the E13 claim in miniature):
        // with richer rule sets, more failures are workaround-able.
        let seq = vec![Op::Add, Op::Add];
        let poor: WorkaroundEngine<Op> = WorkaroundEngine::new(vec![RewriteRule::new(
            vec![Op::Reverse, Op::Reverse],
            vec![Op::DoubleReverse],
        )]);
        let rich = WorkaroundEngine::new(rules());
        let mut sys1 = Container::new().with_fault(Op::Add, 1);
        let mut sys2 = Container::new().with_fault(Op::Add, 1);
        assert!(poor.find_workaround(&mut sys1, &seq).is_err());
        assert!(rich.find_workaround(&mut sys2, &seq).is_ok());
    }

    #[test]
    fn entry_matches_table2() {
        assert_eq!(ENTRY.classification.intention, Intention::Opportunistic);
        assert_eq!(ENTRY.classification.redundancy, RedundancyType::Code);
        assert_eq!(ENTRY.classification.faults, FaultSet::DEVELOPMENT);
        let engine: WorkaroundEngine<Op> = WorkaroundEngine::new(vec![]);
        assert_eq!(engine.name(), "Automatic workarounds");
    }
}
