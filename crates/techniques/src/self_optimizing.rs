//! Self-optimizing code (paper §4.1; Diaconescu 2004, Naccache 2007).
//!
//! The same functionality is implemented by several components, each
//! optimized for different runtime conditions. A monitor watches the
//! quality of service (here: latency) of the active implementation and,
//! when it degrades past a threshold, switches to another implementation
//! — a reactive, explicit adjudicator watching a non-functional property.
//!
//! Classification (Table 2): deliberate / code / reactive-explicit /
//! development.

use std::sync::atomic::{AtomicUsize, Ordering};

use redundancy_core::context::ExecContext;
use redundancy_core::outcome::{VariantFailure, VariantOutcome};
use redundancy_core::taxonomy::{
    Adjudication, ArchitecturalPattern, Classification, FaultSet, Intention, RedundancyType,
};
use redundancy_core::technique::{Technique, TechniqueEntry};
use redundancy_core::variant::{run_contained, BoxedVariant};

/// Table 2 row for self-optimizing code.
pub const ENTRY: TechniqueEntry = TechniqueEntry {
    name: "Self-optimizing code",
    classification: Classification::new(
        Intention::Deliberate,
        RedundancyType::Code,
        Adjudication::ReactiveExplicit,
        FaultSet::DEVELOPMENT,
    ),
    patterns: &[ArchitecturalPattern::SequentialAlternatives],
    citations: &["Diaconescu 2004", "Naccache 2007"],
};

/// A QoS-driven implementation switcher.
///
/// Tracks an exponential moving average of the active implementation's
/// latency (virtual time per call); when it exceeds `threshold`, the next
/// implementation becomes active. Switching is circular, so a recovered
/// implementation can be revisited.
///
/// # Examples
///
/// ```
/// use redundancy_core::context::ExecContext;
/// use redundancy_core::variant::pure_variant;
/// use redundancy_techniques::self_optimizing::SelfOptimizing;
///
/// let so = SelfOptimizing::new(100.0)
///     .with_implementation(pure_variant("fast", 10, |x: &i64| x + 1))
///     .with_implementation(pure_variant("fallback", 50, |x: &i64| x + 1));
/// let mut ctx = ExecContext::new(0);
/// assert_eq!(so.call(&1, &mut ctx).result, Ok(2));
/// assert_eq!(so.active(), 0); // fast impl is healthy, no switch
/// ```
pub struct SelfOptimizing<I, O> {
    implementations: Vec<BoxedVariant<I, O>>,
    threshold: f64,
    /// EMA smoothing factor.
    alpha: f64,
    active: AtomicUsize,
    /// EMA of latency, stored as micro-units in an atomic.
    ema_millis: AtomicUsize,
    switches: AtomicUsize,
}

impl<I, O> SelfOptimizing<I, O> {
    /// Creates a switcher that changes implementation when the latency
    /// EMA exceeds `threshold` virtual ns.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive.
    #[must_use]
    pub fn new(threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        Self {
            implementations: Vec::new(),
            threshold,
            alpha: 0.3,
            active: AtomicUsize::new(0),
            ema_millis: AtomicUsize::new(0),
            switches: AtomicUsize::new(0),
        }
    }

    /// Adds an implementation (insertion order is preference order).
    #[must_use]
    pub fn with_implementation(mut self, implementation: BoxedVariant<I, O>) -> Self {
        self.implementations.push(implementation);
        self
    }

    /// Index of the active implementation.
    #[must_use]
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Number of implementation switches performed.
    #[must_use]
    pub fn switches(&self) -> usize {
        self.switches.load(Ordering::Relaxed)
    }

    /// Calls the active implementation, monitoring its latency; may switch
    /// the active implementation for *subsequent* calls.
    ///
    /// # Panics
    ///
    /// Panics if no implementation was added.
    pub fn call(&self, input: &I, ctx: &mut ExecContext) -> VariantOutcome<O> {
        use redundancy_core::obs::{SpanKind, SpanStatus};
        assert!(
            !self.implementations.is_empty(),
            "self-optimizing code needs implementations"
        );
        let span = ctx.obs_begin(|| SpanKind::Technique {
            name: "self-optimizing",
        });
        let before = ctx.cost();
        let outcome = self.call_inner(input, ctx);
        let status = match &outcome.result {
            Ok(_) => SpanStatus::Ok,
            Err(failure) => SpanStatus::Failed {
                kind: failure.kind(),
            },
        };
        ctx.obs_end(span, status, ctx.cost().delta_since(before).snapshot());
        outcome
    }

    fn call_inner(&self, input: &I, ctx: &mut ExecContext) -> VariantOutcome<O> {
        let idx = self.active();
        let variant = &self.implementations[idx];
        let stream = idx as u64 ^ ctx.rng().next_u64();
        let mut child = ctx.fork(stream);
        let outcome = run_contained(variant.as_ref(), input, &mut child);
        ctx.add_sequential_cost(outcome.cost);
        // Detectable failures count as worst-case latency.
        let latency = if outcome.is_ok() {
            outcome.cost.virtual_ns as f64
        } else {
            self.threshold * 2.0
        };
        let old_ema = self.ema_millis.load(Ordering::Relaxed) as f64 / 1000.0;
        let new_ema = if old_ema == 0.0 {
            latency
        } else {
            self.alpha * latency + (1.0 - self.alpha) * old_ema
        };
        self.ema_millis
            .store((new_ema * 1000.0) as usize, Ordering::Relaxed);
        if new_ema > self.threshold && self.implementations.len() > 1 {
            let next = (idx + 1) % self.implementations.len();
            self.active.store(next, Ordering::Relaxed);
            self.switches.fetch_add(1, Ordering::Relaxed);
            self.ema_millis.store(0, Ordering::Relaxed);
            ctx.obs_emit(|| redundancy_core::obs::Point::Custom {
                name: "impl-switch",
                detail: redundancy_core::obs::Symbol::intern(&format!("{idx}->{next}")),
            });
        }
        outcome
    }

    /// Calls and unwraps the output, mapping failures through.
    ///
    /// # Errors
    ///
    /// Propagates the active implementation's [`VariantFailure`].
    pub fn call_output(&self, input: &I, ctx: &mut ExecContext) -> Result<O, VariantFailure> {
        self.call(input, ctx).result
    }
}

impl<I, O> Technique for SelfOptimizing<I, O> {
    fn name(&self) -> &'static str {
        ENTRY.name
    }

    fn classification(&self) -> Classification {
        ENTRY.classification
    }

    fn patterns(&self) -> &'static [ArchitecturalPattern] {
        ENTRY.patterns
    }

    fn citations(&self) -> &'static [&'static str] {
        ENTRY.citations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    use redundancy_core::variant::{pure_variant, FnVariant};

    /// A variant whose per-call work grows after a number of calls
    /// (performance degradation under load).
    fn degrading(
        name: &str,
        base: u64,
        degrade_after: u64,
        degraded: u64,
    ) -> BoxedVariant<i64, i64> {
        let calls = Arc::new(AtomicU64::new(0));
        Box::new(FnVariant::new(
            name,
            move |x: &i64, ctx: &mut ExecContext| {
                let n = calls.fetch_add(1, Ordering::Relaxed);
                let work = if n >= degrade_after { degraded } else { base };
                ctx.charge(work).map_err(|_| VariantFailure::Timeout)?;
                Ok(x + 1)
            },
        ))
    }

    #[test]
    fn stays_on_healthy_implementation() {
        let so = SelfOptimizing::new(100.0)
            .with_implementation(pure_variant("fast", 10, |x: &i64| x + 1))
            .with_implementation(pure_variant("slow", 50, |x: &i64| x + 1));
        let mut ctx = ExecContext::new(0);
        for _ in 0..50 {
            assert_eq!(so.call(&1, &mut ctx).result, Ok(2));
        }
        assert_eq!(so.active(), 0);
        assert_eq!(so.switches(), 0);
    }

    #[test]
    fn switches_when_active_degrades() {
        let so = SelfOptimizing::new(100.0)
            .with_implementation(degrading("degrades", 10, 20, 500))
            .with_implementation(pure_variant("steady", 50, |x: &i64| x + 1));
        let mut ctx = ExecContext::new(0);
        for _ in 0..60 {
            let _ = so.call(&1, &mut ctx);
        }
        assert_eq!(so.active(), 1, "monitor failed to switch");
        assert!(so.switches() >= 1);
        // And it stays on the healthy implementation afterwards.
        let before = so.switches();
        for _ in 0..30 {
            let _ = so.call(&1, &mut ctx);
        }
        assert_eq!(so.switches(), before);
    }

    #[test]
    fn detectable_failures_force_a_switch() {
        let so = SelfOptimizing::new(100.0)
            .with_implementation(crate::self_checking::always_failing("dead"))
            .with_implementation(pure_variant("alive", 10, |x: &i64| x * 2));
        let mut ctx = ExecContext::new(0);
        let first = so.call(&3, &mut ctx);
        assert!(!first.is_ok());
        // The failure pushed the EMA over threshold: next call uses impl 1.
        assert_eq!(so.active(), 1);
        assert_eq!(so.call(&3, &mut ctx).result, Ok(6));
    }

    #[test]
    fn results_remain_correct_across_switches() {
        let so = SelfOptimizing::new(50.0)
            .with_implementation(degrading("a", 10, 5, 300))
            .with_implementation(degrading("b", 10, 5, 300))
            .with_implementation(pure_variant("c", 20, |x: &i64| x + 1));
        let mut ctx = ExecContext::new(0);
        for _ in 0..100 {
            let out = so.call(&41, &mut ctx);
            assert_eq!(out.result, Ok(42));
        }
        assert_eq!(so.active(), 2);
    }

    #[test]
    #[should_panic(expected = "needs implementations")]
    fn empty_switcher_panics_on_call() {
        let so: SelfOptimizing<i64, i64> = SelfOptimizing::new(10.0);
        let mut ctx = ExecContext::new(0);
        let _ = so.call(&1, &mut ctx);
    }

    #[test]
    fn entry_matches_table2() {
        assert_eq!(ENTRY.classification.intention, Intention::Deliberate);
        assert_eq!(ENTRY.classification.redundancy, RedundancyType::Code);
        assert_eq!(
            ENTRY.classification.adjudication,
            Adjudication::ReactiveExplicit
        );
        let so: SelfOptimizing<i64, i64> = SelfOptimizing::new(1.0);
        assert_eq!(so.name(), "Self-optimizing code");
    }
}
