//! Software rejuvenation (paper §4.3; Huang/Wang et al. 1995, Garg 1996,
//! Grottke & Trivedi 2007).
//!
//! Aging processes accumulate leaked memory, fragmentation and stale
//! state, so their failure hazard grows with time since the last (re)
//! initialization. Rejuvenation *preventively* restarts the process at a
//! chosen cadence — paying a known, scheduled cost to avoid unknown,
//! unscheduled failures. Garg et al. combine it with checkpoints:
//! rejuvenating every N checkpoints minimizes expected completion time
//! (the U-shaped curve of experiment E7).
//!
//! Classification (Table 2): deliberate / environment / preventive /
//! Heisenbugs.

use redundancy_core::context::ExecContext;
use redundancy_core::outcome::VariantOutcome;
use redundancy_core::rng::SplitMix64;
use redundancy_core::taxonomy::{
    Adjudication, ArchitecturalPattern, Classification, FaultSet, Intention, RedundancyType,
};
use redundancy_core::technique::{Technique, TechniqueEntry};
use redundancy_core::variant::{run_contained, BoxedVariant};
use redundancy_faults::AgeHandle;

/// Table 2 row for rejuvenation.
pub const ENTRY: TechniqueEntry = TechniqueEntry {
    name: "Rejuvenation",
    classification: Classification::new(
        Intention::Deliberate,
        RedundancyType::Environment,
        Adjudication::Preventive,
        FaultSet::HEISENBUGS,
    ),
    patterns: &[ArchitecturalPattern::IntraComponent],
    citations: &["Huang 1995", "Garg 1996", "Grottke & Trivedi 2007"],
};

/// A preventively rejuvenating executor: every `interval` calls, the
/// managed age handle is reset (the process is re-initialized), paying
/// `rejuvenation_cost` work units.
pub struct Rejuvenator<I, O> {
    variant: BoxedVariant<I, O>,
    age: AgeHandle,
    interval: u64,
    rejuvenation_cost: u64,
    calls: std::sync::atomic::AtomicU64,
    rejuvenations: std::sync::atomic::AtomicU64,
}

impl<I, O> Rejuvenator<I, O> {
    /// Creates a rejuvenating executor.
    ///
    /// `age` must be the age handle the variant's aging faults read (see
    /// [`FaultyVariant::age_handle`](redundancy_faults::FaultyVariant::age_handle)).
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`.
    #[must_use]
    pub fn new(
        variant: BoxedVariant<I, O>,
        age: AgeHandle,
        interval: u64,
        rejuvenation_cost: u64,
    ) -> Self {
        assert!(interval > 0, "rejuvenation interval must be positive");
        Self {
            variant,
            age,
            interval,
            rejuvenation_cost,
            calls: std::sync::atomic::AtomicU64::new(0),
            rejuvenations: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of rejuvenations performed.
    #[must_use]
    pub fn rejuvenations(&self) -> u64 {
        self.rejuvenations
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Executes one call, rejuvenating first when the cadence says so.
    pub fn call(&self, input: &I, ctx: &mut ExecContext) -> VariantOutcome<O> {
        use std::sync::atomic::Ordering;
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        if n > 0 && n.is_multiple_of(self.interval) {
            let age_before = self.age.age();
            self.age.reset();
            self.rejuvenations.fetch_add(1, Ordering::Relaxed);
            ctx.advance_ns(self.rejuvenation_cost);
            ctx.obs_emit(|| redundancy_core::obs::Point::Rejuvenation { age_before });
        }
        let mut child = ctx.fork(n);
        let outcome = run_contained(self.variant.as_ref(), input, &mut child);
        ctx.add_sequential_cost(outcome.cost);
        outcome
    }
}

impl<I, O> Technique for Rejuvenator<I, O> {
    fn name(&self) -> &'static str {
        ENTRY.name
    }

    fn classification(&self) -> Classification {
        ENTRY.classification
    }

    fn patterns(&self) -> &'static [ArchitecturalPattern] {
        ENTRY.patterns
    }

    fn citations(&self) -> &'static [&'static str] {
        ENTRY.citations
    }
}

/// Parameters of the Garg-style completion-time model (experiment E7b):
/// a long-running program with checkpoints, aging failures, rollback
/// repair, and rejuvenation every `rejuvenate_every` checkpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletionModel {
    /// Total work units the program must complete.
    pub total_work: u64,
    /// Work units between checkpoints.
    pub checkpoint_interval: u64,
    /// Cost of taking one checkpoint.
    pub checkpoint_cost: u64,
    /// Rejuvenate after this many checkpoints (`0` = never).
    pub rejuvenate_every: u64,
    /// Cost of one rejuvenation.
    pub rejuvenation_cost: u64,
    /// Cost of recovering after a failure (rollback + restart).
    pub failure_repair_cost: u64,
    /// Aging hazard: failure probability per work unit is
    /// `hazard_growth * age`, where age is work since the last
    /// rejuvenation (or start).
    pub hazard_growth: f64,
}

impl Default for CompletionModel {
    fn default() -> Self {
        Self {
            total_work: 10_000,
            checkpoint_interval: 100,
            checkpoint_cost: 5,
            rejuvenate_every: 10,
            rejuvenation_cost: 50,
            failure_repair_cost: 200,
            hazard_growth: 1e-7,
        }
    }
}

/// Simulates the completion of a checkpointed program under aging
/// failures and periodic rejuvenation, returning the total virtual time
/// to completion (Garg et al.'s measure).
#[must_use]
pub fn completion_time(model: &CompletionModel, rng: &mut SplitMix64) -> u64 {
    let mut clock: u64 = 0;
    let mut done: u64 = 0; // work committed at the last checkpoint
    let mut age: u64 = 0; // work since last rejuvenation
    let mut checkpoints_since_rejuvenation: u64 = 0;
    // Guard against pathological parameter choices.
    let max_clock = model.total_work.saturating_mul(1_000).max(1_000_000);
    while done < model.total_work && clock < max_clock {
        let segment = model.checkpoint_interval.min(model.total_work - done);
        // Does the segment survive? Hazard grows with age.
        let mut failed_at = None;
        for unit in 0..segment {
            let hazard = model.hazard_growth * (age + unit) as f64;
            if rng.chance(hazard) {
                failed_at = Some(unit);
                break;
            }
        }
        match failed_at {
            Some(unit) => {
                // Lost the partial segment; pay repair, roll back to the
                // last checkpoint. A failure also implies a restart, which
                // rejuvenates (age resets) — as in Garg's model.
                clock += unit + model.failure_repair_cost;
                age = 0;
                checkpoints_since_rejuvenation = 0;
            }
            None => {
                clock += segment + model.checkpoint_cost;
                done += segment;
                age += segment;
                checkpoints_since_rejuvenation += 1;
                if model.rejuvenate_every > 0
                    && checkpoints_since_rejuvenation >= model.rejuvenate_every
                {
                    clock += model.rejuvenation_cost;
                    age = 0;
                    checkpoints_since_rejuvenation = 0;
                }
            }
        }
    }
    clock
}

#[cfg(test)]
mod tests {
    use super::*;
    use redundancy_faults::{FaultSpec, FaultyVariant};

    fn aging_variant() -> (BoxedVariant<i64, i64>, AgeHandle) {
        let v = FaultyVariant::builder("server", 5, |x: &i64| x + 1)
            .fault(FaultSpec::aging("leak", 0.0, 0.002))
            .build();
        let age = v.age_handle();
        (Box::new(v), age)
    }

    #[test]
    fn rejuvenation_keeps_failure_rate_low() {
        let run = |interval: u64| {
            let (variant, age) = aging_variant();
            let rejuvenator = Rejuvenator::new(variant, age, interval, 10);
            let mut ctx = ExecContext::new(7);
            let failures = (0..2000)
                .filter(|_| !rejuvenator.call(&1, &mut ctx).is_ok())
                .count();
            (failures, rejuvenator.rejuvenations())
        };
        let (failures_frequent, rejuvs) = run(50);
        let (failures_rare, _) = run(100_000); // effectively never
        assert!(rejuvs >= 30);
        assert!(
            failures_frequent * 4 < failures_rare,
            "frequent: {failures_frequent}, rare: {failures_rare}"
        );
    }

    #[test]
    fn rejuvenation_cadence_counts() {
        let (variant, age) = aging_variant();
        let r = Rejuvenator::new(variant, age, 10, 1);
        let mut ctx = ExecContext::new(1);
        for _ in 0..100 {
            let _ = r.call(&1, &mut ctx);
        }
        // Rejuvenates at calls 10, 20, ..., 90 → 9 times (call 0 excluded).
        assert_eq!(r.rejuvenations(), 9);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        let (variant, age) = aging_variant();
        let _ = Rejuvenator::new(variant, age, 0, 1);
    }

    #[test]
    fn completion_time_shows_u_shape() {
        // Expected completion time vs rejuvenation cadence: never
        // rejuvenating is costly (many failures), rejuvenating every
        // checkpoint is costly (overhead), an intermediate cadence wins.
        let model = CompletionModel {
            total_work: 20_000,
            checkpoint_interval: 200,
            checkpoint_cost: 2,
            rejuvenation_cost: 400,
            failure_repair_cost: 2_000,
            hazard_growth: 3e-7,
            rejuvenate_every: 0,
        };
        let mean_time = |rejuvenate_every: u64, seed: u64| {
            let mut rng = SplitMix64::new(seed);
            let m = CompletionModel {
                rejuvenate_every,
                ..model
            };
            let total: u64 = (0..40).map(|_| completion_time(&m, &mut rng)).sum();
            total / 40
        };
        let never = mean_time(0, 1);
        let sweet = mean_time(8, 2);
        let every = mean_time(1, 3);
        assert!(sweet < never, "sweet {sweet} !< never {never}");
        assert!(sweet < every, "sweet {sweet} !< every-checkpoint {every}");
    }

    #[test]
    fn completion_time_terminates_under_heavy_hazard() {
        let model = CompletionModel {
            total_work: 1_000,
            hazard_growth: 1e-3,
            rejuvenate_every: 0,
            ..CompletionModel::default()
        };
        let mut rng = SplitMix64::new(4);
        let t = completion_time(&model, &mut rng);
        assert!(t > 0);
    }

    #[test]
    fn zero_hazard_costs_only_overhead() {
        let model = CompletionModel {
            total_work: 1_000,
            checkpoint_interval: 100,
            checkpoint_cost: 5,
            rejuvenate_every: 2,
            rejuvenation_cost: 10,
            failure_repair_cost: 0,
            hazard_growth: 0.0,
        };
        let mut rng = SplitMix64::new(5);
        let t = completion_time(&model, &mut rng);
        // 1000 work + 10 checkpoints * 5 + 5 rejuvenations * 10 = 1100.
        assert_eq!(t, 1100);
    }

    #[test]
    fn entry_matches_table2() {
        assert_eq!(ENTRY.classification.redundancy, RedundancyType::Environment);
        assert_eq!(ENTRY.classification.adjudication, Adjudication::Preventive);
        assert_eq!(ENTRY.classification.faults, FaultSet::HEISENBUGS);
        let (variant, age) = aging_variant();
        let r = Rejuvenator::new(variant, age, 1, 0);
        assert_eq!(r.name(), "Rejuvenation");
    }
}
