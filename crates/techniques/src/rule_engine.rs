//! Exception handling and rule engines / registries (paper §4.1;
//! Goodenough 1975, Baresi 2007, Modafferi/Pernici 2006).
//!
//! A registry, filled by developers at design time, maps failure classes
//! to recovery actions. At runtime, a monitor detects a failure (the
//! explicit adjudicator), looks up the first matching rule and executes
//! its recovery action — exception handling generalized beyond lexical
//! `catch` blocks.
//!
//! Classification (Table 2): deliberate / code / reactive-explicit /
//! development.

use redundancy_core::context::ExecContext;
use redundancy_core::outcome::VariantFailure;
use redundancy_core::taxonomy::{
    Adjudication, ArchitecturalPattern, Classification, FaultSet, Intention, RedundancyType,
};
use redundancy_core::technique::{Technique, TechniqueEntry};
use redundancy_core::variant::{run_contained, BoxedVariant};

/// Table 2 row for exception handling and rule engines.
pub const ENTRY: TechniqueEntry = TechniqueEntry {
    name: "Exception handling, rule engines",
    classification: Classification::new(
        Intention::Deliberate,
        RedundancyType::Code,
        Adjudication::ReactiveExplicit,
        FaultSet::DEVELOPMENT,
    ),
    patterns: &[ArchitecturalPattern::SequentialAlternatives],
    citations: &[
        "Goodenough 1975",
        "Baresi 2007",
        "Modafferi 2006",
        "Fugini 2006",
    ],
};

/// Outcome classification a rule can match on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// Crashes.
    Crash,
    /// Timeouts.
    Timeout,
    /// Explicit errors.
    Error,
    /// Omissions (no result).
    Omission,
    /// Any detectable failure.
    Any,
}

impl FailureKind {
    /// Whether this kind matches the given failure.
    #[must_use]
    pub fn matches(self, failure: &VariantFailure) -> bool {
        match self {
            FailureKind::Crash => matches!(failure, VariantFailure::Crash { .. }),
            FailureKind::Timeout => matches!(failure, VariantFailure::Timeout),
            FailureKind::Error => matches!(failure, VariantFailure::Error { .. }),
            FailureKind::Omission => matches!(failure, VariantFailure::Omission),
            FailureKind::Any => true,
        }
    }
}

/// A recovery rule: a guard over the observed failure plus a recovery
/// action producing a substitute result.
pub struct Rule<I, O> {
    name: String,
    kind: FailureKind,
    action: BoxedVariant<I, O>,
}

impl<I, O> Rule<I, O> {
    /// Creates a rule firing on `kind` failures and recovering with
    /// `action`.
    #[must_use]
    pub fn new(name: impl Into<String>, kind: FailureKind, action: BoxedVariant<I, O>) -> Self {
        Self {
            name: name.into(),
            kind,
            action,
        }
    }

    /// The rule's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// How an execution under the rule engine concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum Handled<O> {
    /// The primary computation succeeded.
    Primary(O),
    /// A recovery rule produced the result.
    Recovered {
        /// The substitute result.
        output: O,
        /// The name of the rule that fired.
        rule: String,
    },
    /// No rule matched, or the matching rule's action also failed.
    Unhandled(VariantFailure),
}

impl<O> Handled<O> {
    /// The delivered output, if any.
    #[must_use]
    pub fn output(&self) -> Option<&O> {
        match self {
            Handled::Primary(o) | Handled::Recovered { output: o, .. } => Some(o),
            Handled::Unhandled(_) => None,
        }
    }
}

/// A rule-engine-protected computation: a primary variant plus a registry
/// of recovery rules filled at design time.
pub struct RuleEngine<I, O> {
    primary: BoxedVariant<I, O>,
    rules: Vec<Rule<I, O>>,
}

impl<I, O> RuleEngine<I, O> {
    /// Creates an engine around the primary computation.
    #[must_use]
    pub fn new(primary: BoxedVariant<I, O>) -> Self {
        Self {
            primary,
            rules: Vec::new(),
        }
    }

    /// Registers a rule. Rules are consulted in registration order; the
    /// first match fires.
    #[must_use]
    pub fn with_rule(mut self, rule: Rule<I, O>) -> Self {
        self.rules.push(rule);
        self
    }

    /// Number of registered rules.
    #[must_use]
    pub fn rules(&self) -> usize {
        self.rules.len()
    }

    /// Executes the primary; on a detectable failure, fires the first
    /// matching rule's recovery action.
    pub fn execute(&self, input: &I, ctx: &mut ExecContext) -> Handled<O> {
        use redundancy_core::obs::{SpanKind, SpanStatus};

        let span = ctx.obs_begin(|| SpanKind::Technique {
            name: "rule-engine",
        });
        let before = ctx.cost();
        let result = self.execute_inner(input, ctx);
        let status = match &result {
            Handled::Primary(_) => SpanStatus::Ok,
            Handled::Recovered { .. } => SpanStatus::Accepted {
                support: 1,
                dissent: 1,
            },
            Handled::Unhandled(failure) => SpanStatus::Failed {
                kind: failure.kind(),
            },
        };
        ctx.obs_end(span, status, ctx.cost().delta_since(before).snapshot());
        result
    }

    fn execute_inner(&self, input: &I, ctx: &mut ExecContext) -> Handled<O> {
        let mut child = ctx.fork(0);
        let outcome = run_contained(self.primary.as_ref(), input, &mut child);
        ctx.add_sequential_cost(outcome.cost);
        let failure = match outcome.result {
            Ok(output) => return Handled::Primary(output),
            Err(failure) => failure,
        };
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.kind.matches(&failure) {
                let mut child = ctx.fork(1 + i as u64);
                let recovery = run_contained(rule.action.as_ref(), input, &mut child);
                ctx.add_sequential_cost(recovery.cost);
                let handled = match recovery.result {
                    Ok(output) => Handled::Recovered {
                        output,
                        rule: rule.name.clone(),
                    },
                    Err(failure) => Handled::Unhandled(failure),
                };
                if let Handled::Recovered { rule, .. } = &handled {
                    let fired = redundancy_core::obs::Symbol::intern(rule);
                    ctx.obs_emit(move || redundancy_core::obs::Point::Workaround {
                        rule: fired,
                        applied: true,
                    });
                }
                return handled;
            }
        }
        Handled::Unhandled(failure)
    }
}

impl<I, O> Technique for RuleEngine<I, O> {
    fn name(&self) -> &'static str {
        ENTRY.name
    }

    fn classification(&self) -> Classification {
        ENTRY.classification
    }

    fn patterns(&self) -> &'static [ArchitecturalPattern] {
        ENTRY.patterns
    }

    fn citations(&self) -> &'static [&'static str] {
        ENTRY.citations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redundancy_core::variant::{pure_variant, FnVariant};

    fn failing_with(failure: VariantFailure) -> BoxedVariant<i64, i64> {
        Box::new(FnVariant::new(
            "primary",
            move |_: &i64, _: &mut ExecContext| Err(failure.clone()),
        ))
    }

    #[test]
    fn primary_success_bypasses_rules() {
        let engine = RuleEngine::new(pure_variant("ok", 5, |x: &i64| x * 2)).with_rule(Rule::new(
            "r",
            FailureKind::Any,
            pure_variant("rec", 5, |_: &i64| -1),
        ));
        let mut ctx = ExecContext::new(0);
        assert_eq!(engine.execute(&4, &mut ctx), Handled::Primary(8));
        assert_eq!(ctx.cost().invocations, 1, "rule action must not run");
    }

    #[test]
    fn matching_rule_recovers() {
        let engine = RuleEngine::new(failing_with(VariantFailure::Timeout))
            .with_rule(Rule::new(
                "on-crash",
                FailureKind::Crash,
                pure_variant("crash-rec", 5, |_: &i64| -1),
            ))
            .with_rule(Rule::new(
                "on-timeout",
                FailureKind::Timeout,
                pure_variant("timeout-rec", 5, |x: &i64| x + 100),
            ));
        let mut ctx = ExecContext::new(0);
        let handled = engine.execute(&1, &mut ctx);
        assert_eq!(
            handled,
            Handled::Recovered {
                output: 101,
                rule: "on-timeout".into()
            }
        );
        assert_eq!(handled.output(), Some(&101));
    }

    #[test]
    fn first_matching_rule_wins() {
        let engine = RuleEngine::new(failing_with(VariantFailure::crash("x")))
            .with_rule(Rule::new(
                "any-1",
                FailureKind::Any,
                pure_variant("a", 1, |_: &i64| 1),
            ))
            .with_rule(Rule::new(
                "any-2",
                FailureKind::Any,
                pure_variant("b", 1, |_: &i64| 2),
            ));
        let mut ctx = ExecContext::new(0);
        match engine.execute(&0, &mut ctx) {
            Handled::Recovered { rule, output } => {
                assert_eq!(rule, "any-1");
                assert_eq!(output, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unmatched_failure_is_unhandled() {
        let engine = RuleEngine::new(failing_with(VariantFailure::Omission)).with_rule(Rule::new(
            "on-crash",
            FailureKind::Crash,
            pure_variant("rec", 1, |_: &i64| 0),
        ));
        let mut ctx = ExecContext::new(0);
        assert_eq!(
            engine.execute(&0, &mut ctx),
            Handled::Unhandled(VariantFailure::Omission)
        );
    }

    #[test]
    fn failing_recovery_action_is_unhandled() {
        let engine = RuleEngine::new(failing_with(VariantFailure::Omission)).with_rule(Rule::new(
            "broken-handler",
            FailureKind::Any,
            failing_with(VariantFailure::crash("handler died")),
        ));
        let mut ctx = ExecContext::new(0);
        assert!(matches!(
            engine.execute(&0, &mut ctx),
            Handled::Unhandled(VariantFailure::Crash { .. })
        ));
    }

    #[test]
    fn failure_kind_matching() {
        assert!(FailureKind::Crash.matches(&VariantFailure::crash("x")));
        assert!(!FailureKind::Crash.matches(&VariantFailure::Timeout));
        assert!(FailureKind::Any.matches(&VariantFailure::Omission));
        assert!(FailureKind::Error.matches(&VariantFailure::error("e")));
        assert!(FailureKind::Omission.matches(&VariantFailure::Omission));
        assert!(FailureKind::Timeout.matches(&VariantFailure::Timeout));
    }

    #[test]
    fn silent_wrong_output_is_invisible_to_the_engine() {
        // The engine reacts only to detectable failures: a wrong output
        // passes through, exactly the technique's documented limit.
        let engine = RuleEngine::new(pure_variant("silently-wrong", 1, |_: &i64| -999)).with_rule(
            Rule::new("r", FailureKind::Any, pure_variant("rec", 1, |x: &i64| *x)),
        );
        let mut ctx = ExecContext::new(0);
        assert_eq!(engine.execute(&1, &mut ctx), Handled::Primary(-999));
    }

    #[test]
    fn entry_matches_table2() {
        assert_eq!(
            ENTRY.classification.adjudication,
            Adjudication::ReactiveExplicit
        );
        assert_eq!(ENTRY.classification.faults, FaultSet::DEVELOPMENT);
        let engine: RuleEngine<i64, i64> = RuleEngine::new(pure_variant("p", 1, |x: &i64| *x));
        assert_eq!(engine.name(), "Exception handling, rule engines");
        assert_eq!(engine.rules(), 0);
    }
}
