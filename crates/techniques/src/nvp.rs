//! N-version programming (paper §4.1; Avizienis 1985).
//!
//! Several independently designed versions run in parallel on the same
//! input; a general voting algorithm selects the output supported by a
//! majority. A system of `2k + 1` versions tolerates `k` faulty results —
//! the property experiment E4 measures, and whose erosion under
//! correlated faults experiment E5 reproduces.
//!
//! Classification (Table 2): deliberate / code / reactive-implicit /
//! development.

use redundancy_core::adjudicator::voting::MajorityVoter;
use redundancy_core::adjudicator::Adjudicator;
use redundancy_core::context::ExecContext;
use redundancy_core::patterns::{DecisionPolicy, ExecutionMode, ParallelEvaluation, PatternReport};
use redundancy_core::taxonomy::{
    Adjudication, ArchitecturalPattern, Classification, FaultSet, Intention, RedundancyType,
};
use redundancy_core::technique::{Technique, TechniqueEntry};
use redundancy_core::variant::BoxedVariant;

/// Table 2 row for N-version programming.
pub const ENTRY: TechniqueEntry = TechniqueEntry {
    name: "N-version programming",
    classification: Classification::new(
        Intention::Deliberate,
        RedundancyType::Code,
        Adjudication::ReactiveImplicit,
        FaultSet::DEVELOPMENT,
    ),
    patterns: &[ArchitecturalPattern::ParallelEvaluation],
    citations: &["Avizienis 1985", "Looker 2005", "Dobson 2006", "Gashi 2004"],
};

/// Number of versions required to tolerate `k` simultaneous faulty
/// results under majority voting (the paper's `2k + 1` rule).
#[must_use]
pub fn versions_to_tolerate(k: usize) -> usize {
    2 * k + 1
}

/// An N-version program: versions plus an implicit majority adjudicator.
///
/// # Examples
///
/// ```
/// use redundancy_core::context::ExecContext;
/// use redundancy_core::variant::pure_variant;
/// use redundancy_techniques::nvp::NVersion;
///
/// let nvp = NVersion::new(vec![
///     pure_variant("v1", 10, |x: &i64| x * x),
///     pure_variant("v2", 12, |x: &i64| x * x),
///     pure_variant("v3", 9, |x: &i64| x * x + 1), // faulty
/// ]);
/// let mut ctx = ExecContext::new(0);
/// assert_eq!(nvp.run(&7, &mut ctx).into_output(), Some(49));
/// ```
pub struct NVersion<I, O> {
    pattern: ParallelEvaluation<I, O>,
    versions: usize,
}

impl<I, O> NVersion<I, O>
where
    O: Clone + PartialEq + 'static,
{
    /// Creates an N-version program with majority voting.
    ///
    /// # Panics
    ///
    /// Panics if `versions` is empty.
    #[must_use]
    pub fn new(versions: Vec<BoxedVariant<I, O>>) -> Self {
        Self::with_adjudicator(versions, MajorityVoter::new())
    }

    /// Creates an N-version program with a custom implicit adjudicator
    /// (plurality, median, tolerance voting — the E4 ablation).
    ///
    /// # Panics
    ///
    /// Panics if `versions` is empty.
    #[must_use]
    pub fn with_adjudicator(
        versions: Vec<BoxedVariant<I, O>>,
        adjudicator: impl Adjudicator<O> + 'static,
    ) -> Self {
        assert!(!versions.is_empty(), "N-version programming needs versions");
        let n = versions.len();
        let mut pattern = ParallelEvaluation::new(adjudicator);
        for v in versions {
            pattern.push_variant(v);
        }
        Self {
            pattern,
            versions: n,
        }
    }

    /// Switches to real threads for version execution.
    #[must_use]
    pub fn threaded(mut self) -> Self {
        self.pattern = self.pattern.with_mode(ExecutionMode::Threaded);
        self
    }

    /// Sets the decision policy. Under [`DecisionPolicy::Eager`] the vote
    /// concludes the moment a quorum is mathematically fixed: remaining
    /// versions are skipped (sequential mode) or cooperatively cancelled
    /// (threaded mode), reducing cost without changing the disposition or
    /// the accepted output.
    #[must_use]
    pub fn with_policy(mut self, policy: DecisionPolicy) -> Self {
        self.pattern = self.pattern.with_policy(policy);
        self
    }

    /// The decision policy in effect.
    #[must_use]
    pub fn policy(&self) -> DecisionPolicy {
        self.pattern.policy()
    }

    /// Number of versions.
    #[must_use]
    pub fn versions(&self) -> usize {
        self.versions
    }

    /// Maximum number of faulty results tolerated under majority voting.
    #[must_use]
    pub fn tolerated_faults(&self) -> usize {
        (self.versions - 1) / 2
    }

    /// Runs all versions and votes.
    pub fn run(&self, input: &I, ctx: &mut ExecContext) -> PatternReport<O>
    where
        I: Sync,
        O: Send,
    {
        redundancy_core::patterns::run_technique_span(ctx, "n-version", |ctx| {
            self.pattern.run(input, ctx)
        })
    }
}

impl<I, O> Technique for NVersion<I, O> {
    fn name(&self) -> &'static str {
        ENTRY.name
    }

    fn classification(&self) -> Classification {
        ENTRY.classification
    }

    fn patterns(&self) -> &'static [ArchitecturalPattern] {
        ENTRY.patterns
    }

    fn citations(&self) -> &'static [&'static str] {
        ENTRY.citations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redundancy_core::variant::pure_variant;
    use redundancy_faults::correlation::{correlated_versions, CorrelatedSuite};
    use redundancy_faults::{FaultSpec, FaultyVariant};

    #[test]
    fn masks_k_faults_with_2k_plus_1_versions() {
        for k in 0..3 {
            let n = versions_to_tolerate(k);
            let mut versions: Vec<BoxedVariant<i64, i64>> = Vec::new();
            for v in 0..n {
                if v < k {
                    versions.push(pure_variant(&format!("bad{v}"), 5, move |x: &i64| {
                        x + 100 + v as i64
                    }));
                } else {
                    versions.push(pure_variant(&format!("good{v}"), 5, |x: &i64| x * 2));
                }
            }
            let nvp = NVersion::new(versions);
            assert_eq!(nvp.tolerated_faults(), k);
            let mut ctx = ExecContext::new(1);
            assert_eq!(nvp.run(&21, &mut ctx).into_output(), Some(42), "k={k}");
        }
    }

    #[test]
    fn fails_beyond_tolerance() {
        // 2 of 3 wrong (and disagreeing): no majority.
        let nvp = NVersion::new(vec![
            pure_variant("good", 5, |x: &i64| x * 2),
            pure_variant("bad1", 5, |x: &i64| x + 100),
            pure_variant("bad2", 5, |x: &i64| x + 200),
        ]);
        let mut ctx = ExecContext::new(1);
        assert!(!nvp.run(&1, &mut ctx).is_accepted());
    }

    #[test]
    fn colluding_majority_wins_silently() {
        // The dreaded correlated case: 2 of 3 wrong *in the same way*.
        let nvp = NVersion::new(vec![
            pure_variant("good", 5, |x: &i64| x * 2),
            pure_variant("bad1", 5, |x: &i64| x + 100),
            pure_variant("bad2", 5, |x: &i64| x + 100),
        ]);
        let mut ctx = ExecContext::new(1);
        let out = nvp.run(&1, &mut ctx).into_output();
        assert_eq!(out, Some(101), "correlated faults outvote the truth");
    }

    #[test]
    fn reliability_improves_with_n_on_independent_faults() {
        let reliability = |n: usize| {
            let versions = correlated_versions(
                CorrelatedSuite::new(n, 0.15, 0.0, 7),
                |x: &u64| x * 2,
                |c, _| c + 1,
            );
            let nvp = NVersion::new(versions);
            let mut ctx = ExecContext::new(3);
            let ok = (0..600u64)
                .filter(|x| nvp.run(x, &mut ctx).into_output() == Some(x * 2))
                .count();
            ok as f64 / 600.0
        };
        let r1 = reliability(1);
        let r3 = reliability(3);
        let r5 = reliability(5);
        assert!(r3 > r1 + 0.05, "r1={r1}, r3={r3}");
        assert!(r5 >= r3 - 0.02, "r3={r3}, r5={r5}");
    }

    #[test]
    fn correlation_erodes_the_gain() {
        let reliability = |rho: f64| {
            let versions = correlated_versions(
                CorrelatedSuite::new(3, 0.15, rho, 11),
                |x: &u64| x * 2,
                |c, _| c + 1,
            );
            let nvp = NVersion::new(versions);
            let mut ctx = ExecContext::new(5);
            let n = 3000u64;
            let ok = (0..n)
                .filter(|x| nvp.run(x, &mut ctx).into_output() == Some(x * 2))
                .count();
            ok as f64 / n as f64
        };
        // Independent regions: failures need >= 2 of 3 versions wrong on
        // the same input, ~0.061 -> reliability ~0.94. Fully correlated:
        // reliability collapses to single-version ~0.85.
        let independent = reliability(0.0);
        let correlated = reliability(1.0);
        assert!(
            independent > correlated + 0.03,
            "independent={independent}, correlated={correlated}"
        );
        assert!((correlated - 0.85).abs() < 0.03, "correlated={correlated}");
    }

    #[test]
    fn detectable_failures_do_not_confuse_the_vote() {
        let crashing = FaultyVariant::builder("crasher", 5, |x: &i64| x * 2)
            .fault(FaultSpec::heisenbug("h", 1.0))
            .build_boxed();
        let nvp = NVersion::new(vec![
            pure_variant("good1", 5, |x: &i64| x * 2),
            pure_variant("good2", 5, |x: &i64| x * 2),
            crashing,
        ]);
        let mut ctx = ExecContext::new(1);
        assert_eq!(nvp.run(&5, &mut ctx).into_output(), Some(10));
    }

    #[test]
    fn threaded_mode_matches_sequential() {
        let mk = || {
            vec![
                pure_variant("a", 5, |x: &i64| x + 1),
                pure_variant("b", 6, |x: &i64| x + 1),
                pure_variant("c", 7, |x: &i64| x + 2),
            ]
        };
        let mut c1 = ExecContext::new(9);
        let mut c2 = ExecContext::new(9);
        let seq = NVersion::new(mk()).run(&1, &mut c1);
        let thr = NVersion::new(mk()).threaded().run(&1, &mut c2);
        assert_eq!(seq.verdict, thr.verdict);
    }

    #[test]
    fn eager_policy_skips_versions_once_majority_is_fixed() {
        let mk = |policy| {
            NVersion::new(vec![
                pure_variant("a", 10, |x: &i64| x * 2),
                pure_variant("b", 10, |x: &i64| x * 2),
                pure_variant("c", 10, |x: &i64| x * 2),
                pure_variant("d", 10, |x: &i64| x * 2),
                pure_variant("e", 10, |x: &i64| x * 2),
            ])
            .with_policy(policy)
        };
        let mut c1 = ExecContext::new(2);
        let exhaustive = mk(DecisionPolicy::Exhaustive).run(&4, &mut c1);
        let mut c2 = ExecContext::new(2);
        let eager = mk(DecisionPolicy::Eager).run(&4, &mut c2);

        assert_eq!(eager.into_output(), Some(8));
        assert_eq!(exhaustive.skipped(), 0);
        // Majority (3 of 5) fixed after the third agreeing version.
        let eager = {
            let mut ctx = ExecContext::new(2);
            mk(DecisionPolicy::Eager).run(&4, &mut ctx)
        };
        assert_eq!(eager.executed(), 3);
        assert_eq!(eager.skipped(), 2);
        assert!(c2.cost().work_units < c1.cost().work_units);
    }

    #[test]
    fn entry_matches_table2() {
        assert_eq!(ENTRY.classification.intention, Intention::Deliberate);
        assert_eq!(ENTRY.classification.redundancy, RedundancyType::Code);
        assert_eq!(
            ENTRY.classification.adjudication,
            Adjudication::ReactiveImplicit
        );
        assert_eq!(ENTRY.classification.faults, FaultSet::DEVELOPMENT);
        let nvp = NVersion::new(vec![pure_variant("v", 1, |x: &i64| *x)]);
        assert_eq!(nvp.name(), "N-version programming");
        assert_eq!(nvp.classification(), ENTRY.classification);
        assert!(!nvp.citations().is_empty());
    }

    #[test]
    #[should_panic(expected = "needs versions")]
    fn empty_versions_panic() {
        let _: NVersion<i64, i64> = NVersion::new(vec![]);
    }
}
