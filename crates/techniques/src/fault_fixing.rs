//! Fault fixing with genetic programming (paper §5.1; Weimer 2009,
//! Arcuri & Yao 2008).
//!
//! When the test suite (the explicit adjudicator) reports a failure, the
//! runtime evolves variants of the faulty program — exploiting the
//! *implicit* redundancy of program space around the original — until a
//! variant passes every test. Unlike N-version programming, nobody ever
//! wrote the redundant code: it is searched for, opportunistically.
//!
//! Classification (Table 2): opportunistic / code / reactive-explicit /
//! Bohrbugs.

use std::sync::Arc;

use redundancy_core::obs::{ObsHandle, Observer, Point};
use redundancy_core::rng::SplitMix64;
use redundancy_core::taxonomy::{
    Adjudication, ArchitecturalPattern, Classification, FaultSet, Intention, RedundancyType,
};
use redundancy_core::technique::{Technique, TechniqueEntry};
use redundancy_gp::ast::Expr;
use redundancy_gp::engine::{Gp, GpParams, GpResult};
use redundancy_gp::suite::TestSuite;

/// Table 2 row for GP-based fault fixing.
pub const ENTRY: TechniqueEntry = TechniqueEntry {
    name: "Fault fixing, genetic programming",
    classification: Classification::new(
        Intention::Opportunistic,
        RedundancyType::Code,
        Adjudication::ReactiveExplicit,
        FaultSet::BOHRBUGS,
    ),
    patterns: &[ArchitecturalPattern::IntraComponent],
    citations: &["Weimer 2009", "Arcuri & Yao 2008"],
};

/// The outcome of a fix attempt for one program.
#[derive(Debug, Clone, PartialEq)]
pub struct FixReport {
    /// Whether the bug manifested on the suite at all.
    pub bug_manifested: bool,
    /// Whether a full fix was found.
    pub fixed: bool,
    /// Best fitness reached (tests passed / total).
    pub best_fitness: usize,
    /// Total tests.
    pub total_tests: usize,
    /// Generations used.
    pub generations: usize,
    /// The best program (the fix when `fixed`).
    pub best_program: Expr,
}

/// The fault-fixing runtime.
#[derive(Clone)]
pub struct FaultFixer {
    params: GpParams,
    obs: Option<ObsHandle>,
}

impl std::fmt::Debug for FaultFixer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultFixer")
            .field("params", &self.params)
            .field("observed", &self.obs.is_some())
            .finish()
    }
}

impl FaultFixer {
    /// Creates a fixer with the given GP parameters.
    #[must_use]
    pub fn new(params: GpParams) -> Self {
        Self { params, obs: None }
    }

    /// Attaches an observer; each GP generation emits a
    /// [`Point::GpGeneration`] reporting search progress.
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.obs = Some(ObsHandle::new(observer));
        self
    }

    /// Attempts to fix `faulty` (over `arity` inputs) against `suite`.
    pub fn fix(
        &self,
        faulty: &Expr,
        arity: usize,
        suite: &TestSuite,
        rng: &mut SplitMix64,
    ) -> FixReport {
        let bug_manifested = !suite.all_pass(faulty);
        if !bug_manifested {
            return FixReport {
                bug_manifested: false,
                fixed: true,
                best_fitness: suite.len(),
                total_tests: suite.len(),
                generations: 0,
                best_program: faulty.clone(),
            };
        }
        let gp = Gp::new(arity, self.params);
        let GpResult {
            best,
            best_fitness,
            total_cases,
            generations_used,
            ..
        } = gp.repair_observed(faulty, suite, rng, |generation, passed, total| {
            if let Some(obs) = &self.obs {
                obs.emit(u64::try_from(generation).unwrap_or(u64::MAX), || {
                    Point::GpGeneration {
                        generation: u32::try_from(generation).unwrap_or(u32::MAX),
                        // Lower is better: fraction of the suite still failing.
                        best_fitness: (total - passed) as f64 / total.max(1) as f64,
                    }
                });
            }
        });
        FixReport {
            bug_manifested: true,
            fixed: best_fitness == total_cases,
            best_fitness,
            total_tests: total_cases,
            generations: generations_used,
            best_program: best,
        }
    }
}

impl Default for FaultFixer {
    fn default() -> Self {
        Self::new(GpParams::default())
    }
}

impl Technique for FaultFixer {
    fn name(&self) -> &'static str {
        ENTRY.name
    }

    fn classification(&self) -> Classification {
        ENTRY.classification
    }

    fn patterns(&self) -> &'static [ArchitecturalPattern] {
        ENTRY.patterns
    }

    fn citations(&self) -> &'static [&'static str] {
        ENTRY.citations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redundancy_gp::corpus::corpus;

    #[test]
    fn fixes_most_of_the_corpus() {
        let fixer = FaultFixer::new(GpParams {
            population: 150,
            generations: 80,
            ..GpParams::default()
        });
        let mut rng = SplitMix64::new(2024);
        let mut fixed = 0;
        let mut total = 0;
        for program in corpus() {
            let suite = program.suite(50, &mut rng);
            let report = fixer.fix(&program.faulty, program.arity, &suite, &mut rng);
            assert!(report.bug_manifested, "{}", program.name);
            total += 1;
            if report.fixed {
                fixed += 1;
                assert!(suite.all_pass(&report.best_program));
            }
        }
        // GP is stochastic; demand a solid majority rather than all 8.
        assert!(fixed * 2 > total, "fixed only {fixed}/{total}");
    }

    #[test]
    fn already_passing_program_is_not_touched() {
        use redundancy_gp::ast::build::{add, c, v};
        let fixer = FaultFixer::default();
        let correct = add(v(0), c(1));
        let mut rng = SplitMix64::new(1);
        let suite = TestSuite::from_reference(|xs| xs[0] + 1, 1, 20, -50, 50, &mut rng);
        let report = fixer.fix(&correct, 1, &suite, &mut rng);
        assert!(!report.bug_manifested);
        assert!(report.fixed);
        assert_eq!(report.generations, 0);
        assert_eq!(report.best_program, correct);
    }

    #[test]
    fn honest_partial_report_when_budget_too_small() {
        use redundancy_gp::ast::build::c;
        let fixer = FaultFixer::new(GpParams {
            population: 8,
            generations: 1,
            ..GpParams::default()
        });
        let mut rng = SplitMix64::new(3);
        let suite = TestSuite::from_reference(
            |xs| xs[0] * xs[0] * xs[0] - 7 * xs[1] + 13,
            2,
            50,
            -40,
            40,
            &mut rng,
        );
        let report = fixer.fix(&c(0), 2, &suite, &mut rng);
        assert!(report.bug_manifested);
        assert!(report.best_fitness <= report.total_tests);
        if !report.fixed {
            assert!(report.best_fitness < report.total_tests);
        }
    }

    #[test]
    fn entry_matches_table2() {
        assert_eq!(ENTRY.classification.intention, Intention::Opportunistic);
        assert_eq!(ENTRY.classification.faults, FaultSet::BOHRBUGS);
        assert_eq!(
            ENTRY.classification.adjudication,
            Adjudication::ReactiveExplicit
        );
        assert_eq!(
            FaultFixer::default().name(),
            "Fault fixing, genetic programming"
        );
    }
}
