//! Registry-based recovery for processes (Baresi 2007, Modafferi/Pernici
//! 2006, Fugini 2006).
//!
//! Developers fill a [`RecoveryRegistry`] at design time with rules
//! mapping observed process failures to recovery activities; at runtime,
//! a protected execution consults the registry when an activity fails and
//! runs the first matching recovery — the service-composition flavor of
//! the paper's "Exception handling, rule engines" row.

use redundancy_core::context::ExecContext;

use crate::process::{Activity, Engine, ProcessError, Vars};
use crate::provider::ServiceError;
use crate::registry::InterfaceId;

/// A virtual-time delay schedule between retry attempts.
///
/// Backoff in this codebase never sleeps: delays are *charged* — either
/// to an `ExecContext` (`advance_ns`) on the synchronous engine path, or
/// scheduled as a future event by the event-loop runtime. Either way the
/// schedule is exact and deterministic: `delay_ns(k)` is the pause
/// before attempt `k + 1` (so `delay_ns(0)` is never charged — the
/// first attempt starts immediately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backoff {
    /// Retry immediately.
    None,
    /// The same pause before every retry.
    Fixed(u64),
    /// `base_ns * factor^(k-1)`, capped at `cap_ns`.
    Exponential {
        /// Pause before the first retry.
        base_ns: u64,
        /// Multiplier applied per further retry.
        factor: u64,
        /// Upper bound on any single pause.
        cap_ns: u64,
    },
}

impl Backoff {
    /// The virtual-ns pause after `completed` failed attempts (0 for
    /// `completed == 0`: nothing precedes the first attempt).
    #[must_use]
    pub fn delay_ns(&self, completed: u32) -> u64 {
        if completed == 0 {
            return 0;
        }
        match *self {
            Backoff::None => 0,
            Backoff::Fixed(ns) => ns,
            Backoff::Exponential {
                base_ns,
                factor,
                cap_ns,
            } => {
                let exponent = completed - 1;
                let mult = factor.saturating_pow(exponent);
                base_ns.saturating_mul(mult).min(cap_ns)
            }
        }
    }
}

/// What kind of process failure a recovery rule matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureMatch {
    /// Any failure.
    Any,
    /// Any failed invoke on the given interface.
    Interface(InterfaceId),
    /// Invokes failing with `ServiceError::Unavailable`.
    Unavailability,
    /// Invokes failing with an application fault (`ServiceError::Fault`).
    ApplicationFault,
    /// An interface with no provider at all.
    Unbound,
}

impl FailureMatch {
    /// Whether this matcher covers `error`.
    #[must_use]
    pub fn matches(&self, error: &ProcessError) -> bool {
        match (self, error) {
            (FailureMatch::Any, _) => true,
            (FailureMatch::Interface(wanted), ProcessError::InvokeFailed { interface, .. }) => {
                wanted == interface
            }
            (FailureMatch::Interface(wanted), ProcessError::Unbound(interface)) => {
                wanted == interface
            }
            (
                FailureMatch::Unavailability,
                ProcessError::InvokeFailed {
                    last_error: ServiceError::Unavailable,
                    ..
                },
            ) => true,
            (
                FailureMatch::ApplicationFault,
                ProcessError::InvokeFailed {
                    last_error: ServiceError::Fault(_),
                    ..
                },
            ) => true,
            (FailureMatch::Unbound, ProcessError::Unbound(_)) => true,
            _ => false,
        }
    }
}

/// A recovery rule: a failure matcher plus the recovery activity to run,
/// optionally retried on a [`Backoff`] schedule.
#[derive(Debug, Clone)]
pub struct RecoveryRule {
    name: String,
    matcher: FailureMatch,
    recovery: Activity,
    attempts: u32,
    backoff: Backoff,
}

impl RecoveryRule {
    /// Creates a rule whose recovery runs once, with no retry.
    #[must_use]
    pub fn new(name: impl Into<String>, matcher: FailureMatch, recovery: Activity) -> Self {
        Self {
            name: name.into(),
            matcher,
            recovery,
            attempts: 1,
            backoff: Backoff::None,
        }
    }

    /// Retries the recovery up to `attempts` times, charging `backoff`
    /// between attempts as exact virtual time.
    #[must_use]
    pub fn with_retry(mut self, attempts: u32, backoff: Backoff) -> Self {
        self.attempts = attempts.max(1);
        self.backoff = backoff;
        self
    }

    /// The rule's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The design-time registry of recovery rules.
#[derive(Debug, Clone, Default)]
pub struct RecoveryRegistry {
    rules: Vec<RecoveryRule>,
}

/// How a protected process execution concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveredRun {
    /// The process completed without intervention.
    Clean,
    /// A failure was handled by the named rule (whose recovery completed).
    Recovered {
        /// The rule that fired.
        rule: String,
        /// The failure it handled.
        failure: ProcessError,
    },
    /// The failure matched no rule, or the recovery itself failed.
    Unrecovered {
        /// The original failure.
        failure: ProcessError,
        /// The recovery's own failure, when one was attempted.
        recovery_failure: Option<ProcessError>,
    },
}

impl RecoveredRun {
    /// Whether the process ultimately completed.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, RecoveredRun::Clean | RecoveredRun::Recovered { .. })
    }
}

impl RecoveryRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a rule (consulted in registration order).
    #[must_use]
    pub fn with_rule(mut self, rule: RecoveryRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Runs `process` on `engine`; on failure, fires the first matching
    /// rule's recovery activity.
    pub fn run_protected(
        &self,
        engine: &Engine<'_>,
        process: &Activity,
        vars: &mut Vars,
        ctx: &mut ExecContext,
    ) -> RecoveredRun {
        match engine.run(process, vars, ctx) {
            Ok(()) => RecoveredRun::Clean,
            Err(failure) => {
                for rule in &self.rules {
                    if rule.matcher.matches(&failure) {
                        let mut last = None;
                        for completed in 0..rule.attempts {
                            ctx.advance_ns(rule.backoff.delay_ns(completed));
                            match engine.run(&rule.recovery, vars, ctx) {
                                Ok(()) => {
                                    return RecoveredRun::Recovered {
                                        rule: rule.name.clone(),
                                        failure,
                                    }
                                }
                                Err(recovery_failure) => last = Some(recovery_failure),
                            }
                        }
                        return RecoveredRun::Unrecovered {
                            failure,
                            recovery_failure: last,
                        };
                    }
                }
                RecoveredRun::Unrecovered {
                    failure,
                    recovery_failure: None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Expr;
    use crate::provider::SimProvider;
    use crate::registry::ServiceRegistry;
    use crate::value::Value;
    use std::sync::Arc;

    fn service_registry() -> ServiceRegistry {
        let mut reg = ServiceRegistry::new();
        reg.register(Arc::new(
            SimProvider::builder("pay.live", InterfaceId::new("payments"))
                .fail_prob(1.0)
                .operation("charge", |_, _| Ok(Value::Null))
                .build(),
        ));
        reg.register(Arc::new(
            SimProvider::builder("queue", InterfaceId::new("deferred"))
                .operation("enqueue", |args, _| {
                    Ok(Value::Str(format!("queued:{}", args[0])))
                })
                .build(),
        ));
        reg
    }

    fn charge_activity() -> Activity {
        Activity::invoke(
            "payments",
            "charge",
            vec![Expr::Lit(Value::Int(42))],
            "receipt",
        )
    }

    fn defer_activity() -> Activity {
        Activity::invoke(
            "deferred",
            "enqueue",
            vec![Expr::Lit(Value::Int(42))],
            "ticket",
        )
    }

    #[test]
    fn clean_processes_skip_the_registry() {
        let sreg = service_registry();
        let engine = Engine::new(&sreg);
        let registry = RecoveryRegistry::new();
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(1);
        let run = registry.run_protected(&engine, &defer_activity(), &mut vars, &mut ctx);
        assert_eq!(run, RecoveredRun::Clean);
        assert!(run.is_ok());
    }

    #[test]
    fn matching_rule_recovers_a_failed_invoke() {
        let sreg = service_registry();
        let engine = Engine::new(&sreg);
        let registry = RecoveryRegistry::new().with_rule(RecoveryRule::new(
            "defer-payment",
            FailureMatch::Interface(InterfaceId::new("payments")),
            defer_activity(),
        ));
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(2);
        let run = registry.run_protected(&engine, &charge_activity(), &mut vars, &mut ctx);
        match run {
            RecoveredRun::Recovered { ref rule, .. } => assert_eq!(rule, "defer-payment"),
            other => panic!("expected recovery, got {other:?}"),
        }
        assert_eq!(vars["ticket"], Value::Str("queued:42".into()));
    }

    #[test]
    fn first_matching_rule_wins() {
        let sreg = service_registry();
        let engine = Engine::new(&sreg);
        let registry = RecoveryRegistry::new()
            .with_rule(RecoveryRule::new(
                "on-unavailable",
                FailureMatch::Unavailability,
                defer_activity(),
            ))
            .with_rule(RecoveryRule::new(
                "catch-all",
                FailureMatch::Any,
                defer_activity(),
            ));
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(3);
        match registry.run_protected(&engine, &charge_activity(), &mut vars, &mut ctx) {
            RecoveredRun::Recovered { rule, .. } => assert_eq!(rule, "on-unavailable"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn unmatched_failures_surface() {
        let sreg = service_registry();
        let engine = Engine::new(&sreg);
        let registry = RecoveryRegistry::new().with_rule(RecoveryRule::new(
            "wrong-scope",
            FailureMatch::Interface(InterfaceId::new("shipping")),
            defer_activity(),
        ));
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(4);
        let run = registry.run_protected(&engine, &charge_activity(), &mut vars, &mut ctx);
        assert!(matches!(
            run,
            RecoveredRun::Unrecovered {
                recovery_failure: None,
                ..
            }
        ));
        assert!(!run.is_ok());
    }

    #[test]
    fn failing_recovery_is_reported() {
        let sreg = service_registry();
        let engine = Engine::new(&sreg);
        // The recovery itself targets the dead payments service.
        let registry = RecoveryRegistry::new().with_rule(RecoveryRule::new(
            "retry-payments",
            FailureMatch::Any,
            charge_activity(),
        ));
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(5);
        let run = registry.run_protected(&engine, &charge_activity(), &mut vars, &mut ctx);
        assert!(matches!(
            run,
            RecoveredRun::Unrecovered {
                recovery_failure: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn backoff_schedules_are_virtual_time_exact() {
        // delay_ns(0) is always 0: nothing precedes the first attempt.
        for backoff in [
            Backoff::None,
            Backoff::Fixed(500),
            Backoff::Exponential {
                base_ns: 100,
                factor: 2,
                cap_ns: 1_000,
            },
        ] {
            assert_eq!(backoff.delay_ns(0), 0, "{backoff:?}");
        }
        assert_eq!(Backoff::None.delay_ns(3), 0);
        assert_eq!(Backoff::Fixed(500).delay_ns(1), 500);
        assert_eq!(Backoff::Fixed(500).delay_ns(7), 500);
        let exp = Backoff::Exponential {
            base_ns: 100,
            factor: 2,
            cap_ns: 1_000,
        };
        assert_eq!(exp.delay_ns(1), 100);
        assert_eq!(exp.delay_ns(2), 200);
        assert_eq!(exp.delay_ns(3), 400);
        assert_eq!(exp.delay_ns(4), 800);
        assert_eq!(exp.delay_ns(5), 1_000, "capped");
        assert_eq!(exp.delay_ns(40), 1_000, "still capped");
        // Saturating, never panicking, even at absurd exponents.
        let huge = Backoff::Exponential {
            base_ns: u64::MAX / 2,
            factor: u64::MAX,
            cap_ns: u64::MAX,
        };
        assert_eq!(huge.delay_ns(u32::MAX), u64::MAX);
    }

    #[test]
    fn backoff_saturation_boundaries_are_exact() {
        // factor^(n-1) crosses u64::MAX between n = 64 and n = 65 for
        // factor 2 with base 1: the last exact value, then saturation,
        // both bounded by the cap.
        let pow2 = Backoff::Exponential {
            base_ns: 1,
            factor: 2,
            cap_ns: u64::MAX,
        };
        assert_eq!(pow2.delay_ns(64), 1 << 63, "last exact power of two");
        assert_eq!(pow2.delay_ns(65), u64::MAX, "2^64 saturates");
        assert_eq!(pow2.delay_ns(u32::MAX), u64::MAX, "stays saturated");
        // A saturated product still respects the cap.
        let capped = Backoff::Exponential {
            base_ns: 1,
            factor: 2,
            cap_ns: 1_000_000,
        };
        assert_eq!(capped.delay_ns(65), 1_000_000);
        // factor 1 is a fixed delay in exponential clothing.
        let flat = Backoff::Exponential {
            base_ns: 700,
            factor: 1,
            cap_ns: u64::MAX,
        };
        assert_eq!(flat.delay_ns(1), 700);
        assert_eq!(flat.delay_ns(1_000), 700);
        // factor 0 collapses to base on the first retry (0^0 = 1), then
        // to zero delay — never a panic.
        let zero_factor = Backoff::Exponential {
            base_ns: 700,
            factor: 0,
            cap_ns: u64::MAX,
        };
        assert_eq!(zero_factor.delay_ns(1), 700);
        assert_eq!(zero_factor.delay_ns(2), 0);
        // base 0 never waits regardless of the exponent.
        let zero_base = Backoff::Exponential {
            base_ns: 0,
            factor: u64::MAX,
            cap_ns: u64::MAX,
        };
        assert_eq!(zero_base.delay_ns(50), 0);
        // The cap also binds a saturated fixed schedule's edge case:
        // u64::MAX delay is representable and exact.
        assert_eq!(Backoff::Fixed(u64::MAX).delay_ns(1), u64::MAX);
    }

    #[test]
    fn retried_recovery_charges_the_exact_backoff_schedule() {
        // Recovery targets a dead service: every attempt fails, so the
        // rule walks its whole schedule. Virtual time must advance by
        // exactly sum(delays) + attempts * invoke_latency — no sleeps,
        // no slack.
        let mut reg = ServiceRegistry::new();
        reg.register(Arc::new(
            SimProvider::builder("dead", InterfaceId::new("payments"))
                .fail_prob(1.0)
                .latency(10, 0)
                .operation("charge", |_, _| Ok(Value::Null))
                .build(),
        ));
        let engine = Engine::new(&reg);
        let registry = RecoveryRegistry::new().with_rule(
            RecoveryRule::new("retry-hard", FailureMatch::Any, charge_activity()).with_retry(
                4,
                Backoff::Exponential {
                    base_ns: 1_000,
                    factor: 2,
                    cap_ns: 3_000,
                },
            ),
        );
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(6);
        let run = registry.run_protected(&engine, &charge_activity(), &mut vars, &mut ctx);
        assert!(matches!(
            run,
            RecoveredRun::Unrecovered {
                recovery_failure: Some(_),
                ..
            }
        ));
        // 1 original + 4 recovery attempts, 10 ns each, plus backoff
        // pauses 1000 + 2000 + 3000(capped) before attempts 2..4.
        assert_eq!(ctx.cost().virtual_ns, 5 * 10 + 1_000 + 2_000 + 3_000);
    }

    #[test]
    fn retried_recovery_succeeds_once_the_service_comes_back() {
        // fail_prob 0.55: the first recovery attempt may fail, later
        // ones eventually succeed — the retried rule must report
        // Recovered, not Unrecovered, and stop retrying once clean.
        let mut reg = ServiceRegistry::new();
        reg.register(Arc::new(
            SimProvider::builder("pay.live", InterfaceId::new("payments"))
                .fail_prob(1.0)
                .operation("charge", |_, _| Ok(Value::Null))
                .build(),
        ));
        reg.register(Arc::new(
            SimProvider::builder("flaky-queue", InterfaceId::new("deferred"))
                .fail_prob(0.55)
                .operation("enqueue", |args, _| {
                    Ok(Value::Str(format!("queued:{}", args[0])))
                })
                .build(),
        ));
        let engine = Engine::new(&reg);
        let registry = RecoveryRegistry::new().with_rule(
            RecoveryRule::new("defer", FailureMatch::Any, defer_activity())
                .with_retry(50, Backoff::Fixed(100)),
        );
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(11);
        let run = registry.run_protected(&engine, &charge_activity(), &mut vars, &mut ctx);
        match run {
            RecoveredRun::Recovered { ref rule, .. } => assert_eq!(rule, "defer"),
            other => panic!("expected recovery, got {other:?}"),
        }
        assert_eq!(vars["ticket"], Value::Str("queued:42".into()));
    }

    #[test]
    fn matchers_discriminate_error_kinds() {
        let unavailable = ProcessError::InvokeFailed {
            interface: InterfaceId::new("x"),
            operation: "op".into(),
            last_error: ServiceError::Unavailable,
        };
        let fault = ProcessError::InvokeFailed {
            interface: InterfaceId::new("x"),
            operation: "op".into(),
            last_error: ServiceError::Fault("boom".into()),
        };
        let unbound = ProcessError::Unbound(InterfaceId::new("x"));
        assert!(FailureMatch::Unavailability.matches(&unavailable));
        assert!(!FailureMatch::Unavailability.matches(&fault));
        assert!(FailureMatch::ApplicationFault.matches(&fault));
        assert!(FailureMatch::Unbound.matches(&unbound));
        assert!(FailureMatch::Interface(InterfaceId::new("x")).matches(&unbound));
        assert!(!FailureMatch::Interface(InterfaceId::new("y")).matches(&unbound));
        assert!(FailureMatch::Any.matches(&fault));
    }
}
