//! Registry-based recovery for processes (Baresi 2007, Modafferi/Pernici
//! 2006, Fugini 2006).
//!
//! Developers fill a [`RecoveryRegistry`] at design time with rules
//! mapping observed process failures to recovery activities; at runtime,
//! a protected execution consults the registry when an activity fails and
//! runs the first matching recovery — the service-composition flavor of
//! the paper's "Exception handling, rule engines" row.

use redundancy_core::context::ExecContext;

use crate::process::{Activity, Engine, ProcessError, Vars};
use crate::provider::ServiceError;
use crate::registry::InterfaceId;

/// What kind of process failure a recovery rule matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureMatch {
    /// Any failure.
    Any,
    /// Any failed invoke on the given interface.
    Interface(InterfaceId),
    /// Invokes failing with `ServiceError::Unavailable`.
    Unavailability,
    /// Invokes failing with an application fault (`ServiceError::Fault`).
    ApplicationFault,
    /// An interface with no provider at all.
    Unbound,
}

impl FailureMatch {
    /// Whether this matcher covers `error`.
    #[must_use]
    pub fn matches(&self, error: &ProcessError) -> bool {
        match (self, error) {
            (FailureMatch::Any, _) => true,
            (FailureMatch::Interface(wanted), ProcessError::InvokeFailed { interface, .. }) => {
                wanted == interface
            }
            (FailureMatch::Interface(wanted), ProcessError::Unbound(interface)) => {
                wanted == interface
            }
            (
                FailureMatch::Unavailability,
                ProcessError::InvokeFailed {
                    last_error: ServiceError::Unavailable,
                    ..
                },
            ) => true,
            (
                FailureMatch::ApplicationFault,
                ProcessError::InvokeFailed {
                    last_error: ServiceError::Fault(_),
                    ..
                },
            ) => true,
            (FailureMatch::Unbound, ProcessError::Unbound(_)) => true,
            _ => false,
        }
    }
}

/// A recovery rule: a failure matcher plus the recovery activity to run.
#[derive(Debug, Clone)]
pub struct RecoveryRule {
    name: String,
    matcher: FailureMatch,
    recovery: Activity,
}

impl RecoveryRule {
    /// Creates a rule.
    #[must_use]
    pub fn new(name: impl Into<String>, matcher: FailureMatch, recovery: Activity) -> Self {
        Self {
            name: name.into(),
            matcher,
            recovery,
        }
    }

    /// The rule's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The design-time registry of recovery rules.
#[derive(Debug, Clone, Default)]
pub struct RecoveryRegistry {
    rules: Vec<RecoveryRule>,
}

/// How a protected process execution concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveredRun {
    /// The process completed without intervention.
    Clean,
    /// A failure was handled by the named rule (whose recovery completed).
    Recovered {
        /// The rule that fired.
        rule: String,
        /// The failure it handled.
        failure: ProcessError,
    },
    /// The failure matched no rule, or the recovery itself failed.
    Unrecovered {
        /// The original failure.
        failure: ProcessError,
        /// The recovery's own failure, when one was attempted.
        recovery_failure: Option<ProcessError>,
    },
}

impl RecoveredRun {
    /// Whether the process ultimately completed.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, RecoveredRun::Clean | RecoveredRun::Recovered { .. })
    }
}

impl RecoveryRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a rule (consulted in registration order).
    #[must_use]
    pub fn with_rule(mut self, rule: RecoveryRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Runs `process` on `engine`; on failure, fires the first matching
    /// rule's recovery activity.
    pub fn run_protected(
        &self,
        engine: &Engine<'_>,
        process: &Activity,
        vars: &mut Vars,
        ctx: &mut ExecContext,
    ) -> RecoveredRun {
        match engine.run(process, vars, ctx) {
            Ok(()) => RecoveredRun::Clean,
            Err(failure) => {
                for rule in &self.rules {
                    if rule.matcher.matches(&failure) {
                        return match engine.run(&rule.recovery, vars, ctx) {
                            Ok(()) => RecoveredRun::Recovered {
                                rule: rule.name.clone(),
                                failure,
                            },
                            Err(recovery_failure) => RecoveredRun::Unrecovered {
                                failure,
                                recovery_failure: Some(recovery_failure),
                            },
                        };
                    }
                }
                RecoveredRun::Unrecovered {
                    failure,
                    recovery_failure: None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Expr;
    use crate::provider::SimProvider;
    use crate::registry::ServiceRegistry;
    use crate::value::Value;
    use std::sync::Arc;

    fn service_registry() -> ServiceRegistry {
        let mut reg = ServiceRegistry::new();
        reg.register(Arc::new(
            SimProvider::builder("pay.live", InterfaceId::new("payments"))
                .fail_prob(1.0)
                .operation("charge", |_, _| Ok(Value::Null))
                .build(),
        ));
        reg.register(Arc::new(
            SimProvider::builder("queue", InterfaceId::new("deferred"))
                .operation("enqueue", |args, _| {
                    Ok(Value::Str(format!("queued:{}", args[0])))
                })
                .build(),
        ));
        reg
    }

    fn charge_activity() -> Activity {
        Activity::invoke(
            "payments",
            "charge",
            vec![Expr::Lit(Value::Int(42))],
            "receipt",
        )
    }

    fn defer_activity() -> Activity {
        Activity::invoke(
            "deferred",
            "enqueue",
            vec![Expr::Lit(Value::Int(42))],
            "ticket",
        )
    }

    #[test]
    fn clean_processes_skip_the_registry() {
        let sreg = service_registry();
        let engine = Engine::new(&sreg);
        let registry = RecoveryRegistry::new();
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(1);
        let run = registry.run_protected(&engine, &defer_activity(), &mut vars, &mut ctx);
        assert_eq!(run, RecoveredRun::Clean);
        assert!(run.is_ok());
    }

    #[test]
    fn matching_rule_recovers_a_failed_invoke() {
        let sreg = service_registry();
        let engine = Engine::new(&sreg);
        let registry = RecoveryRegistry::new().with_rule(RecoveryRule::new(
            "defer-payment",
            FailureMatch::Interface(InterfaceId::new("payments")),
            defer_activity(),
        ));
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(2);
        let run = registry.run_protected(&engine, &charge_activity(), &mut vars, &mut ctx);
        match run {
            RecoveredRun::Recovered { ref rule, .. } => assert_eq!(rule, "defer-payment"),
            other => panic!("expected recovery, got {other:?}"),
        }
        assert_eq!(vars["ticket"], Value::Str("queued:42".into()));
    }

    #[test]
    fn first_matching_rule_wins() {
        let sreg = service_registry();
        let engine = Engine::new(&sreg);
        let registry = RecoveryRegistry::new()
            .with_rule(RecoveryRule::new(
                "on-unavailable",
                FailureMatch::Unavailability,
                defer_activity(),
            ))
            .with_rule(RecoveryRule::new(
                "catch-all",
                FailureMatch::Any,
                defer_activity(),
            ));
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(3);
        match registry.run_protected(&engine, &charge_activity(), &mut vars, &mut ctx) {
            RecoveredRun::Recovered { rule, .. } => assert_eq!(rule, "on-unavailable"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn unmatched_failures_surface() {
        let sreg = service_registry();
        let engine = Engine::new(&sreg);
        let registry = RecoveryRegistry::new().with_rule(RecoveryRule::new(
            "wrong-scope",
            FailureMatch::Interface(InterfaceId::new("shipping")),
            defer_activity(),
        ));
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(4);
        let run = registry.run_protected(&engine, &charge_activity(), &mut vars, &mut ctx);
        assert!(matches!(
            run,
            RecoveredRun::Unrecovered {
                recovery_failure: None,
                ..
            }
        ));
        assert!(!run.is_ok());
    }

    #[test]
    fn failing_recovery_is_reported() {
        let sreg = service_registry();
        let engine = Engine::new(&sreg);
        // The recovery itself targets the dead payments service.
        let registry = RecoveryRegistry::new().with_rule(RecoveryRule::new(
            "retry-payments",
            FailureMatch::Any,
            charge_activity(),
        ));
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(5);
        let run = registry.run_protected(&engine, &charge_activity(), &mut vars, &mut ctx);
        assert!(matches!(
            run,
            RecoveredRun::Unrecovered {
                recovery_failure: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn matchers_discriminate_error_kinds() {
        let unavailable = ProcessError::InvokeFailed {
            interface: InterfaceId::new("x"),
            operation: "op".into(),
            last_error: ServiceError::Unavailable,
        };
        let fault = ProcessError::InvokeFailed {
            interface: InterfaceId::new("x"),
            operation: "op".into(),
            last_error: ServiceError::Fault("boom".into()),
        };
        let unbound = ProcessError::Unbound(InterfaceId::new("x"));
        assert!(FailureMatch::Unavailability.matches(&unavailable));
        assert!(!FailureMatch::Unavailability.matches(&fault));
        assert!(FailureMatch::ApplicationFault.matches(&fault));
        assert!(FailureMatch::Unbound.matches(&unbound));
        assert!(FailureMatch::Interface(InterfaceId::new("x")).matches(&unbound));
        assert!(!FailureMatch::Interface(InterfaceId::new("y")).matches(&unbound));
        assert!(FailureMatch::Any.matches(&fault));
    }
}
