//! A small BPEL-like process engine.
//!
//! The engine supports the constructs the surveyed techniques rely on:
//! `invoke` (with dynamic binding through the registry), `assign`,
//! `sequence`, parallel `flow`, `retry` (Dobson's recovery-block analogue)
//! and `scope` with a fault handler (the registry-based recovery actions
//! of Baresi and Pernici attach here).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use redundancy_core::context::ExecContext;

use crate::provider::{Provider, ServiceError};
use crate::recovery::Backoff;
use crate::registry::{InterfaceId, ServiceRegistry};
use crate::value::Value;

/// Process variables.
pub type Vars = BTreeMap<String, Value>;

/// An expression usable in activity arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// The value of a process variable.
    Var(String),
}

impl Expr {
    /// Evaluates the expression against the variables.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::MissingVariable`] for unbound variables.
    pub fn eval(&self, vars: &Vars) -> Result<Value, ProcessError> {
        match self {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Var(name) => vars
                .get(name)
                .cloned()
                .ok_or_else(|| ProcessError::MissingVariable(name.clone())),
        }
    }
}

/// A process activity (the BPEL subset the surveyed techniques need).
#[derive(Debug, Clone, PartialEq)]
pub enum Activity {
    /// Invoke an operation on some provider of `interface`, storing the
    /// result in `result_var` (when given).
    Invoke {
        /// Target interface.
        interface: InterfaceId,
        /// Operation name.
        operation: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Variable receiving the result.
        result_var: Option<String>,
    },
    /// Assign an expression to a variable.
    Assign {
        /// Target variable.
        var: String,
        /// Source expression.
        expr: Expr,
    },
    /// Run activities one after another.
    Sequence(Vec<Activity>),
    /// Run activities "in parallel" (BPEL flow): every branch executes;
    /// virtual time is the critical path; variable writes apply in branch
    /// order.
    Flow(Vec<Activity>),
    /// Retry the inner activity up to `attempts` times on failure,
    /// charging `backoff` between attempts as exact virtual time.
    Retry {
        /// The activity to retry.
        inner: Box<Activity>,
        /// Maximum attempts (≥ 1).
        attempts: u32,
        /// Virtual-time pause schedule between attempts.
        backoff: Backoff,
    },
    /// Run `inner`; if it fails, run `handler` (fault handler).
    Scope {
        /// The protected activity.
        inner: Box<Activity>,
        /// The compensation/fault handler.
        handler: Box<Activity>,
    },
}

/// Convenience constructors.
impl Activity {
    /// An `Invoke` storing its result in `result_var`.
    #[must_use]
    pub fn invoke(
        interface: impl Into<InterfaceId>,
        operation: impl Into<String>,
        args: Vec<Expr>,
        result_var: impl Into<String>,
    ) -> Activity {
        Activity::Invoke {
            interface: interface.into(),
            operation: operation.into(),
            args,
            result_var: Some(result_var.into()),
        }
    }

    /// A sequence of activities.
    #[must_use]
    pub fn seq(activities: Vec<Activity>) -> Activity {
        Activity::Sequence(activities)
    }

    /// A `Retry` with immediate (no-backoff) reattempts.
    #[must_use]
    pub fn retry(inner: Activity, attempts: u32) -> Activity {
        Activity::Retry {
            inner: Box::new(inner),
            attempts,
            backoff: Backoff::None,
        }
    }

    /// A `Retry` pausing on `backoff`'s virtual-time schedule between
    /// attempts.
    #[must_use]
    pub fn retry_with_backoff(inner: Activity, attempts: u32, backoff: Backoff) -> Activity {
        Activity::Retry {
            inner: Box::new(inner),
            attempts,
            backoff,
        }
    }
}

/// A process execution error.
#[derive(Debug, Clone, PartialEq)]
pub enum ProcessError {
    /// No provider could serve the invoke.
    InvokeFailed {
        /// The interface that failed.
        interface: InterfaceId,
        /// The operation that failed.
        operation: String,
        /// The last provider error observed.
        last_error: ServiceError,
    },
    /// No provider is registered for the interface.
    Unbound(InterfaceId),
    /// An expression referenced an unbound variable.
    MissingVariable(String),
}

impl fmt::Display for ProcessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessError::InvokeFailed {
                interface,
                operation,
                last_error,
            } => write!(f, "invoke {interface}.{operation} failed: {last_error}"),
            ProcessError::Unbound(interface) => {
                write!(f, "no provider bound for interface {interface}")
            }
            ProcessError::MissingVariable(name) => write!(f, "missing variable {name}"),
        }
    }
}

impl std::error::Error for ProcessError {}

/// Chooses which providers to try for an invoke, in order.
///
/// The default [`Binder::Static`] uses only the first registered provider
/// — the baseline whose fragility dynamic service substitution fixes (the
/// substituting binder lives in `redundancy-techniques`).
pub enum Binder {
    /// Only the first registered provider.
    Static,
    /// All providers of the interface, in registration order (plain
    /// fail-over without converters).
    Failover,
    /// Custom candidate selection.
    Custom(
        #[allow(clippy::type_complexity)]
        Box<dyn Fn(&ServiceRegistry, &InterfaceId) -> Vec<Arc<dyn Provider>> + Send + Sync>,
    ),
}

impl fmt::Debug for Binder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Binder::Static => f.write_str("Binder::Static"),
            Binder::Failover => f.write_str("Binder::Failover"),
            Binder::Custom(_) => f.write_str("Binder::Custom(..)"),
        }
    }
}

impl Binder {
    fn candidates(
        &self,
        registry: &ServiceRegistry,
        interface: &InterfaceId,
    ) -> Vec<Arc<dyn Provider>> {
        match self {
            Binder::Static => registry
                .providers_of(interface)
                .into_iter()
                .take(1)
                .collect(),
            Binder::Failover => registry.providers_of(interface),
            Binder::Custom(f) => f(registry, interface),
        }
    }
}

/// The process engine.
#[derive(Debug)]
pub struct Engine<'r> {
    registry: &'r ServiceRegistry,
    binder: Binder,
}

impl<'r> Engine<'r> {
    /// Creates an engine with static binding.
    #[must_use]
    pub fn new(registry: &'r ServiceRegistry) -> Self {
        Self {
            registry,
            binder: Binder::Static,
        }
    }

    /// Selects the binding policy.
    #[must_use]
    pub fn with_binder(mut self, binder: Binder) -> Self {
        self.binder = binder;
        self
    }

    /// Executes an activity against the given variables.
    ///
    /// # Errors
    ///
    /// Returns a [`ProcessError`] when an invoke exhausts its candidate
    /// providers, an interface is unbound, or a variable is missing.
    pub fn run(
        &self,
        activity: &Activity,
        vars: &mut Vars,
        ctx: &mut ExecContext,
    ) -> Result<(), ProcessError> {
        match activity {
            Activity::Invoke {
                interface,
                operation,
                args,
                result_var,
            } => {
                let arg_values: Vec<Value> = args
                    .iter()
                    .map(|e| e.eval(vars))
                    .collect::<Result<_, _>>()?;
                let candidates = self.binder.candidates(self.registry, interface);
                if candidates.is_empty() {
                    return Err(ProcessError::Unbound(interface.clone()));
                }
                let mut last_error = ServiceError::Unavailable;
                for provider in candidates {
                    match provider.invoke(operation, &arg_values, ctx) {
                        Ok(result) => {
                            if let Some(var) = result_var {
                                vars.insert(var.clone(), result);
                            }
                            return Ok(());
                        }
                        Err(err) => last_error = err,
                    }
                }
                Err(ProcessError::InvokeFailed {
                    interface: interface.clone(),
                    operation: operation.clone(),
                    last_error,
                })
            }
            Activity::Assign { var, expr } => {
                let value = expr.eval(vars)?;
                vars.insert(var.clone(), value);
                Ok(())
            }
            Activity::Sequence(activities) => {
                for a in activities {
                    self.run(a, vars, ctx)?;
                }
                Ok(())
            }
            Activity::Flow(branches) => {
                // Execute each branch with forked metering; merge writes in
                // branch order; charge the critical path.
                let mut costs = Vec::with_capacity(branches.len());
                let mut first_error = None;
                for (i, branch) in branches.iter().enumerate() {
                    let mut child = ctx.fork(i as u64);
                    let result = self.run(branch, vars, &mut child);
                    costs.push(child.cost());
                    if first_error.is_none() {
                        if let Err(e) = result {
                            first_error = Some(e);
                        }
                    }
                }
                ctx.add_parallel_costs(costs);
                match first_error {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
            Activity::Retry {
                inner,
                attempts,
                backoff,
            } => {
                let attempts = (*attempts).max(1);
                let mut last = None;
                for completed in 0..attempts {
                    ctx.advance_ns(backoff.delay_ns(completed));
                    match self.run(inner, vars, ctx) {
                        Ok(()) => return Ok(()),
                        Err(e) => last = Some(e),
                    }
                }
                Err(last.expect("at least one attempt"))
            }
            Activity::Scope { inner, handler } => match self.run(inner, vars, ctx) {
                Ok(()) => Ok(()),
                Err(_) => self.run(handler, vars, ctx),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::SimProvider;

    fn flaky_registry(fail: f64) -> ServiceRegistry {
        let mut reg = ServiceRegistry::new();
        reg.register(Arc::new(
            SimProvider::builder("p1", InterfaceId::new("math"))
                .fail_prob(fail)
                .operation("double", |args, _| {
                    Ok(Value::Int(args[0].as_int().unwrap_or(0) * 2))
                })
                .build(),
        ));
        reg.register(Arc::new(
            SimProvider::builder("p2", InterfaceId::new("math"))
                .operation("double", |args, _| {
                    Ok(Value::Int(args[0].as_int().unwrap_or(0) * 2))
                })
                .build(),
        ));
        reg
    }

    #[test]
    fn invoke_assign_sequence() {
        let reg = flaky_registry(0.0);
        let engine = Engine::new(&reg);
        let process = Activity::seq(vec![
            Activity::Assign {
                var: "x".into(),
                expr: Expr::Lit(Value::Int(21)),
            },
            Activity::invoke("math", "double", vec![Expr::Var("x".into())], "y"),
        ]);
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(1);
        engine.run(&process, &mut vars, &mut ctx).unwrap();
        assert_eq!(vars.get("y"), Some(&Value::Int(42)));
    }

    #[test]
    fn static_binding_fails_with_dead_primary() {
        let reg = flaky_registry(1.0); // p1 always down, p2 fine
        let engine = Engine::new(&reg); // static: only p1
        let process = Activity::invoke("math", "double", vec![Expr::Lit(Value::Int(1))], "y");
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(1);
        assert!(matches!(
            engine.run(&process, &mut vars, &mut ctx),
            Err(ProcessError::InvokeFailed { .. })
        ));
    }

    #[test]
    fn failover_binding_survives_dead_primary() {
        let reg = flaky_registry(1.0);
        let engine = Engine::new(&reg).with_binder(Binder::Failover);
        let process = Activity::invoke("math", "double", vec![Expr::Lit(Value::Int(5))], "y");
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(1);
        engine.run(&process, &mut vars, &mut ctx).unwrap();
        assert_eq!(vars.get("y"), Some(&Value::Int(10)));
    }

    #[test]
    fn retry_eventually_succeeds() {
        let reg = flaky_registry(0.6);
        let engine = Engine::new(&reg);
        let process = Activity::retry(
            Activity::invoke("math", "double", vec![Expr::Lit(Value::Int(3))], "y"),
            50,
        );
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(2);
        engine.run(&process, &mut vars, &mut ctx).unwrap();
        assert_eq!(vars.get("y"), Some(&Value::Int(6)));
    }

    #[test]
    fn retry_backoff_is_charged_as_exact_virtual_time() {
        // All providers dead: every attempt fails, so the retry walks
        // its full backoff schedule. With 10 ns per invoke (both
        // registered providers are tried per attempt under Failover)
        // the total cost is a closed-form number, not a measurement.
        let reg = {
            let mut reg = ServiceRegistry::new();
            for id in ["d1", "d2"] {
                reg.register(Arc::new(
                    SimProvider::builder(id, InterfaceId::new("math"))
                        .fail_prob(1.0)
                        .latency(10, 0)
                        .operation("double", |_, _| Ok(Value::Null))
                        .build(),
                ));
            }
            reg
        };
        let engine = Engine::new(&reg).with_binder(Binder::Failover);
        let process = Activity::retry_with_backoff(
            Activity::invoke("math", "double", vec![Expr::Lit(Value::Int(1))], "y"),
            3,
            Backoff::Exponential {
                base_ns: 1_000,
                factor: 3,
                cap_ns: 10_000,
            },
        );
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(4);
        assert!(engine.run(&process, &mut vars, &mut ctx).is_err());
        // 3 attempts x 2 providers x 10 ns, plus pauses 1000 and 3000
        // before attempts 2 and 3.
        assert_eq!(ctx.cost().virtual_ns, 3 * 2 * 10 + 1_000 + 3_000);
    }

    #[test]
    fn scope_handler_runs_on_fault() {
        let reg = flaky_registry(1.0);
        let engine = Engine::new(&reg);
        let process = Activity::Scope {
            inner: Box::new(Activity::invoke(
                "math",
                "double",
                vec![Expr::Lit(Value::Int(3))],
                "y",
            )),
            handler: Box::new(Activity::Assign {
                var: "y".into(),
                expr: Expr::Lit(Value::Int(-1)),
            }),
        };
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(1);
        engine.run(&process, &mut vars, &mut ctx).unwrap();
        assert_eq!(vars.get("y"), Some(&Value::Int(-1)));
    }

    #[test]
    fn flow_charges_critical_path_and_merges_writes() {
        let mut reg = ServiceRegistry::new();
        for (id, latency) in [("fast", 10u64), ("slow", 100)] {
            reg.register(Arc::new(
                SimProvider::builder(id, InterfaceId::new(id))
                    .latency(latency, 0)
                    .operation("op", |_, _| Ok(Value::Int(1)))
                    .build(),
            ));
        }
        let engine = Engine::new(&reg);
        let process = Activity::Flow(vec![
            Activity::invoke("fast", "op", vec![], "a"),
            Activity::invoke("slow", "op", vec![], "b"),
        ]);
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(1);
        engine.run(&process, &mut vars, &mut ctx).unwrap();
        assert_eq!(vars.get("a"), Some(&Value::Int(1)));
        assert_eq!(vars.get("b"), Some(&Value::Int(1)));
        assert_eq!(ctx.cost().virtual_ns, 100, "flow is critical-path timed");
    }

    #[test]
    fn unbound_interface_reported() {
        let reg = ServiceRegistry::new();
        let engine = Engine::new(&reg);
        let process = Activity::invoke("ghost", "op", vec![], "x");
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(1);
        assert_eq!(
            engine.run(&process, &mut vars, &mut ctx),
            Err(ProcessError::Unbound(InterfaceId::new("ghost")))
        );
    }

    #[test]
    fn missing_variable_reported() {
        let reg = flaky_registry(0.0);
        let engine = Engine::new(&reg);
        let process = Activity::invoke("math", "double", vec![Expr::Var("nope".into())], "y");
        let mut vars = Vars::new();
        let mut ctx = ExecContext::new(1);
        assert_eq!(
            engine.run(&process, &mut vars, &mut ctx),
            Err(ProcessError::MissingVariable("nope".into()))
        );
    }
}
