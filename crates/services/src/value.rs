//! The dynamic value type exchanged with services.

use std::fmt;

/// A dynamically typed service payload (a miniature of the XML/JSON values
/// real service platforms exchange).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Value {
    /// Absence of a value.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered list.
    List(Vec<Value>),
}

impl Value {
    /// The integer inside, if this is an `Int`.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float inside, if this is a `Float` (or an `Int`, widened).
    #[must_use]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The boolean inside, if this is a `Bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The string inside, if this is a `Str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The list inside, if this is a `List`.
    #[must_use]
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::List(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Bool(true).as_int(), None);
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert!(Value::Null.is_null());
        let list = Value::from(vec![1i64, 2]);
        assert_eq!(list.as_list().map(<[Value]>::len), Some(2));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::from(vec![1i64, 2]).to_string(), "[1, 2]");
        assert_eq!(Value::from("s").to_string(), "\"s\"");
    }
}
