//! Open-loop arrival processes for the event-loop runtime.
//!
//! PR 9's runtime hard-wired Poisson arrivals drawn from one sequential
//! RNG stream; that coupling is exactly what sharding cannot tolerate —
//! a shard must not need to replay every other shard's draws to know
//! when its own requests arrive. This module decouples arrival
//! generation from the event loop: [`ArrivalProcess::arrival_times`]
//! precomputes the *entire* arrival schedule up front, with each gap
//! drawn from a per-id RNG stream (`seed ^ id·φ64`, the same order-free
//! scheme the runtime uses per request). The single-loop runtime and
//! every shard consume the same table, so arrival times are identical
//! for any `--shards`/`--jobs` by construction.
//!
//! Three processes cover the regimes the circuit breaker needs to react
//! to:
//!
//! - [`ArrivalProcess::Poisson`] — the PR-9 steady state: exponential
//!   gaps around one mean;
//! - [`ArrivalProcess::OnOff`] — a two-phase Markov-modulated Poisson
//!   process: bursts at one rate, lulls at another, alternating on a
//!   fixed virtual-time period (diurnal load in miniature);
//! - [`ArrivalProcess::Trace`] — replay explicit arrival offsets,
//!   tiling the trace when the workload outlives it.

use redundancy_core::rng::SplitMix64;

/// Seed-domain separator for arrival draws, so the arrival stream never
/// collides with the per-request attempt streams derived from the same
/// campaign seed.
const ARRIVAL_SALT: u64 = 0xa55e_55ed_ca11_ab1e;

/// Weyl increment shared with the runtime's per-request streams.
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// When requests enter the system: the open-loop half of a [`Workload`].
///
/// [`Workload`]: crate::runtime::Workload
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Exponential interarrival gaps around `mean_gap_ns` (open-loop
    /// Poisson arrivals — the PR-9 behaviour).
    Poisson {
        /// Mean virtual-ns gap between consecutive arrivals (≥ 1).
        mean_gap_ns: u64,
    },
    /// Bursty/diurnal load: Poisson arrivals whose mean gap alternates
    /// between an *on* phase and an *off* phase on a fixed virtual-time
    /// cycle. A gap is drawn at the rate of the phase the previous
    /// arrival landed in.
    OnOff {
        /// Mean gap during the on (burst) phase.
        on_gap_ns: u64,
        /// Mean gap during the off (lull) phase.
        off_gap_ns: u64,
        /// Virtual duration of each on phase.
        on_ns: u64,
        /// Virtual duration of each off phase.
        off_ns: u64,
    },
    /// Replay recorded arrival offsets (non-decreasing virtual ns from
    /// t = 0). Workloads longer than the trace tile it: repetition `k`
    /// is shifted by `k * (last + 1)` so times stay non-decreasing.
    Trace(Vec<u64>),
}

impl ArrivalProcess {
    /// Precomputes the full arrival schedule for `requests` ids.
    ///
    /// The schedule is a pure function of `(self, requests, seed)`:
    /// gap `i` is drawn from the per-id stream of id `i`, so the table
    /// is bit-identical however the downstream run is sharded or
    /// scheduled. `times[0]` is always 0 (the first request opens the
    /// run); times are non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics when `self` is an empty [`ArrivalProcess::Trace`] and
    /// `requests > 0` — there is no schedule to replay — or when a
    /// trace's offsets decrease (time cannot run backwards; silently
    /// normalising such a trace would wrap to enormous `u64` arrivals).
    #[must_use]
    pub fn arrival_times(&self, requests: u64, seed: u64) -> Vec<u64> {
        let n = usize::try_from(requests).unwrap_or(usize::MAX);
        let mut times = Vec::with_capacity(n);
        if requests == 0 {
            return times;
        }
        match *self {
            ArrivalProcess::Poisson { mean_gap_ns } => {
                let mut t = 0u64;
                times.push(t);
                for id in 1..requests {
                    t = t.saturating_add(exponential_gap(seed, id, mean_gap_ns));
                    times.push(t);
                }
            }
            ArrivalProcess::OnOff {
                on_gap_ns,
                off_gap_ns,
                on_ns,
                off_ns,
            } => {
                let period = on_ns.saturating_add(off_ns);
                let mut t = 0u64;
                times.push(t);
                for id in 1..requests {
                    // Phase of the *previous* arrival decides the rate;
                    // a degenerate period (both phases 0) stays "on".
                    let in_on = period == 0 || t % period < on_ns;
                    let mean = if in_on { on_gap_ns } else { off_gap_ns };
                    t = t.saturating_add(exponential_gap(seed, id, mean));
                    times.push(t);
                }
            }
            ArrivalProcess::Trace(ref trace) => {
                assert!(
                    !trace.is_empty(),
                    "an empty arrival trace cannot schedule {requests} requests"
                );
                // A real assert, not a debug_assert: this validates
                // once per run, and a decreasing trace in a release
                // build would otherwise wrap `*t - first` below to
                // enormous u64 arrival times instead of failing.
                assert!(
                    trace.windows(2).all(|w| w[0] <= w[1]),
                    "arrival traces must be non-decreasing"
                );
                let span = trace.last().copied().unwrap_or(0).saturating_add(1);
                let len = trace.len() as u64;
                for id in 0..requests {
                    let base = (id / len).saturating_mul(span);
                    let offset = trace[usize::try_from(id % len).unwrap_or(0)];
                    times.push(base.saturating_add(offset));
                }
                // Tiling anchors repetition 0 at the trace itself, so
                // times[0] == trace[0]; normalise to open at t = 0.
                let first = times[0];
                for t in &mut times {
                    *t -= first;
                }
            }
        }
        times
    }
}

/// One exponential gap with the given mean, drawn from id `id`'s own
/// stream — independent of every other id's draws by construction.
fn exponential_gap(seed: u64, id: u64, mean_gap_ns: u64) -> u64 {
    let mut rng = SplitMix64::new(seed ^ ARRIVAL_SALT ^ id.wrapping_mul(GOLDEN_GAMMA));
    #[allow(clippy::cast_precision_loss)]
    let mean = mean_gap_ns.max(1) as f64;
    let u = rng.next_f64();
    // u ∈ [0, 1): 1-u ∈ (0, 1], ln ≤ 0, gap ≥ 0.
    let gap = -mean * (1.0 - u).ln();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        gap as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_schedule_is_deterministic_and_nondecreasing() {
        let process = ArrivalProcess::Poisson { mean_gap_ns: 1_000 };
        let a = process.arrival_times(10_000, 42);
        let b = process.arrival_times(10_000, 42);
        assert_eq!(a, b);
        assert_eq!(a[0], 0, "the first arrival opens the run");
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let other = process.arrival_times(10_000, 43);
        assert_ne!(a, other, "different seeds explore different schedules");
    }

    #[test]
    fn poisson_mean_gap_is_close_to_nominal() {
        let process = ArrivalProcess::Poisson { mean_gap_ns: 1_000 };
        let times = process.arrival_times(50_000, 7);
        let span = *times.last().unwrap();
        #[allow(clippy::cast_precision_loss)]
        let mean = span as f64 / (times.len() - 1) as f64;
        assert!(
            (mean - 1_000.0).abs() < 30.0,
            "observed mean gap {mean} far from 1000"
        );
    }

    #[test]
    fn gaps_are_order_free_per_id() {
        // A prefix of a longer schedule is exactly the shorter schedule:
        // gap i depends on id i alone, not on how many gaps preceded it.
        let process = ArrivalProcess::Poisson { mean_gap_ns: 500 };
        let long = process.arrival_times(1_000, 9);
        let short = process.arrival_times(100, 9);
        assert_eq!(&long[..100], &short[..]);
    }

    #[test]
    fn on_off_alternates_between_burst_and_lull_rates() {
        let process = ArrivalProcess::OnOff {
            on_gap_ns: 100,
            off_gap_ns: 10_000,
            on_ns: 1_000_000,
            off_ns: 1_000_000,
        };
        let times = process.arrival_times(20_000, 11);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // Count arrivals landing in on vs off phases: bursts must be
        // far denser than lulls.
        let (mut on, mut off) = (0u64, 0u64);
        for &t in &times {
            if t % 2_000_000 < 1_000_000 {
                on += 1;
            } else {
                off += 1;
            }
        }
        assert!(
            on > off * 5,
            "bursts must dominate: on={on} off={off} arrivals"
        );
        // And the whole schedule is reproducible.
        assert_eq!(times, process.arrival_times(20_000, 11));
    }

    #[test]
    fn trace_replays_and_tiles_without_going_backwards() {
        let process = ArrivalProcess::Trace(vec![0, 5, 5, 40]);
        let times = process.arrival_times(10, 0);
        assert_eq!(times, vec![0, 5, 5, 40, 41, 46, 46, 81, 82, 87]);
        // Seed-independent: a trace is a replay, not a draw.
        assert_eq!(times, process.arrival_times(10, 999));
    }

    #[test]
    fn trace_with_nonzero_origin_is_normalised_to_open_at_zero() {
        let process = ArrivalProcess::Trace(vec![100, 150, 400]);
        let times = process.arrival_times(3, 0);
        assert_eq!(times, vec![0, 50, 300]);
    }

    #[test]
    #[should_panic(expected = "empty arrival trace")]
    fn empty_trace_with_requests_panics() {
        let _ = ArrivalProcess::Trace(vec![]).arrival_times(5, 0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_trace_panics_instead_of_wrapping() {
        // Pre-fix this was a debug_assert: release builds normalised
        // [100, 50] to [0, u64-huge] instead of failing.
        let _ = ArrivalProcess::Trace(vec![100, 50]).arrival_times(2, 0);
    }

    #[test]
    fn zero_requests_yield_an_empty_schedule() {
        assert!(ArrivalProcess::Poisson { mean_gap_ns: 10 }
            .arrival_times(0, 1)
            .is_empty());
        assert!(ArrivalProcess::Trace(vec![]).arrival_times(0, 1).is_empty());
    }
}
