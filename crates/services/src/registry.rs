//! Service registration, discovery and interface conversion.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::provider::Provider;
use crate::value::Value;

/// Identifies a service interface (a port type, in WSDL terms).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InterfaceId(String);

impl InterfaceId {
    /// Creates an interface id.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }

    /// The interface name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for InterfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for InterfaceId {
    fn from(s: &str) -> Self {
        InterfaceId::new(s)
    }
}

type ArgAdapter = Box<dyn Fn(&[Value]) -> Vec<Value> + Send + Sync>;
type ResultAdapter = Box<dyn Fn(Value) -> Value + Send + Sync>;

/// Adapts calls for one interface onto a *similar* interface, as Taher et
/// al. propose for extending substitution beyond exact interface matches.
pub struct Converter {
    source: InterfaceId,
    target: InterfaceId,
    op_map: HashMap<String, String>,
    adapt_args: ArgAdapter,
    adapt_result: ResultAdapter,
}

impl Converter {
    /// Creates a converter from `source` calls to `target` calls with an
    /// operation-name map and identity argument/result adapters.
    #[must_use]
    pub fn new(source: InterfaceId, target: InterfaceId) -> Self {
        Self {
            source,
            target,
            op_map: HashMap::new(),
            adapt_args: Box::new(|args| args.to_vec()),
            adapt_result: Box::new(|v| v),
        }
    }

    /// Maps a source operation name onto a target operation name.
    #[must_use]
    pub fn map_operation(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.op_map.insert(from.into(), to.into());
        self
    }

    /// Installs an argument adapter.
    #[must_use]
    pub fn adapt_args<F>(mut self, f: F) -> Self
    where
        F: Fn(&[Value]) -> Vec<Value> + Send + Sync + 'static,
    {
        self.adapt_args = Box::new(f);
        self
    }

    /// Installs a result adapter.
    #[must_use]
    pub fn adapt_result<F>(mut self, f: F) -> Self
    where
        F: Fn(Value) -> Value + Send + Sync + 'static,
    {
        self.adapt_result = Box::new(f);
        self
    }

    /// The interface whose calls this converter accepts.
    #[must_use]
    pub fn source(&self) -> &InterfaceId {
        &self.source
    }

    /// The interface this converter targets.
    #[must_use]
    pub fn target(&self) -> &InterfaceId {
        &self.target
    }

    /// Translates an operation name.
    ///
    /// Names missing from the operation map pass through unchanged —
    /// the permissive behavior substitution needs for interfaces that
    /// mostly agree — but no longer silently: each pass-through bumps
    /// the `service_converter_passthrough` telemetry counter, so a
    /// converter quietly forwarding unmapped operations shows up in the
    /// flight recorder instead of masking a missing mapping. Use
    /// [`Converter::resolve_operation`] to branch on it directly.
    #[must_use]
    pub fn operation<'a>(&'a self, op: &'a str) -> &'a str {
        self.resolve_operation(op).0
    }

    /// Translates an operation name, reporting whether a mapping was
    /// actually found (`false` = unmapped pass-through).
    #[must_use]
    pub fn resolve_operation<'a>(&'a self, op: &'a str) -> (&'a str, bool) {
        match self.op_map.get(op) {
            Some(mapped) => (mapped.as_str(), true),
            None => {
                redundancy_core::obs::telemetry::add(
                    redundancy_core::obs::telemetry::Counter::ServiceConverterPassthrough,
                    1,
                );
                (op, false)
            }
        }
    }

    /// Translates arguments.
    #[must_use]
    pub fn arguments(&self, args: &[Value]) -> Vec<Value> {
        (self.adapt_args)(args)
    }

    /// Translates a result back to the source interface's shape.
    #[must_use]
    pub fn result(&self, value: Value) -> Value {
        (self.adapt_result)(value)
    }
}

impl fmt::Debug for Converter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Converter")
            .field("source", &self.source)
            .field("target", &self.target)
            .field("op_map", &self.op_map)
            .finish_non_exhaustive()
    }
}

/// The registry: providers indexed by interface, plus converters between
/// similar interfaces.
#[derive(Default)]
pub struct ServiceRegistry {
    providers: Vec<Arc<dyn Provider>>,
    converters: Vec<Arc<Converter>>,
}

impl ServiceRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a provider. Registration order is the default preference
    /// order for binding.
    pub fn register(&mut self, provider: Arc<dyn Provider>) {
        self.providers.push(provider);
    }

    /// Registers a converter between similar interfaces.
    pub fn register_converter(&mut self, converter: Converter) {
        self.converters.push(Arc::new(converter));
    }

    /// Providers implementing exactly `interface`, in registration order.
    #[must_use]
    pub fn providers_of(&self, interface: &InterfaceId) -> Vec<Arc<dyn Provider>> {
        self.providers
            .iter()
            .filter(|p| p.interface() == interface)
            .cloned()
            .collect()
    }

    /// Providers of *similar* interfaces reachable through a converter,
    /// with the converter needed to use each.
    #[must_use]
    pub fn convertible_providers(
        &self,
        interface: &InterfaceId,
    ) -> Vec<(Arc<dyn Provider>, Arc<Converter>)> {
        let mut found = Vec::new();
        for converter in &self.converters {
            if converter.source() == interface {
                for provider in self.providers_of(converter.target()) {
                    found.push((provider, Arc::clone(converter)));
                }
            }
        }
        found
    }

    /// A provider by id.
    #[must_use]
    pub fn provider_by_id(&self, id: &str) -> Option<Arc<dyn Provider>> {
        self.providers.iter().find(|p| p.id() == id).cloned()
    }

    /// All registered interfaces (deduplicated, in first-seen order).
    #[must_use]
    pub fn interfaces(&self) -> Vec<InterfaceId> {
        let mut seen = Vec::new();
        for p in &self.providers {
            if !seen.contains(p.interface()) {
                seen.push(p.interface().clone());
            }
        }
        seen
    }

    /// Number of registered providers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.providers.is_empty()
    }
}

impl fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceRegistry")
            .field("providers", &self.providers.len())
            .field("converters", &self.converters.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::SimProvider;

    fn registry() -> ServiceRegistry {
        let mut reg = ServiceRegistry::new();
        for (id, iface) in [("w1", "weather"), ("w2", "weather"), ("m1", "meteo")] {
            reg.register(Arc::new(
                SimProvider::builder(id, InterfaceId::new(iface))
                    .operation("noop", |_, _| Ok(Value::Null))
                    .build(),
            ));
        }
        reg
    }

    #[test]
    fn discovery_by_interface_preserves_order() {
        let reg = registry();
        let weather = reg.providers_of(&InterfaceId::new("weather"));
        assert_eq!(weather.len(), 2);
        assert_eq!(weather[0].id(), "w1");
        assert_eq!(weather[1].id(), "w2");
        assert!(reg.providers_of(&InterfaceId::new("nothing")).is_empty());
    }

    #[test]
    fn convertible_providers_found_through_converter() {
        let mut reg = registry();
        reg.register_converter(
            Converter::new(InterfaceId::new("weather"), InterfaceId::new("meteo"))
                .map_operation("forecast", "prevision"),
        );
        let similar = reg.convertible_providers(&InterfaceId::new("weather"));
        assert_eq!(similar.len(), 1);
        assert_eq!(similar[0].0.id(), "m1");
        assert_eq!(similar[0].1.operation("forecast"), "prevision");
        assert_eq!(similar[0].1.operation("other"), "other");
    }

    #[test]
    fn unmapped_operations_pass_through_observably() {
        let conv = Converter::new(InterfaceId::new("weather"), InterfaceId::new("meteo"))
            .map_operation("forecast", "prevision");
        assert_eq!(conv.resolve_operation("forecast"), ("prevision", true));
        assert_eq!(conv.resolve_operation("humidity"), ("humidity", false));
        // The global-telemetry counter only moves when the recorder is
        // on; what must hold always is the mapped/unmapped signal.
        use redundancy_core::obs::telemetry::{Counter, Telemetry};
        let global = Telemetry::global();
        let was_enabled = global.is_enabled();
        global.set_enabled(true);
        let before = global
            .snapshot()
            .counter(Counter::ServiceConverterPassthrough);
        assert_eq!(conv.operation("humidity"), "humidity");
        assert_eq!(conv.operation("forecast"), "prevision");
        let after = global
            .snapshot()
            .counter(Counter::ServiceConverterPassthrough);
        global.set_enabled(was_enabled);
        // ≥ rather than ==: the registry is process-global and sibling
        // tests may translate operations while the recorder is on.
        assert!(after - before >= 1, "unmapped lookup was recorded");
    }

    #[test]
    fn converter_adapts_args_and_results() {
        let conv = Converter::new(InterfaceId::new("a"), InterfaceId::new("b"))
            .adapt_args(|args| {
                // The similar service wants arguments reversed.
                let mut v = args.to_vec();
                v.reverse();
                v
            })
            .adapt_result(|v| match v {
                Value::Int(x) => Value::Int(x * 10),
                other => other,
            });
        assert_eq!(
            conv.arguments(&[Value::Int(1), Value::Int(2)]),
            vec![Value::Int(2), Value::Int(1)]
        );
        assert_eq!(conv.result(Value::Int(3)), Value::Int(30));
    }

    #[test]
    fn provider_by_id_and_interfaces() {
        let reg = registry();
        assert_eq!(reg.provider_by_id("m1").unwrap().id(), "m1");
        assert!(reg.provider_by_id("zz").is_none());
        assert_eq!(
            reg.interfaces(),
            vec![InterfaceId::new("weather"), InterfaceId::new("meteo")]
        );
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
    }
}
