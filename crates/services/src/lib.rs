//! A service-oriented substrate for the `redundancy` framework.
//!
//! Much of the recent work the paper surveys lives in the web-services
//! world: N-version programming over independent service implementations
//! (Looker's WS-FTM, Dobson's WS-BPEL voting), recovery blocks as BPEL
//! retry, and dynamic service substitution (Subramanian, Taher, Sadjadi,
//! Mosincat). Reproducing those techniques needs a service platform:
//! interfaces with multiple independently operated implementations,
//! discovery, interface similarity with converters, and a process engine
//! with sequences, parallel flows, retries and fault handlers.
//!
//! This crate provides an in-memory such platform:
//!
//! - [`value::Value`] — the dynamic payload type exchanged with services;
//! - [`provider`] — service implementations with reliability and latency
//!   profiles ([`provider::SimProvider`]);
//! - [`registry::ServiceRegistry`] — registration, discovery, and
//!   interface converters for near-matching services;
//! - [`process`] — a small BPEL-like engine: invoke, assign, sequence,
//!   parallel flow, retry, and scopes with fault handlers;
//! - [`recovery`] — Baresi/Pernici-style registries of failure-matching
//!   rules with recovery activities, protecting whole processes.
//!
//! On top of the per-call substrate sits the *request-level* runtime:
//!
//! - [`clock`] — a deterministic discrete-event queue on a virtual
//!   nanosecond clock (no wall time, no threads, seeded and
//!   reproducible);
//! - [`runtime`] — the event-loop service runtime holding thousands to
//!   millions of requests in flight, applying the paper's Figure-1
//!   patterns as request policies: parallel selection as *hedged
//!   requests* (cancel on first acceptable response) and sequential
//!   alternatives as *failover with deadline budgets*, behind admission
//!   control and a bounded backpressure queue;
//! - [`arrival`] — open-loop arrival processes (Poisson, bursty
//!   on/off, replayed traces) precomputed from order-free per-id RNG
//!   streams;
//! - [`breaker`] — per-provider circuit breakers (Closed/Open/HalfOpen
//!   over a windowed failure + slow-call profile, virtual-time
//!   cooldowns) feeding the runtime's admission and attempt routing;
//! - [`shard`] — the scale-out layer: one workload split across N
//!   per-shard event loops on the campaign worker pool, merged back
//!   into a single canonical ledger whose digest is bit-identical at
//!   any shard or job count;
//! - [`config`] — `REDUNDANCY_*` environment knobs for the runtime's
//!   operational parameters, with the warn-once contract.

#![warn(missing_docs)]

pub mod arrival;
pub mod breaker;
pub mod clock;
pub mod config;
pub mod process;
pub mod provider;
pub mod recovery;
pub mod registry;
pub mod runtime;
pub mod shard;
pub mod value;

pub use arrival::ArrivalProcess;
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use clock::EventQueue;
pub use process::{Activity, Engine, Expr, ProcessError, Vars};
pub use provider::{PlannedInvoke, Provider, ServiceError, SimProvider, SimProviderBuilder};
pub use recovery::{Backoff, FailureMatch, RecoveredRun, RecoveryRegistry, RecoveryRule};
pub use registry::{Converter, InterfaceId, ServiceRegistry};
pub use runtime::{
    PlannedProvider, RequestOutcome, RequestPolicy, RequestRecord, RuntimeConfig, RuntimeReport,
    ServiceRuntime, Workload,
};
pub use shard::ShardedRuntime;
pub use value::Value;
