//! Per-provider circuit breakers for the event-loop runtime.
//!
//! A provider that is failing or dragging is cheaper to *stop calling*
//! than to keep timing out against: the breaker watches each provider's
//! recent outcome profile (a sliding window of failure and slow-call
//! classifications, after "self-healing by runtime execution
//! profiling") and trips Open when the bad fraction crosses a
//! threshold. While Open the provider admits nothing; after a
//! virtual-time cooldown it goes HalfOpen and admits a bounded number
//! of probe attempts — all probes succeeding closes the circuit, any
//! probe failing re-opens it and restarts the cooldown.
//!
//! Probe slots are *reserved at dispatch* and released when the attempt
//! completes ([`CircuitBreaker::on_result`]) **or is cancelled**
//! ([`CircuitBreaker::on_cancel`] — a hedge win or deadline can drop a
//! request while its probe still flies). The [`ProbeToken`] handed out
//! by [`CircuitBreaker::on_dispatch`] identifies the probing round the
//! slot belongs to, so a stale completion or cancellation from an
//! earlier round can neither decide nor free a later round's probes.
//!
//! The runtime consults breakers at three seams (see
//! [`runtime`](crate::runtime)): the admission controller sheds a
//! request outright when *every* provider is Open, the hedged policy
//! never targets an Open provider, and failover skips Open providers in
//! its rotation (charging the backoff pause it would have spent).
//!
//! Everything here runs in virtual time — cooldowns are event-loop
//! timestamps, never wall-clock — so breaker behaviour is bit-for-bit
//! deterministic per `(seed, shards)` and each shard owns independent
//! breaker state for its own provider pool.

use redundancy_core::obs::telemetry::{self, Counter, Timer};

/// Identifies the HalfOpen probing round a dispatched attempt reserved
/// its slot in (`None`: not a probe — the circuit was Closed at
/// dispatch). Returned by [`CircuitBreaker::on_dispatch`]; pass it back
/// to [`CircuitBreaker::on_result`] or [`CircuitBreaker::on_cancel`].
pub type ProbeToken = Option<u64>;

/// Tuning for one [`CircuitBreaker`]. Integer-only so configs stay
/// `Copy + Eq` (the failure threshold is a percentage, not a float).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BreakerConfig {
    /// Sliding window length: how many recent outcomes the failure
    /// fraction is computed over (≥ 1).
    pub window: usize,
    /// Open when `bad_outcomes * 100 >= failure_pct * outcomes` inside
    /// the window (clamped to 1..=100 at evaluation time).
    pub failure_pct: u8,
    /// Outcomes required in the window before the breaker judges at
    /// all — a cold provider is not condemned on one sample.
    pub min_samples: usize,
    /// Virtual ns an Open circuit waits before going HalfOpen.
    pub cooldown_ns: u64,
    /// Probe attempts admitted in HalfOpen; that many consecutive
    /// successes close the circuit, any failure re-opens it (≥ 1).
    pub half_open_probes: u32,
    /// Latency at or above which an *ok* response still counts as a bad
    /// outcome (slow-call profiling); `0` disables the latency profile.
    pub slow_call_ns: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 64,
            failure_pct: 50,
            min_samples: 16,
            cooldown_ns: 5_000_000,
            half_open_probes: 3,
            slow_call_ns: 0,
        }
    }
}

/// Where a breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Calls flow; outcomes are profiled into the window.
    Closed,
    /// Calls are refused until the cooldown elapses.
    Open,
    /// A bounded number of probes decides reopen vs close.
    HalfOpen,
}

/// One provider's breaker: profile window, state machine, and tallies.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Ring buffer of recent outcome classifications (`true` = bad).
    ring: Vec<bool>,
    ring_pos: usize,
    bad_in_window: usize,
    /// Virtual instant an Open circuit may go HalfOpen.
    open_until_ns: u64,
    /// When the current/most recent Open began (for the open-duration
    /// histogram).
    opened_at_ns: u64,
    probes_in_flight: u32,
    probe_successes: u32,
    opens: u64,
    half_opens: u64,
    closes: u64,
}

impl CircuitBreaker {
    /// A Closed breaker with an empty profile window.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            ring: Vec::with_capacity(config.window.max(1)),
            ring_pos: 0,
            bad_in_window: 0,
            open_until_ns: 0,
            opened_at_ns: 0,
            probes_in_flight: 0,
            probe_successes: 0,
            opens: 0,
            half_opens: 0,
            closes: 0,
        }
    }

    /// Current state (after any cooldown-driven transition the last
    /// [`admits`](Self::admits) call performed).
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the circuit opened (first trips and probe re-opens).
    #[must_use]
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Times the circuit moved Open → HalfOpen after a cooldown.
    #[must_use]
    pub fn half_opens(&self) -> u64 {
        self.half_opens
    }

    /// Times probing closed the circuit again.
    #[must_use]
    pub fn closes(&self) -> u64 {
        self.closes
    }

    /// Whether this provider may be dispatched to at virtual instant
    /// `now`. Drives the cooldown transition: an Open circuit whose
    /// cooldown elapsed becomes HalfOpen here.
    pub fn admits(&mut self, now: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now < self.open_until_ns {
                    return false;
                }
                self.state = BreakerState::HalfOpen;
                self.probes_in_flight = 0;
                self.probe_successes = 0;
                self.half_opens += 1;
                telemetry::add(Counter::ServiceBreakerHalfOpens, 1);
                true
            }
            BreakerState::HalfOpen => self.probes_in_flight < self.config.half_open_probes.max(1),
        }
    }

    /// Reserves the dispatch [`admits`](Self::admits) just allowed (a
    /// HalfOpen circuit counts its in-flight probes; Closed needs no
    /// reservation). Returns the probe token the attempt must carry to
    /// [`on_result`](Self::on_result) / [`on_cancel`](Self::on_cancel)
    /// so the reservation is released exactly once, in the right round.
    pub fn on_dispatch(&mut self, _now: u64) -> ProbeToken {
        if self.state == BreakerState::HalfOpen {
            self.probes_in_flight += 1;
            // The half-open counter doubles as the round's epoch: it
            // bumps on every Open → HalfOpen transition, so tokens from
            // a previous round can never match the current one.
            Some(self.half_opens)
        } else {
            None
        }
    }

    /// Releases the probe slot of an attempt that was *cancelled*
    /// before completing — the owning request resolved first (hedge
    /// win, deadline) and the response, if any, will never be seen.
    /// Without this release a probing round whose every probe is
    /// cancelled would pin `probes_in_flight` at the budget forever,
    /// permanently blacklisting the provider (HalfOpen has no cooldown
    /// escape). Tokens from an earlier round are ignored.
    pub fn on_cancel(&mut self, probe: ProbeToken) {
        if self.state == BreakerState::HalfOpen && probe == Some(self.half_opens) {
            self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
        }
    }

    /// Feeds one completed attempt into the profile: `probe` is the
    /// token its dispatch returned, `ok` the provider's verdict,
    /// `latency_ns` its virtual service time (bad when it reaches the
    /// configured slow-call bound).
    pub fn on_result(&mut self, now: u64, probe: ProbeToken, ok: bool, latency_ns: u64) {
        let bad = !ok || (self.config.slow_call_ns > 0 && latency_ns >= self.config.slow_call_ns);
        match self.state {
            BreakerState::Closed => {
                self.push_outcome(bad);
                let samples = self.ring.len();
                if samples >= self.config.min_samples.max(1)
                    && self.bad_in_window * 100
                        >= usize::from(self.config.failure_pct.clamp(1, 100)) * samples
                {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => {
                if probe != Some(self.half_opens) {
                    // A pre-trip attempt (or an earlier probing round's
                    // straggler) landing mid-probe: the window restarted
                    // when the circuit tripped, so stale evidence
                    // neither consumes a probe slot nor decides this
                    // round — same reasoning as the Open arm.
                    return;
                }
                self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
                if bad {
                    self.trip(now);
                } else {
                    self.probe_successes += 1;
                    if self.probe_successes >= self.config.half_open_probes.max(1) {
                        self.close(now);
                    }
                }
            }
            // A pre-trip attempt landing while Open: the circuit already
            // judged this provider; stale evidence changes nothing.
            BreakerState::Open => {}
        }
    }

    /// Slides `bad` into the window, aging out the oldest outcome once
    /// the window is full.
    fn push_outcome(&mut self, bad: bool) {
        let window = self.config.window.max(1);
        if self.ring.len() < window {
            self.ring.push(bad);
        } else {
            if self.ring[self.ring_pos] {
                self.bad_in_window -= 1;
            }
            self.ring[self.ring_pos] = bad;
            self.ring_pos = (self.ring_pos + 1) % window;
        }
        if bad {
            self.bad_in_window += 1;
        }
    }

    fn trip(&mut self, now: u64) {
        self.state = BreakerState::Open;
        self.open_until_ns = now.saturating_add(self.config.cooldown_ns.max(1));
        self.opened_at_ns = now;
        self.ring.clear();
        self.ring_pos = 0;
        self.bad_in_window = 0;
        self.opens += 1;
        telemetry::add(Counter::ServiceBreakerOpens, 1);
    }

    fn close(&mut self, now: u64) {
        self.state = BreakerState::Closed;
        self.ring.clear();
        self.ring_pos = 0;
        self.bad_in_window = 0;
        self.closes += 1;
        telemetry::add(Counter::ServiceBreakerCloses, 1);
        telemetry::observe_ns(Timer::ServiceBreakerOpenNs, now - self.opened_at_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            failure_pct: 50,
            min_samples: 4,
            cooldown_ns: 1_000,
            half_open_probes: 2,
            slow_call_ns: 0,
        }
    }

    #[test]
    fn stays_closed_below_min_samples_even_when_everything_fails() {
        let mut b = CircuitBreaker::new(config());
        for t in 0..3 {
            assert!(b.admits(t));
            let _ = b.on_dispatch(t);
            b.on_result(t, None, false, 100);
        }
        assert_eq!(b.state(), BreakerState::Closed, "3 < min_samples of 4");
        assert_eq!(b.opens(), 0);
    }

    #[test]
    fn trips_open_on_failure_rate_and_refuses_until_cooldown() {
        let mut b = CircuitBreaker::new(config());
        for t in 0..4 {
            b.on_result(t, None, false, 100);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        assert!(!b.admits(10), "open circuits refuse dispatch");
        assert!(!b.admits(1_002), "cooldown counts from the trip instant");
        assert!(b.admits(3 + 1_000), "cooldown elapsed: half-open probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.half_opens(), 1);
    }

    #[test]
    fn half_open_admits_a_bounded_number_of_probes() {
        let mut b = CircuitBreaker::new(config());
        for t in 0..4 {
            b.on_result(t, None, false, 100);
        }
        assert!(b.admits(2_000));
        let _ = b.on_dispatch(2_000);
        assert!(b.admits(2_000), "second probe slot free");
        let _ = b.on_dispatch(2_000);
        assert!(!b.admits(2_000), "probe budget (2) exhausted");
    }

    #[test]
    fn successful_probes_close_and_record_open_duration() {
        let mut b = CircuitBreaker::new(config());
        for t in 0..4 {
            b.on_result(t, None, false, 100);
        }
        assert!(b.admits(5_000));
        let probe = b.on_dispatch(5_000);
        b.on_result(5_100, probe, true, 100);
        assert_eq!(b.state(), BreakerState::HalfOpen, "one success of two");
        assert!(b.admits(5_100));
        let probe = b.on_dispatch(5_100);
        b.on_result(5_200, probe, true, 100);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.closes(), 1);
        // The window restarted: old failures do not re-trip the circuit.
        b.on_result(5_300, None, false, 100);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn a_failed_probe_reopens_and_restarts_the_cooldown() {
        let mut b = CircuitBreaker::new(config());
        for t in 0..4 {
            b.on_result(t, None, false, 100);
        }
        assert!(b.admits(2_000));
        let probe = b.on_dispatch(2_000);
        b.on_result(2_050, probe, false, 100);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2, "the re-open counts");
        assert!(!b.admits(2_900), "new cooldown from the re-open");
        assert!(b.admits(3_050));
    }

    #[test]
    fn slow_calls_count_against_the_latency_profile() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            slow_call_ns: 1_000,
            ..config()
        });
        // Every response is ok, but at 10× the slow-call bound.
        for t in 0..4 {
            b.on_result(t, None, true, 10_000);
        }
        assert_eq!(
            b.state(),
            BreakerState::Open,
            "a dragging provider trips the breaker without a single failure"
        );
    }

    #[test]
    fn old_outcomes_age_out_of_the_window() {
        let mut b = CircuitBreaker::new(config());
        // Phase A: 3 failures spread thinly enough that no judged
        // prefix reaches 50% bad (peak is 3/8).
        for (t, ok) in [true, true, true, false, true, false, true, false]
            .into_iter()
            .enumerate()
        {
            b.on_result(t as u64, None, ok, 100);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // Phase B: 8 successes slide every phase-A failure out of the
        // 8-slot window.
        for t in 8..16 {
            b.on_result(t, None, true, 100);
        }
        // Phase C: 3 fresh failures. A correctly aged window holds
        // 5 ok + 3 bad = 37.5%; if eviction leaked, the 6 lifetime
        // failures would read as 75% and trip.
        for t in 16..19 {
            b.on_result(t, None, false, 100);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.opens(), 0);
    }

    #[test]
    fn stale_results_landing_while_open_are_ignored() {
        let mut b = CircuitBreaker::new(config());
        for t in 0..4 {
            b.on_result(t, None, false, 100);
        }
        assert_eq!(b.opens(), 1);
        b.on_result(10, None, false, 100);
        b.on_result(11, None, true, 100);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1, "stale evidence neither re-trips nor closes");
    }
    #[test]
    fn cancelled_probes_release_their_reservation() {
        // The blacklist bug: a probe whose request resolved first
        // (hedge win, deadline) never reaches on_result, so its slot
        // leaked — once every probe of a round was cancelled, admits()
        // answered false forever. Cancellation must free the slot.
        let mut b = CircuitBreaker::new(config());
        for t in 0..4 {
            b.on_result(t, None, false, 100);
        }
        assert!(b.admits(2_000));
        let p1 = b.on_dispatch(2_000);
        let p2 = b.on_dispatch(2_000);
        assert!(!b.admits(2_000), "probe budget (2) exhausted");
        b.on_cancel(p1);
        b.on_cancel(p2);
        assert!(
            b.admits(9_999_999),
            "cancelled probes must not blacklist the provider"
        );
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Fresh probes can still decide the round normally.
        let q1 = b.on_dispatch(2_100);
        b.on_result(2_200, q1, true, 100);
        let q2 = b.on_dispatch(2_200);
        b.on_result(2_300, q2, true, 100);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn stale_tokens_from_an_earlier_round_do_not_touch_a_later_one() {
        let mut b = CircuitBreaker::new(config());
        for t in 0..4 {
            b.on_result(t, None, false, 100);
        }
        // Round 1: one probe fails, re-opening the circuit while its
        // sibling still flies.
        assert!(b.admits(2_000));
        let stale = b.on_dispatch(2_000);
        let failed = b.on_dispatch(2_000);
        b.on_result(2_050, failed, false, 100);
        assert_eq!(b.state(), BreakerState::Open);
        // Round 2 after the new cooldown: fill the probe budget.
        assert!(b.admits(3_100));
        let _ = b.on_dispatch(3_100);
        let _ = b.on_dispatch(3_100);
        assert!(!b.admits(3_100));
        // Round 1's straggler being cancelled (or completing) must not
        // free — or decide — round 2's slots.
        b.on_cancel(stale);
        assert!(!b.admits(3_100), "stale cancel freed a round-2 slot");
        b.on_result(3_150, stale, true, 100);
        assert_eq!(
            b.state(),
            BreakerState::HalfOpen,
            "a stale success must not count toward round 2"
        );
    }

    #[test]
    fn pre_trip_results_landing_half_open_are_ignored() {
        let mut b = CircuitBreaker::new(config());
        for t in 0..4 {
            b.on_result(t, None, false, 100);
        }
        assert!(b.admits(2_000), "cooldown elapsed: half-open");
        // A slow pre-trip attempt (dispatched while Closed: no token)
        // lands mid-probe. The window restarted at the trip, so it
        // neither re-trips the circuit nor consumes a probe slot.
        b.on_result(2_010, None, false, 100);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.opens(), 1);
        let _ = b.on_dispatch(2_020);
        let _ = b.on_dispatch(2_020);
        assert!(!b.admits(2_020), "both real probe slots still reserved");
    }
}
