//! Sharded execution of the event-loop runtime on the campaign
//! worker pool.
//!
//! One [`ServiceRuntime`] keeps millions of requests in flight but runs
//! every event on a single thread; this module is the scale-out layer
//! the ROADMAP calls "past one node": [`ShardedRuntime`] splits one
//! open-loop workload across `N` per-shard deterministic event loops,
//! runs them on the persistent campaign [`WorkerPool`] (via
//! [`parallel_tasks`], the jobs-invariant scheduler from PRs 2–3), and
//! merges the per-shard ledgers back into one report.
//!
//! **Shard membership is strided**: shard `s` of `N` owns request ids
//! `{s, s + N, s + 2N, ...}` — the id-space image of a round-robin
//! front door over `N` nodes. Determinism rests on the runtime's
//! order-free construction (see [`runtime`](crate::runtime)): every
//! per-request quantity is a pure function of `(seed, id)`, arrival
//! times come from one shared precomputed table, and ledgers are kept
//! in canonical `(end_ns, id)` order. Under a configuration where
//! requests do not *couple* through shared limits — admission caps not
//! binding, no cross-request provider state — the merged ledger is
//! **bit-identical for any shard count** (`ledger_digest` at
//! `--shards 1, 2, 8` all agree, and all agree with the single-loop
//! runtime). When couplings do bind (queueing, wear-out, breakers
//! reacting to shard-local history), each shard count is its own
//! deterministic system: the digest is still bit-identical for a fixed
//! `(seed, shards)` at **any `--jobs`**, which is the invariant the
//! smoke gate enforces.
//!
//! Each shard gets its **own provider pool** (built by the factory the
//! runtime was constructed with) and its own breakers: sharing one
//! `SimProvider`'s call counter across threads would make wear-out
//! depend on OS scheduling, and a real deployment's nodes hold
//! per-node circuit state anyway.

use std::sync::Arc;

use redundancy_core::obs::telemetry::{self, Counter};
use redundancy_sim::parallel::parallel_tasks;

use crate::runtime::{PlannedProvider, RuntimeConfig, RuntimeReport, ServiceRuntime, Workload};

/// Builds one shard's private provider pool. Called once per shard per
/// run; must be deterministic (same pool every call) for the sharding
/// invariants to hold.
pub type ProviderFactory = dyn Fn() -> Vec<Arc<dyn PlannedProvider>> + Send + Sync;

/// N per-shard event loops over one workload, merged into one report.
pub struct ShardedRuntime {
    factory: Box<ProviderFactory>,
    config: RuntimeConfig,
    shards: usize,
}

impl ShardedRuntime {
    /// Creates a runtime of `shards` loops. `config` describes the
    /// *whole* system: `max_in_flight` and `queue_capacity` are split
    /// exactly across shards (floor, remainder to the first shards, min
    /// 1 in-flight slot per loop); policy, deadline, and breaker config
    /// apply per shard as-is.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or the factory returns an empty
    /// provider pool.
    #[must_use]
    pub fn new(
        shards: usize,
        config: RuntimeConfig,
        factory: impl Fn() -> Vec<Arc<dyn PlannedProvider>> + Send + Sync + 'static,
    ) -> Self {
        assert!(shards >= 1, "a sharded runtime needs at least one shard");
        assert!(
            !factory().is_empty(),
            "the provider factory must build at least one provider"
        );
        ShardedRuntime {
            factory: Box::new(factory),
            config,
            shards,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The limits of shard `shard` (`< shards`): the system-wide
    /// admission cap and queue capacity are distributed *exactly* —
    /// every shard gets `total / shards`, the first `total % shards`
    /// shards one more — so the aggregate equals the configured limit
    /// and the sharded system never out-admits the single loop. The one
    /// exception: each loop keeps at least one in-flight slot (a zero
    /// admission cap would deadlock it), so when
    /// `max_in_flight < shards` the aggregate is `shards` instead.
    #[must_use]
    pub fn shard_config(&self, shard: usize) -> RuntimeConfig {
        RuntimeConfig {
            max_in_flight: split_exact(self.config.max_in_flight, self.shards, shard).max(1),
            queue_capacity: split_exact(self.config.queue_capacity, self.shards, shard),
            ..self.config
        }
    }

    /// Runs every shard on the calling thread. Identical output to
    /// [`run_jobs`](Self::run_jobs) at any job count.
    #[must_use]
    pub fn run(&self, workload: &Workload, seed: u64) -> RuntimeReport {
        self.run_jobs(workload, seed, 1)
    }

    /// Runs the shards across up to `jobs` workers of the campaign
    /// pool. The arrival schedule is precomputed once and shared;
    /// each shard drives its strided id slice to completion
    /// independently; ledgers merge in canonical `(end_ns, id)` order.
    /// The merged report is bit-identical for any `jobs`.
    #[must_use]
    pub fn run_jobs(&self, workload: &Workload, seed: u64, jobs: usize) -> RuntimeReport {
        let arrivals: Arc<Vec<u64>> =
            Arc::new(workload.arrival.arrival_times(workload.requests, seed));
        let step = self.shards as u64;
        let tasks: Vec<_> = (0..self.shards)
            .map(|shard| {
                let arrivals = Arc::clone(&arrivals);
                let workload = workload.clone();
                let factory = &self.factory;
                let shard_config = self.shard_config(shard);
                move || {
                    telemetry::add(Counter::ServiceShardRuns, 1);
                    let runtime = ServiceRuntime::new(factory(), shard_config);
                    runtime.run_slice(&workload, seed, &arrivals, shard as u64, step)
                }
            })
            .collect();
        merge_reports(parallel_tasks(jobs, tasks))
    }
}

/// `item`'s share when `total` is split exactly across `parts`: floor
/// for everyone, the remainder handed to the first `total % parts`.
fn split_exact(total: usize, parts: usize, item: usize) -> usize {
    total / parts + usize::from(item < total % parts)
}

/// Merges per-shard reports: ledgers k-way merged on `(end_ns, id)`
/// (each input is already canonically sorted), tallies summed, makespan
/// the maximum, peaks summed (an aggregate capacity footprint across
/// loops, not one loop's high-water mark).
fn merge_reports(reports: Vec<RuntimeReport>) -> RuntimeReport {
    let mut merged = RuntimeReport::default();
    let total: usize = reports.iter().map(|r| r.ledger.len()).sum();
    merged.ledger.reserve(total);
    let mut cursors: Vec<(std::vec::IntoIter<_>, Option<crate::runtime::RequestRecord>)> =
        Vec::new();
    for report in reports {
        merged.makespan_ns = merged.makespan_ns.max(report.makespan_ns);
        merged.ok += report.ok;
        merged.failed += report.failed;
        merged.rejected += report.rejected;
        merged.deadline_exceeded += report.deadline_exceeded;
        merged.hedges_fired += report.hedges_fired;
        merged.hedges_won += report.hedges_won;
        merged.hedges_cancelled += report.hedges_cancelled;
        merged.failovers += report.failovers;
        merged.peak_in_flight += report.peak_in_flight;
        merged.peak_queue_depth += report.peak_queue_depth;
        merged.attempts_failed += report.attempts_failed;
        merged.breaker_opens += report.breaker_opens;
        merged.breaker_skips += report.breaker_skips;
        merged.breaker_shed += report.breaker_shed;
        let mut iter = report.ledger.into_iter();
        let head = iter.next();
        if head.is_some() {
            cursors.push((iter, head));
        }
    }
    // K-way merge: k is the shard count (small), so a linear scan for
    // the minimum head beats heap bookkeeping.
    while !cursors.is_empty() {
        let mut best = 0;
        for i in 1..cursors.len() {
            let a = cursors[i].1.as_ref().expect("cursor heads are live");
            let b = cursors[best].1.as_ref().expect("cursor heads are live");
            if (a.end_ns, a.id) < (b.end_ns, b.id) {
                best = i;
            }
        }
        let (ref mut iter, ref mut head) = cursors[best];
        let record = head.take().expect("cursor heads are live");
        merged.ledger.push(record);
        *head = iter.next();
        if head.is_none() {
            cursors.swap_remove(best);
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::SimProvider;
    use crate::registry::InterfaceId;
    use crate::runtime::{RequestOutcome, RequestPolicy};
    use crate::value::Value;
    use crate::{ArrivalProcess, BreakerConfig};

    fn spiky_flaky_pool() -> Vec<Arc<dyn PlannedProvider>> {
        ["a", "b", "c"]
            .iter()
            .map(|id| {
                Arc::new(
                    SimProvider::builder(*id, InterfaceId::new("echo"))
                        .fail_prob(0.05)
                        .latency(1_000, 100)
                        .latency_spike(0.03, 40_000)
                        .operation("ping", |_, _| Ok(Value::Str("pong".into())))
                        .build(),
                ) as Arc<dyn PlannedProvider>
            })
            .collect()
    }

    fn workload(requests: u64) -> Workload {
        Workload {
            requests,
            arrival: ArrivalProcess::Poisson { mean_gap_ns: 1_000 },
            operation: "ping".into(),
            args: vec![],
        }
    }

    /// Generous caps + stateless providers + no breaker: the order-free
    /// regime where the digest must not move with the shard count.
    fn uncoupled_config() -> RuntimeConfig {
        RuntimeConfig {
            policy: RequestPolicy::Hedged {
                delay_ns: 3_000,
                max_hedges: 2,
            },
            deadline_ns: 0,
            max_in_flight: 1 << 20,
            queue_capacity: 0,
            breaker: None,
        }
    }

    #[test]
    fn digest_is_bit_identical_at_any_shard_count() {
        let load = workload(4_000);
        let single = ServiceRuntime::new(spiky_flaky_pool(), uncoupled_config())
            .run(&load, 0x5eed_2008)
            .ledger_digest();
        for shards in [1usize, 2, 8] {
            let report = ShardedRuntime::new(shards, uncoupled_config(), spiky_flaky_pool)
                .run(&load, 0x5eed_2008);
            assert_eq!(
                report.ledger_digest(),
                single,
                "shards={shards} must reproduce the single-loop digest"
            );
            assert_eq!(report.ledger.len(), 4_000);
        }
    }

    #[test]
    fn merged_report_is_jobs_invariant() {
        let load = workload(3_000);
        let build = || ShardedRuntime::new(8, uncoupled_config(), spiky_flaky_pool);
        let baseline = build().run_jobs(&load, 7, 1);
        for jobs in [2usize, 4, 8] {
            let report = build().run_jobs(&load, 7, jobs);
            assert_eq!(report, baseline, "jobs={jobs} changed the merged report");
        }
    }

    #[test]
    fn merged_ledger_is_canonically_ordered_and_complete() {
        let load = workload(2_000);
        let report = ShardedRuntime::new(4, uncoupled_config(), spiky_flaky_pool).run(&load, 99);
        assert!(report
            .ledger
            .windows(2)
            .all(|w| (w[0].end_ns, w[0].id) <= (w[1].end_ns, w[1].id)));
        let mut ids: Vec<u64> = report.ledger.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 2_000, "every id resolves exactly once");
        assert_eq!(
            report.ok + report.failed + report.rejected + report.deadline_exceeded,
            2_000
        );
    }

    #[test]
    fn shards_do_not_phase_lock_onto_one_provider() {
        // Regression for the offset bug: with `id % providers` as the
        // rotation start and 3 shards × 3 providers, shard 0 would
        // start *every* request on provider 0. The hashed offset must
        // spread each shard's wins across all providers.
        let load = workload(3_000);
        let config = RuntimeConfig {
            policy: RequestPolicy::Single,
            ..uncoupled_config()
        };
        let report = ShardedRuntime::new(3, config, spiky_flaky_pool).run(&load, 5);
        for shard in 0..3u64 {
            let mut per_provider = [0u64; 3];
            for record in report.ledger.iter().filter(|r| r.id % 3 == shard) {
                if let RequestOutcome::Ok { provider, .. } = record.outcome {
                    per_provider[provider as usize] += 1;
                }
            }
            let total: u64 = per_provider.iter().sum();
            for (idx, &count) in per_provider.iter().enumerate() {
                assert!(
                    count * 5 > total,
                    "shard {shard}: provider {idx} got {count}/{total} primaries — \
                     rotation is phase-locked"
                );
            }
        }
    }

    #[test]
    fn breaker_runs_are_deterministic_per_shard_count() {
        let all_sick = || -> Vec<Arc<dyn PlannedProvider>> {
            vec![Arc::new(
                SimProvider::builder("sick", InterfaceId::new("echo"))
                    .fail_prob(1.0)
                    .latency(1_000, 100)
                    .operation("ping", |_, _| Ok(Value::Str("pong".into())))
                    .build(),
            )]
        };
        let config = RuntimeConfig {
            breaker: Some(BreakerConfig {
                window: 16,
                failure_pct: 50,
                min_samples: 8,
                cooldown_ns: 1_000_000,
                half_open_probes: 2,
                slow_call_ns: 0,
            }),
            ..uncoupled_config()
        };
        let load = workload(2_000);
        let build = || ShardedRuntime::new(4, config, all_sick);
        let first = build().run_jobs(&load, 13, 1);
        let second = build().run_jobs(&load, 13, 4);
        assert_eq!(first, second, "breaker runs must stay jobs-invariant");
        assert!(first.breaker_opens > 0, "a dead provider must trip");
        assert!(
            first.breaker_shed > 0,
            "with its only provider Open, arrivals are shed at the front door"
        );
        assert_eq!(
            first.ok + first.failed + first.rejected + first.deadline_exceeded,
            2_000
        );
    }

    #[test]
    fn split_limits_cover_the_whole_system_exactly() {
        let rt = ShardedRuntime::new(
            3,
            RuntimeConfig {
                max_in_flight: 8,
                queue_capacity: 4,
                ..RuntimeConfig::default()
            },
            spiky_flaky_pool,
        );
        // Floor plus remainder-to-the-first: 8 = 3 + 3 + 2, 4 = 2+1+1 —
        // the aggregate equals the global limit (the old div_ceil split
        // gave 3 + 3 + 3 = 9, out-admitting the single loop).
        let caps: Vec<usize> = (0..3).map(|s| rt.shard_config(s).max_in_flight).collect();
        assert_eq!(caps, vec![3, 3, 2]);
        assert_eq!(caps.iter().sum::<usize>(), 8, "aggregate admission cap");
        let queues: Vec<usize> = (0..3).map(|s| rt.shard_config(s).queue_capacity).collect();
        assert_eq!(queues, vec![2, 1, 1]);
        assert_eq!(queues.iter().sum::<usize>(), 4, "aggregate queue bound");
        // A cap smaller than the shard count still leaves each loop
        // one slot — an admission cap of zero would deadlock. This is
        // the one case where the aggregate (= shards) exceeds the
        // configured limit.
        let tiny = ShardedRuntime::new(
            4,
            RuntimeConfig {
                max_in_flight: 2,
                ..RuntimeConfig::default()
            },
            spiky_flaky_pool,
        );
        for shard in 0..4 {
            assert_eq!(tiny.shard_config(shard).max_in_flight, 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedRuntime::new(0, RuntimeConfig::default(), spiky_flaky_pool);
    }
}
