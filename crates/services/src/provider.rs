//! Service providers: independently operated implementations of an
//! interface, with reliability and latency profiles.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use redundancy_core::context::ExecContext;
use redundancy_core::rng::SplitMix64;

use crate::registry::InterfaceId;
use crate::value::Value;

/// A failure reported by a service invocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ServiceError {
    /// The provider did not respond (server or network down).
    Unavailable,
    /// The provider responded with a fault.
    Fault(String),
    /// The operation does not exist on this provider.
    NoSuchOperation(String),
    /// The arguments were rejected.
    BadRequest(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Unavailable => f.write_str("service unavailable"),
            ServiceError::Fault(msg) => write!(f, "service fault: {msg}"),
            ServiceError::NoSuchOperation(op) => write!(f, "no such operation: {op}"),
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A service implementation.
pub trait Provider: Send + Sync {
    /// Unique provider id (e.g. `"weather.acme.v2"`).
    fn id(&self) -> &str;

    /// The interface this provider implements.
    fn interface(&self) -> &InterfaceId;

    /// Invokes an operation.
    ///
    /// # Errors
    ///
    /// Returns a [`ServiceError`] for unavailability, faults, unknown
    /// operations or bad requests. Wrong *results* are returned as `Ok` —
    /// catching those requires adjudication upstream.
    fn invoke(
        &self,
        operation: &str,
        args: &[Value],
        ctx: &mut ExecContext,
    ) -> Result<Value, ServiceError>;
}

type OpHandler =
    Box<dyn Fn(&[Value], &mut SplitMix64) -> Result<Value, ServiceError> + Send + Sync>;

/// A fully decided invocation: how long it will take (virtual ns) and
/// what it will return, computed *before* any time passes.
///
/// The synchronous [`Provider::invoke`] path charges the latency to its
/// `ExecContext` immediately; the event-loop runtime instead schedules a
/// completion event `latency_ns` in the virtual future and keeps
/// thousands of such planned invokes in flight at once. Both paths draw
/// from the same RNG stream in the same order, so a provider behaves
/// identically whichever engine drives it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedInvoke {
    /// Virtual nanoseconds until the response lands.
    pub latency_ns: u64,
    /// The response (wrong *results* are still `Ok` — adjudication is
    /// upstream's job).
    pub result: Result<Value, ServiceError>,
}

/// A simulated provider built from per-operation closures and a
/// reliability/latency profile.
///
/// # Examples
///
/// ```
/// use redundancy_core::context::ExecContext;
/// use redundancy_services::provider::{Provider, SimProvider};
/// use redundancy_services::registry::InterfaceId;
/// use redundancy_services::value::Value;
///
/// let provider = SimProvider::builder("adder.v1", InterfaceId::new("math"))
///     .operation("add", |args, _rng| {
///         let a = args[0].as_int().unwrap();
///         let b = args[1].as_int().unwrap();
///         Ok(Value::Int(a + b))
///     })
///     .build();
/// let mut ctx = ExecContext::new(0);
/// let out = provider.invoke("add", &[Value::Int(2), Value::Int(3)], &mut ctx);
/// assert_eq!(out, Ok(Value::Int(5)));
/// ```
pub struct SimProvider {
    id: String,
    interface: InterfaceId,
    operations: HashMap<String, OpHandler>,
    fail_prob: f64,
    latency_work: u64,
    latency_jitter: u64,
    /// Probability that an invocation hits a latency spike.
    spike_prob: f64,
    /// Extra virtual ns a spiked invocation costs.
    spike_ns: u64,
    /// Invocations served (drives optional wear-out).
    calls: AtomicU64,
    /// Per-call increase in failure probability (service degradation).
    wear_out: f64,
}

impl SimProvider {
    /// Starts building a provider.
    #[must_use]
    pub fn builder(id: impl Into<String>, interface: InterfaceId) -> SimProviderBuilder {
        SimProviderBuilder {
            inner: SimProvider {
                id: id.into(),
                interface,
                operations: HashMap::new(),
                fail_prob: 0.0,
                latency_work: 10,
                latency_jitter: 0,
                spike_prob: 0.0,
                spike_ns: 0,
                calls: AtomicU64::new(0),
                wear_out: 0.0,
            },
        }
    }

    /// Invocations served so far.
    #[must_use]
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// The provider's current effective failure probability.
    #[must_use]
    pub fn effective_fail_prob(&self) -> f64 {
        (self.fail_prob + self.wear_out * self.calls() as f64).min(1.0)
    }

    /// Decides one invocation — latency and response — without charging
    /// any `ExecContext`, drawing all randomness from `rng`.
    ///
    /// This is the single source of truth for the provider's behavior:
    /// [`Provider::invoke`] delegates here and then charges the planned
    /// latency synchronously, while the event-loop runtime schedules the
    /// completion in virtual time. The RNG draw order is pinned (jitter
    /// if configured, spike if configured, failure, handler split) so
    /// seeded results never drift between the two engines.
    pub fn plan_invoke(
        &self,
        operation: &str,
        args: &[Value],
        rng: &mut SplitMix64,
    ) -> PlannedInvoke {
        let Some(handler) = self.operations.get(operation) else {
            // Unknown operations are rejected before any time passes,
            // any draw happens, or the call counter moves.
            return PlannedInvoke {
                latency_ns: 0,
                result: Err(ServiceError::NoSuchOperation(operation.to_owned())),
            };
        };
        let fail_prob = self.effective_fail_prob();
        self.calls.fetch_add(1, Ordering::Relaxed);
        // Latency: base work plus jitter plus the occasional spike.
        let jitter = if self.latency_jitter > 0 {
            rng.range_u64(0, self.latency_jitter + 1)
        } else {
            0
        };
        let spike = if self.spike_prob > 0.0 && rng.chance(self.spike_prob) {
            self.spike_ns
        } else {
            0
        };
        let latency_ns = self.latency_work + jitter + spike;
        if rng.chance(fail_prob) {
            return PlannedInvoke {
                latency_ns,
                result: Err(ServiceError::Unavailable),
            };
        }
        let mut handler_rng = rng.split();
        PlannedInvoke {
            latency_ns,
            result: handler(args, &mut handler_rng),
        }
    }
}

impl Provider for SimProvider {
    fn id(&self) -> &str {
        &self.id
    }

    fn interface(&self) -> &InterfaceId {
        &self.interface
    }

    fn invoke(
        &self,
        operation: &str,
        args: &[Value],
        ctx: &mut ExecContext,
    ) -> Result<Value, ServiceError> {
        let planned = self.plan_invoke(operation, args, ctx.rng());
        ctx.advance_ns(planned.latency_ns);
        planned.result
    }
}

/// Builder for [`SimProvider`].
pub struct SimProviderBuilder {
    inner: SimProvider,
}

impl SimProviderBuilder {
    /// Adds an operation.
    #[must_use]
    pub fn operation<F>(mut self, name: impl Into<String>, handler: F) -> Self
    where
        F: Fn(&[Value], &mut SplitMix64) -> Result<Value, ServiceError> + Send + Sync + 'static,
    {
        self.inner.operations.insert(name.into(), Box::new(handler));
        self
    }

    /// Sets the per-invocation failure probability (unavailability).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn fail_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.inner.fail_prob = p;
        self
    }

    /// Sets the base latency (virtual ns) and jitter.
    #[must_use]
    pub fn latency(mut self, base: u64, jitter: u64) -> Self {
        self.inner.latency_work = base;
        self.inner.latency_jitter = jitter;
        self
    }

    /// Makes a fraction `prob` of invocations cost `extra_ns` more —
    /// the heavy-tailed latency profile hedged requests exist to beat.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`.
    #[must_use]
    pub fn latency_spike(mut self, prob: f64, extra_ns: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0, 1]");
        self.inner.spike_prob = prob;
        self.inner.spike_ns = extra_ns;
        self
    }

    /// Sets per-call degradation of the failure probability.
    #[must_use]
    pub fn wear_out(mut self, per_call: f64) -> Self {
        self.inner.wear_out = per_call;
        self
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(self) -> SimProvider {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder(id: &str, fail: f64) -> SimProvider {
        SimProvider::builder(id, InterfaceId::new("math"))
            .fail_prob(fail)
            .operation("add", |args, _| {
                let a = args
                    .first()
                    .and_then(Value::as_int)
                    .ok_or_else(|| ServiceError::BadRequest("need int".into()))?;
                let b = args
                    .get(1)
                    .and_then(Value::as_int)
                    .ok_or_else(|| ServiceError::BadRequest("need int".into()))?;
                Ok(Value::Int(a + b))
            })
            .build()
    }

    #[test]
    fn invoke_dispatches_operations() {
        let p = adder("a1", 0.0);
        let mut ctx = ExecContext::new(1);
        assert_eq!(
            p.invoke("add", &[Value::Int(1), Value::Int(2)], &mut ctx),
            Ok(Value::Int(3))
        );
        assert_eq!(
            p.invoke("mul", &[], &mut ctx),
            Err(ServiceError::NoSuchOperation("mul".into()))
        );
    }

    #[test]
    fn bad_request_propagates() {
        let p = adder("a1", 0.0);
        let mut ctx = ExecContext::new(1);
        assert!(matches!(
            p.invoke("add", &[Value::Null, Value::Null], &mut ctx),
            Err(ServiceError::BadRequest(_))
        ));
    }

    #[test]
    fn failure_rate_is_calibrated() {
        let p = adder("flaky", 0.3);
        let mut ctx = ExecContext::new(2);
        let failures = (0..10_000)
            .filter(|_| {
                p.invoke("add", &[Value::Int(1), Value::Int(1)], &mut ctx)
                    .is_err()
            })
            .count();
        let rate = failures as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn latency_advances_virtual_time() {
        let p = SimProvider::builder("slow", InterfaceId::new("x"))
            .latency(500, 0)
            .operation("op", |_, _| Ok(Value::Null))
            .build();
        let mut ctx = ExecContext::new(1);
        let _ = p.invoke("op", &[], &mut ctx);
        assert_eq!(ctx.cost().virtual_ns, 500);
    }

    #[test]
    fn wear_out_degrades_provider() {
        let p = SimProvider::builder("aging", InterfaceId::new("x"))
            .wear_out(0.001)
            .operation("op", |_, _| Ok(Value::Null))
            .build();
        let mut ctx = ExecContext::new(3);
        assert!((p.effective_fail_prob() - 0.0).abs() < f64::EPSILON);
        for _ in 0..500 {
            let _ = p.invoke("op", &[], &mut ctx);
        }
        assert!(p.effective_fail_prob() > 0.4);
        assert_eq!(p.calls(), 500);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_fail_prob_panics() {
        let _ = SimProvider::builder("x", InterfaceId::new("i")).fail_prob(1.5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_spike_prob_panics() {
        let _ = SimProvider::builder("x", InterfaceId::new("i")).latency_spike(-0.1, 10);
    }

    #[test]
    fn latency_spikes_fatten_the_tail() {
        let p = SimProvider::builder("spiky", InterfaceId::new("x"))
            .latency(100, 0)
            .latency_spike(0.1, 10_000)
            .operation("op", |_, _| Ok(Value::Null))
            .build();
        let mut rng = SplitMix64::new(7);
        let mut spiked = 0usize;
        for _ in 0..10_000 {
            let planned = p.plan_invoke("op", &[], &mut rng);
            assert!(planned.latency_ns == 100 || planned.latency_ns == 10_100);
            if planned.latency_ns > 100 {
                spiked += 1;
            }
        }
        let rate = spiked as f64 / 10_000.0;
        assert!((rate - 0.1).abs() < 0.02, "observed spike rate {rate}");
    }

    #[test]
    fn plan_and_invoke_agree_on_the_same_stream() {
        // The synchronous path must be plan + charge, nothing more: the
        // same seed gives the same responses and total virtual time.
        let build = || {
            SimProvider::builder("twin", InterfaceId::new("x"))
                .fail_prob(0.3)
                .latency(200, 50)
                .operation("op", |_, rng| Ok(Value::Int(rng.range_u64(0, 100) as i64)))
                .build()
        };
        // ExecContext::new(seed) seeds SplitMix64::new(seed), so a bare
        // rng and a context starting from the same seed share a stream:
        // plan through one, invoke through the other, compare exactly.
        let (planner, invoker) = (build(), build());
        let mut plan_rng = SplitMix64::new(9);
        let mut ctx = ExecContext::new(9);
        let mut total_ns = 0u64;
        for _ in 0..500 {
            let planned = planner.plan_invoke("op", &[], &mut plan_rng);
            let direct = invoker.invoke("op", &[], &mut ctx);
            assert_eq!(planned.result, direct);
            total_ns += planned.latency_ns;
        }
        assert_eq!(ctx.cost().virtual_ns, total_ns);
        assert_eq!(planner.calls(), invoker.calls());
    }

    #[test]
    fn unknown_operation_plans_without_cost_or_call_count() {
        let p = adder("a1", 0.0);
        let mut rng = SplitMix64::new(1);
        let planned = p.plan_invoke("mul", &[], &mut rng);
        assert_eq!(planned.latency_ns, 0);
        assert_eq!(
            planned.result,
            Err(ServiceError::NoSuchOperation("mul".into()))
        );
        assert_eq!(p.calls(), 0);
    }
}
