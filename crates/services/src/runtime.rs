//! The deterministic event-loop service runtime.
//!
//! [`Engine::run`](crate::process::Engine) executes one synchronous
//! request at a time; this module is its scaled counterpart: a
//! discrete-event loop (no wall clock, no threads, no tokio — one
//! seeded RNG stream and an [`EventQueue`]) that keeps thousands to
//! millions of requests in flight at once and resolves each under a
//! *request-level redundancy policy*. The paper's Figure-1 patterns map
//! directly:
//!
//! - **parallel selection** → [`RequestPolicy::Hedged`]: duplicate the
//!   request to another provider after a hedge delay (or immediately on
//!   failure), first acceptable response wins, outstanding attempts are
//!   cancelled;
//! - **sequential alternatives** → [`RequestPolicy::Failover`]: try
//!   providers one after another on a [`Backoff`] schedule, inside a
//!   per-request deadline budget;
//! - plus the operational guards redundancy needs under load:
//!   **admission control** (a bounded number of requests executes
//!   concurrently), a **bounded backpressure queue** in front of it,
//!   and **load shedding** once that queue is full.
//!
//! Every seam reports into `obs::telemetry` (arrivals, admissions,
//! hedges fired/won/cancelled, failovers, queue depth and latency
//! histograms), so the PR-6 flight recorder and Prometheus export cover
//! this runtime exactly as they cover the Monte-Carlo engine. The
//! per-request [`RequestRecord`] ledger is bit-identical for a given
//! seed — the determinism tests hash it.
//!
//! Two structural choices make the loop *shardable*
//! ([`ShardedRuntime`](crate::shard::ShardedRuntime) splits one
//! workload across per-shard loops on the campaign worker pool):
//!
//! - every per-request random quantity — arrival gap
//!   ([`ArrivalProcess::arrival_times`] precomputes the schedule from
//!   per-id streams), initial provider offset, and attempt draws — is a
//!   pure function of `(seed, id)`, never of how many other requests
//!   ran first;
//! - the ledger is kept in canonical *resolution order*: sorted by
//!   `(end_ns, id)`, a total order independent of event interleaving,
//!   so merged shard ledgers hash identically to the single loop's.
//!
//! Optionally each provider sits behind a per-run
//! [`CircuitBreaker`](crate::breaker::CircuitBreaker)
//! ([`RuntimeConfig::breaker`]): Open providers are skipped by hedges
//! and failover rotations, and a request arriving while *every*
//! provider is Open is shed at the front door.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use redundancy_core::obs::telemetry::{self, Counter, Timer};
use redundancy_core::rng::SplitMix64;

use crate::arrival::ArrivalProcess;
use crate::breaker::{BreakerConfig, CircuitBreaker, ProbeToken};
use crate::clock::EventQueue;
use crate::provider::{PlannedInvoke, Provider, SimProvider};
use crate::recovery::Backoff;
use crate::value::Value;

/// A provider the event loop can drive: decides an invocation's latency
/// and response up front ([`PlannedInvoke`]) so the loop can schedule
/// the completion in virtual time instead of blocking on it.
pub trait PlannedProvider: Send + Sync {
    /// Unique provider id.
    fn id(&self) -> &str;

    /// Decides one invocation without any time passing.
    fn plan(&self, operation: &str, args: &[Value], rng: &mut SplitMix64) -> PlannedInvoke;
}

impl PlannedProvider for SimProvider {
    fn id(&self) -> &str {
        Provider::id(self)
    }

    fn plan(&self, operation: &str, args: &[Value], rng: &mut SplitMix64) -> PlannedInvoke {
        self.plan_invoke(operation, args, rng)
    }
}

/// How the runtime spends redundancy on each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestPolicy {
    /// One attempt on one provider; its failure is the request's.
    Single,
    /// Figure-1 parallel selection at request granularity: after
    /// `delay_ns` without a response (or immediately when an attempt
    /// fails), duplicate the request to the next provider, up to
    /// `max_hedges` extras. First acceptable response wins; attempts
    /// still in flight are cancelled.
    Hedged {
        /// Virtual ns to wait before each speculative duplicate.
        delay_ns: u64,
        /// Maximum hedge attempts on top of the primary.
        max_hedges: u32,
    },
    /// Figure-1 sequential alternatives: on failure, try the next
    /// provider after a backoff pause, up to `max_attempts` total,
    /// all inside the request's deadline budget.
    Failover {
        /// Total attempts allowed (primary included, ≥ 1).
        max_attempts: u32,
        /// Virtual-time pause schedule between attempts.
        backoff: Backoff,
    },
}

/// Event-loop limits and policy for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// The redundancy policy applied to every request.
    pub policy: RequestPolicy,
    /// Per-request budget in virtual ns, counted from *arrival* (so it
    /// covers queueing). `0` disables deadlines.
    pub deadline_ns: u64,
    /// Admission control: requests executing concurrently (≥ 1).
    pub max_in_flight: usize,
    /// Bounded backpressure queue in front of admission; arrivals
    /// beyond `max_in_flight + queue_capacity` are shed.
    pub queue_capacity: usize,
    /// Per-provider circuit breakers (`None` disables them): each run
    /// instantiates one fresh [`CircuitBreaker`] per provider from this
    /// config, so breaker state never leaks across runs or shards.
    pub breaker: Option<BreakerConfig>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            policy: RequestPolicy::Single,
            deadline_ns: 0,
            max_in_flight: 1_024,
            queue_capacity: 4_096,
            breaker: None,
        }
    }
}

/// An open-loop request stream: `requests` arrivals scheduled by an
/// [`ArrivalProcess`], every request invoking the same operation with
/// the same arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Total requests to generate.
    pub requests: u64,
    /// When requests enter the system (Poisson, bursty on/off, or a
    /// replayed trace); the full schedule is precomputed per run.
    pub arrival: ArrivalProcess,
    /// Operation invoked by every request.
    pub operation: String,
    /// Arguments passed to every request.
    pub args: Vec<Value>,
}

impl Workload {
    /// Convenience: a Poisson (exponential-gap) workload — the common
    /// steady-state shape.
    #[must_use]
    pub fn poisson(requests: u64, mean_gap_ns: u64, operation: impl Into<String>) -> Self {
        Workload {
            requests,
            arrival: ArrivalProcess::Poisson { mean_gap_ns },
            operation: operation.into(),
            args: vec![],
        }
    }
}

/// How one request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestOutcome {
    /// An attempt returned an acceptable response.
    Ok {
        /// Which attempt won (0 = primary, ≥ 1 = hedge/failover).
        attempt: u32,
        /// Index of the winning provider in the runtime's provider list.
        provider: u32,
    },
    /// Every allowed attempt failed.
    Failed,
    /// The deadline budget expired first.
    DeadlineExceeded,
    /// Shed at admission: the backpressure queue was full.
    Rejected,
}

/// One line of the per-request ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestRecord {
    /// Request id (= arrival order).
    pub id: u64,
    /// Virtual arrival time.
    pub arrival_ns: u64,
    /// When execution started (`None`: never admitted).
    pub start_ns: Option<u64>,
    /// When the request resolved.
    pub end_ns: u64,
    /// Attempts dispatched.
    pub attempts: u32,
    /// Terminal disposition.
    pub outcome: RequestOutcome,
}

impl RequestRecord {
    /// End-to-end virtual latency (queueing included).
    #[must_use]
    pub fn latency_ns(&self) -> u64 {
        self.end_ns - self.arrival_ns
    }
}

/// Everything one run produced: the full ledger plus aggregate counts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RuntimeReport {
    /// Per-request records in canonical resolution order — sorted by
    /// `(end_ns, id)`, a total order that is identical however the run
    /// was sharded or scheduled (deterministic per seed).
    pub ledger: Vec<RequestRecord>,
    /// Virtual time of the last event.
    pub makespan_ns: u64,
    /// Requests resolved acceptably.
    pub ok: u64,
    /// Requests that exhausted every attempt.
    pub failed: u64,
    /// Requests shed at admission.
    pub rejected: u64,
    /// Requests that outlived their deadline budget.
    pub deadline_exceeded: u64,
    /// Hedge attempts dispatched.
    pub hedges_fired: u64,
    /// Requests won by a hedge attempt.
    pub hedges_won: u64,
    /// In-flight attempts cancelled after a sibling resolved first.
    pub hedges_cancelled: u64,
    /// Failover attempts dispatched.
    pub failovers: u64,
    /// Most requests ever executing at once (summed across shards in a
    /// merged report — an aggregate capacity footprint, not a single
    /// loop's high-water mark).
    pub peak_in_flight: usize,
    /// Deepest the backpressure queue ever got (summed when merged).
    pub peak_queue_depth: usize,
    /// Attempts that completed with a failure verdict.
    pub attempts_failed: u64,
    /// Times a provider's circuit breaker tripped Open (re-opens from
    /// failed half-open probes included).
    pub breaker_opens: u64,
    /// Open providers skipped over when picking an attempt's target.
    pub breaker_skips: u64,
    /// Requests shed at arrival because every provider was Open.
    pub breaker_shed: u64,
}

impl RuntimeReport {
    /// *Offered* throughput in requests per virtual second: every
    /// request that reached a disposition, including shed and
    /// timed-out ones. The denominator of loss ratios, not a measure
    /// of useful work — see [`goodput_per_sec`](Self::goodput_per_sec).
    #[must_use]
    pub fn offered_per_sec(&self) -> f64 {
        Self::per_sec(self.ledger.len() as u64, self.makespan_ns)
    }

    /// *Goodput* in requests per virtual second: only requests that
    /// resolved acceptably. Under load shedding this is the number that
    /// matters — counting `Rejected`/`DeadlineExceeded` rows (as the
    /// pre-fix `requests_per_sec` did) overstates throughput exactly
    /// when the runtime starts refusing work.
    #[must_use]
    pub fn goodput_per_sec(&self) -> f64 {
        Self::per_sec(self.ok, self.makespan_ns)
    }

    fn per_sec(count: u64, makespan_ns: u64) -> f64 {
        if makespan_ns == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            count as f64 / (makespan_ns as f64 / 1e9)
        }
    }

    /// Exact (nearest-rank over the full ledger, no sketch) latency
    /// quantile of the *successful* requests, in virtual ns.
    ///
    /// Nearest-rank convention: the result is the smallest recorded
    /// latency with at least `⌈q·n⌉` samples at or below it, with the
    /// rank clamped into `1..=n` — so `q = 0.0` returns the minimum
    /// (rank 1), `q = 1.0` the maximum (rank n), and any finite `q`
    /// outside `[0, 1]` clamps to those endpoints. Returns `None` for a
    /// non-finite `q` (NaN has no rank) or when no request succeeded.
    #[must_use]
    pub fn latency_quantile(&self, q: f64) -> Option<u64> {
        if !q.is_finite() {
            return None;
        }
        let mut latencies: Vec<u64> = self
            .ledger
            .iter()
            .filter(|r| matches!(r.outcome, RequestOutcome::Ok { .. }))
            .map(RequestRecord::latency_ns)
            .collect();
        if latencies.is_empty() {
            return None;
        }
        latencies.sort_unstable();
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((q.clamp(0.0, 1.0) * latencies.len() as f64).ceil() as usize)
            .clamp(1, latencies.len());
        Some(latencies[rank - 1])
    }

    /// FNV-1a hash over every ledger field — the bit-identity fingerprint
    /// the determinism tests compare across runs.
    #[must_use]
    pub fn ledger_digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325_u64;
        let mut eat = |value: u64| {
            for byte in value.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for record in &self.ledger {
            eat(record.id);
            eat(record.arrival_ns);
            eat(record.start_ns.map_or(u64::MAX, |s| s));
            eat(record.end_ns);
            eat(u64::from(record.attempts));
            let (kind, a, p) = match record.outcome {
                RequestOutcome::Ok { attempt, provider } => {
                    (0u64, u64::from(attempt), u64::from(provider))
                }
                RequestOutcome::Failed => (1, 0, 0),
                RequestOutcome::DeadlineExceeded => (2, 0, 0),
                RequestOutcome::Rejected => (3, 0, 0),
            };
            eat(kind);
            eat(a);
            eat(p);
        }
        eat(self.makespan_ns);
        hash
    }
}

/// The events the loop schedules. Stale events (for already-resolved
/// requests) are cancelled lazily: they pop, find no live state, and
/// are dropped — cheaper and simpler than heap surgery.
#[derive(Debug)]
enum Event {
    /// Request `req` arrives at the front door.
    Arrival { req: u64 },
    /// An attempt's planned response lands.
    AttemptDone {
        req: u64,
        attempt: u32,
        provider: u32,
        ok: bool,
        latency_ns: u64,
        /// The HalfOpen probe slot the dispatch reserved, if any —
        /// must be released even when the event pops stale.
        probe: ProbeToken,
    },
    /// The hedge delay elapsed with no response yet.
    HedgeTimer { req: u64 },
    /// A failover backoff pause ended.
    RetryTimer { req: u64 },
    /// The request's deadline budget ran out.
    Deadline { req: u64 },
}

/// Live per-request state (dropped at resolution).
struct ReqState {
    arrival_ns: u64,
    start_ns: Option<u64>,
    attempts_started: u32,
    outstanding: u32,
    next_provider: usize,
    rng: SplitMix64,
}

/// The event-loop runtime: a provider pool plus a policy/limits config.
pub struct ServiceRuntime {
    providers: Vec<Arc<dyn PlannedProvider>>,
    config: RuntimeConfig,
}

impl ServiceRuntime {
    /// Creates a runtime over `providers` (tried round-robin, offset by
    /// request id so load spreads even under `Single`).
    ///
    /// # Panics
    ///
    /// Panics when `providers` is empty or `max_in_flight` is zero.
    #[must_use]
    pub fn new(providers: Vec<Arc<dyn PlannedProvider>>, config: RuntimeConfig) -> Self {
        assert!(!providers.is_empty(), "runtime needs at least one provider");
        assert!(config.max_in_flight > 0, "max_in_flight must be ≥ 1");
        ServiceRuntime { providers, config }
    }

    /// The configured limits and policy.
    #[must_use]
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Drives `workload` to completion and returns the full report.
    /// Deterministic: the same `(workload, seed, config)` produces a
    /// bit-identical ledger, independent of host, wall-clock, or how
    /// many other runtimes run concurrently.
    #[must_use]
    pub fn run(&self, workload: &Workload, seed: u64) -> RuntimeReport {
        let arrivals = workload.arrival.arrival_times(workload.requests, seed);
        self.run_slice(workload, seed, &arrivals, 0, 1)
    }

    /// Drives the strided slice `{first, first + step, ...}` of
    /// `workload`'s id space against the precomputed `arrivals` table
    /// (one entry per id, shared across slices). `run` is the
    /// degenerate slice `(0, 1)`; [`ShardedRuntime`] runs slice `s` of
    /// `N` per shard. Per-request dynamics depend on `(seed, id)` only,
    /// so a request behaves identically whichever slice executes it.
    ///
    /// [`ShardedRuntime`]: crate::shard::ShardedRuntime
    #[must_use]
    pub(crate) fn run_slice(
        &self,
        workload: &Workload,
        seed: u64,
        arrivals: &[u64],
        first: u64,
        step: u64,
    ) -> RuntimeReport {
        assert!(step >= 1, "slice stride must be ≥ 1");
        assert_eq!(
            arrivals.len() as u64,
            workload.requests,
            "arrival table must cover every request id"
        );
        let breakers: Vec<CircuitBreaker> = match self.config.breaker {
            Some(config) => self
                .providers
                .iter()
                .map(|_| CircuitBreaker::new(config))
                .collect(),
            None => Vec::new(),
        };
        let mut sim = Sim {
            providers: &self.providers,
            config: &self.config,
            workload,
            seed,
            arrivals,
            step,
            events: EventQueue::new(),
            states: HashMap::new(),
            waiting: VecDeque::new(),
            in_flight: 0,
            breakers,
            report: RuntimeReport {
                ledger: Vec::with_capacity(
                    usize::try_from(workload.requests / step.max(1)).unwrap_or(0),
                ),
                ..RuntimeReport::default()
            },
        };
        if first < workload.requests {
            sim.events.schedule(
                arrivals[usize::try_from(first).unwrap_or(usize::MAX)],
                Event::Arrival { req: first },
            );
        }
        while let Some((now, event)) = sim.events.pop() {
            sim.handle(now, event);
        }
        sim.report.makespan_ns = sim.events.now();
        debug_assert!(sim.states.is_empty(), "every request must resolve");
        for breaker in &sim.breakers {
            sim.report.breaker_opens += breaker.opens();
        }
        // Canonical resolution order: (end_ns, id) is a total order
        // independent of event interleaving, so single-loop and merged
        // sharded ledgers are byte-identical.
        sim.report.ledger.sort_unstable_by_key(|r| (r.end_ns, r.id));
        sim.report
    }
}

/// One run's whole mutable state; methods are the event handlers.
struct Sim<'a> {
    providers: &'a [Arc<dyn PlannedProvider>],
    config: &'a RuntimeConfig,
    workload: &'a Workload,
    seed: u64,
    /// Precomputed arrival instant per request id (all ids, not just
    /// this slice's — stride-indexed).
    arrivals: &'a [u64],
    /// Id stride of this slice: the next arrival after `req` is
    /// `req + step`.
    step: u64,
    events: EventQueue<Event>,
    states: HashMap<u64, ReqState>,
    waiting: VecDeque<u64>,
    in_flight: usize,
    /// One breaker per provider when enabled, empty otherwise.
    breakers: Vec<CircuitBreaker>,
    report: RuntimeReport,
}

impl Sim<'_> {
    /// Per-request RNG, derived from the run seed and the request id
    /// alone — independent of event interleaving by construction.
    fn request_rng(&self, req: u64) -> SplitMix64 {
        SplitMix64::new(self.seed ^ req.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// The provider rotation's starting point for request `req`: a hash
    /// of `(seed, id)`, **not** `id % providers` — a modulo offset
    /// phase-locks entire shards onto one provider whenever the shard
    /// stride divides the provider count (e.g. 3 shards × 3 providers:
    /// every request shard 0 owns would start on provider 0). The hash
    /// spreads load uniformly per shard and, being a pure function of
    /// the id, keeps the rotation invariant across shard counts.
    fn initial_provider(&self, req: u64) -> usize {
        let mut rng = SplitMix64::new(
            self.seed ^ req.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x0ff5_e7cb_a1a2_ce11,
        );
        rng.index(self.providers.len())
    }

    /// Whether any provider currently admits a dispatch (breakers
    /// enabled only); drives front-door shedding.
    fn any_provider_admits(&mut self, now: u64) -> bool {
        if self.breakers.is_empty() {
            return true;
        }
        self.breakers.iter_mut().any(|b| b.admits(now))
    }

    fn handle(&mut self, now: u64, event: Event) {
        match event {
            Event::Arrival { req } => self.on_arrival(now, req),
            Event::AttemptDone {
                req,
                attempt,
                provider,
                ok,
                latency_ns,
                probe,
            } => self.on_attempt_done(now, req, attempt, provider, ok, latency_ns, probe),
            Event::HedgeTimer { req } => self.on_hedge_timer(now, req),
            Event::RetryTimer { req } => self.on_retry_timer(now, req),
            Event::Deadline { req } => self.on_deadline(now, req),
        }
    }

    /// Sheds `req` at the front door with the given ledger disposition.
    fn shed_at_arrival(&mut self, now: u64, req: u64) {
        telemetry::add(Counter::ServiceRejected, 1);
        self.report.rejected += 1;
        self.report.ledger.push(RequestRecord {
            id: req,
            arrival_ns: now,
            start_ns: None,
            end_ns: now,
            attempts: 0,
            outcome: RequestOutcome::Rejected,
        });
    }

    fn on_arrival(&mut self, now: u64, req: u64) {
        telemetry::add(Counter::ServiceArrivals, 1);
        let next = req + self.step;
        if next < self.workload.requests {
            self.events.schedule(
                self.arrivals[usize::try_from(next).unwrap_or(usize::MAX)],
                Event::Arrival { req: next },
            );
        }
        if self.in_flight >= self.config.max_in_flight
            && self.waiting.len() >= self.config.queue_capacity
        {
            // Load shedding: full queue, reject at the front door.
            self.shed_at_arrival(now, req);
            return;
        }
        if !self.any_provider_admits(now) {
            // Every provider's circuit is Open: the breakers feed the
            // admission controller, so fail fast instead of queueing
            // work that has nowhere to go.
            telemetry::add(Counter::ServiceBreakerShed, 1);
            self.report.breaker_shed += 1;
            self.shed_at_arrival(now, req);
            return;
        }
        self.states.insert(
            req,
            ReqState {
                arrival_ns: now,
                start_ns: None,
                attempts_started: 0,
                outstanding: 0,
                next_provider: self.initial_provider(req),
                rng: self.request_rng(req),
            },
        );
        // The deadline budget starts at arrival, so queue time counts
        // against it: a request that waited has less execution runway
        // left once admitted.
        if self.config.deadline_ns > 0 {
            self.events.schedule(
                now.saturating_add(self.config.deadline_ns),
                Event::Deadline { req },
            );
        }
        if self.in_flight < self.config.max_in_flight {
            self.start_execution(now, req);
        } else {
            self.waiting.push_back(req);
            telemetry::add(Counter::ServiceEnqueued, 1);
            telemetry::observe_ns(Timer::ServiceQueueDepth, self.waiting.len() as u64);
            self.report.peak_queue_depth = self.report.peak_queue_depth.max(self.waiting.len());
        }
    }

    fn start_execution(&mut self, now: u64, req: u64) {
        telemetry::add(Counter::ServiceAdmitted, 1);
        self.in_flight += 1;
        self.report.peak_in_flight = self.report.peak_in_flight.max(self.in_flight);
        let state = self.states.get_mut(&req).expect("starting a live request");
        state.start_ns = Some(now);
        if !self.dispatch_attempt(now, req) {
            // Breakers closed every door between arrival and admission
            // (possible after a queue wait): fail fast.
            self.resolve(now, req, RequestOutcome::Failed);
            return;
        }
        if let RequestPolicy::Hedged {
            delay_ns,
            max_hedges,
        } = self.config.policy
        {
            if max_hedges > 0 {
                self.events
                    .schedule(now.saturating_add(delay_ns), Event::HedgeTimer { req });
            }
        }
    }

    /// Dispatches the next attempt of `req` to the first provider in
    /// its rotation whose breaker admits it, skipping Open ones.
    /// Returns `false` — dispatching nothing — when every provider's
    /// circuit refuses; the caller decides what that means for the
    /// request (fail fast, skip the hedge, charge the failover pause).
    fn dispatch_attempt(&mut self, now: u64, req: u64) -> bool {
        let provider_count = self.providers.len();
        let state = self
            .states
            .get_mut(&req)
            .expect("dispatch on a live request");
        let rotation = state.next_provider;
        let mut chosen = None;
        if self.breakers.is_empty() {
            chosen = Some(rotation % provider_count);
        } else {
            let mut skipped = 0u64;
            for hop in 0..provider_count {
                let idx = (rotation + hop) % provider_count;
                if self.breakers[idx].admits(now) {
                    chosen = Some(idx);
                    break;
                }
                skipped += 1;
            }
            if skipped > 0 && chosen.is_some() {
                telemetry::add(Counter::ServiceBreakerSkips, skipped);
                self.report.breaker_skips += skipped;
            }
        }
        let Some(provider_idx) = chosen else {
            return false;
        };
        let state = self
            .states
            .get_mut(&req)
            .expect("dispatch on a live request");
        let attempt = state.attempts_started;
        state.attempts_started += 1;
        state.outstanding += 1;
        // Advance the rotation past the chosen provider so the next
        // attempt tries a different one first.
        state.next_provider = provider_idx + 1;
        let mut attempt_rng = state.rng.split();
        let PlannedInvoke { latency_ns, result } = self.providers[provider_idx].plan(
            &self.workload.operation,
            &self.workload.args,
            &mut attempt_rng,
        );
        let probe = match self.breakers.get_mut(provider_idx) {
            Some(breaker) => breaker.on_dispatch(now),
            None => None,
        };
        self.events.schedule(
            now.saturating_add(latency_ns),
            Event::AttemptDone {
                req,
                attempt,
                provider: u32::try_from(provider_idx).unwrap_or(u32::MAX),
                ok: result.is_ok(),
                latency_ns,
                probe,
            },
        );
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn on_attempt_done(
        &mut self,
        now: u64,
        req: u64,
        attempt: u32,
        provider: u32,
        ok: bool,
        latency_ns: u64,
        probe: ProbeToken,
    ) {
        let breaker_idx = usize::try_from(provider).unwrap_or(usize::MAX);
        if !self.states.contains_key(&req) {
            // Stale: the request resolved (hedge win, deadline) while
            // this attempt flew. A cancelled call produces no response
            // to profile — but it must still release any HalfOpen probe
            // slot its dispatch reserved, or a round whose every probe
            // is cancelled pins the breaker's quota forever and
            // blacklists the provider for the rest of the run.
            if let Some(breaker) = self.breakers.get_mut(breaker_idx) {
                breaker.on_cancel(probe);
            }
            return;
        }
        // Profile the completion into the provider's breaker.
        if let Some(breaker) = self.breakers.get_mut(breaker_idx) {
            breaker.on_result(now, probe, ok, latency_ns);
        }
        if !ok {
            telemetry::add(Counter::ServiceAttemptsFailed, 1);
            self.report.attempts_failed += 1;
        }
        let state = self.states.get_mut(&req).expect("live request");
        state.outstanding -= 1;
        if ok {
            let hedged = matches!(self.config.policy, RequestPolicy::Hedged { .. });
            if hedged && attempt > 0 {
                telemetry::add(Counter::ServiceHedgesWon, 1);
                self.report.hedges_won += 1;
            }
            let cancelled = u64::from(state.outstanding);
            if hedged && cancelled > 0 {
                telemetry::add(Counter::ServiceHedgesCancelled, cancelled);
                self.report.hedges_cancelled += cancelled;
            }
            self.resolve(now, req, RequestOutcome::Ok { attempt, provider });
            return;
        }
        match self.config.policy {
            RequestPolicy::Single => {
                if self.states[&req].outstanding == 0 {
                    self.resolve(now, req, RequestOutcome::Failed);
                }
            }
            RequestPolicy::Hedged { max_hedges, .. } => {
                let state = &self.states[&req];
                if state.outstanding > 0 {
                    return; // A sibling is still flying; let it race.
                }
                if state.attempts_started < 1 + max_hedges && self.dispatch_attempt(now, req) {
                    // Fail-fast hedge: no point waiting for the timer
                    // when we already know the attempt died.
                    telemetry::add(Counter::ServiceHedgesFired, 1);
                    self.report.hedges_fired += 1;
                } else {
                    // Attempt budget spent — or nothing left flying and
                    // every breaker refused a replacement.
                    self.resolve(now, req, RequestOutcome::Failed);
                }
            }
            RequestPolicy::Failover {
                max_attempts,
                backoff,
            } => {
                let state = &self.states[&req];
                if state.attempts_started < max_attempts.max(1) {
                    let pause = backoff.delay_ns(state.attempts_started);
                    self.events
                        .schedule(now.saturating_add(pause), Event::RetryTimer { req });
                } else if state.outstanding == 0 {
                    self.resolve(now, req, RequestOutcome::Failed);
                }
            }
        }
    }

    fn on_hedge_timer(&mut self, now: u64, req: u64) {
        if !self.states.contains_key(&req) {
            return; // Resolved before the hedge delay elapsed: no hedge needed.
        }
        let RequestPolicy::Hedged {
            delay_ns,
            max_hedges,
        } = self.config.policy
        else {
            return;
        };
        if self.states[&req].attempts_started > max_hedges {
            return;
        }
        // A hedge never targets an Open provider: when every circuit
        // refuses, skip this tick (the primary is still flying) and let
        // a later tick retry once a cooldown elapses.
        let dispatched = self.dispatch_attempt(now, req);
        if dispatched {
            telemetry::add(Counter::ServiceHedgesFired, 1);
            self.report.hedges_fired += 1;
        }
        // Re-arm while budget remains; a skipped tick re-arms only with
        // a positive delay (a zero-delay timer would spin in place).
        if self.states[&req].attempts_started < 1 + max_hedges && (dispatched || delay_ns > 0) {
            self.events
                .schedule(now.saturating_add(delay_ns), Event::HedgeTimer { req });
        }
    }

    fn on_retry_timer(&mut self, now: u64, req: u64) {
        if !self.states.contains_key(&req) {
            return; // Deadline beat the backoff pause.
        }
        if self.dispatch_attempt(now, req) {
            telemetry::add(Counter::ServiceFailovers, 1);
            self.report.failovers += 1;
            return;
        }
        // Every provider's circuit refused this rotation: failover
        // *charges* the skipped attempt and its backoff pause rather
        // than spinning — the attempt budget keeps the retry loop
        // bounded even while everything is Open.
        let RequestPolicy::Failover {
            max_attempts,
            backoff,
        } = self.config.policy
        else {
            return;
        };
        let state = self.states.get_mut(&req).expect("live request");
        state.attempts_started += 1;
        if state.attempts_started < max_attempts.max(1) {
            let pause = backoff.delay_ns(state.attempts_started);
            self.events
                .schedule(now.saturating_add(pause), Event::RetryTimer { req });
        } else if state.outstanding == 0 {
            self.resolve(now, req, RequestOutcome::Failed);
        }
    }

    fn on_deadline(&mut self, now: u64, req: u64) {
        let Some(state) = self.states.get(&req) else {
            return; // Resolved in time; the deadline is moot.
        };
        if matches!(self.config.policy, RequestPolicy::Hedged { .. }) && state.outstanding > 0 {
            let cancelled = u64::from(state.outstanding);
            telemetry::add(Counter::ServiceHedgesCancelled, cancelled);
            self.report.hedges_cancelled += cancelled;
        }
        self.resolve(now, req, RequestOutcome::DeadlineExceeded);
    }

    /// Terminal bookkeeping: ledger, telemetry, slot release, dequeue.
    fn resolve(&mut self, now: u64, req: u64, outcome: RequestOutcome) {
        let state = self.states.remove(&req).expect("resolving a live request");
        let (counter, tally) = match outcome {
            RequestOutcome::Ok { .. } => (Counter::ServiceOk, &mut self.report.ok),
            RequestOutcome::Failed => (Counter::ServiceFailed, &mut self.report.failed),
            RequestOutcome::DeadlineExceeded => (
                Counter::ServiceDeadlineExceeded,
                &mut self.report.deadline_exceeded,
            ),
            RequestOutcome::Rejected => unreachable!("rejections never become live requests"),
        };
        telemetry::add(counter, 1);
        *tally += 1;
        telemetry::observe_ns(Timer::ServiceLatencyNs, now - state.arrival_ns);
        if let Some(start) = state.start_ns {
            telemetry::observe_ns(Timer::ServiceQueueWaitNs, start - state.arrival_ns);
        }
        self.report.ledger.push(RequestRecord {
            id: req,
            arrival_ns: state.arrival_ns,
            start_ns: state.start_ns,
            end_ns: now,
            attempts: state.attempts_started,
            outcome,
        });
        if state.start_ns.is_some() {
            // An executing request frees its admission slot; pull the
            // next waiter (skipping any that died of deadline in line —
            // their queue entries are cancelled lazily, like events).
            self.in_flight -= 1;
            while self.in_flight < self.config.max_in_flight {
                let Some(next) = self.waiting.pop_front() else {
                    break;
                };
                if !self.states.contains_key(&next) {
                    continue;
                }
                telemetry::add(Counter::ServiceDequeued, 1);
                self.start_execution(now, next);
            }
        } else {
            // Died while queued: it logically left the queue now.
            telemetry::add(Counter::ServiceDequeued, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::InterfaceId;

    fn provider(id: &str, fail: f64, base_ns: u64) -> Arc<dyn PlannedProvider> {
        Arc::new(
            SimProvider::builder(id, InterfaceId::new("echo"))
                .fail_prob(fail)
                .latency(base_ns, base_ns / 10)
                .operation("ping", |_, _| Ok(Value::Str("pong".into())))
                .build(),
        )
    }

    fn spiky_provider(
        id: &str,
        base_ns: u64,
        spike_prob: f64,
        spike_ns: u64,
    ) -> Arc<dyn PlannedProvider> {
        Arc::new(
            SimProvider::builder(id, InterfaceId::new("echo"))
                .latency(base_ns, base_ns / 10)
                .latency_spike(spike_prob, spike_ns)
                .operation("ping", |_, _| Ok(Value::Str("pong".into())))
                .build(),
        )
    }

    fn workload(requests: u64) -> Workload {
        Workload::poisson(requests, 1_000, "ping")
    }

    fn runtime(policy: RequestPolicy, providers: Vec<Arc<dyn PlannedProvider>>) -> ServiceRuntime {
        ServiceRuntime::new(
            providers,
            RuntimeConfig {
                policy,
                deadline_ns: 0,
                max_in_flight: 64,
                queue_capacity: 256,
                breaker: None,
            },
        )
    }

    #[test]
    fn healthy_single_policy_completes_everything() {
        let rt = runtime(
            RequestPolicy::Single,
            vec![provider("p0", 0.0, 500), provider("p1", 0.0, 500)],
        );
        let report = rt.run(&workload(2_000), 1);
        assert_eq!(report.ok, 2_000);
        assert_eq!(
            report.failed + report.rejected + report.deadline_exceeded,
            0
        );
        assert_eq!(report.ledger.len(), 2_000);
        assert_eq!(report.hedges_fired, 0);
        assert!(report.makespan_ns > 0);
        assert!(report.goodput_per_sec() > 0.0);
        // Nothing was shed, so goodput and offered load coincide.
        assert!((report.goodput_per_sec() - report.offered_per_sec()).abs() < 1e-9);
        // Every id resolves exactly once.
        let mut ids: Vec<u64> = report.ledger.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 2_000);
    }

    #[test]
    fn same_seed_gives_a_bit_identical_ledger() {
        let build = || {
            runtime(
                RequestPolicy::Hedged {
                    delay_ns: 2_000,
                    max_hedges: 2,
                },
                vec![
                    spiky_provider("a", 1_000, 0.05, 50_000),
                    spiky_provider("b", 1_000, 0.05, 50_000),
                    spiky_provider("c", 1_000, 0.05, 50_000),
                ],
            )
        };
        let first = build().run(&workload(5_000), 0x5eed_2008);
        let second = build().run(&workload(5_000), 0x5eed_2008);
        assert_eq!(first, second, "ledger must be bit-identical per seed");
        assert_eq!(first.ledger_digest(), second.ledger_digest());
        let other_seed = build().run(&workload(5_000), 0x5eed_2009);
        assert_ne!(
            first.ledger_digest(),
            other_seed.ledger_digest(),
            "different seeds explore different runs"
        );
    }

    #[test]
    fn hedging_cuts_the_latency_tail_under_spikes() {
        let spiky = || {
            vec![
                spiky_provider("a", 1_000, 0.05, 100_000),
                spiky_provider("b", 1_000, 0.05, 100_000),
                spiky_provider("c", 1_000, 0.05, 100_000),
            ]
        };
        let unhedged = runtime(RequestPolicy::Single, spiky()).run(&workload(20_000), 7);
        let hedged = runtime(
            RequestPolicy::Hedged {
                delay_ns: 3_000,
                max_hedges: 2,
            },
            spiky(),
        )
        .run(&workload(20_000), 7);
        assert_eq!(unhedged.ok, 20_000);
        assert_eq!(hedged.ok, 20_000);
        let (p99_plain, p99_hedged) = (
            unhedged.latency_quantile(0.99).unwrap(),
            hedged.latency_quantile(0.99).unwrap(),
        );
        // 5% spikes of 100 µs on a 1 µs base: unhedged p99 sits on the
        // spike; a 3 µs hedge caps it near 2 × base + delay.
        assert!(
            p99_hedged * 10 < p99_plain,
            "hedged p99 {p99_hedged} not ≪ unhedged {p99_plain}"
        );
        assert!(hedged.hedges_fired > 0);
        assert!(hedged.hedges_won > 0);
        assert!(hedged.hedges_cancelled > 0);
    }

    #[test]
    fn failover_survives_a_dead_primary_within_budget() {
        let rt = ServiceRuntime::new(
            vec![provider("dead", 1.0, 500), provider("alive", 0.0, 500)],
            RuntimeConfig {
                policy: RequestPolicy::Failover {
                    max_attempts: 3,
                    backoff: Backoff::Fixed(1_000),
                },
                deadline_ns: 1_000_000,
                max_in_flight: 64,
                queue_capacity: 256,
                breaker: None,
            },
        );
        let report = rt.run(&workload(2_000), 3);
        // Every request reaches the live provider within two attempts
        // (round-robin start means half hit "alive" first).
        assert_eq!(report.ok, 2_000);
        assert!(report.failovers > 0, "dead primary forces failovers");
        // Requests starting on the dead provider record attempt 1 wins.
        let failover_wins = report
            .ledger
            .iter()
            .filter(|r| matches!(r.outcome, RequestOutcome::Ok { attempt, .. } if attempt > 0))
            .count();
        assert_eq!(failover_wins as u64, report.failovers);
    }

    #[test]
    fn all_dead_providers_fail_after_exhausting_attempts() {
        let rt = runtime(
            RequestPolicy::Failover {
                max_attempts: 3,
                backoff: Backoff::None,
            },
            vec![provider("d0", 1.0, 100), provider("d1", 1.0, 100)],
        );
        let report = rt.run(&workload(500), 5);
        assert_eq!(report.failed, 500);
        assert_eq!(report.ok, 0);
        assert!(report.ledger.iter().all(|r| r.attempts == 3));
    }

    #[test]
    fn deadlines_bound_every_latency() {
        let rt = ServiceRuntime::new(
            vec![spiky_provider("s", 1_000, 0.2, 10_000_000)],
            RuntimeConfig {
                policy: RequestPolicy::Single,
                deadline_ns: 50_000,
                max_in_flight: 8,
                queue_capacity: 64,
                breaker: None,
            },
        );
        let report = rt.run(&workload(3_000), 11);
        assert!(
            report.deadline_exceeded > 0,
            "big spikes must blow the budget"
        );
        for record in &report.ledger {
            assert!(
                record.latency_ns() <= 50_000,
                "request {} latency {} exceeds its budget",
                record.id,
                record.latency_ns()
            );
        }
    }

    #[test]
    fn admission_control_bounds_concurrency_and_sheds_load() {
        // 100 ms provider latency vs 1 µs interarrivals: arrivals
        // massively outrun completions, so the queue fills and the rest
        // is shed.
        let rt = ServiceRuntime::new(
            vec![provider("slow", 0.0, 100_000_000)],
            RuntimeConfig {
                policy: RequestPolicy::Single,
                deadline_ns: 0,
                max_in_flight: 4,
                queue_capacity: 16,
                breaker: None,
            },
        );
        let report = rt.run(&workload(500), 2);
        assert_eq!(report.peak_in_flight, 4, "admission cap respected");
        assert!(report.peak_queue_depth <= 16, "queue bound respected");
        assert!(report.rejected > 0, "overload must shed");
        assert_eq!(
            report.ok + report.failed + report.rejected + report.deadline_exceeded,
            500,
            "every request has exactly one disposition"
        );
        // Queued-then-served requests record their wait.
        assert!(report
            .ledger
            .iter()
            .any(|r| r.start_ns.is_some_and(|s| s > r.arrival_ns)));
    }

    #[test]
    fn queue_wait_counts_against_the_deadline_budget() {
        // 1 ms service time through a single slot with ~instant
        // arrivals: only ~5 requests finish inside the 5 ms budget.
        // The budget is armed at *arrival*, so the rest die at exactly
        // arrival + budget — a request that waited in the backpressure
        // queue gets correspondingly less execution runway, it does not
        // restart the clock at admission.
        let rt = ServiceRuntime::new(
            vec![provider("slow", 0.0, 1_000_000)],
            RuntimeConfig {
                policy: RequestPolicy::Single,
                deadline_ns: 5_000_000,
                max_in_flight: 1,
                queue_capacity: 64,
                breaker: None,
            },
        );
        let report = rt.run(&workload(100), 4);
        assert!(report.deadline_exceeded > 0, "the backlog must time out");
        let mut killed_after_queueing = 0;
        for record in &report.ledger {
            if record.outcome != RequestOutcome::DeadlineExceeded {
                continue;
            }
            assert_eq!(
                record.latency_ns(),
                5_000_000,
                "deadline deaths land at exactly arrival + budget"
            );
            let start = record.start_ns.expect("FIFO admission reaches the head");
            if start > record.arrival_ns {
                assert!(
                    record.end_ns - start < 5_000_000,
                    "queue wait must shrink the runway left after admission"
                );
                killed_after_queueing += 1;
            }
        }
        assert!(
            killed_after_queueing > 0,
            "some victims waited in queue first"
        );
    }

    #[test]
    fn single_policy_millions_scale_smoke() {
        // 200k requests through the loop in one test: the structure the
        // "millions in flight" claim rests on (bounded heap, lazy
        // cancellation, O(log n) scheduling) at a size CI can afford.
        let rt = ServiceRuntime::new(
            vec![provider("p", 0.0, 50_000), provider("q", 0.0, 50_000)],
            RuntimeConfig {
                policy: RequestPolicy::Single,
                deadline_ns: 0,
                max_in_flight: 100_000,
                queue_capacity: 100_000,
                breaker: None,
            },
        );
        let mut load = workload(200_000);
        load.arrival = ArrivalProcess::Poisson { mean_gap_ns: 10 }; // brutal arrival rate
        let report = rt.run(&load, 6);
        assert_eq!(report.ok, 200_000);
        assert!(report.peak_in_flight > 1_000, "true concurrency reached");
    }

    #[test]
    fn report_quantiles_are_exact_nearest_rank() {
        let mut report = RuntimeReport {
            ledger: (0..100)
                .map(|i| RequestRecord {
                    id: i,
                    arrival_ns: 0,
                    start_ns: Some(0),
                    end_ns: (i + 1) * 10,
                    attempts: 1,
                    outcome: RequestOutcome::Ok {
                        attempt: 0,
                        provider: 0,
                    },
                })
                .collect(),
            makespan_ns: 1_000,
            ok: 100,
            peak_in_flight: 1,
            ..RuntimeReport::default()
        };
        assert_eq!(report.latency_quantile(0.5), Some(500));
        assert_eq!(report.latency_quantile(0.99), Some(990));
        assert_eq!(report.latency_quantile(1.0), Some(1_000));
        assert_eq!(report.latency_quantile(0.0), Some(10));
        report.ledger.clear();
        assert_eq!(report.latency_quantile(0.5), None);
    }

    #[test]
    fn quantiles_survive_degenerate_inputs() {
        let single = RuntimeReport {
            ledger: vec![RequestRecord {
                id: 0,
                arrival_ns: 0,
                start_ns: Some(0),
                end_ns: 42,
                attempts: 1,
                outcome: RequestOutcome::Ok {
                    attempt: 0,
                    provider: 0,
                },
            }],
            ok: 1,
            makespan_ns: 42,
            ..RuntimeReport::default()
        };
        // One sample answers every quantile.
        assert_eq!(single.latency_quantile(0.0), Some(42));
        assert_eq!(single.latency_quantile(0.5), Some(42));
        assert_eq!(single.latency_quantile(1.0), Some(42));
        // The NaN bug: `q.max(…)`-style clamps silently swallow NaN and
        // used to index with a garbage rank. Non-finite q is a caller
        // error and now answers None instead of an arbitrary sample.
        assert_eq!(single.latency_quantile(f64::NAN), None);
        assert_eq!(single.latency_quantile(f64::INFINITY), None);
        assert_eq!(single.latency_quantile(f64::NEG_INFINITY), None);
        // Finite out-of-range q clamps to the nearest end of the ladder.
        assert_eq!(single.latency_quantile(7.5), Some(42));
        assert_eq!(single.latency_quantile(-0.5), Some(42));
        // An empty ledger has no quantiles at all, finite q or not.
        let empty = RuntimeReport::default();
        assert_eq!(empty.latency_quantile(0.5), None);
        assert_eq!(empty.latency_quantile(f64::NAN), None);
    }

    #[test]
    fn goodput_excludes_shed_and_timed_out_requests() {
        // The throughput bug: `requests_per_sec` divided the *ledger
        // length* by the makespan, so a run that shed half its load at
        // admission reported the same "throughput" as one that served
        // everything. Pin the split: offered counts every disposition,
        // goodput only the acceptable responses.
        let rt = ServiceRuntime::new(
            vec![provider("slow", 0.0, 100_000_000)],
            RuntimeConfig {
                policy: RequestPolicy::Single,
                deadline_ns: 0,
                max_in_flight: 4,
                queue_capacity: 16,
                breaker: None,
            },
        );
        let report = rt.run(&workload(500), 2);
        assert!(report.rejected > 0, "the scenario must shed load");
        let span_secs = report.makespan_ns as f64 / 1e9;
        let offered = report.offered_per_sec();
        let goodput = report.goodput_per_sec();
        assert!((offered - 500.0 / span_secs).abs() < 1e-6);
        assert!((goodput - report.ok as f64 / span_secs).abs() < 1e-6);
        assert!(
            goodput < offered,
            "shed load must open a gap: goodput {goodput} vs offered {offered}"
        );
        // Zero-makespan reports rate nothing instead of dividing by 0.
        let empty = RuntimeReport::default();
        assert_eq!(empty.offered_per_sec(), 0.0);
        assert_eq!(empty.goodput_per_sec(), 0.0);
    }

    #[test]
    fn breaker_sheds_arrivals_once_every_circuit_opens() {
        let rt = ServiceRuntime::new(
            vec![provider("dead", 1.0, 1_000)],
            RuntimeConfig {
                policy: RequestPolicy::Single,
                deadline_ns: 0,
                max_in_flight: 64,
                queue_capacity: 256,
                breaker: Some(BreakerConfig {
                    window: 16,
                    failure_pct: 50,
                    min_samples: 8,
                    cooldown_ns: 10_000_000,
                    half_open_probes: 2,
                    slow_call_ns: 0,
                }),
            },
        );
        let report = rt.run(&workload(1_000), 9);
        assert!(report.breaker_opens > 0, "a dead provider must trip");
        assert!(
            report.breaker_shed > 0,
            "once the only circuit is open, arrivals shed at the front door"
        );
        assert_eq!(report.ok, 0);
        assert_eq!(
            report.failed + report.rejected + report.deadline_exceeded,
            1_000
        );
        // Shedding spares the provider: far fewer attempts fail than the
        // breakerless run's 1000.
        assert!(
            report.attempts_failed < 500,
            "breaker must cut failed attempts, saw {}",
            report.attempts_failed
        );
    }

    #[test]
    fn breaker_routes_around_a_sick_provider() {
        let pool = || vec![provider("sick", 0.9, 1_000), provider("fine", 0.0, 1_000)];
        let with_breaker = |breaker| {
            ServiceRuntime::new(
                pool(),
                RuntimeConfig {
                    policy: RequestPolicy::Failover {
                        max_attempts: 4,
                        backoff: Backoff::None,
                    },
                    deadline_ns: 0,
                    max_in_flight: 64,
                    queue_capacity: 256,
                    breaker,
                },
            )
            .run(&workload(4_000), 21)
        };
        let without = with_breaker(None);
        let with = with_breaker(Some(BreakerConfig {
            window: 32,
            failure_pct: 60,
            min_samples: 16,
            cooldown_ns: 2_000_000,
            half_open_probes: 3,
            slow_call_ns: 0,
        }));
        assert!(with.breaker_opens > 0, "the sick provider must trip");
        assert!(
            with.breaker_skips > 0,
            "rotation must route around the open circuit"
        );
        assert!(
            with.attempts_failed < without.attempts_failed,
            "breaker must cut failed attempts: {} vs {}",
            with.attempts_failed,
            without.attempts_failed
        );
        // Routing around the sick provider must not cost availability.
        assert!(with.ok >= without.ok);
    }

    #[test]
    fn cancelled_probes_do_not_blacklist_a_provider() {
        // Regression for the probe-reservation leak: the sole provider
        // fails fast half the time (which trips its breaker) and spikes
        // past the deadline the other half — spiked attempts die of
        // deadline while still in flight, so their completions pop
        // stale and the call is *cancelled*. Probes dispatched into a
        // spike are cancelled the same way; when their reservations
        // leaked, the first HalfOpen round whose every probe was
        // cancelled pinned `probes_in_flight` at the quota forever and
        // every later arrival was shed at the front door.
        let rt = ServiceRuntime::new(
            vec![Arc::new(
                SimProvider::builder("flappy", InterfaceId::new("echo"))
                    .fail_prob(0.5)
                    .latency(1_000, 100)
                    .latency_spike(0.5, 60_000)
                    .operation("ping", |_, _| Ok(Value::Str("pong".into())))
                    .build(),
            )],
            RuntimeConfig {
                policy: RequestPolicy::Single,
                deadline_ns: 20_000,
                max_in_flight: 64,
                queue_capacity: 256,
                breaker: Some(BreakerConfig {
                    window: 8,
                    failure_pct: 50,
                    min_samples: 4,
                    cooldown_ns: 5_000,
                    half_open_probes: 2,
                    slow_call_ns: 0,
                }),
            },
        );
        let report = rt.run(&workload(4_000), 13);
        // Cancelled probes must keep the Open/HalfOpen cycle alive: the
        // circuit re-trips many times over the run instead of freezing
        // in its first cancelled probe round...
        assert!(
            report.breaker_opens > 5,
            "the circuit must keep cycling, saw {} opens",
            report.breaker_opens
        );
        // ...and late arrivals still reach the provider. With the leak,
        // every request after the poisoned round was shed, so the tail
        // of the id space had no Ok (nor even Failed) rows at all.
        let late_served = report
            .ledger
            .iter()
            .filter(|r| r.id >= 3_000 && r.start_ns.is_some())
            .count();
        assert!(
            late_served > 0,
            "late arrivals must still be admitted after probe cancellations"
        );
        assert!(
            report
                .ledger
                .iter()
                .any(|r| r.id >= 3_000 && matches!(r.outcome, RequestOutcome::Ok { .. })),
            "the provider's healthy half must keep serving late requests"
        );
    }

    #[test]
    fn breaker_runs_stay_deterministic() {
        let build = || {
            ServiceRuntime::new(
                vec![provider("sick", 0.8, 1_000), provider("fine", 0.0, 1_000)],
                RuntimeConfig {
                    policy: RequestPolicy::Hedged {
                        delay_ns: 3_000,
                        max_hedges: 1,
                    },
                    deadline_ns: 0,
                    max_in_flight: 64,
                    queue_capacity: 256,
                    breaker: Some(BreakerConfig::default()),
                },
            )
        };
        let first = build().run(&workload(3_000), 17);
        let second = build().run(&workload(3_000), 17);
        assert_eq!(first, second, "breaker runs must be bit-identical");
    }

    #[test]
    fn bursty_arrivals_run_through_the_same_loop() {
        let mut load = workload(2_000);
        load.arrival = ArrivalProcess::OnOff {
            on_gap_ns: 200,
            off_gap_ns: 20_000,
            on_ns: 100_000,
            off_ns: 400_000,
        };
        let report = runtime(
            RequestPolicy::Hedged {
                delay_ns: 3_000,
                max_hedges: 2,
            },
            vec![
                spiky_provider("a", 1_000, 0.05, 50_000),
                spiky_provider("b", 1_000, 0.05, 50_000),
            ],
        )
        .run(&load, 23);
        assert_eq!(
            report.ok + report.failed + report.rejected + report.deadline_exceeded,
            2_000
        );
        // Bursts pile requests up far beyond the steady-state level a
        // Poisson stream at the same mean would reach.
        assert!(report.peak_in_flight > 8);
    }

    #[test]
    #[should_panic(expected = "at least one provider")]
    fn empty_provider_pool_panics() {
        let _ = ServiceRuntime::new(vec![], RuntimeConfig::default());
    }
}
