//! Environment knobs for the event-loop runtime.
//!
//! The runtime's operational parameters can be overridden without
//! recompiling, mirroring the `REDUNDANCY_TRIALS` / `REDUNDANCY_JOBS`
//! convention used by the experiment binaries:
//!
//! | variable | meaning | unit |
//! |---|---|---|
//! | `REDUNDANCY_HEDGE_DELAY` | hedge delay before a speculative duplicate | virtual µs |
//! | `REDUNDANCY_DEADLINE_MS` | per-request deadline budget (0 disables) | virtual ms |
//! | `REDUNDANCY_INFLIGHT` | admission-control concurrency cap | requests |
//! | `REDUNDANCY_QUEUE` | backpressure queue capacity | requests |
//! | `REDUNDANCY_SHARDS` | shard count for the sharded runtime | shards (≥ 1) |
//! | `REDUNDANCY_BREAKER_WINDOW` | circuit-breaker sliding window | samples (≥ 1) |
//! | `REDUNDANCY_BREAKER_FAILURE_PCT` | failure threshold that trips a circuit | percent (1–100) |
//! | `REDUNDANCY_BREAKER_COOLDOWN_MS` | Open → HalfOpen cooldown | virtual ms (≥ 1) |
//!
//! Each knob follows the warn-once contract established for
//! `REDUNDANCY_JOBS`: an unset or empty variable is silent, a
//! well-formed value applies, and a malformed value is *ignored with a
//! warning naming the variable and the value* — a typo never silently
//! reconfigures a campaign. Parsing is pure (`parse_*_env`) so every
//! accept/reject decision is unit-testable without touching the process
//! environment.

use crate::runtime::{RequestPolicy, RuntimeConfig};

/// Parses a `REDUNDANCY_SHARDS` value (must be ≥ 1: zero shards is not
/// a runtime).
///
/// `Ok(n)`, `Err(None)` for empty/unset, `Err(Some(msg))` otherwise.
pub fn parse_shards_env(value: &str) -> Result<usize, Option<String>> {
    match value.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ if value.trim().is_empty() => Err(None),
        _ => Err(Some(format!(
            "warning: ignoring REDUNDANCY_SHARDS={value:?}: expected a positive integer"
        ))),
    }
}

/// Resolves the shard count from the process environment with the
/// warn-once contract: unset/empty keeps `default`, malformed keeps
/// `default` with a stderr warning.
#[must_use]
pub fn shards_from_env(default: usize) -> usize {
    match std::env::var("REDUNDANCY_SHARDS") {
        Ok(value) => match parse_shards_env(&value) {
            Ok(n) => n,
            Err(warning) => {
                if let Some(warning) = warning {
                    eprintln!("{warning}");
                }
                default
            }
        },
        Err(_) => default,
    }
}

/// Parses a `REDUNDANCY_BREAKER_WINDOW` value (sliding-window size in
/// samples, ≥ 1).
///
/// `Ok(n)`, `Err(None)` for empty/unset, `Err(Some(msg))` otherwise.
pub fn parse_breaker_window_env(value: &str) -> Result<usize, Option<String>> {
    match value.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ if value.trim().is_empty() => Err(None),
        _ => Err(Some(format!(
            "warning: ignoring REDUNDANCY_BREAKER_WINDOW={value:?}: expected a positive integer"
        ))),
    }
}

/// Parses a `REDUNDANCY_BREAKER_FAILURE_PCT` value (1–100: a 0% trip
/// threshold would open on the first sample of any window).
///
/// `Ok(pct)`, `Err(None)` for empty/unset, `Err(Some(msg))` otherwise.
pub fn parse_breaker_failure_pct_env(value: &str) -> Result<u8, Option<String>> {
    match value.trim().parse::<u8>() {
        Ok(pct) if (1..=100).contains(&pct) => Ok(pct),
        _ if value.trim().is_empty() => Err(None),
        _ => Err(Some(format!(
            "warning: ignoring REDUNDANCY_BREAKER_FAILURE_PCT={value:?}: expected an \
             integer percentage in 1..=100"
        ))),
    }
}

/// Parses a `REDUNDANCY_BREAKER_COOLDOWN_MS` value (virtual
/// milliseconds, ≥ 1: a zero cooldown would re-probe instantly and the
/// circuit would never shield anything).
///
/// `Ok(ns)`, `Err(None)` for empty/unset, `Err(Some(msg))` otherwise.
pub fn parse_breaker_cooldown_env(value: &str) -> Result<u64, Option<String>> {
    match value.trim().parse::<u64>() {
        Ok(ms) if ms > 0 => Ok(ms.saturating_mul(1_000_000)),
        _ if value.trim().is_empty() => Err(None),
        _ => Err(Some(format!(
            "warning: ignoring REDUNDANCY_BREAKER_COOLDOWN_MS={value:?}: expected virtual \
             milliseconds as a positive integer"
        ))),
    }
}

/// Parses a `REDUNDANCY_HEDGE_DELAY` value (virtual microseconds).
///
/// `Ok(ns)` for a non-negative integer (converted to ns), `Err(None)`
/// for empty/unset, `Err(Some(msg))` for a malformed value.
pub fn parse_hedge_delay_env(value: &str) -> Result<u64, Option<String>> {
    match value.trim().parse::<u64>() {
        Ok(us) => Ok(us.saturating_mul(1_000)),
        _ if value.trim().is_empty() => Err(None),
        _ => Err(Some(format!(
            "warning: ignoring REDUNDANCY_HEDGE_DELAY={value:?}: expected virtual \
             microseconds as a non-negative integer"
        ))),
    }
}

/// Parses a `REDUNDANCY_DEADLINE_MS` value (virtual milliseconds,
/// `0` = no deadline).
///
/// `Ok(ns)`, `Err(None)` for empty/unset, `Err(Some(msg))` otherwise.
pub fn parse_deadline_env(value: &str) -> Result<u64, Option<String>> {
    match value.trim().parse::<u64>() {
        Ok(ms) => Ok(ms.saturating_mul(1_000_000)),
        _ if value.trim().is_empty() => Err(None),
        _ => Err(Some(format!(
            "warning: ignoring REDUNDANCY_DEADLINE_MS={value:?}: expected virtual \
             milliseconds as a non-negative integer (0 disables deadlines)"
        ))),
    }
}

/// Parses a `REDUNDANCY_INFLIGHT` value (must be ≥ 1: an admission cap
/// of zero would deadlock the loop).
///
/// `Ok(n)`, `Err(None)` for empty/unset, `Err(Some(msg))` otherwise.
pub fn parse_inflight_env(value: &str) -> Result<usize, Option<String>> {
    match value.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ if value.trim().is_empty() => Err(None),
        _ => Err(Some(format!(
            "warning: ignoring REDUNDANCY_INFLIGHT={value:?}: expected a positive integer"
        ))),
    }
}

/// Parses a `REDUNDANCY_QUEUE` value (0 is legal: shed immediately when
/// the admission cap is reached).
///
/// `Ok(n)`, `Err(None)` for empty/unset, `Err(Some(msg))` otherwise.
pub fn parse_queue_env(value: &str) -> Result<usize, Option<String>> {
    match value.trim().parse::<usize>() {
        Ok(n) => Ok(n),
        _ if value.trim().is_empty() => Err(None),
        _ => Err(Some(format!(
            "warning: ignoring REDUNDANCY_QUEUE={value:?}: expected a non-negative integer"
        ))),
    }
}

/// Applies the runtime knobs to `base` using `lookup` as the
/// environment,
/// returning the resolved config plus any warnings (the caller prints
/// them — once — to keep this function pure and testable).
///
/// `REDUNDANCY_HEDGE_DELAY` only takes effect when the base policy is
/// [`RequestPolicy::Hedged`] — there is no delay to override otherwise.
/// Likewise the `REDUNDANCY_BREAKER_*` knobs tune an *already enabled*
/// breaker (`base.breaker` is `Some`); they never switch breakers on.
#[must_use]
pub fn apply_env(
    base: RuntimeConfig,
    lookup: impl Fn(&str) -> Option<String>,
) -> (RuntimeConfig, Vec<String>) {
    let mut config = base;
    let mut warnings = Vec::new();
    let mut knob = |name: &str, apply: &mut dyn FnMut(&str) -> Option<String>| {
        if let Some(value) = lookup(name) {
            if let Some(warning) = apply(&value) {
                warnings.push(warning);
            }
        }
    };
    knob(
        "REDUNDANCY_HEDGE_DELAY",
        &mut |value| match parse_hedge_delay_env(value) {
            Ok(ns) => {
                if let RequestPolicy::Hedged { delay_ns, .. } = &mut config.policy {
                    *delay_ns = ns;
                }
                None
            }
            Err(warning) => warning,
        },
    );
    knob(
        "REDUNDANCY_DEADLINE_MS",
        &mut |value| match parse_deadline_env(value) {
            Ok(ns) => {
                config.deadline_ns = ns;
                None
            }
            Err(warning) => warning,
        },
    );
    knob(
        "REDUNDANCY_INFLIGHT",
        &mut |value| match parse_inflight_env(value) {
            Ok(n) => {
                config.max_in_flight = n;
                None
            }
            Err(warning) => warning,
        },
    );
    knob(
        "REDUNDANCY_QUEUE",
        &mut |value| match parse_queue_env(value) {
            Ok(n) => {
                config.queue_capacity = n;
                None
            }
            Err(warning) => warning,
        },
    );
    knob(
        "REDUNDANCY_BREAKER_WINDOW",
        &mut |value| match parse_breaker_window_env(value) {
            Ok(n) => {
                if let Some(breaker) = &mut config.breaker {
                    breaker.window = n;
                }
                None
            }
            Err(warning) => warning,
        },
    );
    knob(
        "REDUNDANCY_BREAKER_FAILURE_PCT",
        &mut |value| match parse_breaker_failure_pct_env(value) {
            Ok(pct) => {
                if let Some(breaker) = &mut config.breaker {
                    breaker.failure_pct = pct;
                }
                None
            }
            Err(warning) => warning,
        },
    );
    knob(
        "REDUNDANCY_BREAKER_COOLDOWN_MS",
        &mut |value| match parse_breaker_cooldown_env(value) {
            Ok(ns) => {
                if let Some(breaker) = &mut config.breaker {
                    breaker.cooldown_ns = ns;
                }
                None
            }
            Err(warning) => warning,
        },
    );
    (config, warnings)
}

impl RuntimeConfig {
    /// Resolves this config against the process environment, printing
    /// each warning (if any) to stderr exactly once.
    #[must_use]
    pub fn overridden_from_env(self) -> RuntimeConfig {
        let (config, warnings) = apply_env(self, |name| std::env::var(name).ok());
        for warning in warnings {
            eprintln!("{warning}");
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_of<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |name| {
            pairs
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| (*v).to_owned())
        }
    }

    #[test]
    fn hedge_delay_knob_converts_microseconds_and_warns_on_garbage() {
        assert_eq!(parse_hedge_delay_env("250"), Ok(250_000));
        assert_eq!(parse_hedge_delay_env("0"), Ok(0));
        assert_eq!(parse_hedge_delay_env("  "), Err(None));
        let warning = parse_hedge_delay_env("fast").unwrap_err().unwrap();
        assert!(warning.contains("REDUNDANCY_HEDGE_DELAY"));
        assert!(warning.contains("\"fast\""));
        // Applies only to a hedged policy.
        let hedged = RuntimeConfig {
            policy: RequestPolicy::Hedged {
                delay_ns: 1,
                max_hedges: 2,
            },
            ..RuntimeConfig::default()
        };
        let (resolved, warnings) = apply_env(hedged, env_of(&[("REDUNDANCY_HEDGE_DELAY", "250")]));
        assert!(warnings.is_empty());
        assert_eq!(
            resolved.policy,
            RequestPolicy::Hedged {
                delay_ns: 250_000,
                max_hedges: 2
            }
        );
        let single = RuntimeConfig::default();
        let (resolved, _) = apply_env(single, env_of(&[("REDUNDANCY_HEDGE_DELAY", "250")]));
        assert_eq!(resolved.policy, RequestPolicy::Single, "no-op for Single");
    }

    #[test]
    fn deadline_knob_converts_milliseconds_and_warns_on_garbage() {
        assert_eq!(parse_deadline_env("20"), Ok(20_000_000));
        assert_eq!(parse_deadline_env("0"), Ok(0), "0 disables deadlines");
        assert_eq!(parse_deadline_env(""), Err(None));
        let warning = parse_deadline_env("-3").unwrap_err().unwrap();
        assert!(warning.contains("REDUNDANCY_DEADLINE_MS"));
        assert!(warning.contains("\"-3\""));
        let (resolved, warnings) = apply_env(
            RuntimeConfig::default(),
            env_of(&[("REDUNDANCY_DEADLINE_MS", "20")]),
        );
        assert!(warnings.is_empty());
        assert_eq!(resolved.deadline_ns, 20_000_000);
    }

    #[test]
    fn inflight_knob_rejects_zero_with_a_warning() {
        assert_eq!(parse_inflight_env("512"), Ok(512));
        assert_eq!(parse_inflight_env(""), Err(None));
        let warning = parse_inflight_env("0").unwrap_err().unwrap();
        assert!(warning.contains("REDUNDANCY_INFLIGHT"));
        let (resolved, warnings) = apply_env(
            RuntimeConfig::default(),
            env_of(&[("REDUNDANCY_INFLIGHT", "0")]),
        );
        assert_eq!(warnings.len(), 1, "bad value warns instead of applying");
        assert_eq!(
            resolved.max_in_flight,
            RuntimeConfig::default().max_in_flight
        );
    }

    #[test]
    fn queue_knob_accepts_zero_and_warns_on_garbage() {
        assert_eq!(parse_queue_env("0"), Ok(0), "0 = shed at the admission cap");
        assert_eq!(parse_queue_env("8192"), Ok(8192));
        assert_eq!(parse_queue_env(" "), Err(None));
        let warning = parse_queue_env("lots").unwrap_err().unwrap();
        assert!(warning.contains("REDUNDANCY_QUEUE"));
        let (resolved, warnings) = apply_env(
            RuntimeConfig::default(),
            env_of(&[("REDUNDANCY_QUEUE", "8192")]),
        );
        assert!(warnings.is_empty());
        assert_eq!(resolved.queue_capacity, 8192);
    }

    #[test]
    fn unset_environment_changes_nothing_silently() {
        let (resolved, warnings) = apply_env(RuntimeConfig::default(), |_| None);
        assert_eq!(resolved, RuntimeConfig::default());
        assert!(warnings.is_empty());
    }

    #[test]
    fn all_knobs_compose_in_one_pass() {
        let base = RuntimeConfig {
            policy: RequestPolicy::Hedged {
                delay_ns: 1_000,
                max_hedges: 1,
            },
            ..RuntimeConfig::default()
        };
        let (resolved, warnings) = apply_env(
            base,
            env_of(&[
                ("REDUNDANCY_HEDGE_DELAY", "5"),
                ("REDUNDANCY_DEADLINE_MS", "100"),
                ("REDUNDANCY_INFLIGHT", "32"),
                ("REDUNDANCY_QUEUE", "bogus"),
            ]),
        );
        assert_eq!(warnings.len(), 1, "only the malformed knob warns");
        assert!(warnings[0].contains("REDUNDANCY_QUEUE"));
        assert_eq!(
            resolved,
            RuntimeConfig {
                policy: RequestPolicy::Hedged {
                    delay_ns: 5_000,
                    max_hedges: 1
                },
                deadline_ns: 100_000_000,
                max_in_flight: 32,
                queue_capacity: RuntimeConfig::default().queue_capacity,
                breaker: None,
            }
        );
    }

    #[test]
    fn shards_knob_rejects_zero_with_a_warning() {
        assert_eq!(parse_shards_env("8"), Ok(8));
        assert_eq!(parse_shards_env(" 1 "), Ok(1));
        assert_eq!(parse_shards_env(""), Err(None));
        let warning = parse_shards_env("0").unwrap_err().unwrap();
        assert!(warning.contains("REDUNDANCY_SHARDS"));
        let warning = parse_shards_env("many").unwrap_err().unwrap();
        assert!(warning.contains("\"many\""));
    }

    #[test]
    fn breaker_knobs_tune_an_enabled_breaker_only() {
        use crate::breaker::BreakerConfig;
        assert_eq!(parse_breaker_window_env("128"), Ok(128));
        assert!(parse_breaker_window_env("0").unwrap_err().is_some());
        assert_eq!(parse_breaker_failure_pct_env("75"), Ok(75));
        assert!(parse_breaker_failure_pct_env("0").unwrap_err().is_some());
        assert!(parse_breaker_failure_pct_env("101").unwrap_err().is_some());
        assert_eq!(parse_breaker_cooldown_env("5"), Ok(5_000_000));
        assert!(parse_breaker_cooldown_env("0").unwrap_err().is_some());
        assert_eq!(parse_breaker_cooldown_env("  "), Err(None));

        let env = env_of(&[
            ("REDUNDANCY_BREAKER_WINDOW", "128"),
            ("REDUNDANCY_BREAKER_FAILURE_PCT", "75"),
            ("REDUNDANCY_BREAKER_COOLDOWN_MS", "5"),
        ]);
        let enabled = RuntimeConfig {
            breaker: Some(BreakerConfig::default()),
            ..RuntimeConfig::default()
        };
        let (resolved, warnings) = apply_env(enabled, &env);
        assert!(warnings.is_empty());
        let breaker = resolved.breaker.expect("breaker stays enabled");
        assert_eq!(breaker.window, 128);
        assert_eq!(breaker.failure_pct, 75);
        assert_eq!(breaker.cooldown_ns, 5_000_000);
        // With no breaker in the base config the knobs are inert: they
        // tune a breaker, they never enable one.
        let (resolved, warnings) = apply_env(RuntimeConfig::default(), &env);
        assert!(warnings.is_empty());
        assert_eq!(resolved.breaker, None);
    }
}
