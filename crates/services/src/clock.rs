//! Deterministic virtual-time event scheduling.
//!
//! The service runtime ([`crate::runtime`]) is a discrete-event
//! simulator: nothing in it reads a wall clock or sleeps. Time is a
//! plain `u64` nanosecond counter that jumps from one scheduled event to
//! the next, so a run over millions of in-flight requests is exactly as
//! reproducible as a single seeded RNG stream — and runs as fast as the
//! host can drain the heap, not as slow as the latencies it models.
//!
//! [`EventQueue`] is the scheduler's core: a binary min-heap ordered by
//! `(time, sequence)`. The sequence number is assigned at scheduling
//! time, which gives **FIFO tie-breaking for simultaneous events** —
//! without it, heap order among equal timestamps would depend on
//! insertion history in ways that are easy to perturb and hard to debug.
//! Determinism here is load-bearing: the per-request ledger the runtime
//! emits is asserted bit-identical across runs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry: fires at `at`, FIFO among equals via `seq`.
#[derive(Debug)]
struct Scheduled<E> {
    at: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (time, seq) out first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic min-heap of timed events.
///
/// Events pop in nondecreasing time order; events scheduled for the
/// same instant pop in the order they were scheduled. The queue also
/// tracks the virtual *now* — the timestamp of the last popped event —
/// and rejects scheduling into the past, which turns subtle causality
/// bugs into loud panics.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at virtual time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    /// The virtual time of the most recently popped event.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules `event` to fire at absolute virtual time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current virtual time — a scheduled
    /// past is always a logic error in a discrete-event loop.
    pub fn schedule(&mut self, at: u64, event: E) {
        assert!(
            at >= self.now,
            "event scheduled into the past ({at} < now {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pops the earliest event, advancing virtual time to its timestamp.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "heap yielded an event in the past");
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|entry| entry.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.now(), 20);
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third", "fourth"] {
            q.schedule(100, label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "second", "third", "fourth"]);
    }

    #[test]
    fn interleaved_schedules_keep_fifo_among_equals() {
        let mut q = EventQueue::new();
        q.schedule(50, 1u32);
        q.schedule(40, 0);
        assert_eq!(q.pop(), Some((40, 0)));
        // Scheduled *after* popping to t=40, still ties FIFO at t=50.
        q.schedule(50, 2);
        q.schedule(50, 3);
        assert_eq!(q.pop(), Some((50, 1)));
        assert_eq!(q.pop(), Some((50, 2)));
        assert_eq!(q.pop(), Some((50, 3)));
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        let _ = q.pop();
        q.schedule(99, ());
    }
}
