//! A self-contained, offline stand-in for the `criterion` crate.
//!
//! This workspace builds in environments with no network access, so the
//! real `criterion` cannot be downloaded. This crate implements the subset
//! of its API used by the workspace's benches — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros — with a straightforward warmup + sampled
//! measurement loop over `std::time::Instant`.
//!
//! Each benchmark prints one line:
//!
//! ```text
//! patterns/parallel_evaluation/3  time: [1.234 µs 1.250 µs 1.301 µs]
//! ```
//!
//! reporting the minimum, median and maximum of the per-sample mean
//! iteration times, in Criterion's familiar format.
//!
//! The sampling schedule is tunable through the environment: the
//! variables named by [`SAMPLES_ENV`], [`MEASURE_MS_ENV`] and
//! [`WARMUP_MS_ENV`] override the sample count and the per-benchmark
//! measurement/warmup budgets (in milliseconds). `make bench-smoke`
//! uses these to compile-and-run every bench in seconds as a CI
//! smoke test.
//!
//! Setting the environment variable named by [`JSON_OUT_ENV`] to a file
//! path additionally records every result into that file as a JSON
//! object with two keys: `"host"` (logical core count, the
//! `REDUNDANCY_JOBS` override if any, and the effective sampling
//! schedule — everything needed to compare mirrors taken on different
//! machines) and `"results"` (an array of `{"label", "min_ns",
//! "median_ns", "max_ns"}` objects). The file is rewritten after each
//! benchmark, so it is complete even if a later benchmark aborts the
//! run. Rewrites *merge by label* with whatever the file already
//! holds: entries recorded by other bench binaries (or earlier runs)
//! survive, and entries this process re-measures replace their old
//! values — so several bench targets can mirror into one file
//! back-to-back.

use std::fmt;
use std::hint;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export of the standard black box, matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Default number of measurement samples per benchmark.
const DEFAULT_SAMPLES: usize = 24;

/// Default target wall time spent measuring each benchmark, in ms.
const DEFAULT_MEASURE_MS: u64 = 400;

/// Default target wall time spent warming up each benchmark, in ms.
const DEFAULT_WARMUP_MS: u64 = 120;

/// Environment variable overriding the sample count (`CRITERION_SAMPLES`).
pub const SAMPLES_ENV: &str = "CRITERION_SAMPLES";

/// Environment variable overriding the measurement budget in milliseconds
/// (`CRITERION_MEASURE_MS`).
pub const MEASURE_MS_ENV: &str = "CRITERION_MEASURE_MS";

/// Environment variable overriding the warmup budget in milliseconds
/// (`CRITERION_WARMUP_MS`).
pub const WARMUP_MS_ENV: &str = "CRITERION_WARMUP_MS";

/// Reads a positive integer from the environment, falling back to
/// `default` when unset, empty, or unparsable. Zero is clamped to the
/// default too: zero samples or a zero time budget would make every
/// benchmark degenerate.
///
/// A *set but ignored* value (garbage or zero) is reported once per
/// variable on stderr — silently benchmarking with the defaults after
/// the user asked for something else invalidates their comparison.
fn env_override(var: &str, default: u64) -> u64 {
    let (value, warning) = env_override_checked(var, default);
    if let Some(warning) = warning {
        warn_once(var, &warning);
    }
    value
}

/// The fallback logic of [`env_override`], returning the warning text
/// (if the value was set but ignored) instead of printing it, so tests
/// can assert on it.
fn env_override_checked(var: &str, default: u64) -> (u64, Option<String>) {
    match std::env::var(var) {
        Ok(value) => match value.trim().parse::<u64>() {
            Ok(parsed) if parsed > 0 => (parsed, None),
            // Empty counts as unset, not as a bad value.
            _ if value.trim().is_empty() => (default, None),
            _ => (
                default,
                Some(format!(
                    "warning: ignoring {var}={value:?}: expected a positive integer, \
                     using default {default}"
                )),
            ),
        },
        Err(_) => (default, None),
    }
}

/// Prints `message` to stderr the first time `var` triggers it; the
/// sampling knobs are re-read on every benchmark, and one warning per
/// run is signal where dozens would be noise.
fn warn_once(var: &str, message: &str) {
    static WARNED: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let mut warned = WARNED.lock().expect("warned lock");
    if warned.iter().any(|w| w == var) {
        return;
    }
    warned.push(var.to_owned());
    eprintln!("{message}");
}

/// Number of measurement samples per benchmark.
fn samples() -> usize {
    env_override(SAMPLES_ENV, DEFAULT_SAMPLES as u64) as usize
}

/// Target wall time spent measuring each benchmark.
fn measure_time() -> Duration {
    Duration::from_millis(env_override(MEASURE_MS_ENV, DEFAULT_MEASURE_MS))
}

/// Target wall time spent warming up each benchmark.
fn warmup_time() -> Duration {
    Duration::from_millis(env_override(WARMUP_MS_ENV, DEFAULT_WARMUP_MS))
}

/// Identifies one parameterized benchmark: a function name plus a
/// parameter rendered into the label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id labelled `{name}/{parameter}`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Runs closures under measurement; handed to every benchmark body.
pub struct Bencher {
    /// Mean nanoseconds per iteration of each sample, filled by `iter`.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`, running it repeatedly over warmup and sample
    /// phases. The routine's return value is black-boxed so its
    /// computation cannot be optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let samples = samples();
        // Warmup: estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warmup_time() {
            hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Choose a batch size so each sample takes roughly an equal share
        // of the measurement budget.
        let budget = measure_time().as_secs_f64() / samples as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).max(1);
        self.samples.clear();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.push(elapsed * 1e9 / batch as f64);
        }
    }

    /// Measures `routine` with a caller-supplied clock, Criterion-style:
    /// the routine receives an iteration count and returns the total
    /// `Duration` those iterations took *by whatever clock the caller
    /// chooses*. This is how benches report simulated metrics — e.g. a
    /// virtual-time p99 from a deterministic event loop — through the
    /// same reporting/JSON-mirror pipeline as wall-clock measurements.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let samples = samples();
        // Calibrate the batch size from the routine's *wall* cost (its
        // reported Duration may tick a different clock entirely).
        let start = Instant::now();
        let first = routine(1);
        let wall_per_iter = start.elapsed().as_secs_f64().max(1e-9);
        let budget = measure_time().as_secs_f64() / samples as f64;
        let batch = ((budget / wall_per_iter) as u64).clamp(1, 1_000_000);
        self.samples.clear();
        self.samples.push(first.as_secs_f64() * 1e9);
        for _ in 1..samples {
            let total = routine(batch);
            self.samples.push(total.as_secs_f64() * 1e9 / batch as f64);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.3} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Name of the environment variable that, when set to a file path,
/// makes the driver mirror every printed result into that file as JSON.
pub const JSON_OUT_ENV: &str = "CRITERION_JSON_OUT";

/// Results accumulated for the JSON mirror across the whole process
/// (benchmark groups run sequentially; the lock is uncontended).
static JSON_RESULTS: Mutex<Vec<(String, f64, f64, f64)>> = Mutex::new(Vec::new());

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Environment variable read (not interpreted) for the host block:
/// the worker-count override the campaign layer honours.
const JOBS_ENV: &str = "REDUNDANCY_JOBS";

/// Renders the host/configuration block recorded alongside the results:
/// logical cores, the `REDUNDANCY_JOBS` override if any, and the
/// *effective* sampling schedule (after environment overrides). Numbers
/// mirrored on different machines — the ROADMAP's "re-measure on
/// multi-core" item — are only comparable with this context attached.
fn host_metadata_json() -> String {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let jobs = match std::env::var(JOBS_ENV) {
        Ok(value) if !value.is_empty() => format!("\"{}\"", json_escape(&value)),
        _ => "null".to_owned(),
    };
    format!(
        "{{\"logical_cores\": {cores}, \"redundancy_jobs\": {jobs}, \
         \"criterion_samples\": {}, \"criterion_measure_ms\": {}, \
         \"criterion_warmup_ms\": {}}}",
        samples(),
        measure_time().as_millis(),
        warmup_time().as_millis()
    )
}

/// Appends one result and rewrites the JSON mirror file, if requested.
/// Rewriting per benchmark keeps the file valid JSON at all times —
/// there is no end-of-run hook in the `criterion_main!` contract.
fn record_json(label: &str, min: f64, med: f64, max: f64) {
    let Ok(path) = std::env::var(JSON_OUT_ENV) else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut results = JSON_RESULTS.lock().expect("json results lock");
    results.push((label.to_owned(), min, med, max));
    let existing = std::fs::read_to_string(&path).ok();
    let merged = merge_with_existing(existing.as_deref(), &results);
    let mut out = String::from("{\n");
    out.push_str(&format!("\"host\": {},\n", host_metadata_json()));
    out.push_str("\"results\": [\n");
    for (i, (label, min, med, max)) in merged.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"label\": \"{}\", \"min_ns\": {min:.1}, \"median_ns\": {med:.1}, \"max_ns\": {max:.1}}}",
            json_escape(label)
        ));
    }
    out.push_str("\n]\n}\n");
    if let Err(err) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {path}: {err}");
    }
}

/// Merges this process's results with an existing mirror file: entries
/// already on disk keep their position unless this process re-measured
/// the same label, in which case the fresh value wins (appended with
/// the rest of this process's results). Bench binaries run one after
/// another against the same mirror path, so each must preserve the
/// others' entries when it rewrites.
fn merge_with_existing(
    existing: Option<&str>,
    results: &[(String, f64, f64, f64)],
) -> Vec<(String, f64, f64, f64)> {
    let mut merged: Vec<(String, f64, f64, f64)> = Vec::new();
    if let Some(existing) = existing {
        for line in existing.lines() {
            if let Some(entry) = parse_result_line(line) {
                if !results.iter().any(|(label, ..)| *label == entry.0) {
                    merged.push(entry);
                }
            }
        }
    }
    merged.extend(results.iter().cloned());
    merged
}

/// Parses one result line of the mirror's own fixed format back into a
/// `(label, min, median, max)` tuple; `None` for any other line (the
/// host block, brackets, or hand-edited content, which merging then
/// drops rather than corrupts).
fn parse_result_line(line: &str) -> Option<(String, f64, f64, f64)> {
    let rest = line.trim().strip_prefix("{\"label\": \"")?;
    let mut label = String::new();
    let mut tail = String::new();
    let mut escaped = false;
    let mut closed = false;
    for c in rest.chars() {
        if closed {
            tail.push(c);
        } else if escaped {
            label.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            closed = true;
        } else {
            label.push(c);
        }
    }
    if !closed {
        return None;
    }
    Some((
        label,
        parse_number_field(&tail, "min_ns")?,
        parse_number_field(&tail, "median_ns")?,
        parse_number_field(&tail, "max_ns")?,
    ))
}

/// Extracts the numeric value following `"key": ` in `s`.
fn parse_number_field(s: &str, key: &str) -> Option<f64> {
    let pattern = format!("\"{key}\": ");
    let start = s.find(&pattern)? + pattern.len();
    let rest = &s[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run_and_report(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<48} (no measurement: Bencher::iter never called)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let min = sorted[0];
    let med = sorted[sorted.len() / 2];
    let max = sorted[sorted.len() - 1];
    println!(
        "{label:<48} time: [{} {} {}]",
        format_ns(min),
        format_ns(med),
        format_ns(max)
    );
    record_json(label, min, med, max);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_and_report(&format!("{}/{}", self.name, id.label), f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let id = id.into();
        run_and_report(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_and_report(name, f);
        self
    }
}

/// Declares a benchmark group function, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; nothing to parse.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_time_scales() {
        assert_eq!(format_ns(12.3456), "12.346 ns");
        assert_eq!(format_ns(12_345.6), "12.346 µs");
        assert_eq!(format_ns(12_345_678.0), "12.346 ms");
        assert_eq!(format_ns(2.5e9), "2.500 s");
    }

    #[test]
    fn json_escape_quotes_and_backslashes() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
    }

    #[test]
    fn env_override_falls_back_on_unset_empty_or_bad_values() {
        // Unset.
        assert_eq!(env_override("CRITERION_TEST_UNSET_VAR", 24), 24);
        // Set to a valid value (unique name: tests run concurrently).
        std::env::set_var("CRITERION_TEST_VALID_VAR", "7");
        assert_eq!(env_override("CRITERION_TEST_VALID_VAR", 24), 7);
        // Garbage and zero both fall back.
        std::env::set_var("CRITERION_TEST_BAD_VAR", "fast");
        assert_eq!(env_override("CRITERION_TEST_BAD_VAR", 24), 24);
        std::env::set_var("CRITERION_TEST_ZERO_VAR", "0");
        assert_eq!(env_override("CRITERION_TEST_ZERO_VAR", 24), 24);
    }

    #[test]
    fn ignored_override_values_warn_naming_variable_and_value() {
        // Garbage: fall back and say which variable held what.
        std::env::set_var("CRITERION_TEST_WARN_BAD", "abc");
        let (value, warning) = env_override_checked("CRITERION_TEST_WARN_BAD", 24);
        assert_eq!(value, 24);
        let warning = warning.expect("a set-but-ignored value warns");
        assert!(
            warning.contains("CRITERION_TEST_WARN_BAD") && warning.contains("\"abc\""),
            "warning must name the variable and the value: {warning}"
        );
        assert!(
            warning.contains("24"),
            "warning names the default: {warning}"
        );
        // Zero is ignored too (degenerate schedule), and warns.
        std::env::set_var("CRITERION_TEST_WARN_ZERO", "0");
        let (value, warning) = env_override_checked("CRITERION_TEST_WARN_ZERO", 24);
        assert_eq!(value, 24);
        assert!(warning.expect("zero warns").contains("\"0\""));
        // Valid, empty, and unset values stay silent.
        std::env::set_var("CRITERION_TEST_WARN_OK", "12");
        assert_eq!(
            env_override_checked("CRITERION_TEST_WARN_OK", 24),
            (12, None)
        );
        std::env::set_var("CRITERION_TEST_WARN_EMPTY", "  ");
        assert_eq!(
            env_override_checked("CRITERION_TEST_WARN_EMPTY", 24),
            (24, None)
        );
        assert_eq!(
            env_override_checked("CRITERION_TEST_WARN_UNSET", 24),
            (24, None)
        );
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("majority", 3).label, "majority/3");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }

    #[test]
    fn host_metadata_names_cores_jobs_and_schedule() {
        let host = host_metadata_json();
        for key in [
            "\"logical_cores\": ",
            "\"redundancy_jobs\": ",
            "\"criterion_samples\": ",
            "\"criterion_measure_ms\": ",
            "\"criterion_warmup_ms\": ",
        ] {
            assert!(host.contains(key), "missing {key} in {host}");
        }
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert!(
            host.contains(&format!("\"logical_cores\": {cores}")),
            "{host}"
        );
    }

    #[test]
    fn result_lines_round_trip_through_the_parser() {
        let line = format!(
            "  {{\"label\": \"{}\", \"min_ns\": 10.0, \"median_ns\": 20.5, \"max_ns\": 30.0}},",
            json_escape(r#"odd "quoted\label"#)
        );
        let (label, min, med, max) = parse_result_line(&line).expect("parses own format");
        assert_eq!(label, r#"odd "quoted\label"#);
        assert_eq!((min, med, max), (10.0, 20.5, 30.0));
        // Non-result lines never parse.
        for other in [
            "{",
            "\"results\": [",
            "]",
            "}",
            "\"host\": {\"logical_cores\": 4}",
        ] {
            assert_eq!(parse_result_line(other), None, "{other}");
        }
    }

    #[test]
    fn merging_preserves_foreign_entries_and_overrides_matching_labels() {
        let existing = "{\n\"host\": {},\n\"results\": [\n  \
             {\"label\": \"other/bench\", \"min_ns\": 1.0, \"median_ns\": 2.0, \"max_ns\": 3.0},\n  \
             {\"label\": \"mine/bench\", \"min_ns\": 9.0, \"median_ns\": 9.0, \"max_ns\": 9.0}\n]\n}\n";
        let fresh = vec![("mine/bench".to_owned(), 4.0, 5.0, 6.0)];
        let merged = merge_with_existing(Some(existing), &fresh);
        assert_eq!(
            merged,
            vec![
                ("other/bench".to_owned(), 1.0, 2.0, 3.0), // kept
                ("mine/bench".to_owned(), 4.0, 5.0, 6.0),  // re-measured wins
            ]
        );
        // No file yet: just this process's results.
        assert_eq!(merge_with_existing(None, &fresh), fresh);
    }

    #[test]
    fn json_mirror_wraps_results_with_host_block() {
        let path = std::env::temp_dir().join("criterion_stub_mirror_test.json");
        std::env::set_var(JSON_OUT_ENV, &path);
        record_json("group/case/1", 10.0, 20.0, 30.0);
        std::env::remove_var(JSON_OUT_ENV);
        let written = std::fs::read_to_string(&path).expect("mirror file");
        let _ = std::fs::remove_file(&path);
        assert!(written.starts_with("{\n\"host\": {"), "{written}");
        assert!(written.contains("\"results\": [\n"), "{written}");
        assert!(
            written.contains(
                "{\"label\": \"group/case/1\", \"min_ns\": 10.0, \
                 \"median_ns\": 20.0, \"max_ns\": 30.0}"
            ),
            "{written}"
        );
        assert!(written.trim_end().ends_with("]\n}"), "{written}");
    }
}
