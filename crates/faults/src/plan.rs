//! Seeded fault plans: a deterministic assignment of faults to the
//! variant slots of a redundant ensemble.
//!
//! Experiments (and the observability integration tests) need the *same*
//! faults injected into the *same* variants run after run, derived from a
//! single campaign seed. A [`FaultPlan`] captures that assignment: slot
//! `i` of the ensemble gets a fixed list of [`FaultSpec`]s whose salts
//! are mixed from the plan seed, so two plans built from the same seed
//! are identical and a different seed moves the failing-input subsets.

use std::hash::Hash;

use crate::spec::{mix64, FaultSpec};
use crate::variant::FaultyVariant;

/// A seeded, deterministic fault assignment for an N-slot ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    slots: Vec<Vec<FaultSpec>>,
}

impl FaultPlan {
    /// Creates an empty plan derived from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            slots: Vec::new(),
        }
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Appends a slot carrying the given faults.
    #[must_use]
    pub fn with_slot(mut self, faults: Vec<FaultSpec>) -> Self {
        self.slots.push(faults);
        self
    }

    /// A plan of `n` slots, each carrying one Bohrbug of the given input
    /// `density`. Salts are mixed from the seed and the slot index, so
    /// each slot fails on its own (deterministic) subset of inputs —
    /// the independence assumption N-version programming banks on.
    #[must_use]
    pub fn bohrbugs(seed: u64, n: usize, density: f64) -> Self {
        let mut plan = Self::new(seed);
        for i in 0..n {
            let salt = mix64(seed, i as u64);
            plan = plan.with_slot(vec![FaultSpec::bohrbug(
                format!("plan-bohrbug-{i}"),
                density,
                salt,
            )]);
        }
        plan
    }

    /// Number of slots.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// The faults assigned to `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn faults(&self, slot: usize) -> &[FaultSpec] {
        &self.slots[slot]
    }

    /// Builds slot `slot`'s variant: `compute` wrapped with the slot's
    /// assigned faults, charging `work` units per call.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn build_variant<I, O, F>(
        &self,
        slot: usize,
        name: impl Into<String>,
        work: u64,
        compute: F,
    ) -> FaultyVariant<I, O>
    where
        F: Fn(&I) -> O + Send + Sync + 'static,
        I: Hash,
        O: 'static,
    {
        let mut builder = FaultyVariant::builder(name, work, compute);
        for fault in &self.slots[slot] {
            builder = builder.fault(fault.clone());
        }
        builder.build()
    }

    /// Like [`build_variant`](Self::build_variant), additionally wiring a
    /// corruptor so `SilentWrongOutput` faults (Bohrbugs, malicious
    /// faults) can derive a wrong output from the correct one.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn build_variant_corrupting<I, O, F, C>(
        &self,
        slot: usize,
        name: impl Into<String>,
        work: u64,
        compute: F,
        corrupt: C,
    ) -> FaultyVariant<I, O>
    where
        F: Fn(&I) -> O + Send + Sync + 'static,
        C: Fn(&O, &mut redundancy_core::rng::SplitMix64) -> O + Send + Sync + 'static,
        I: Hash,
        O: 'static,
    {
        let mut builder = FaultyVariant::builder(name, work, compute).corruptor(corrupt);
        for fault in &self.slots[slot] {
            builder = builder.fault(fault.clone());
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redundancy_core::context::ExecContext;
    use redundancy_core::variant::Variant;

    #[test]
    fn same_seed_same_plan() {
        assert_eq!(
            FaultPlan::bohrbugs(5, 3, 0.1),
            FaultPlan::bohrbugs(5, 3, 0.1)
        );
        assert_ne!(
            FaultPlan::bohrbugs(5, 3, 0.1),
            FaultPlan::bohrbugs(6, 3, 0.1)
        );
    }

    #[test]
    fn slots_get_distinct_salts() {
        let plan = FaultPlan::bohrbugs(1, 4, 0.2);
        assert_eq!(plan.slots(), 4);
        let salts: Vec<_> = (0..4).map(|i| format!("{:?}", plan.faults(i))).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(salts[i], salts[j], "slots {i} and {j} share a salt");
            }
        }
    }

    #[test]
    fn built_variants_fail_deterministically() {
        let plan = FaultPlan::bohrbugs(7, 2, 0.5);
        let v = plan.build_variant_corrupting(0, "v0", 5, |x: &i64| x + 1, |o, _| !*o);
        let wrong: Vec<i64> = (0..100)
            .filter(|x| {
                let mut ctx = ExecContext::new(1);
                v.execute(x, &mut ctx) != Ok(x + 1)
            })
            .collect();
        assert!(!wrong.is_empty(), "density 0.5 must hit some inputs");
        assert!(wrong.len() < 100, "density 0.5 must spare some inputs");
        // Bohrbug: the same inputs fail on re-execution, regardless of
        // the execution context's seed.
        for x in &wrong {
            let mut ctx = ExecContext::new(99);
            assert_ne!(v.execute(x, &mut ctx), Ok(x + 1));
        }
    }
}
