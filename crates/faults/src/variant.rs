//! [`FaultyVariant`]: a correct computation with injectable faults.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use redundancy_core::context::ExecContext;
use redundancy_core::outcome::VariantFailure;
use redundancy_core::rng::SplitMix64;
use redundancy_core::variant::Variant;

use crate::spec::{FaultEffect, FaultSpec, Probe};

/// A shared, resettable execution-age counter.
///
/// Rejuvenation and reboot techniques hold an `AgeHandle` to the variants
/// (or processes) they manage: resetting it models re-initializing the
/// execution environment, which is exactly how rejuvenation defeats aging
/// faults.
#[derive(Debug, Clone, Default)]
pub struct AgeHandle(Arc<AtomicU64>);

impl AgeHandle {
    /// Creates a counter at age zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current age (executions since the last reset).
    #[must_use]
    pub fn age(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Increments and returns the *previous* age.
    pub fn tick(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Resets the age to zero (rejuvenation / reboot).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A shared environment signature.
///
/// Environment-sensitive faults hash this signature into their activation
/// decision; environment-perturbation techniques (RX) change it to model
/// re-execution under modified environmental conditions.
#[derive(Debug, Clone, Default)]
pub struct EnvSignature(Arc<AtomicU64>);

impl EnvSignature {
    /// Creates a signature for the default environment (0).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current signature value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Replaces the signature (a new environment configuration).
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }
}

/// A snapshot of the concrete environment knobs a fault may react to
/// (mirrors the RX perturbation menu; see
/// `redundancy-sandbox`'s `EnvConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnobSnapshot {
    /// Heap allocation padding in bytes.
    pub padding: u64,
    /// Whether fresh allocations are zero-filled.
    pub zero_fill: bool,
    /// Message delivery order seed.
    pub order_seed: u64,
    /// Scheduling priority.
    pub priority: u8,
    /// Admitted request fraction, in permille.
    pub throttle_permille: u16,
}

impl Default for KnobSnapshot {
    fn default() -> Self {
        Self {
            padding: 0,
            zero_fill: false,
            order_seed: 0,
            priority: 10,
            throttle_permille: 1000,
        }
    }
}

/// A shared, mutable set of environment knobs. Environment-perturbation
/// techniques write the perturbed configuration here; knob-aware faults
/// ([`Activation::BufferOverflow`](crate::spec::Activation) and friends)
/// read it through the probe.
#[derive(Debug, Clone, Default)]
pub struct EnvKnobs(Arc<KnobCells>);

#[derive(Debug, Default)]
struct KnobCells {
    padding: AtomicU64,
    zero_fill: std::sync::atomic::AtomicBool,
    order_seed: AtomicU64,
    priority: AtomicU64,
    throttle_permille: AtomicU64,
}

impl EnvKnobs {
    /// Creates knobs at the baseline configuration.
    #[must_use]
    pub fn new() -> Self {
        let knobs = Self::default();
        knobs.set(KnobSnapshot::default());
        knobs
    }

    /// Reads the current knob values.
    #[must_use]
    pub fn snapshot(&self) -> KnobSnapshot {
        KnobSnapshot {
            padding: self.0.padding.load(Ordering::Relaxed),
            zero_fill: self.0.zero_fill.load(Ordering::Relaxed),
            order_seed: self.0.order_seed.load(Ordering::Relaxed),
            priority: self.0.priority.load(Ordering::Relaxed) as u8,
            throttle_permille: self.0.throttle_permille.load(Ordering::Relaxed) as u16,
        }
    }

    /// Replaces the knob values.
    pub fn set(&self, snapshot: KnobSnapshot) {
        self.0.padding.store(snapshot.padding, Ordering::Relaxed);
        self.0
            .zero_fill
            .store(snapshot.zero_fill, Ordering::Relaxed);
        self.0
            .order_seed
            .store(snapshot.order_seed, Ordering::Relaxed);
        self.0
            .priority
            .store(u64::from(snapshot.priority), Ordering::Relaxed);
        self.0
            .throttle_permille
            .store(u64::from(snapshot.throttle_permille), Ordering::Relaxed);
    }
}

/// Computes a stable 64-bit key for a hashable input.
#[must_use]
pub fn input_key<I: Hash>(input: &I) -> u64 {
    // FxHash-style: deterministic across runs (unlike RandomState).
    struct Fx(u64);
    impl Hasher for Fx {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
            }
        }
    }
    let mut h = Fx(0xcbf2_9ce4_8422_2325);
    input.hash(&mut h);
    h.finish()
}

type Compute<I, O> = Box<dyn Fn(&I, &mut ExecContext) -> Result<O, VariantFailure> + Send + Sync>;
type Corruptor<O> = Box<dyn Fn(&O, &mut SplitMix64) -> O + Send + Sync>;
type ProbeFn<I> = Box<dyn Fn(&I) -> (u64, bool) + Send + Sync>;

/// A variant wrapping a correct computation with a list of injectable
/// faults. The first activating fault determines the outcome.
///
/// Build with [`FaultyVariant::builder`]. See the crate docs for the fault
/// semantics.
pub struct FaultyVariant<I, O> {
    name: String,
    design_cost: f64,
    work: u64,
    compute: Compute<I, O>,
    corrupt: Corruptor<O>,
    probe: ProbeFn<I>,
    faults: Vec<FaultSpec>,
    age: AgeHandle,
    env: EnvSignature,
    knobs: EnvKnobs,
}

impl<I, O> FaultyVariant<I, O> {
    /// Starts building a faulty variant around a correct computation
    /// charging `work` units per call.
    pub fn builder<F>(name: impl Into<String>, work: u64, compute: F) -> FaultyVariantBuilder<I, O>
    where
        F: Fn(&I) -> O + Send + Sync + 'static,
        I: Hash,
        O: 'static,
    {
        FaultyVariantBuilder::new(name, work, compute)
    }

    /// The shared age counter of this variant.
    #[must_use]
    pub fn age_handle(&self) -> AgeHandle {
        self.age.clone()
    }

    /// The shared environment signature of this variant.
    #[must_use]
    pub fn env_signature(&self) -> EnvSignature {
        self.env.clone()
    }

    /// The shared environment knobs of this variant.
    #[must_use]
    pub fn env_knobs(&self) -> EnvKnobs {
        self.knobs.clone()
    }

    /// The injected fault specs.
    #[must_use]
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }
}

impl<I, O> Variant<I, O> for FaultyVariant<I, O>
where
    I: Send + Sync,
    O: Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&self, input: &I, ctx: &mut ExecContext) -> Result<O, VariantFailure> {
        ctx.charge(self.work).map_err(|_| VariantFailure::Timeout)?;
        let age = self.age.tick();
        let (input_key, malicious) = (self.probe)(input);
        let probe = Probe {
            input_key,
            malicious,
            age,
            env_signature: self.env.get(),
            knobs: self.knobs.snapshot(),
        };
        // Stochastic activations draw from a stream keyed by this variant
        // (salt) so activation does not depend on adjudication order.
        let mut fault_rng = ctx.rng().split();
        for fault in &self.faults {
            if fault.activation.fires(&probe, &mut fault_rng) {
                return match fault.effect {
                    FaultEffect::Crash => Err(VariantFailure::crash(format!(
                        "injected fault `{}`",
                        fault.id
                    ))),
                    FaultEffect::Hang => Err(VariantFailure::Timeout),
                    FaultEffect::ErrorReturn => Err(VariantFailure::error(format!(
                        "injected fault `{}`",
                        fault.id
                    ))),
                    FaultEffect::Omission => Err(VariantFailure::Omission),
                    FaultEffect::SilentWrongOutput => {
                        let correct = (self.compute)(input, ctx)?;
                        Ok((self.corrupt)(&correct, &mut fault_rng))
                    }
                };
            }
        }
        (self.compute)(input, ctx)
    }

    fn design_cost(&self) -> f64 {
        self.design_cost
    }
}

/// Builder for [`FaultyVariant`].
pub struct FaultyVariantBuilder<I, O> {
    inner: FaultyVariant<I, O>,
}

impl<I, O> FaultyVariantBuilder<I, O> {
    fn new<F>(name: impl Into<String>, work: u64, compute: F) -> Self
    where
        F: Fn(&I) -> O + Send + Sync + 'static,
        I: Hash,
        O: 'static,
    {
        FaultyVariantBuilder {
            inner: FaultyVariant {
                name: name.into(),
                design_cost: 1.0,
                work,
                compute: Box::new(move |input, _ctx| Ok(compute(input))),
                corrupt: Box::new(|_orig, rng| {
                    // Default corruptor must be overridden for wrong-output
                    // faults on types without a sensible default; for any O
                    // we cannot synthesize a value, so panic loudly.
                    let _ = rng;
                    panic!("SilentWrongOutput fault injected without a corruptor");
                }),
                probe: Box::new(|input| (input_key_erased(input), false)),
                faults: Vec::new(),
                age: AgeHandle::new(),
                env: EnvSignature::new(),
                knobs: EnvKnobs::new(),
            },
        }
    }

    /// Sets the corruptor used by `SilentWrongOutput` faults to derive a
    /// wrong output from the correct one.
    #[must_use]
    pub fn corruptor<C>(mut self, corrupt: C) -> Self
    where
        C: Fn(&O, &mut SplitMix64) -> O + Send + Sync + 'static,
    {
        self.inner.corrupt = Box::new(corrupt);
        self
    }

    /// Marks inputs as malicious according to `is_attack` (for
    /// [`Activation::OnMalicious`](crate::spec::Activation::OnMalicious)).
    #[must_use]
    pub fn attack_detector<P>(mut self, is_attack: P) -> Self
    where
        P: Fn(&I) -> bool + Send + Sync + 'static,
        I: Hash,
    {
        self.inner.probe = Box::new(move |input| (input_key_erased(input), is_attack(input)));
        self
    }

    /// Adds a fault.
    #[must_use]
    pub fn fault(mut self, fault: FaultSpec) -> Self {
        self.inner.faults.push(fault);
        self
    }

    /// Sets the design cost.
    #[must_use]
    pub fn design_cost(mut self, cost: f64) -> Self {
        self.inner.design_cost = cost;
        self
    }

    /// Shares an existing age counter (several variants in one simulated
    /// process age together).
    #[must_use]
    pub fn age_handle(mut self, age: AgeHandle) -> Self {
        self.inner.age = age;
        self
    }

    /// Shares an existing environment signature.
    #[must_use]
    pub fn env_signature(mut self, env: EnvSignature) -> Self {
        self.inner.env = env;
        self
    }

    /// Shares an existing environment knob set.
    #[must_use]
    pub fn env_knobs(mut self, knobs: EnvKnobs) -> Self {
        self.inner.knobs = knobs;
        self
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(self) -> FaultyVariant<I, O> {
        self.inner
    }

    /// Finishes the build, boxed as a trait object.
    #[must_use]
    pub fn build_boxed(self) -> Box<dyn Variant<I, O>>
    where
        I: Send + Sync + 'static,
        O: Send + Sync + 'static,
    {
        Box::new(self.inner)
    }
}

fn input_key_erased<I: Hash>(input: &I) -> u64 {
    input_key(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Activation;
    use redundancy_core::outcome::VariantFailure;

    fn ctx() -> ExecContext {
        ExecContext::new(77)
    }

    #[test]
    fn no_faults_computes_correctly() {
        let v = FaultyVariant::builder("clean", 5, |x: &i64| x * 2).build();
        let mut c = ctx();
        assert_eq!(v.execute(&21, &mut c), Ok(42));
        assert_eq!(c.cost().work_units, 5);
    }

    #[test]
    fn bohrbug_fails_same_inputs_every_time() {
        let v = FaultyVariant::builder("buggy", 1, |x: &i64| x * 2)
            .corruptor(|correct, _| correct + 1)
            .fault(FaultSpec::bohrbug("b1", 0.3, 42))
            .build();
        let mut c = ctx();
        let mut failing = Vec::new();
        for x in 0..200i64 {
            let wrong = v.execute(&x, &mut c) != Ok(x * 2);
            failing.push(wrong);
        }
        // Re-execution gives identical results: deterministic fault.
        for x in 0..200i64 {
            let wrong = v.execute(&x, &mut c) != Ok(x * 2);
            assert_eq!(wrong, failing[x as usize], "input {x} flapped");
        }
        let rate = failing.iter().filter(|&&w| w).count();
        assert!(rate > 30 && rate < 90, "rate {rate} out of calibration");
    }

    #[test]
    fn heisenbug_is_transient_per_execution() {
        let v = FaultyVariant::builder("flaky", 1, |x: &i64| *x)
            .fault(FaultSpec::heisenbug("h1", 0.5))
            .build();
        let mut c = ctx();
        let crashes = (0..1000).filter(|_| v.execute(&7, &mut c).is_err()).count();
        assert!(crashes > 400 && crashes < 600, "crashes {crashes}");
    }

    #[test]
    fn aging_fault_resets_with_age_handle() {
        let v = FaultyVariant::builder("aging", 1, |x: &i64| *x)
            .fault(FaultSpec::aging("a1", 0.0, 0.01))
            .build();
        let age = v.age_handle();
        let mut c = ctx();
        // Warm up to age 400: failures should be common.
        let mut old_failures = 0;
        for _ in 0..400 {
            if v.execute(&1, &mut c).is_err() {
                old_failures += 1;
            }
        }
        assert!(old_failures > 50, "old failures {old_failures}");
        // Rejuvenate: the next executions should mostly succeed.
        age.reset();
        // Expected failures over 50 runs at growth 0.01: ~12 (hazard ramps
        // from 0 to 0.49); far below the post-aging rate.
        let young_failures = (0..50).filter(|_| v.execute(&1, &mut c).is_err()).count();
        assert!(young_failures < 25, "young failures {young_failures}");
    }

    #[test]
    fn malicious_fault_needs_attack_flag() {
        let v = FaultyVariant::builder("vuln", 1, |x: &i64| *x)
            .attack_detector(|x: &i64| *x < 0)
            .corruptor(|_, _| 666)
            .fault(FaultSpec::malicious("m1", 1.0, 5))
            .build();
        let mut c = ctx();
        assert_eq!(v.execute(&10, &mut c), Ok(10));
        assert_eq!(v.execute(&-10, &mut c), Ok(666));
    }

    #[test]
    fn env_sensitive_fault_escapes_under_new_environment() {
        let v = FaultyVariant::builder("envy", 1, |x: &i64| *x)
            .fault(FaultSpec::new(
                "e1",
                Activation::EnvSensitive {
                    density: 0.5,
                    salt: 3,
                },
                FaultEffect::Crash,
            ))
            .build();
        let env = v.env_signature();
        let mut c = ctx();
        // Find an input failing in env 0.
        let failing: Vec<i64> = (0..200).filter(|x| v.execute(x, &mut c).is_err()).collect();
        assert!(!failing.is_empty());
        // Perturb the environment: about half of them should now pass.
        env.set(0xdead_beef);
        let escaped = failing
            .iter()
            .filter(|x| v.execute(x, &mut c).is_ok())
            .count();
        let rate = escaped as f64 / failing.len() as f64;
        assert!(rate > 0.3 && rate < 0.7, "escape rate {rate}");
    }

    #[test]
    fn effects_map_to_failures() {
        let mk = |effect| {
            FaultyVariant::builder("fx", 1, |x: &i64| *x)
                .corruptor(|o, _| o + 1)
                .fault(FaultSpec::new("f", Activation::Always, effect))
                .build()
        };
        let mut c = ctx();
        assert!(matches!(
            mk(FaultEffect::Crash).execute(&1, &mut c),
            Err(VariantFailure::Crash { .. })
        ));
        assert_eq!(
            mk(FaultEffect::Hang).execute(&1, &mut c),
            Err(VariantFailure::Timeout)
        );
        assert!(matches!(
            mk(FaultEffect::ErrorReturn).execute(&1, &mut c),
            Err(VariantFailure::Error { .. })
        ));
        assert_eq!(
            mk(FaultEffect::Omission).execute(&1, &mut c),
            Err(VariantFailure::Omission)
        );
        assert_eq!(
            mk(FaultEffect::SilentWrongOutput).execute(&1, &mut c),
            Ok(2)
        );
    }

    #[test]
    fn first_activating_fault_wins() {
        let v = FaultyVariant::builder("multi", 1, |x: &i64| *x)
            .fault(FaultSpec::new(
                "f1",
                Activation::Always,
                FaultEffect::Omission,
            ))
            .fault(FaultSpec::new("f2", Activation::Always, FaultEffect::Crash))
            .build();
        let mut c = ctx();
        assert_eq!(v.execute(&1, &mut c), Err(VariantFailure::Omission));
    }

    #[test]
    fn shared_age_handle_ages_together() {
        let age = AgeHandle::new();
        let v1 = FaultyVariant::builder("p1", 1, |x: &i64| *x)
            .age_handle(age.clone())
            .build();
        let v2 = FaultyVariant::builder("p2", 1, |x: &i64| *x)
            .age_handle(age.clone())
            .build();
        let mut c = ctx();
        let _ = v1.execute(&1, &mut c);
        let _ = v2.execute(&1, &mut c);
        assert_eq!(age.age(), 2);
    }

    #[test]
    fn input_keys_stable_and_distinct() {
        assert_eq!(input_key(&"hello"), input_key(&"hello"));
        assert_ne!(input_key(&"hello"), input_key(&"world"));
        assert_ne!(input_key(&1u64), input_key(&2u64));
    }

    #[test]
    #[should_panic(expected = "without a corruptor")]
    fn wrong_output_without_corruptor_panics() {
        let v = FaultyVariant::builder("oops", 1, |x: &i64| *x)
            .fault(FaultSpec::new(
                "f",
                Activation::Always,
                FaultEffect::SilentWrongOutput,
            ))
            .build();
        let mut c = ctx();
        let _ = v.execute(&1, &mut c);
    }
}
