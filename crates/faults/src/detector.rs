//! Failure detectors (the paper's "sensors" and explicit adjudicator
//! building blocks).
//!
//! Reactive-explicit techniques need something that *notices* a failure
//! before redundancy can be exploited: exception monitors, watchdogs,
//! invariant checks, or golden-model oracles in experiments. A
//! [`FailureDetector`] inspects one [`VariantOutcome`] (with its input) and
//! reports whether it constitutes a failure.

use redundancy_core::outcome::VariantOutcome;

/// Detects failures in a single variant outcome.
pub trait FailureDetector<I, O>: Send + Sync {
    /// Identifies the detector in reports.
    fn name(&self) -> &str {
        "failure-detector"
    }

    /// Returns `true` when `outcome` is a failure for `input`.
    fn detect(&self, input: &I, outcome: &VariantOutcome<O>) -> bool;
}

impl<I, O> FailureDetector<I, O> for Box<dyn FailureDetector<I, O>> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn detect(&self, input: &I, outcome: &VariantOutcome<O>) -> bool {
        self.as_ref().detect(input, outcome)
    }
}

/// Detects only *detectable* failures: crashes, timeouts, errors,
/// omissions. Blind to silent wrong outputs — the detector most real
/// systems actually have.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetectableFailures;

impl DetectableFailures {
    /// Creates the detector.
    #[must_use]
    pub fn new() -> Self {
        DetectableFailures
    }
}

impl<I, O> FailureDetector<I, O> for DetectableFailures {
    fn name(&self) -> &str {
        "detectable-failures"
    }

    fn detect(&self, _input: &I, outcome: &VariantOutcome<O>) -> bool {
        !outcome.is_ok()
    }
}

/// Detects failures by checking an output invariant; detectable failures
/// are always failures.
pub struct InvariantDetector<F> {
    name: String,
    invariant: F,
}

impl<F> InvariantDetector<F> {
    /// Creates a detector from an invariant over input and output.
    pub fn new(name: impl Into<String>, invariant: F) -> Self {
        Self {
            name: name.into(),
            invariant,
        }
    }
}

impl<I, O, F> FailureDetector<I, O> for InvariantDetector<F>
where
    F: Fn(&I, &O) -> bool + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn detect(&self, input: &I, outcome: &VariantOutcome<O>) -> bool {
        match outcome.output() {
            Some(output) => !(self.invariant)(input, output),
            None => true,
        }
    }
}

/// A golden-model oracle: flags any outcome whose output differs from the
/// reference implementation. Used by experiments to measure *true*
/// failure/recovery rates; real deployments do not have one.
pub struct OracleDetector<F> {
    reference: F,
}

impl<F> OracleDetector<F> {
    /// Creates an oracle detector from a reference implementation.
    pub fn new(reference: F) -> Self {
        Self { reference }
    }
}

impl<I, O, F> FailureDetector<I, O> for OracleDetector<F>
where
    O: PartialEq,
    F: Fn(&I) -> O + Send + Sync,
{
    fn name(&self) -> &str {
        "oracle-detector"
    }

    fn detect(&self, input: &I, outcome: &VariantOutcome<O>) -> bool {
        match outcome.output() {
            Some(output) => *output != (self.reference)(input),
            None => true,
        }
    }
}

/// Combines detectors: flags a failure when *any* inner detector does.
pub struct AnyDetector<I, O> {
    detectors: Vec<Box<dyn FailureDetector<I, O>>>,
}

impl<I, O> AnyDetector<I, O> {
    /// Creates an empty combination (detects nothing).
    #[must_use]
    pub fn new() -> Self {
        Self {
            detectors: Vec::new(),
        }
    }

    /// Adds a detector.
    #[must_use]
    pub fn with(mut self, detector: impl FailureDetector<I, O> + 'static) -> Self {
        self.detectors.push(Box::new(detector));
        self
    }
}

impl<I, O> Default for AnyDetector<I, O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I, O> FailureDetector<I, O> for AnyDetector<I, O>
where
    I: Send + Sync,
    O: Send + Sync,
{
    fn name(&self) -> &str {
        "any-detector"
    }

    fn detect(&self, input: &I, outcome: &VariantOutcome<O>) -> bool {
        self.detectors.iter().any(|d| d.detect(input, outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redundancy_core::outcome::VariantFailure;

    #[test]
    fn detectable_failures_misses_silent_corruption() {
        let d = DetectableFailures::new();
        let silent_wrong = VariantOutcome::ok("v", 999);
        let crash: VariantOutcome<i32> = VariantOutcome::failed("v", VariantFailure::crash("x"));
        assert!(!d.detect(&1, &silent_wrong)); // blind to wrong output
        assert!(d.detect(&1, &crash));
    }

    #[test]
    fn invariant_detector_checks_outputs() {
        let d = InvariantDetector::new("sorted", |_: &Vec<i32>, out: &Vec<i32>| {
            out.windows(2).all(|w| w[0] <= w[1])
        });
        assert!(!d.detect(&vec![2, 1], &VariantOutcome::ok("v", vec![1, 2])));
        assert!(d.detect(&vec![2, 1], &VariantOutcome::ok("v", vec![2, 1])));
        assert!(d.detect(
            &vec![2, 1],
            &VariantOutcome::failed("v", VariantFailure::Timeout)
        ));
        assert_eq!(FailureDetector::<Vec<i32>, Vec<i32>>::name(&d), "sorted");
    }

    #[test]
    fn oracle_detector_catches_silent_corruption() {
        let d = OracleDetector::new(|x: &i32| x * 2);
        assert!(!d.detect(&3, &VariantOutcome::ok("v", 6)));
        assert!(d.detect(&3, &VariantOutcome::ok("v", 7)));
        assert!(d.detect(&3, &VariantOutcome::failed("v", VariantFailure::Omission)));
    }

    #[test]
    fn any_detector_is_union() {
        let d: AnyDetector<i32, i32> =
            AnyDetector::new()
                .with(DetectableFailures::new())
                .with(InvariantDetector::new("positive", |_: &i32, o: &i32| {
                    *o > 0
                }));
        assert!(!d.detect(&1, &VariantOutcome::ok("v", 5)));
        assert!(d.detect(&1, &VariantOutcome::ok("v", -5)));
        assert!(d.detect(&1, &VariantOutcome::failed("v", VariantFailure::Timeout)));
    }

    #[test]
    fn empty_any_detector_detects_nothing() {
        let d: AnyDetector<i32, i32> = AnyDetector::new();
        assert!(!d.detect(&1, &VariantOutcome::failed("v", VariantFailure::Timeout)));
    }
}
