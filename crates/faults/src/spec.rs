//! Fault specifications: what a fault is, when it activates, what it does.

use redundancy_core::rng::SplitMix64;
use redundancy_core::taxonomy::FaultClass;

use crate::variant::KnobSnapshot;

/// Mixes two 64-bit values into a well-distributed hash (used to derive
/// deterministic activation decisions from input/environment/salt tuples).
#[must_use]
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Converts a hash to a uniform fraction in `[0, 1)`.
#[must_use]
pub fn hash_fraction(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Everything a fault's activation condition may look at, extracted from
/// the input and the executing variant's state by [`FaultyVariant`].
///
/// [`FaultyVariant`]: crate::variant::FaultyVariant
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// A stable 64-bit digest of the input (equal inputs, equal key).
    pub input_key: u64,
    /// Whether the input is attack-flagged (malicious workloads).
    pub malicious: bool,
    /// Executions since the variant (or its process) was last
    /// rejuvenated/rebooted.
    pub age: u64,
    /// A digest of the current execution-environment configuration.
    /// Changing the environment (RX, rejuvenation) changes this signature.
    pub env_signature: u64,
    /// Concrete environment knob values, for knob-aware faults.
    pub knobs: KnobSnapshot,
}

impl Probe {
    /// A probe for a hashable input with no malicious flag, age zero and
    /// the default environment.
    #[must_use]
    pub fn from_key(input_key: u64) -> Self {
        Probe {
            input_key,
            malicious: false,
            age: 0,
            env_signature: 0,
            knobs: KnobSnapshot::default(),
        }
    }
}

/// When a fault activates.
#[derive(Debug, Clone, PartialEq)]
pub enum Activation {
    /// Fires on every execution.
    Always,
    /// **Bohrbug**: fires deterministically on a fixed fraction `density`
    /// of the input space, selected by hashing the input with `salt`.
    /// The same input always fails; different salts carve out different
    /// failure regions (used to build correlated or disjoint regions).
    InputRegion {
        /// Fraction of the input space that fails, in `[0, 1]`.
        density: f64,
        /// Distinguishes failure regions of different faults/versions.
        salt: u64,
    },
    /// **Heisenbug**: fires on each execution independently with
    /// probability `p` (transient conditions: scheduling, races, load).
    Probabilistic {
        /// Per-execution activation probability.
        p: f64,
    },
    /// **Aging-related Heisenbug**: fires with probability
    /// `min(1, base + growth * age)` where `age` counts executions since
    /// the last rejuvenation (Huang et al.'s software-aging model).
    AgeHazard {
        /// Hazard at age zero.
        base: f64,
        /// Hazard increase per execution of age.
        growth: f64,
    },
    /// **Malicious interaction fault**: fires exactly on attack-flagged
    /// inputs (optionally only on a `density` fraction of them, modeling
    /// attacks that need a specific precondition).
    OnMalicious {
        /// Fraction of malicious inputs that actually trigger the fault.
        density: f64,
        /// Region selector within the malicious inputs.
        salt: u64,
    },
    /// **Environment-sensitive fault**: for a *given* environment
    /// signature, a fixed `density` fraction of inputs fail
    /// deterministically; changing the environment re-rolls which inputs
    /// those are. This is the fault model under which Qin et al.'s RX is
    /// effective: re-execution in a perturbed environment escapes the
    /// failure with probability `1 - density`.
    EnvSensitive {
        /// Fraction of inputs failing per environment, in `[0, 1]`.
        density: f64,
        /// Region selector.
        salt: u64,
    },
    /// **Buffer overflow** (knob-aware): a `density` fraction of inputs
    /// overflow a buffer by `overflow` bytes. Allocation padding of at
    /// least `overflow` bytes absorbs it (RX's padding knob); no other
    /// perturbation helps.
    BufferOverflow {
        /// Fraction of inputs that overflow, in `[0, 1]`.
        density: f64,
        /// Region selector.
        salt: u64,
        /// Bytes written past the buffer end.
        overflow: u64,
    },
    /// **Uninitialized read** (knob-aware): a `density` fraction of
    /// inputs read uninitialized memory and misbehave unless allocations
    /// are zero-filled (RX's zero-fill knob).
    UninitializedRead {
        /// Fraction of inputs affected, in `[0, 1]`.
        density: f64,
        /// Region selector.
        salt: u64,
    },
    /// **Message race** (knob-aware): for a given message delivery order,
    /// a `density` fraction of inputs hit the race window; shuffling the
    /// order (RX's message knob) re-rolls which inputs those are.
    MessageRace {
        /// Fraction of inputs racing per delivery order, in `[0, 1]`.
        density: f64,
        /// Region selector.
        salt: u64,
    },
    /// **Overload fault** (knob-aware): fires with probability
    /// `p · admitted-load`; throttling requests (RX's throttle knob)
    /// scales the hazard down proportionally.
    Overload {
        /// Activation probability at full load.
        p: f64,
    },
}

impl Activation {
    /// Decides whether the fault fires for `probe`. `rng` is consulted only
    /// by genuinely stochastic activations.
    #[must_use]
    pub fn fires(&self, probe: &Probe, rng: &mut SplitMix64) -> bool {
        match *self {
            Activation::Always => true,
            Activation::InputRegion { density, salt } => {
                hash_fraction(mix64(probe.input_key, salt)) < density
            }
            Activation::Probabilistic { p } => rng.chance(p),
            Activation::AgeHazard { base, growth } => {
                let hazard = (base + growth * probe.age as f64).min(1.0);
                rng.chance(hazard)
            }
            Activation::OnMalicious { density, salt } => {
                probe.malicious && hash_fraction(mix64(probe.input_key, salt)) < density
            }
            Activation::EnvSensitive { density, salt } => {
                hash_fraction(mix64(mix64(probe.input_key, probe.env_signature), salt)) < density
            }
            Activation::BufferOverflow {
                density,
                salt,
                overflow,
            } => {
                probe.knobs.padding < overflow
                    && hash_fraction(mix64(probe.input_key, salt)) < density
            }
            Activation::UninitializedRead { density, salt } => {
                !probe.knobs.zero_fill && hash_fraction(mix64(probe.input_key, salt)) < density
            }
            Activation::MessageRace { density, salt } => {
                hash_fraction(mix64(mix64(probe.input_key, probe.knobs.order_seed), salt)) < density
            }
            Activation::Overload { p } => {
                let admitted = f64::from(probe.knobs.throttle_permille) / 1000.0;
                rng.chance(p * admitted)
            }
        }
    }

    /// The fault class this activation model represents.
    #[must_use]
    pub fn fault_class(&self) -> FaultClass {
        match self {
            Activation::Always | Activation::InputRegion { .. } => FaultClass::Bohrbug,
            Activation::Probabilistic { .. }
            | Activation::AgeHazard { .. }
            | Activation::EnvSensitive { .. }
            | Activation::MessageRace { .. }
            | Activation::Overload { .. } => FaultClass::Heisenbug,
            // Deterministic given input and environment: development
            // faults of the Bohr kind, yet curable by the right knob.
            Activation::BufferOverflow { .. } | Activation::UninitializedRead { .. } => {
                FaultClass::Bohrbug
            }
            Activation::OnMalicious { .. } => FaultClass::Malicious,
        }
    }
}

/// What happens when a fault activates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultEffect {
    /// The variant panics (detectable crash).
    Crash,
    /// The variant hangs (detectable timeout).
    Hang,
    /// The variant returns an explicit error (detectable).
    ErrorReturn,
    /// The variant produces no result (detectable omission).
    Omission,
    /// The variant returns a *wrong output* with no detectable sign —
    /// only adjudication or acceptance testing can catch it.
    SilentWrongOutput,
}

impl FaultEffect {
    /// Whether the effect is detectable without an adjudicator.
    #[must_use]
    pub fn is_detectable(self) -> bool {
        !matches!(self, FaultEffect::SilentWrongOutput)
    }
}

/// A complete injectable fault: identity, class-defining activation, and
/// effect.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Identifier used in reports.
    pub id: String,
    /// When the fault activates (also determines its [`FaultClass`]).
    pub activation: Activation,
    /// What the fault does when it activates.
    pub effect: FaultEffect,
}

impl FaultSpec {
    /// Creates a fault.
    #[must_use]
    pub fn new(id: impl Into<String>, activation: Activation, effect: FaultEffect) -> Self {
        Self {
            id: id.into(),
            activation,
            effect,
        }
    }

    /// A deterministic Bohrbug failing `density` of inputs with a silent
    /// wrong output.
    #[must_use]
    pub fn bohrbug(id: impl Into<String>, density: f64, salt: u64) -> Self {
        Self::new(
            id,
            Activation::InputRegion { density, salt },
            FaultEffect::SilentWrongOutput,
        )
    }

    /// A transient Heisenbug crashing with probability `p` per execution.
    #[must_use]
    pub fn heisenbug(id: impl Into<String>, p: f64) -> Self {
        Self::new(id, Activation::Probabilistic { p }, FaultEffect::Crash)
    }

    /// An aging fault whose crash hazard grows with executions since
    /// rejuvenation.
    #[must_use]
    pub fn aging(id: impl Into<String>, base: f64, growth: f64) -> Self {
        Self::new(
            id,
            Activation::AgeHazard { base, growth },
            FaultEffect::Crash,
        )
    }

    /// A malicious fault corrupting output on attack-flagged inputs.
    #[must_use]
    pub fn malicious(id: impl Into<String>, density: f64, salt: u64) -> Self {
        Self::new(
            id,
            Activation::OnMalicious { density, salt },
            FaultEffect::SilentWrongOutput,
        )
    }

    /// The fault class, derived from the activation model.
    #[must_use]
    pub fn fault_class(&self) -> FaultClass {
        self.activation.fault_class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SplitMix64 {
        SplitMix64::new(0xfau64)
    }

    #[test]
    fn input_region_is_deterministic_per_input() {
        let act = Activation::InputRegion {
            density: 0.3,
            salt: 17,
        };
        let mut r = rng();
        for key in 0..200u64 {
            let probe = Probe::from_key(key);
            let first = act.fires(&probe, &mut r);
            for _ in 0..5 {
                assert_eq!(first, act.fires(&probe, &mut r), "input {key} flapped");
            }
        }
    }

    #[test]
    fn input_region_density_is_calibrated() {
        let act = Activation::InputRegion {
            density: 0.25,
            salt: 3,
        };
        let mut r = rng();
        let hits = (0..20_000u64)
            .filter(|&k| act.fires(&Probe::from_key(k), &mut r))
            .count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn different_salts_give_different_regions() {
        let a = Activation::InputRegion {
            density: 0.5,
            salt: 1,
        };
        let b = Activation::InputRegion {
            density: 0.5,
            salt: 2,
        };
        let mut r = rng();
        let differs = (0..1000u64)
            .filter(|&k| {
                let p = Probe::from_key(k);
                a.fires(&p, &mut r) != b.fires(&p, &mut r)
            })
            .count();
        // Independent regions of density .5 should differ on ~half of inputs.
        assert!(differs > 300, "regions suspiciously aligned: {differs}");
    }

    #[test]
    fn probabilistic_is_transient() {
        let act = Activation::Probabilistic { p: 0.5 };
        let probe = Probe::from_key(42);
        let mut r = rng();
        let fires = (0..1000).filter(|_| act.fires(&probe, &mut r)).count();
        assert!(fires > 400 && fires < 600, "observed {fires}");
    }

    #[test]
    fn age_hazard_grows() {
        let act = Activation::AgeHazard {
            base: 0.0,
            growth: 0.001,
        };
        let mut r = rng();
        let rate_young: usize = (0..2000)
            .filter(|_| {
                let probe = Probe {
                    age: 10,
                    ..Probe::from_key(1)
                };
                act.fires(&probe, &mut r)
            })
            .count();
        let rate_old: usize = (0..2000)
            .filter(|_| {
                let probe = Probe {
                    age: 500,
                    ..Probe::from_key(1)
                };
                act.fires(&probe, &mut r)
            })
            .count();
        assert!(
            rate_old > rate_young * 5,
            "young {rate_young}, old {rate_old}"
        );
    }

    #[test]
    fn age_hazard_saturates_at_one() {
        let act = Activation::AgeHazard {
            base: 0.5,
            growth: 1.0,
        };
        let mut r = rng();
        let probe = Probe {
            age: 100,
            ..Probe::from_key(1)
        };
        for _ in 0..100 {
            assert!(act.fires(&probe, &mut r));
        }
    }

    #[test]
    fn malicious_requires_flag() {
        let act = Activation::OnMalicious {
            density: 1.0,
            salt: 0,
        };
        let mut r = rng();
        let benign = Probe::from_key(7);
        let attack = Probe {
            malicious: true,
            ..benign
        };
        assert!(!act.fires(&benign, &mut r));
        assert!(act.fires(&attack, &mut r));
    }

    #[test]
    fn env_sensitive_rerolls_with_environment() {
        let act = Activation::EnvSensitive {
            density: 0.5,
            salt: 9,
        };
        let mut r = rng();
        // Deterministic within one environment.
        let p0 = Probe {
            env_signature: 1111,
            ..Probe::from_key(5)
        };
        assert_eq!(act.fires(&p0, &mut r), act.fires(&p0, &mut r));
        // Across environments, a failing input escapes about half the time.
        let failing_keys: Vec<u64> = (0..2000u64)
            .filter(|&k| {
                act.fires(
                    &Probe {
                        env_signature: 1111,
                        ..Probe::from_key(k)
                    },
                    &mut r,
                )
            })
            .collect();
        let escaped = failing_keys
            .iter()
            .filter(|&&k| {
                !act.fires(
                    &Probe {
                        env_signature: 2222,
                        ..Probe::from_key(k)
                    },
                    &mut r,
                )
            })
            .count();
        let rate = escaped as f64 / failing_keys.len() as f64;
        assert!((rate - 0.5).abs() < 0.08, "escape rate {rate}");
    }

    #[test]
    fn fault_classes_derive_from_activation() {
        assert_eq!(
            FaultSpec::bohrbug("b", 0.1, 0).fault_class(),
            FaultClass::Bohrbug
        );
        assert_eq!(
            FaultSpec::heisenbug("h", 0.1).fault_class(),
            FaultClass::Heisenbug
        );
        assert_eq!(
            FaultSpec::aging("a", 0.0, 0.1).fault_class(),
            FaultClass::Heisenbug
        );
        assert_eq!(
            FaultSpec::malicious("m", 1.0, 0).fault_class(),
            FaultClass::Malicious
        );
        assert_eq!(
            Activation::EnvSensitive {
                density: 0.1,
                salt: 0
            }
            .fault_class(),
            FaultClass::Heisenbug
        );
    }

    #[test]
    fn effects_detectability() {
        assert!(FaultEffect::Crash.is_detectable());
        assert!(FaultEffect::Hang.is_detectable());
        assert!(FaultEffect::ErrorReturn.is_detectable());
        assert!(FaultEffect::Omission.is_detectable());
        assert!(!FaultEffect::SilentWrongOutput.is_detectable());
    }

    #[test]
    fn buffer_overflow_cured_by_sufficient_padding() {
        let act = Activation::BufferOverflow {
            density: 1.0,
            salt: 1,
            overflow: 48,
        };
        let mut r = rng();
        let mut probe = Probe::from_key(7);
        assert!(act.fires(&probe, &mut r), "no padding: overflow hits");
        probe.knobs.padding = 32;
        assert!(act.fires(&probe, &mut r), "insufficient padding");
        probe.knobs.padding = 48;
        assert!(!act.fires(&probe, &mut r), "padding absorbs the overflow");
    }

    #[test]
    fn uninitialized_read_cured_by_zero_fill() {
        let act = Activation::UninitializedRead {
            density: 1.0,
            salt: 2,
        };
        let mut r = rng();
        let mut probe = Probe::from_key(7);
        assert!(act.fires(&probe, &mut r));
        probe.knobs.zero_fill = true;
        assert!(!act.fires(&probe, &mut r));
    }

    #[test]
    fn message_race_rerolls_with_order_seed() {
        let act = Activation::MessageRace {
            density: 0.5,
            salt: 3,
        };
        let mut r = rng();
        // Deterministic per (input, order): no flapping.
        let probe = Probe::from_key(9);
        assert_eq!(act.fires(&probe, &mut r), act.fires(&probe, &mut r));
        // Across orders, a racing input escapes about half the time.
        let racing: Vec<u64> = (0..2000u64)
            .filter(|&k| act.fires(&Probe::from_key(k), &mut r))
            .collect();
        let escaped = racing
            .iter()
            .filter(|&&k| {
                let mut p = Probe::from_key(k);
                p.knobs.order_seed = 0xfeed;
                !act.fires(&p, &mut r)
            })
            .count();
        let rate = escaped as f64 / racing.len() as f64;
        assert!((rate - 0.5).abs() < 0.08, "escape rate {rate}");
    }

    #[test]
    fn overload_scales_with_throttle() {
        let act = Activation::Overload { p: 0.8 };
        let mut r = rng();
        let full = Probe::from_key(1);
        let full_fires = (0..2000).filter(|_| act.fires(&full, &mut r)).count();
        let mut throttled = Probe::from_key(1);
        throttled.knobs.throttle_permille = 250;
        let throttled_fires = (0..2000).filter(|_| act.fires(&throttled, &mut r)).count();
        let full_rate = full_fires as f64 / 2000.0;
        let throttled_rate = throttled_fires as f64 / 2000.0;
        assert!((full_rate - 0.8).abs() < 0.04, "full {full_rate}");
        assert!(
            (throttled_rate - 0.2).abs() < 0.04,
            "throttled {throttled_rate}"
        );
    }

    #[test]
    fn knob_aware_fault_classes() {
        assert_eq!(
            Activation::BufferOverflow {
                density: 0.1,
                salt: 0,
                overflow: 8
            }
            .fault_class(),
            FaultClass::Bohrbug
        );
        assert_eq!(
            Activation::UninitializedRead {
                density: 0.1,
                salt: 0
            }
            .fault_class(),
            FaultClass::Bohrbug
        );
        assert_eq!(
            Activation::MessageRace {
                density: 0.1,
                salt: 0
            }
            .fault_class(),
            FaultClass::Heisenbug
        );
        assert_eq!(
            Activation::Overload { p: 0.1 }.fault_class(),
            FaultClass::Heisenbug
        );
    }

    #[test]
    fn hash_fraction_in_unit_interval() {
        for i in 0..1000u64 {
            let f = hash_fraction(mix64(i, 77));
            assert!((0.0..1.0).contains(&f));
        }
    }
}
