//! Fault injection for the `redundancy` framework.
//!
//! The paper's taxonomy classifies techniques by the *class of fault* they
//! address: deterministic development faults (**Bohrbugs**), transient
//! development faults (**Heisenbugs**, including aging-related ones), and
//! **malicious** interaction faults. This crate models all of them as
//! injectable [`FaultSpec`]s attached to otherwise-correct computations via
//! [`FaultyVariant`], so that every technique can be measured against every
//! fault class (experiment T2's empirical matrix).
//!
//! Design goals:
//!
//! - **Determinism** — activation decisions derive from the experiment
//!   seed, the input hash, the variant age and the environment signature,
//!   never from global state; a seed reproduces a whole campaign.
//! - **Faithful fault semantics** — a Bohrbug fails the *same inputs* every
//!   time; a Heisenbug fails a random subset of executions; an aging fault
//!   has a hazard rate growing with time since the last rejuvenation; a
//!   malicious fault fires exactly on attack-flagged inputs; an
//!   environment-sensitive fault fails a fixed fraction of inputs *per
//!   environment*, so perturbing the environment (RX) re-rolls which inputs
//!   are affected.
//!
//! [`FaultSpec`]: spec::FaultSpec
//! [`FaultyVariant`]: variant::FaultyVariant

#![warn(missing_docs)]

pub mod correlation;
pub mod detector;
pub mod plan;
pub mod spec;
pub mod variant;
pub mod workload;

pub use correlation::{correlated_versions, CorrelatedSuite};
pub use detector::{
    AnyDetector, DetectableFailures, FailureDetector, InvariantDetector, OracleDetector,
};
pub use plan::FaultPlan;
pub use spec::{Activation, FaultEffect, FaultSpec, Probe};
pub use variant::{
    AgeHandle, EnvKnobs, EnvSignature, FaultyVariant, FaultyVariantBuilder, KnobSnapshot,
};
pub use workload::{AttackMix, Request, UniformInts, VecInts, Workload};
