//! Deterministic workload generators for experiments.

use redundancy_core::rng::SplitMix64;

/// Generates a stream of inputs for an experiment, deterministically from
/// the generator's random stream.
pub trait Workload<I>: Send + Sync {
    /// Produces the next input.
    fn generate(&self, rng: &mut SplitMix64) -> I;

    /// Produces a batch of `n` inputs.
    fn batch(&self, rng: &mut SplitMix64, n: usize) -> Vec<I> {
        (0..n).map(|_| self.generate(rng)).collect()
    }
}

/// Uniform integers in `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct UniformInts {
    lo: i64,
    hi: i64,
}

impl UniformInts {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[must_use]
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo < hi, "empty range");
        Self { lo, hi }
    }
}

impl Workload<i64> for UniformInts {
    fn generate(&self, rng: &mut SplitMix64) -> i64 {
        rng.range_i64(self.lo, self.hi)
    }
}

impl Workload<u64> for UniformInts {
    fn generate(&self, rng: &mut SplitMix64) -> u64 {
        rng.range_i64(self.lo.max(0), self.hi) as u64
    }
}

/// Vectors of uniform integers with a length range.
#[derive(Debug, Clone, Copy)]
pub struct VecInts {
    min_len: usize,
    max_len: usize,
    lo: i64,
    hi: i64,
}

impl VecInts {
    /// Creates the generator for vectors with length in
    /// `[min_len, max_len]` and elements in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `min_len > max_len` or `lo >= hi`.
    #[must_use]
    pub fn new(min_len: usize, max_len: usize, lo: i64, hi: i64) -> Self {
        assert!(min_len <= max_len, "invalid length range");
        assert!(lo < hi, "empty element range");
        Self {
            min_len,
            max_len,
            lo,
            hi,
        }
    }
}

impl Workload<Vec<i64>> for VecInts {
    fn generate(&self, rng: &mut SplitMix64) -> Vec<i64> {
        let len = rng.range_u64(self.min_len as u64, self.max_len as u64 + 1) as usize;
        (0..len).map(|_| rng.range_i64(self.lo, self.hi)).collect()
    }
}

/// Wraps a payload with an attack flag, for malicious-fault experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request<I> {
    /// The request payload.
    pub payload: I,
    /// Whether this request carries an attack.
    pub malicious: bool,
}

/// Mixes attacks into a base workload at a given rate.
#[derive(Debug, Clone, Copy)]
pub struct AttackMix<W> {
    base: W,
    attack_rate: f64,
}

impl<W> AttackMix<W> {
    /// Creates the mix: each generated request is flagged malicious with
    /// probability `attack_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `attack_rate` is outside `[0, 1]`.
    #[must_use]
    pub fn new(base: W, attack_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&attack_rate),
            "attack rate must be in [0, 1]"
        );
        Self { base, attack_rate }
    }
}

impl<I, W: Workload<I>> Workload<Request<I>> for AttackMix<W> {
    fn generate(&self, rng: &mut SplitMix64) -> Request<I> {
        Request {
            payload: self.base.generate(rng),
            malicious: rng.chance(self.attack_rate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_ints_in_range() {
        let w = UniformInts::new(-10, 10);
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let x: i64 = w.generate(&mut rng);
            assert!((-10..10).contains(&x));
        }
    }

    #[test]
    fn batch_is_deterministic_for_seed() {
        let w = UniformInts::new(0, 1000);
        let mut r1 = SplitMix64::new(7);
        let mut r2 = SplitMix64::new(7);
        let a: Vec<i64> = w.batch(&mut r1, 50);
        let b: Vec<i64> = w.batch(&mut r2, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn vec_ints_respects_bounds() {
        let w = VecInts::new(2, 5, 0, 3);
        let mut rng = SplitMix64::new(2);
        for _ in 0..200 {
            let v = w.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|x| (0..3).contains(x)));
        }
    }

    #[test]
    fn attack_mix_rate_is_calibrated() {
        let w = AttackMix::new(UniformInts::new(0, 10), 0.2);
        let mut rng = SplitMix64::new(3);
        let reqs: Vec<Request<i64>> = w.batch(&mut rng, 10_000);
        let rate = reqs.iter().filter(|r| r.malicious).count() as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "observed {rate}");
    }

    #[test]
    #[should_panic(expected = "attack rate must be in [0, 1]")]
    fn invalid_attack_rate_panics() {
        let _ = AttackMix::new(UniformInts::new(0, 10), 1.5);
    }
}
