//! Correlated multi-version fault generation.
//!
//! The paper's §4.1 recalls Brilliant, Knight and Leveson's finding that
//! independently developed versions fail on *correlated* inputs far more
//! often than independence would predict, eroding the reliability gain of
//! N-version programming. [`correlated_versions`] builds a suite of N
//! versions whose failure regions have a tunable overlap:
//!
//! - with correlation `rho = 0`, each version fails on its own independent
//!   input region of measure `density`;
//! - with `rho = 1`, all versions fail on the *same* region ("difficult
//!   inputs" that defeat every team);
//! - in between, a fraction `rho` of each version's failure region is the
//!   shared region.
//!
//! Experiment E5 sweeps `rho` and reproduces the reliability collapse.

use std::hash::Hash;

use redundancy_core::rng::SplitMix64;
use redundancy_core::variant::BoxedVariant;

use crate::spec::{Activation, FaultEffect, FaultSpec};
use crate::variant::FaultyVariant;

/// Configuration for a correlated N-version suite.
#[derive(Debug, Clone, Copy)]
pub struct CorrelatedSuite {
    /// Number of versions.
    pub versions: usize,
    /// Marginal failure density of each version, in `[0, 1]`.
    pub density: f64,
    /// Failure-region correlation in `[0, 1]`: fraction of each version's
    /// failure region shared by all versions.
    pub rho: f64,
    /// Work units charged per call by each version.
    pub work: u64,
    /// Seed for region placement.
    pub seed: u64,
}

impl CorrelatedSuite {
    /// Creates a suite configuration.
    ///
    /// # Panics
    ///
    /// Panics if `versions == 0`, or if `density` or `rho` fall outside
    /// `[0, 1]`.
    #[must_use]
    pub fn new(versions: usize, density: f64, rho: f64, seed: u64) -> Self {
        assert!(versions > 0, "need at least one version");
        assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
        assert!((0.0..=1.0).contains(&rho), "rho must be in [0, 1]");
        Self {
            versions,
            density,
            rho,
            work: 10,
            seed,
        }
    }
}

/// Builds `suite.versions` versions of `golden`, each failing silently on a
/// `density` fraction of inputs, with pairwise failure-region overlap
/// controlled by `rho`. The corruptor derives each wrong output from the
/// correct one.
///
/// # Examples
///
/// ```
/// use redundancy_faults::correlation::{correlated_versions, CorrelatedSuite};
///
/// // Three versions, 10% failure density, independent failure regions.
/// let suite = CorrelatedSuite::new(3, 0.1, 0.0, 42);
/// let versions = correlated_versions(suite, |x: &u64| x * 2, |correct, _| correct + 1);
/// assert_eq!(versions.len(), 3);
/// ```
pub fn correlated_versions<I, O, F, C>(
    suite: CorrelatedSuite,
    golden: F,
    corrupt: C,
) -> Vec<BoxedVariant<I, O>>
where
    I: Hash + Send + Sync + 'static,
    O: Send + Sync + 'static,
    F: Fn(&I) -> O + Send + Sync + Clone + 'static,
    C: Fn(&O, &mut SplitMix64) -> O + Send + Sync + Clone + 'static,
{
    let mut rng = SplitMix64::new(suite.seed);
    let common_salt = rng.next_u64();
    let common_density = suite.density * suite.rho;
    // The independent part must bring the marginal up to `density` given
    // that the common region already covers `common_density`:
    // marginal = common + (1 - common) * independent.
    let independent_density = if common_density >= 1.0 {
        0.0
    } else {
        (suite.density - common_density) / (1.0 - common_density)
    };
    (0..suite.versions)
        .map(|v| {
            let own_salt = rng.next_u64();
            let mut builder =
                FaultyVariant::builder(format!("version-{v}"), suite.work, golden.clone())
                    .corruptor(corrupt.clone());
            if common_density > 0.0 {
                builder = builder.fault(FaultSpec::new(
                    format!("common-bug-v{v}"),
                    Activation::InputRegion {
                        density: common_density,
                        salt: common_salt,
                    },
                    FaultEffect::SilentWrongOutput,
                ));
            }
            if independent_density > 0.0 {
                builder = builder.fault(FaultSpec::new(
                    format!("own-bug-v{v}"),
                    Activation::InputRegion {
                        density: independent_density,
                        salt: own_salt,
                    },
                    FaultEffect::SilentWrongOutput,
                ));
            }
            builder.build_boxed()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redundancy_core::context::ExecContext;

    fn failure_sets(rho: f64, density: f64) -> Vec<Vec<bool>> {
        let suite = CorrelatedSuite::new(3, density, rho, 99);
        let versions = correlated_versions(suite, |x: &u64| x * 2, |c, _| c + 1);
        let mut ctx = ExecContext::new(5);
        versions
            .iter()
            .map(|v| {
                (0..4000u64)
                    .map(|x| v.execute(&x, &mut ctx) != Ok(x * 2))
                    .collect()
            })
            .collect()
    }

    fn rate(bits: &[bool]) -> f64 {
        bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64
    }

    fn joint_rate(a: &[bool], b: &[bool]) -> f64 {
        a.iter().zip(b.iter()).filter(|&(&x, &y)| x && y).count() as f64 / a.len() as f64
    }

    #[test]
    fn marginal_density_is_calibrated_at_all_rho() {
        for rho in [0.0, 0.5, 1.0] {
            let sets = failure_sets(rho, 0.2);
            for (v, set) in sets.iter().enumerate() {
                let r = rate(set);
                assert!(
                    (r - 0.2).abs() < 0.03,
                    "rho {rho} version {v}: marginal {r}"
                );
            }
        }
    }

    #[test]
    fn zero_rho_gives_near_independent_overlap() {
        let sets = failure_sets(0.0, 0.2);
        let joint = joint_rate(&sets[0], &sets[1]);
        // Independent: ~0.04.
        assert!(joint < 0.07, "joint {joint}");
    }

    #[test]
    fn full_rho_gives_identical_regions() {
        let sets = failure_sets(1.0, 0.2);
        assert_eq!(sets[0], sets[1]);
        assert_eq!(sets[1], sets[2]);
    }

    #[test]
    fn half_rho_sits_in_between() {
        let sets = failure_sets(0.5, 0.2);
        let joint = joint_rate(&sets[0], &sets[1]);
        // Shared region alone contributes 0.1; independence would give 0.04.
        assert!(joint > 0.08 && joint < 0.16, "joint {joint}");
    }

    #[test]
    #[should_panic(expected = "rho must be in [0, 1]")]
    fn invalid_rho_panics() {
        let _ = CorrelatedSuite::new(3, 0.1, 1.5, 0);
    }

    #[test]
    #[should_panic(expected = "need at least one version")]
    fn zero_versions_panics() {
        let _ = CorrelatedSuite::new(0, 0.1, 0.5, 0);
    }
}
