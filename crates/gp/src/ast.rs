//! The expression language evolved by the GP engine.

use std::fmt;

use redundancy_core::rng::SplitMix64;

/// An integer expression over a fixed set of input variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A constant.
    Const(i64),
    /// The `n`-th input.
    Var(usize),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Protected division: division by zero yields 1 (standard GP
    /// convention, keeps every tree total).
    Div(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
    /// Conditional.
    If(Box<Cond>, Box<Expr>, Box<Expr>),
}

/// A boolean condition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Strictly less.
    Lt(Box<Expr>, Box<Expr>),
    /// Less or equal.
    Le(Box<Expr>, Box<Expr>),
    /// Equal.
    Eq(Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

impl Expr {
    /// Evaluates the expression on `inputs`. Total: protected division,
    /// wrapping arithmetic.
    #[must_use]
    pub fn eval(&self, inputs: &[i64]) -> i64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Var(n) => inputs.get(*n).copied().unwrap_or(0),
            Expr::Add(a, b) => a.eval(inputs).wrapping_add(b.eval(inputs)),
            Expr::Sub(a, b) => a.eval(inputs).wrapping_sub(b.eval(inputs)),
            Expr::Mul(a, b) => a.eval(inputs).wrapping_mul(b.eval(inputs)),
            Expr::Div(a, b) => {
                let d = b.eval(inputs);
                if d == 0 {
                    1
                } else {
                    a.eval(inputs).wrapping_div(d)
                }
            }
            Expr::Neg(a) => a.eval(inputs).wrapping_neg(),
            Expr::If(c, t, e) => {
                if c.eval(inputs) {
                    t.eval(inputs)
                } else {
                    e.eval(inputs)
                }
            }
        }
    }

    /// Number of expression nodes (conditions count their subexpressions).
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Neg(a) => 1 + a.size(),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                1 + a.size() + b.size()
            }
            Expr::If(c, t, e) => 1 + c.size() + t.size() + e.size(),
        }
    }

    /// Tree depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Neg(a) => 1 + a.depth(),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                1 + a.depth().max(b.depth())
            }
            Expr::If(c, t, e) => 1 + c.depth().max(t.depth()).max(e.depth()),
        }
    }

    /// Returns the `idx`-th expression node in pre-order, if it exists.
    #[must_use]
    pub fn node(&self, idx: usize) -> Option<&Expr> {
        fn walk<'a>(e: &'a Expr, idx: &mut usize) -> Option<&'a Expr> {
            if *idx == 0 {
                return Some(e);
            }
            *idx -= 1;
            match e {
                Expr::Const(_) | Expr::Var(_) => None,
                Expr::Neg(a) => walk(a, idx),
                Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                    walk(a, idx).or_else(|| walk(b, idx))
                }
                Expr::If(c, t, e2) => cond_walk(c, idx)
                    .or_else(|| walk(t, idx))
                    .or_else(|| walk(e2, idx)),
            }
        }
        fn cond_walk<'a>(c: &'a Cond, idx: &mut usize) -> Option<&'a Expr> {
            match c {
                Cond::Lt(a, b) | Cond::Le(a, b) | Cond::Eq(a, b) => {
                    walk(a, idx).or_else(|| walk(b, idx))
                }
                Cond::And(x, y) | Cond::Or(x, y) => cond_walk(x, idx).or_else(|| cond_walk(y, idx)),
                Cond::Not(x) => cond_walk(x, idx),
            }
        }
        let mut i = idx;
        walk(self, &mut i)
    }

    /// Returns a copy of the tree with the `idx`-th pre-order expression
    /// node replaced by `subtree`. Returns the tree unchanged if `idx` is
    /// out of range.
    #[must_use]
    pub fn with_node(&self, idx: usize, subtree: &Expr) -> Expr {
        fn rebuild(e: &Expr, idx: &mut isize, subtree: &Expr) -> Expr {
            if *idx == 0 {
                *idx -= 1;
                return subtree.clone();
            }
            *idx -= 1;
            match e {
                Expr::Const(_) | Expr::Var(_) => e.clone(),
                Expr::Neg(a) => Expr::Neg(Box::new(rebuild(a, idx, subtree))),
                Expr::Add(a, b) => Expr::Add(
                    Box::new(rebuild(a, idx, subtree)),
                    Box::new(rebuild(b, idx, subtree)),
                ),
                Expr::Sub(a, b) => Expr::Sub(
                    Box::new(rebuild(a, idx, subtree)),
                    Box::new(rebuild(b, idx, subtree)),
                ),
                Expr::Mul(a, b) => Expr::Mul(
                    Box::new(rebuild(a, idx, subtree)),
                    Box::new(rebuild(b, idx, subtree)),
                ),
                Expr::Div(a, b) => Expr::Div(
                    Box::new(rebuild(a, idx, subtree)),
                    Box::new(rebuild(b, idx, subtree)),
                ),
                Expr::If(c, t, e2) => Expr::If(
                    Box::new(cond_rebuild(c, idx, subtree)),
                    Box::new(rebuild(t, idx, subtree)),
                    Box::new(rebuild(e2, idx, subtree)),
                ),
            }
        }
        fn cond_rebuild(c: &Cond, idx: &mut isize, subtree: &Expr) -> Cond {
            match c {
                Cond::Lt(a, b) => Cond::Lt(
                    Box::new(rebuild(a, idx, subtree)),
                    Box::new(rebuild(b, idx, subtree)),
                ),
                Cond::Le(a, b) => Cond::Le(
                    Box::new(rebuild(a, idx, subtree)),
                    Box::new(rebuild(b, idx, subtree)),
                ),
                Cond::Eq(a, b) => Cond::Eq(
                    Box::new(rebuild(a, idx, subtree)),
                    Box::new(rebuild(b, idx, subtree)),
                ),
                Cond::And(x, y) => Cond::And(
                    Box::new(cond_rebuild(x, idx, subtree)),
                    Box::new(cond_rebuild(y, idx, subtree)),
                ),
                Cond::Or(x, y) => Cond::Or(
                    Box::new(cond_rebuild(x, idx, subtree)),
                    Box::new(cond_rebuild(y, idx, subtree)),
                ),
                Cond::Not(x) => Cond::Not(Box::new(cond_rebuild(x, idx, subtree))),
            }
        }
        let mut i = idx as isize;
        rebuild(self, &mut i, subtree)
    }

    /// Generates a random expression tree of at most `depth`, over `arity`
    /// input variables (the GP "grow" method).
    #[must_use]
    pub fn random(rng: &mut SplitMix64, arity: usize, depth: usize) -> Expr {
        if depth <= 1 || rng.chance(0.3) {
            // Terminal.
            if arity > 0 && rng.chance(0.7) {
                Expr::Var(rng.index(arity))
            } else {
                Expr::Const(rng.range_i64(-5, 6))
            }
        } else {
            match rng.index(6) {
                0 => Expr::Add(
                    Box::new(Expr::random(rng, arity, depth - 1)),
                    Box::new(Expr::random(rng, arity, depth - 1)),
                ),
                1 => Expr::Sub(
                    Box::new(Expr::random(rng, arity, depth - 1)),
                    Box::new(Expr::random(rng, arity, depth - 1)),
                ),
                2 => Expr::Mul(
                    Box::new(Expr::random(rng, arity, depth - 1)),
                    Box::new(Expr::random(rng, arity, depth - 1)),
                ),
                3 => Expr::Neg(Box::new(Expr::random(rng, arity, depth - 1))),
                4 => Expr::If(
                    Box::new(Cond::random(rng, arity, depth - 1)),
                    Box::new(Expr::random(rng, arity, depth - 1)),
                    Box::new(Expr::random(rng, arity, depth - 1)),
                ),
                _ => Expr::Div(
                    Box::new(Expr::random(rng, arity, depth - 1)),
                    Box::new(Expr::random(rng, arity, depth - 1)),
                ),
            }
        }
    }
}

impl Cond {
    /// Evaluates the condition.
    #[must_use]
    pub fn eval(&self, inputs: &[i64]) -> bool {
        match self {
            Cond::Lt(a, b) => a.eval(inputs) < b.eval(inputs),
            Cond::Le(a, b) => a.eval(inputs) <= b.eval(inputs),
            Cond::Eq(a, b) => a.eval(inputs) == b.eval(inputs),
            Cond::And(x, y) => x.eval(inputs) && y.eval(inputs),
            Cond::Or(x, y) => x.eval(inputs) || y.eval(inputs),
            Cond::Not(x) => !x.eval(inputs),
        }
    }

    /// Number of *expression* nodes inside the condition.
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Cond::Lt(a, b) | Cond::Le(a, b) | Cond::Eq(a, b) => a.size() + b.size(),
            Cond::And(x, y) | Cond::Or(x, y) => x.size() + y.size(),
            Cond::Not(x) => x.size(),
        }
    }

    /// Depth of the condition subtree.
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            Cond::Lt(a, b) | Cond::Le(a, b) | Cond::Eq(a, b) => 1 + a.depth().max(b.depth()),
            Cond::And(x, y) | Cond::Or(x, y) => 1 + x.depth().max(y.depth()),
            Cond::Not(x) => 1 + x.depth(),
        }
    }

    /// Generates a random condition.
    #[must_use]
    pub fn random(rng: &mut SplitMix64, arity: usize, depth: usize) -> Cond {
        let d = depth.max(1);
        match rng.index(3) {
            0 => Cond::Lt(
                Box::new(Expr::random(rng, arity, d)),
                Box::new(Expr::random(rng, arity, d)),
            ),
            1 => Cond::Le(
                Box::new(Expr::random(rng, arity, d)),
                Box::new(Expr::random(rng, arity, d)),
            ),
            _ => Cond::Eq(
                Box::new(Expr::random(rng, arity, d)),
                Box::new(Expr::random(rng, arity, d)),
            ),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(n) => write!(f, "x{n}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Neg(a) => write!(f, "(-{a})"),
            Expr::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Lt(a, b) => write!(f, "{a} < {b}"),
            Cond::Le(a, b) => write!(f, "{a} <= {b}"),
            Cond::Eq(a, b) => write!(f, "{a} == {b}"),
            Cond::And(x, y) => write!(f, "({x} and {y})"),
            Cond::Or(x, y) => write!(f, "({x} or {y})"),
            Cond::Not(x) => write!(f, "(not {x})"),
        }
    }
}

/// Shorthand constructors used by the corpus and tests.
pub mod build {
    use super::{Cond, Expr};

    /// Constant.
    #[must_use]
    pub fn c(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// Variable.
    #[must_use]
    pub fn v(n: usize) -> Expr {
        Expr::Var(n)
    }

    /// Sum.
    #[must_use]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// Difference.
    #[must_use]
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// Product.
    #[must_use]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// Negation.
    #[must_use]
    pub fn neg(a: Expr) -> Expr {
        Expr::Neg(Box::new(a))
    }

    /// Conditional.
    #[must_use]
    pub fn iff(c: Cond, t: Expr, e: Expr) -> Expr {
        Expr::If(Box::new(c), Box::new(t), Box::new(e))
    }

    /// Strictly-less condition.
    #[must_use]
    pub fn lt(a: Expr, b: Expr) -> Cond {
        Cond::Lt(Box::new(a), Box::new(b))
    }

    /// Less-or-equal condition.
    #[must_use]
    pub fn le(a: Expr, b: Expr) -> Cond {
        Cond::Le(Box::new(a), Box::new(b))
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    fn max2() -> Expr {
        iff(lt(v(0), v(1)), v(1), v(0))
    }

    #[test]
    fn eval_arithmetic() {
        let e = add(mul(v(0), v(0)), c(1));
        assert_eq!(e.eval(&[5]), 26);
        assert_eq!(sub(c(3), c(10)).eval(&[]), -7);
        assert_eq!(neg(c(4)).eval(&[]), -4);
    }

    #[test]
    fn protected_division() {
        let e = Expr::Div(Box::new(c(10)), Box::new(c(0)));
        assert_eq!(e.eval(&[]), 1);
        let e = Expr::Div(Box::new(c(10)), Box::new(c(2)));
        assert_eq!(e.eval(&[]), 5);
    }

    #[test]
    fn eval_conditional() {
        let e = max2();
        assert_eq!(e.eval(&[3, 9]), 9);
        assert_eq!(e.eval(&[9, 3]), 9);
        assert_eq!(e.eval(&[4, 4]), 4);
    }

    #[test]
    fn missing_var_defaults_to_zero() {
        assert_eq!(v(5).eval(&[1, 2]), 0);
    }

    #[test]
    fn size_and_depth() {
        let e = max2();
        // nodes: if, (v0, v1) in cond, v1, v0 => 5
        assert_eq!(e.size(), 5);
        // depth: if -> cond -> cond operands = 3 levels
        assert_eq!(e.depth(), 3);
        assert_eq!(c(1).size(), 1);
        assert_eq!(c(1).depth(), 1);
    }

    #[test]
    fn node_indexing_is_preorder() {
        let e = max2();
        assert_eq!(e.node(0), Some(&e));
        assert_eq!(e.node(1), Some(&v(0))); // first cond operand
        assert_eq!(e.node(2), Some(&v(1)));
        assert_eq!(e.node(3), Some(&v(1))); // then
        assert_eq!(e.node(4), Some(&v(0))); // else
        assert_eq!(e.node(5), None);
    }

    #[test]
    fn with_node_replaces_exactly_one() {
        let e = max2();
        // Replace the `else` branch with a constant.
        let patched = e.with_node(4, &c(42));
        assert_eq!(patched.eval(&[9, 3]), 42);
        assert_eq!(patched.eval(&[3, 9]), 9);
        // Out-of-range replacement is identity.
        assert_eq!(e.with_node(99, &c(1)), e);
    }

    #[test]
    fn with_node_root_swap() {
        let e = max2();
        assert_eq!(e.with_node(0, &c(7)), c(7));
    }

    #[test]
    fn random_trees_respect_depth_and_evaluate() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..200 {
            let e = Expr::random(&mut rng, 2, 4);
            // Conditions add one level per nested `if`, so the bound is
            // roughly twice the budget.
            assert!(e.depth() <= 8, "depth {} for {e}", e.depth());
            let _ = e.eval(&[1, 2]); // must not panic
        }
    }

    #[test]
    fn display_roundtrips_structure() {
        assert_eq!(max2().to_string(), "(if x0 < x1 then x1 else x0)");
        assert_eq!(
            Expr::Div(Box::new(c(1)), Box::new(c(2))).to_string(),
            "(1 / 2)"
        );
    }

    #[test]
    fn cond_connectives() {
        let t = Cond::And(
            Box::new(le(c(1), c(2))),
            Box::new(Cond::Not(Box::new(lt(c(5), c(3))))),
        );
        assert!(t.eval(&[]));
        let u = Cond::Or(
            Box::new(lt(c(5), c(3))),
            Box::new(Cond::Eq(Box::new(c(1)), Box::new(c(1)))),
        );
        assert!(u.eval(&[]));
        assert!(t.size() > 0 && t.depth() > 0);
    }
}
