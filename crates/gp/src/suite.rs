//! Test suites: the explicit adjudicator of GP-based fault fixing.

use redundancy_core::rng::SplitMix64;

use crate::ast::Expr;

/// One test case: inputs and the expected output.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TestCase {
    /// Input vector.
    pub inputs: Vec<i64>,
    /// Expected output.
    pub expected: i64,
}

/// A test suite used as a fitness function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestSuite {
    cases: Vec<TestCase>,
}

impl TestSuite {
    /// Creates a suite from explicit cases.
    ///
    /// # Panics
    ///
    /// Panics if `cases` is empty — an empty suite cannot adjudicate.
    #[must_use]
    pub fn new(cases: Vec<TestCase>) -> Self {
        assert!(!cases.is_empty(), "a test suite needs at least one case");
        Self { cases }
    }

    /// Generates a suite of `n` cases from a reference implementation over
    /// random input vectors of the given `arity` with entries in
    /// `[lo, hi)`.
    #[must_use]
    pub fn from_reference<F>(
        reference: F,
        arity: usize,
        n: usize,
        lo: i64,
        hi: i64,
        rng: &mut SplitMix64,
    ) -> Self
    where
        F: Fn(&[i64]) -> i64,
    {
        assert!(n > 0, "a test suite needs at least one case");
        let cases = (0..n)
            .map(|_| {
                let inputs: Vec<i64> = (0..arity).map(|_| rng.range_i64(lo, hi)).collect();
                let expected = reference(&inputs);
                TestCase { inputs, expected }
            })
            .collect();
        Self { cases }
    }

    /// The cases.
    #[must_use]
    pub fn cases(&self) -> &[TestCase] {
        &self.cases
    }

    /// Number of cases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// Whether the suite is empty (never true for constructed suites).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// Number of cases `program` passes.
    #[must_use]
    pub fn passed(&self, program: &Expr) -> usize {
        self.cases
            .iter()
            .filter(|case| program.eval(&case.inputs) == case.expected)
            .count()
    }

    /// Whether `program` passes every case.
    #[must_use]
    pub fn all_pass(&self, program: &Expr) -> bool {
        self.passed(program) == self.cases.len()
    }

    /// The failing cases for `program` (for reports).
    #[must_use]
    pub fn failures<'a>(&'a self, program: &Expr) -> Vec<&'a TestCase> {
        self.cases
            .iter()
            .filter(|case| program.eval(&case.inputs) != case.expected)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;

    #[test]
    fn passed_counts_correctly() {
        let suite = TestSuite::new(vec![
            TestCase {
                inputs: vec![1],
                expected: 2,
            },
            TestCase {
                inputs: vec![5],
                expected: 10,
            },
            TestCase {
                inputs: vec![0],
                expected: 1, // wrong on purpose: x*2 gives 0
            },
        ]);
        let double = mul(v(0), c(2));
        assert_eq!(suite.passed(&double), 2);
        assert!(!suite.all_pass(&double));
        assert_eq!(suite.failures(&double).len(), 1);
        assert_eq!(suite.len(), 3);
    }

    #[test]
    fn from_reference_generates_consistent_cases() {
        let mut rng = SplitMix64::new(4);
        let suite = TestSuite::from_reference(|xs| xs[0] + xs[1], 2, 50, -100, 100, &mut rng);
        assert_eq!(suite.len(), 50);
        let correct = add(v(0), v(1));
        assert!(suite.all_pass(&correct));
        let wrong = sub(v(0), v(1));
        assert!(!suite.all_pass(&wrong));
    }

    #[test]
    #[should_panic(expected = "at least one case")]
    fn empty_suite_panics() {
        let _ = TestSuite::new(vec![]);
    }
}
