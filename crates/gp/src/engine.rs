//! The genetic-programming repair loop.

use redundancy_core::rng::SplitMix64;

use crate::ast::Expr;
use crate::suite::TestSuite;

/// GP hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpParams {
    /// Population size.
    pub population: usize,
    /// Maximum generations before giving up.
    pub generations: usize,
    /// Tournament size for selection.
    pub tournament: usize,
    /// Probability of crossover (vs. reproduction) per offspring.
    pub crossover_rate: f64,
    /// Probability of mutating each offspring.
    pub mutation_rate: f64,
    /// Number of elites copied unchanged each generation.
    pub elitism: usize,
    /// Maximum tree depth for generated subtrees.
    pub max_depth: usize,
    /// Maximum tree size; larger offspring are rejected (bloat control).
    pub max_size: usize,
}

impl Default for GpParams {
    fn default() -> Self {
        Self {
            population: 100,
            generations: 60,
            tournament: 4,
            crossover_rate: 0.7,
            mutation_rate: 0.4,
            elitism: 2,
            max_depth: 5,
            max_size: 80,
        }
    }
}

/// The result of a repair attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct GpResult {
    /// The best program found.
    pub best: Expr,
    /// Cases passed by `best`.
    pub best_fitness: usize,
    /// Total cases in the suite.
    pub total_cases: usize,
    /// Generations actually executed.
    pub generations_used: usize,
    /// Total fitness evaluations performed.
    pub evaluations: u64,
}

impl GpResult {
    /// Whether the best program passes the whole suite.
    #[must_use]
    pub fn is_fixed(&self) -> bool {
        self.best_fitness == self.total_cases
    }
}

/// The GP engine.
#[derive(Debug, Clone)]
pub struct Gp {
    params: GpParams,
    arity: usize,
}

impl Gp {
    /// Creates an engine for programs over `arity` input variables.
    #[must_use]
    pub fn new(arity: usize, params: GpParams) -> Self {
        Self { params, arity }
    }

    /// Attempts to repair `faulty` so that it passes `suite`.
    ///
    /// The initial population is seeded with the faulty program and
    /// mutants of it (repairs are usually near the original — Weimer et
    /// al.'s key observation), topped up with random trees for diversity.
    pub fn repair(&self, faulty: &Expr, suite: &TestSuite, rng: &mut SplitMix64) -> GpResult {
        self.repair_observed(faulty, suite, rng, |_, _, _| {})
    }

    /// Like [`repair`](Self::repair), but calls `on_generation(generation,
    /// best_fitness, total_cases)` after each generation's evaluation —
    /// the hook observability layers use to trace search progress.
    pub fn repair_observed(
        &self,
        faulty: &Expr,
        suite: &TestSuite,
        rng: &mut SplitMix64,
        mut on_generation: impl FnMut(usize, usize, usize),
    ) -> GpResult {
        let p = &self.params;
        let mut evaluations: u64 = 0;
        let mut population: Vec<Expr> = Vec::with_capacity(p.population);
        population.push(faulty.clone());
        while population.len() < p.population {
            let seed_mutant = population.len().is_multiple_of(2);
            let individual = if seed_mutant {
                self.mutate(faulty, rng)
            } else {
                Expr::random(rng, self.arity, p.max_depth)
            };
            population.push(individual);
        }

        let mut fitness: Vec<usize> = population
            .iter()
            .map(|e| {
                evaluations += 1;
                suite.passed(e)
            })
            .collect();

        let mut best_idx = argmax(&fitness);
        on_generation(0, fitness[best_idx], suite.len());
        for generation in 0..p.generations {
            if fitness[best_idx] == suite.len() {
                return GpResult {
                    best: population[best_idx].clone(),
                    best_fitness: fitness[best_idx],
                    total_cases: suite.len(),
                    generations_used: generation,
                    evaluations,
                };
            }
            let mut next: Vec<Expr> = Vec::with_capacity(p.population);
            // Elitism: carry the best individuals over unchanged.
            let mut order: Vec<usize> = (0..population.len()).collect();
            order.sort_by(|&a, &b| fitness[b].cmp(&fitness[a]));
            for &i in order.iter().take(p.elitism.min(population.len())) {
                next.push(population[i].clone());
            }
            while next.len() < p.population {
                let parent_a = self.select(&population, &fitness, rng);
                let offspring = if rng.chance(p.crossover_rate) {
                    let parent_b = self.select(&population, &fitness, rng);
                    self.crossover(parent_a, parent_b, rng)
                } else {
                    parent_a.clone()
                };
                let offspring = if rng.chance(p.mutation_rate) {
                    self.mutate(&offspring, rng)
                } else {
                    offspring
                };
                if offspring.size() <= p.max_size {
                    next.push(offspring);
                } else {
                    next.push(parent_a.clone());
                }
            }
            population = next;
            fitness = population
                .iter()
                .map(|e| {
                    evaluations += 1;
                    suite.passed(e)
                })
                .collect();
            best_idx = argmax(&fitness);
            on_generation(generation + 1, fitness[best_idx], suite.len());
        }
        GpResult {
            best: population[best_idx].clone(),
            best_fitness: fitness[best_idx],
            total_cases: suite.len(),
            generations_used: self.params.generations,
            evaluations,
        }
    }

    fn select<'a>(
        &self,
        population: &'a [Expr],
        fitness: &[usize],
        rng: &mut SplitMix64,
    ) -> &'a Expr {
        let mut best = rng.index(population.len());
        for _ in 1..self.params.tournament.max(1) {
            let challenger = rng.index(population.len());
            if fitness[challenger] > fitness[best] {
                best = challenger;
            }
        }
        &population[best]
    }

    /// Subtree crossover: replace a random node of `a` with a random
    /// subtree of `b`.
    fn crossover(&self, a: &Expr, b: &Expr, rng: &mut SplitMix64) -> Expr {
        let at = rng.index(a.size());
        let from = rng.index(b.size());
        let donor = b.node(from).unwrap_or(b).clone();
        a.with_node(at, &donor)
    }

    /// Mutation: point mutation (constants, variables) or subtree
    /// replacement.
    fn mutate(&self, e: &Expr, rng: &mut SplitMix64) -> Expr {
        let at = rng.index(e.size());
        match e.node(at) {
            Some(Expr::Const(c)) if rng.chance(0.5) => {
                e.with_node(at, &Expr::Const(c + rng.range_i64(-3, 4)))
            }
            Some(Expr::Var(_)) if self.arity > 1 && rng.chance(0.5) => {
                e.with_node(at, &Expr::Var(rng.index(self.arity)))
            }
            _ => {
                let depth = 1 + rng.index(self.params.max_depth.max(1));
                let subtree = Expr::random(rng, self.arity, depth);
                e.with_node(at, &subtree)
            }
        }
    }
}

fn argmax(values: &[usize]) -> usize {
    let mut best = 0;
    for (i, v) in values.iter().enumerate() {
        if *v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;

    #[test]
    fn already_correct_program_repairs_in_zero_generations() {
        let correct = mul(v(0), c(2));
        let mut rng = SplitMix64::new(1);
        let suite = TestSuite::from_reference(|xs| xs[0] * 2, 1, 30, -50, 50, &mut rng);
        let gp = Gp::new(1, GpParams::default());
        let result = gp.repair(&correct, &suite, &mut rng);
        assert!(result.is_fixed());
        assert_eq!(result.generations_used, 0);
    }

    #[test]
    fn repairs_wrong_constant() {
        // Faulty: x + 3, correct: x + 1. A nearby point mutation fixes it.
        let faulty = add(v(0), c(3));
        let mut rng = SplitMix64::new(2);
        let suite = TestSuite::from_reference(|xs| xs[0] + 1, 1, 40, -50, 50, &mut rng);
        let gp = Gp::new(1, GpParams::default());
        let result = gp.repair(&faulty, &suite, &mut rng);
        assert!(
            result.is_fixed(),
            "best fitness {}/{}",
            result.best_fitness,
            result.total_cases
        );
        assert!(suite.all_pass(&result.best));
    }

    #[test]
    fn repairs_swapped_branches_min_into_max() {
        // Faulty computes min; the suite demands max.
        let faulty = iff(lt(v(0), v(1)), v(0), v(1));
        let mut rng = SplitMix64::new(3);
        let suite = TestSuite::from_reference(|xs| xs[0].max(xs[1]), 2, 40, -50, 50, &mut rng);
        let gp = Gp::new(2, GpParams::default());
        let result = gp.repair(&faulty, &suite, &mut rng);
        assert!(
            result.is_fixed(),
            "best fitness {}/{}",
            result.best_fitness,
            result.total_cases
        );
    }

    #[test]
    fn reports_partial_fitness_when_unfixable_in_budget() {
        // A hard target with a tiny budget: should not panic, and should
        // report honest partial fitness.
        let faulty = c(0);
        let mut rng = SplitMix64::new(4);
        let suite = TestSuite::from_reference(
            |xs| xs[0] * xs[0] * xs[0] + xs[1] * 7 - 13,
            2,
            60,
            -50,
            50,
            &mut rng,
        );
        let gp = Gp::new(
            2,
            GpParams {
                population: 10,
                generations: 2,
                ..GpParams::default()
            },
        );
        let result = gp.repair(&faulty, &suite, &mut rng);
        assert!(result.best_fitness <= result.total_cases);
        assert_eq!(result.total_cases, 60);
        assert!(result.evaluations > 0);
    }

    #[test]
    fn bloat_control_respects_max_size() {
        let faulty = add(v(0), c(3));
        let mut rng = SplitMix64::new(5);
        let suite = TestSuite::from_reference(|xs| xs[0] + 1, 1, 20, -50, 50, &mut rng);
        let gp = Gp::new(
            1,
            GpParams {
                max_size: 12,
                generations: 10,
                ..GpParams::default()
            },
        );
        let result = gp.repair(&faulty, &suite, &mut rng);
        assert!(result.best.size() <= 12, "size {}", result.best.size());
    }
}
