//! Genetic programming for automatic fault fixing.
//!
//! Weimer et al. and Arcuri & Yao (both cited in the paper's §5.1) repair
//! programs by evolving variants of the faulty code under the guidance of
//! a test suite, which acts as the explicit adjudicator. This crate
//! provides the full substrate:
//!
//! - [`ast`] — a small expression language (constants, variables,
//!   arithmetic, comparisons, conditionals) with a safe interpreter;
//! - [`suite`] — test suites as fitness functions;
//! - [`engine`] — the GP loop: tournament selection, subtree crossover,
//!   point and subtree mutation, elitism, seeded from the *faulty* program
//!   (as in Weimer's work, repair searches near the original);
//! - [`corpus`](mod@corpus) — a set of seeded-bug programs with reference semantics,
//!   the benchmark for experiment E14.

#![warn(missing_docs)]

pub mod ast;
pub mod corpus;
pub mod engine;
pub mod suite;

pub use ast::{build, Cond, Expr};
pub use corpus::{corpus, correct_versions, BuggyProgram};
pub use engine::{Gp, GpParams, GpResult};
pub use suite::{TestCase, TestSuite};
