//! The seeded-bug program corpus for the fault-fixing experiment (E14).
//!
//! Each entry pairs a *faulty* program (a realistic single-edit bug:
//! swapped branches, wrong constant, wrong variable, missing negation,
//! wrong comparison) with the reference semantics used to generate the
//! adjudicating test suite.

use redundancy_core::rng::SplitMix64;

use crate::ast::build::{add, c, iff, le, lt, mul, neg, sub, v};
use crate::ast::{Cond, Expr};
use crate::suite::TestSuite;

/// A reference implementation.
pub type Reference = fn(&[i64]) -> i64;

/// A program with a seeded bug.
pub struct BuggyProgram {
    /// Corpus entry name.
    pub name: &'static str,
    /// The faulty program.
    pub faulty: Expr,
    /// Reference semantics.
    pub reference: Reference,
    /// Number of input variables.
    pub arity: usize,
    /// Short description of the seeded bug.
    pub bug: &'static str,
}

impl std::fmt::Debug for BuggyProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuggyProgram")
            .field("name", &self.name)
            .field("bug", &self.bug)
            .field("arity", &self.arity)
            .finish_non_exhaustive()
    }
}

impl BuggyProgram {
    /// Generates a test suite for this program from its reference.
    #[must_use]
    pub fn suite(&self, cases: usize, rng: &mut SplitMix64) -> TestSuite {
        TestSuite::from_reference(self.reference, self.arity, cases, -50, 50, rng)
    }

    /// Whether the seeded bug actually manifests on this suite (sanity
    /// check used by tests and the experiment harness).
    #[must_use]
    pub fn bug_manifests(&self, suite: &TestSuite) -> bool {
        !suite.all_pass(&self.faulty)
    }
}

fn r_max2(xs: &[i64]) -> i64 {
    xs[0].max(xs[1])
}
fn r_abs(xs: &[i64]) -> i64 {
    xs[0].abs()
}
fn r_sum3(xs: &[i64]) -> i64 {
    xs[0] + xs[1] + xs[2]
}
fn r_poly(xs: &[i64]) -> i64 {
    xs[0] * xs[0] + 2 * xs[0] + 1
}
fn r_sign(xs: &[i64]) -> i64 {
    xs[0].signum()
}
fn r_clamp(xs: &[i64]) -> i64 {
    // clamp(x, -10, 10)
    xs[0].clamp(-10, 10)
}
fn r_min3(xs: &[i64]) -> i64 {
    xs[0].min(xs[1]).min(xs[2])
}
fn r_diff_abs(xs: &[i64]) -> i64 {
    (xs[0] - xs[1]).abs()
}

/// The corpus used by experiment E14.
#[must_use]
pub fn corpus() -> Vec<BuggyProgram> {
    vec![
        BuggyProgram {
            name: "max2",
            // Correct: if x0 < x1 then x1 else x0. Bug: branches swapped.
            faulty: iff(lt(v(0), v(1)), v(0), v(1)),
            reference: r_max2,
            arity: 2,
            bug: "swapped branches (computes min)",
        },
        BuggyProgram {
            name: "abs",
            // Correct: if x0 < 0 then -x0 else x0. Bug: missing negation.
            faulty: iff(lt(v(0), c(0)), v(0), v(0)),
            reference: r_abs,
            arity: 1,
            bug: "missing negation on the negative branch",
        },
        BuggyProgram {
            name: "sum3",
            // Correct: x0 + x1 + x2. Bug: wrong variable (x1 twice).
            faulty: add(add(v(0), v(1)), v(1)),
            reference: r_sum3,
            arity: 3,
            bug: "wrong variable (x1 used twice, x2 never)",
        },
        BuggyProgram {
            name: "poly",
            // Correct: x0^2 + 2 x0 + 1. Bug: constant off by two.
            faulty: add(add(mul(v(0), v(0)), mul(c(2), v(0))), c(-1)),
            reference: r_poly,
            arity: 1,
            bug: "wrong constant term (-1 instead of +1)",
        },
        BuggyProgram {
            name: "sign",
            // Correct: if x0 < 0 then -1 else if 0 < x0 then 1 else 0.
            // Bug: negative branch returns 0.
            faulty: iff(lt(v(0), c(0)), c(0), iff(lt(c(0), v(0)), c(1), c(0))),
            reference: r_sign,
            arity: 1,
            bug: "negative branch returns 0 instead of -1",
        },
        BuggyProgram {
            name: "clamp",
            // Correct: if x0 < -10 then -10 else if 10 < x0 then 10 else x0.
            // Bug: wrong boundary constant (clamps at -1).
            faulty: iff(lt(v(0), c(-1)), c(-10), iff(lt(c(10), v(0)), c(10), v(0))),
            reference: r_clamp,
            arity: 1,
            bug: "wrong lower boundary (-1 instead of -10)",
        },
        BuggyProgram {
            name: "min3",
            // Correct: min(min(x0, x1), x2). Bug: inner comparison uses
            // the wrong operand pair, so x2 can be skipped.
            faulty: iff(
                lt(v(0), v(1)),
                iff(lt(v(0), v(2)), v(0), v(2)),
                v(1), // should compare x1 with x2
            ),
            reference: r_min3,
            arity: 3,
            bug: "missing comparison of x1 against x2",
        },
        BuggyProgram {
            name: "diff-abs",
            // Correct: |x0 - x1|. Bug: comparison reversed, so the result
            // is negated for x0 > x1.
            faulty: iff(le(v(0), v(1)), sub(v(0), v(1)), sub(v(1), v(0))),
            reference: r_diff_abs,
            arity: 2,
            bug: "branches compute the negated difference",
        },
    ]
}

/// A correct version of each corpus entry, used by tests as a sanity
/// oracle for the reference functions.
#[must_use]
pub fn correct_versions() -> Vec<(&'static str, Expr)> {
    vec![
        ("max2", iff(lt(v(0), v(1)), v(1), v(0))),
        ("abs", iff(lt(v(0), c(0)), neg(v(0)), v(0))),
        ("sum3", add(add(v(0), v(1)), v(2))),
        ("poly", add(add(mul(v(0), v(0)), mul(c(2), v(0))), c(1))),
        (
            "sign",
            iff(lt(v(0), c(0)), c(-1), iff(lt(c(0), v(0)), c(1), c(0))),
        ),
        (
            "clamp",
            iff(lt(v(0), c(-10)), c(-10), iff(lt(c(10), v(0)), c(10), v(0))),
        ),
        (
            "min3",
            iff(
                Cond::Lt(Box::new(v(0)), Box::new(v(1))),
                iff(lt(v(0), v(2)), v(0), v(2)),
                iff(lt(v(1), v(2)), v(1), v(2)),
            ),
        ),
        (
            "diff-abs",
            iff(le(v(0), v(1)), sub(v(1), v(0)), sub(v(0), v(1))),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bug_manifests() {
        let mut rng = SplitMix64::new(10);
        for program in corpus() {
            let suite = program.suite(60, &mut rng);
            assert!(
                program.bug_manifests(&suite),
                "{}: seeded bug does not manifest",
                program.name
            );
        }
    }

    #[test]
    fn correct_versions_pass_their_suites() {
        let mut rng = SplitMix64::new(11);
        let correct = correct_versions();
        for program in corpus() {
            let suite = program.suite(60, &mut rng);
            let (_, fixed) = correct
                .iter()
                .find(|(name, _)| *name == program.name)
                .expect("correct version exists");
            assert!(
                suite.all_pass(fixed),
                "{}: correct version fails its own suite",
                program.name
            );
        }
    }

    #[test]
    fn buggy_programs_are_single_edit_away() {
        // Sanity: bugs should be small — each faulty program is within a
        // couple of nodes of its correct version in size.
        let correct = correct_versions();
        for program in corpus() {
            let (_, fixed) = correct
                .iter()
                .find(|(name, _)| *name == program.name)
                .unwrap();
            let delta = program.faulty.size().abs_diff(fixed.size());
            assert!(delta <= 4, "{}: bug edit too large ({delta})", program.name);
        }
    }

    #[test]
    fn corpus_has_expected_entries() {
        let names: Vec<_> = corpus().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["max2", "abs", "sum3", "poly", "sign", "clamp", "min3", "diff-abs"]
        );
    }
}
