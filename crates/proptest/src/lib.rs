//! A self-contained, offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no network access to a
//! package registry, so the real `proptest` cannot be downloaded. This
//! crate implements the (small) subset of its API that the workspace's
//! property tests use, with the same names and semantics:
//!
//! - the [`proptest!`] macro wrapping `#[test]` functions whose arguments
//!   are drawn from strategies (`x in 0u64..100`),
//! - range strategies over the primitive integer and float types,
//! - [`any`] for full-range values of primitive types,
//! - [`collection::vec`] for vectors of a strategy with a length range,
//! - [`option::of`] for optional values,
//! - tuple strategies,
//! - [`Strategy::prop_map`] for derived strategies,
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`.
//!
//! Unlike the real proptest there is no shrinking: a failing case panics
//! with the generated inputs so it can be reproduced (generation is fully
//! deterministic — a fixed seed is derived from the test name, so a
//! failure always reproduces on rerun).

use std::fmt;
use std::ops::Range;

/// Number of cases each property runs (the real proptest default is 256).
pub const DEFAULT_CASES: u32 = 256;

/// Deterministic generator used to produce case inputs (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Derives the per-test seed from the test's name, so each property
    /// gets an independent but stable stream.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Error type carried by `prop_assert*` failures inside a case body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with a message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a single property case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of generated values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy by mapping generated values through `f`.
    fn prop_map<T: fmt::Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: fmt::Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    #[allow(clippy::cast_possible_truncation)]
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
);

/// Types with a canonical full-range strategy (the real proptest's
/// `Arbitrary`).
pub trait Arbitrary: Sized + fmt::Debug {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy producing full-range values of `T` (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u64>()` etc.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing a `Vec` of `S`-generated elements with a length
    /// drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, 1..9)`: a vector of 1 to 8 generated elements.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Optional-value strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Option<S::Value>` (see [`of`]).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match the real proptest default: `None` about 1 time in 4.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.element.generate(rng))
            }
        }
    }

    /// `of(element)`: generates `None` sometimes, `Some(element)` otherwise.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy { element }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy, TestCaseError,
        TestCaseResult,
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) with the generated inputs attached.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Declares deterministic property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes(); // under `#[test]` the harness calls this
/// ```
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..$crate::DEFAULT_CASES {
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        $crate::DEFAULT_CASES,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::Strategy;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in -3i64..3, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..3).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vectors_respect_length(v in crate::collection::vec(0u8..2, 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 2));
        }

        #[test]
        fn tuples_generate_componentwise(pair in (0u8..2, 1u64..200)) {
            prop_assert!(pair.0 < 2);
            prop_assert!((1..200).contains(&pair.1));
        }

        #[test]
        fn early_ok_return_is_allowed(x in 0u64..4) {
            if x == 0 {
                return Ok(());
            }
            prop_assert!(x > 0);
        }

        #[test]
        fn options_and_maps_compose(
            v in crate::collection::vec(crate::option::of(0u8..3), 1..40).prop_map(|v| {
                v.into_iter().map(|o| o.map(i32::from)).collect::<Vec<_>>()
            }),
        ) {
            prop_assert!(v.iter().flatten().all(|&x| x < 3));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        let s = crate::collection::vec(0u64..100, 1..9);
        for _ in 0..32 {
            assert_eq!(
                crate::Strategy::generate(&s, &mut a),
                crate::Strategy::generate(&s, &mut b)
            );
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
