//! Equivalence suite for the branchless batch adjudication back-end.
//!
//! The batch path ships three representations of the same vote — the
//! scalar voters, the zero-alloc row kernel (`vote_row` via
//! `adjudicate_batch_row`), and the SoA column kernels
//! (`OutcomeColumns::adjudicate`) — plus the streaming front-end from
//! the incremental refactor. These proptests pin all of them to the
//! historical scalar verdicts on arbitrary outcome streams: same winner,
//! same support/dissent counts, same rejection reason, for every voting
//! rule, whether the batch toggle is on or off.

use proptest::prelude::*;
use redundancy_core::adjudicator::voting::{
    MajorityVoter, PluralityVoter, QuorumVoter, UnanimityVoter,
};
use redundancy_core::adjudicator::{batch, Adjudicator, OutcomeColumns, VoteRule};
use redundancy_core::outcome::{VariantFailure, VariantOutcome};

/// An arbitrary outcome stream: `Some(v)` succeeds with output `v`,
/// `None` fails detectably. Values are drawn from a small range so
/// agreement classes actually form, and rows are capped at the column
/// arity limit.
fn outcomes_strategy() -> impl Strategy<Value = Vec<VariantOutcome<i64>>> {
    proptest::collection::vec(proptest::option::of(0i64..4), 0..10).prop_map(row_to_outcomes)
}

fn row_to_outcomes(row: Vec<Option<i64>>) -> Vec<VariantOutcome<i64>> {
    row.into_iter()
        .enumerate()
        .map(|(i, v)| match v {
            Some(v) => VariantOutcome::ok(format!("v{i}"), v),
            None => VariantOutcome::failed(format!("v{i}"), VariantFailure::Timeout),
        })
        .collect()
}

fn voters() -> Vec<(VoteRule, Box<dyn Adjudicator<i64>>)> {
    vec![
        (VoteRule::Majority, Box::new(MajorityVoter::new())),
        (VoteRule::Plurality, Box::new(PluralityVoter::new())),
        (VoteRule::Quorum(2), Box::new(QuorumVoter::new(2))),
        (VoteRule::Unanimity, Box::new(UnanimityVoter::new())),
    ]
}

/// Pins one outcome row across every representation of one voter.
fn check_row(
    rule: VoteRule,
    voter: &dyn Adjudicator<i64>,
    outcomes: &[VariantOutcome<i64>],
) -> Result<(), TestCaseError> {
    let scalar = voter.adjudicate(outcomes);
    // Row kernel, direct.
    prop_assert_eq!(
        batch::vote_row(rule, |a, b| a == b, outcomes),
        scalar.clone(),
        "vote_row diverged under {:?}",
        rule
    );
    // Engine entry point (routes through vote_row when the toggle is on,
    // falls back to adjudicate when off; identical either way).
    prop_assert_eq!(
        voter.adjudicate_batch_row(outcomes),
        scalar.clone(),
        "adjudicate_batch_row diverged under {:?}",
        rule
    );
    // Streaming front-end: feed everything, then finish.
    let mut inc = voter.begin_incremental(outcomes.len());
    let mut early = None;
    for outcome in outcomes {
        match inc.feed(outcome) {
            redundancy_core::adjudicator::Decision::Undecided => {}
            redundancy_core::adjudicator::Decision::Decided(v) => {
                early = Some(v);
                break;
            }
            redundancy_core::adjudicator::Decision::Unreachable => {
                prop_assert!(!scalar.is_accepted(), "unreachable but scalar accepted");
                return Ok(());
            }
        }
    }
    match early {
        Some(v) => {
            prop_assert_eq!(v.is_accepted(), scalar.is_accepted());
            if v.is_accepted() {
                prop_assert_eq!(v.output(), scalar.output());
            }
        }
        None => prop_assert_eq!(inc.finish(outcomes), scalar),
    }
    Ok(())
}

proptest! {
    /// Row kernel, trait entry point, and streaming front-end all agree
    /// with the scalar voters on arbitrary streams.
    #[test]
    fn all_representations_agree(outcomes in outcomes_strategy()) {
        for (rule, voter) in &voters() {
            check_row(*rule, voter.as_ref(), &outcomes)?;
        }
    }

    /// The SoA column kernels reproduce the scalar verdict row by row on
    /// arbitrary packed chunks.
    #[test]
    fn columns_agree_with_scalar_voters(
        rows in proptest::collection::vec(
            proptest::collection::vec(proptest::option::of(0i64..4), 1..8),
            1..12,
        ),
        arity_pick in 1usize..8,
    ) {
        // Normalize every row to one arity (columns are rectangular).
        let arity = arity_pick.min(rows[0].len()).max(1);
        let rows: Vec<Vec<Option<i64>>> = rows
            .into_iter()
            .map(|mut r| {
                r.resize(arity, None);
                r
            })
            .collect();
        let mut columns: OutcomeColumns<i64> = OutcomeColumns::new(arity);
        for row in &rows {
            columns.push_row(row);
        }
        for (rule, voter) in &voters() {
            let verdicts = columns.adjudicate(*rule);
            prop_assert_eq!(verdicts.len(), rows.len());
            for (row, verdict) in rows.iter().zip(&verdicts) {
                let outcomes = row_to_outcomes(row.clone());
                prop_assert_eq!(
                    verdict.to_verdict(&columns),
                    voter.adjudicate(&outcomes),
                    "rule {:?}, row {:?}",
                    rule,
                    row
                );
            }
        }
    }

    /// `push_outcomes` packs exactly like `push_row` on the same data.
    #[test]
    fn push_outcomes_matches_push_row(row in proptest::collection::vec(proptest::option::of(0i64..4), 1..8)) {
        let outcomes = row_to_outcomes(row.clone());
        let mut by_row: OutcomeColumns<i64> = OutcomeColumns::new(row.len());
        by_row.push_row(&row);
        let mut by_outcomes: OutcomeColumns<i64> = OutcomeColumns::new(row.len());
        by_outcomes.push_outcomes(&outcomes);
        for (rule, _) in &voters() {
            prop_assert_eq!(by_row.adjudicate(*rule), by_outcomes.adjudicate(*rule));
        }
    }
}
