//! Frozen-reference regression test for the streaming-engine refactor.
//!
//! The pattern engines were rebuilt around streaming verdicts. The
//! guarantee of `DecisionPolicy::Exhaustive` (the default) is that the
//! rebuild changed *nothing* observable: reports, per-variant outcomes,
//! costs, and full traced event streams are bit-identical to the
//! pre-refactor engines on fixed seeds. This test pins that by carrying a
//! frozen copy of the pre-refactor "run all, then adjudicate" engine
//! (written against the public API) and comparing it against
//! `ParallelEvaluation::run` outcome by outcome and event by event.

use redundancy_core::adjudicator::voting::{MajorityVoter, MedianVoter};
use redundancy_core::adjudicator::Adjudicator;
use redundancy_core::context::ExecContext;
use redundancy_core::outcome::VariantFailure;
use redundancy_core::patterns::{emit_verdict, verdict_status, ParallelEvaluation, PatternReport};
use redundancy_core::variant::{pure_variant, run_contained, BoxedVariant, FnVariant};
use redundancy_obs::{RingBufferObserver, SpanKind};

/// The pre-refactor parallel-evaluation engine, frozen: fork each variant
/// in order, run them all, charge the critical path, adjudicate the full
/// outcome set, emit the verdict, end the pattern span.
fn reference_run<I, O: Clone>(
    variants: &[BoxedVariant<I, O>],
    adjudicator: &dyn Adjudicator<O>,
    input: &I,
    ctx: &mut ExecContext,
) -> PatternReport<O> {
    let span = ctx.obs_begin(|| SpanKind::Pattern {
        name: "parallel_evaluation",
    });
    let before = ctx.cost();
    let mut outcomes = Vec::with_capacity(variants.len());
    for (i, variant) in variants.iter().enumerate() {
        let mut child = ctx.fork(i as u64);
        outcomes.push(run_contained(variant.as_ref(), input, &mut child));
    }
    ctx.add_parallel_costs(outcomes.iter().map(|o| o.cost));
    let verdict = adjudicator.adjudicate(&outcomes);
    emit_verdict(ctx, &verdict);
    ctx.obs_end(
        span,
        verdict_status(&verdict),
        ctx.cost().delta_since(before).snapshot(),
    );
    PatternReport {
        verdict,
        cost: ctx.cost().delta_since(before),
        outcomes,
        selected: None,
    }
}

/// A variant whose output depends on its forked random stream, so any
/// change in fork order or count shows up as a different output.
fn noisy_variant(name: &str, work: u64) -> BoxedVariant<i32, i64> {
    Box::new(FnVariant::new(
        name,
        move |x: &i32, ctx: &mut ExecContext| {
            ctx.charge(work).map_err(|_| VariantFailure::Timeout)?;
            let noise = (ctx.rng().next_u64() % 3) as i64;
            Ok(i64::from(*x) * 10 + noise)
        },
    ))
}

fn variant_set() -> Vec<BoxedVariant<i32, i64>> {
    vec![
        noisy_variant("n1", 10),
        noisy_variant("n2", 25),
        pure_variant("p3", 15, |x: &i32| i64::from(*x) * 10),
        Box::new(FnVariant::new(
            "crasher",
            |_: &i32, _: &mut ExecContext| -> Result<i64, VariantFailure> { panic!("injected") },
        )),
        noisy_variant("n5", 40),
    ]
}

#[test]
fn exhaustive_reports_match_frozen_reference_on_fixed_seeds() {
    for seed in [0u64, 1, 7, 42, 0x5eed_2008, u64::MAX] {
        let mut ref_ctx = ExecContext::new(seed);
        let reference = reference_run(&variant_set(), &MajorityVoter::new(), &3, &mut ref_ctx);

        let mut engine = ParallelEvaluation::new(MajorityVoter::new());
        for v in variant_set() {
            engine.push_variant(v);
        }
        let mut ctx = ExecContext::new(seed);
        let report = engine.run(&3, &mut ctx);

        assert_eq!(report.verdict, reference.verdict, "seed {seed:#x}");
        assert_eq!(report.cost, reference.cost, "seed {seed:#x}");
        assert_eq!(report.selected, reference.selected, "seed {seed:#x}");
        assert_eq!(
            report.outcomes, reference.outcomes,
            "per-variant outcomes diverged at seed {seed:#x}"
        );
        assert_eq!(ctx.cost(), ref_ctx.cost(), "context meters diverged");
    }
}

#[test]
fn exhaustive_traced_streams_match_frozen_reference_on_fixed_seeds() {
    for seed in [0u64, 13, 0x5eed_2008] {
        let ref_ring = RingBufferObserver::shared(256);
        let mut ref_ctx = ExecContext::new(seed).with_observer(ref_ring.clone());
        let _ = reference_run(&variant_set(), &MedianVoter::new(), &5, &mut ref_ctx);

        let mut engine = ParallelEvaluation::new(MedianVoter::new());
        for v in variant_set() {
            engine.push_variant(v);
        }
        let ring = RingBufferObserver::shared(256);
        let mut ctx = ExecContext::new(seed).with_observer(ring.clone());
        let _ = engine.run(&5, &mut ctx);

        let reference_events = ref_ring.events();
        let events = ring.events();
        assert_eq!(
            events.len(),
            reference_events.len(),
            "event counts diverged at seed {seed:#x}"
        );
        for (got, want) in events.iter().zip(reference_events.iter()) {
            assert_eq!(got.seq, want.seq, "seed {seed:#x}");
            assert_eq!(got.span, want.span, "seed {seed:#x}");
            assert_eq!(got.parent, want.parent, "seed {seed:#x}");
            assert_eq!(got.clock, want.clock, "seed {seed:#x}");
            assert_eq!(got.kind, want.kind, "seed {seed:#x}");
        }
    }
}
