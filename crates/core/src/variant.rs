//! Variants: independently produced implementations of one logical
//! functionality.
//!
//! A [`Variant`] is the unit of code redundancy: N-version programming
//! executes several of them in parallel, recovery blocks try them one at a
//! time, self-checking components pair them with acceptance tests. Variants
//! are executed *contained*: panics are caught and surfaced as
//! [`VariantFailure::Crash`], and fuel exhaustion as
//! [`VariantFailure::Timeout`], so a misbehaving alternative can never take
//! down the adjudicating pattern — the framework's analogue of the process
//! isolation that classic fault-tolerant architectures assume.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::context::ExecContext;
use crate::outcome::{VariantFailure, VariantOutcome};

/// One independently designed implementation of a logical function
/// `I -> O`.
///
/// Implementations must be [`Send`] and [`Sync`] so pattern engines can run
/// them from worker threads.
pub trait Variant<I, O>: Send + Sync {
    /// Identifies the variant in outcomes, logs and tables.
    fn name(&self) -> &str;

    /// The name as an interned [`Symbol`](redundancy_obs::Symbol), used
    /// for trace events.
    ///
    /// The default interns [`name`](Self::name) on every call — a lock
    /// plus a hash lookup; variants that execute hot (campaign
    /// workloads) should store their symbol and override this with a
    /// field copy so traced runs don't touch the interner per span.
    fn symbol(&self) -> redundancy_obs::Symbol {
        redundancy_obs::Symbol::intern(self.name())
    }

    /// Executes the variant.
    ///
    /// # Errors
    ///
    /// Returns a [`VariantFailure`] for *detectable* failures. Silent wrong
    /// outputs are returned as `Ok` — only adjudication can catch those.
    fn execute(&self, input: &I, ctx: &mut ExecContext) -> Result<O, VariantFailure>;

    /// Relative design cost of this variant (1.0 = one ordinary
    /// implementation). N-version experiments use this for the §4.1
    /// cost/efficacy analysis.
    fn design_cost(&self) -> f64 {
        1.0
    }
}

/// A [`Variant`] built from a closure.
///
/// # Examples
///
/// ```
/// use redundancy_core::variant::{FnVariant, Variant};
/// use redundancy_core::context::ExecContext;
///
/// let double = FnVariant::new("double", |x: &i32, _ctx: &mut ExecContext| Ok(x * 2));
/// let mut ctx = ExecContext::new(0);
/// assert_eq!(double.execute(&21, &mut ctx), Ok(42));
/// ```
pub struct FnVariant<F> {
    name: redundancy_obs::Symbol,
    design_cost: f64,
    f: F,
}

impl<F> FnVariant<F> {
    /// Wraps a closure as a variant. The name is interned once here, so
    /// traced executions copy a 4-byte symbol per span instead of
    /// allocating.
    pub fn new(name: impl AsRef<str>, f: F) -> Self {
        Self {
            name: redundancy_obs::Symbol::intern(name.as_ref()),
            design_cost: 1.0,
            f,
        }
    }

    /// Sets the design cost (defaults to 1.0).
    #[must_use]
    pub fn with_design_cost(mut self, cost: f64) -> Self {
        self.design_cost = cost;
        self
    }
}

impl<I, O, F> Variant<I, O> for FnVariant<F>
where
    F: Fn(&I, &mut ExecContext) -> Result<O, VariantFailure> + Send + Sync,
{
    fn name(&self) -> &str {
        self.name.resolve()
    }

    fn symbol(&self) -> redundancy_obs::Symbol {
        self.name
    }

    fn execute(&self, input: &I, ctx: &mut ExecContext) -> Result<O, VariantFailure> {
        (self.f)(input, ctx)
    }

    fn design_cost(&self) -> f64 {
        self.design_cost
    }
}

impl<I, O> Variant<I, O> for Box<dyn Variant<I, O>> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn symbol(&self) -> redundancy_obs::Symbol {
        self.as_ref().symbol()
    }

    fn execute(&self, input: &I, ctx: &mut ExecContext) -> Result<O, VariantFailure> {
        self.as_ref().execute(input, ctx)
    }

    fn design_cost(&self) -> f64 {
        self.as_ref().design_cost()
    }
}

/// Executes a variant with crash containment, producing a
/// [`VariantOutcome`] whatever happens.
///
/// Panics become [`VariantFailure::Crash`]; the cost accumulated in `ctx`
/// *during this call* is attached to the outcome (and removed from `ctx`, so
/// callers can meter each variant independently).
pub fn run_contained<I, O, V>(variant: &V, input: &I, ctx: &mut ExecContext) -> VariantOutcome<O>
where
    V: Variant<I, O> + ?Sized,
{
    let name = variant.symbol();
    let span = ctx.obs_begin(|| redundancy_obs::SpanKind::Variant { name });
    let before = ctx.cost();
    ctx.record_invocation(variant.design_cost());
    let result = catch_unwind(AssertUnwindSafe(|| variant.execute(input, ctx)));
    let result = match result {
        Ok(res) => res,
        Err(payload) => Err(VariantFailure::crash(panic_message(payload.as_ref()))),
    };
    // A failure under a fired cancellation token is a cooperative stop,
    // not a genuine timeout/crash: report it as such so adjudicators and
    // traces can tell abandoned work from failed work.
    let result = match result {
        Err(_) if ctx.was_cancelled() => {
            ctx.obs_emit(|| redundancy_obs::Point::VariantCancelled { variant: name });
            Err(VariantFailure::Cancelled)
        }
        other => other,
    };
    let status = match &result {
        Ok(_) => redundancy_obs::SpanStatus::Ok,
        Err(failure) => redundancy_obs::SpanStatus::Failed {
            kind: failure.kind(),
        },
    };
    ctx.obs_end(span, status, ctx.cost().delta_since(before).snapshot());
    let cost = ctx.take_cost();
    VariantOutcome {
        variant: name.resolve().to_owned(),
        result,
        cost,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

/// Boxed trait-object alias used by pattern engines.
pub type BoxedVariant<I, O> = Box<dyn Variant<I, O>>;

/// Builds a boxed variant from a plain `Fn(&I) -> O` that cannot fail and
/// charges `work` units per call. Convenient for tests and examples.
pub fn pure_variant<I, O, F>(name: &str, work: u64, f: F) -> BoxedVariant<I, O>
where
    I: 'static,
    O: 'static,
    F: Fn(&I) -> O + Send + Sync + 'static,
{
    Box::new(FnVariant::new(
        name,
        move |input: &I, ctx: &mut ExecContext| {
            ctx.charge(work).map_err(|_| VariantFailure::Timeout)?;
            Ok(f(input))
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_variant_executes() {
        let v = FnVariant::new("inc", |x: &i32, _: &mut ExecContext| Ok(x + 1));
        let mut ctx = ExecContext::new(0);
        assert_eq!(v.execute(&1, &mut ctx), Ok(2));
        assert_eq!(Variant::<i32, i32>::name(&v), "inc");
    }

    #[test]
    fn contained_run_catches_panic() {
        let v: BoxedVariant<i32, i32> = Box::new(FnVariant::new(
            "bomb",
            |_: &i32, _: &mut ExecContext| -> Result<i32, VariantFailure> {
                panic!("kaboom");
            },
        ));
        let mut ctx = ExecContext::new(0);
        let outcome = run_contained(v.as_ref(), &5, &mut ctx);
        match outcome.result {
            Err(VariantFailure::Crash { message }) => assert_eq!(message, "kaboom"),
            other => panic!("expected crash, got {other:?}"),
        }
    }

    #[test]
    fn contained_run_catches_string_panic() {
        let v = FnVariant::new(
            "bomb2",
            |_: &i32, _: &mut ExecContext| -> Result<i32, VariantFailure> {
                panic!("code {}", 7);
            },
        );
        let mut ctx = ExecContext::new(0);
        let outcome = run_contained(&v, &5, &mut ctx);
        match outcome.result {
            Err(VariantFailure::Crash { message }) => assert_eq!(message, "code 7"),
            other => panic!("expected crash, got {other:?}"),
        }
    }

    #[test]
    fn contained_run_meters_cost_per_variant() {
        let v = pure_variant("work", 25, |x: &i32| x * 3);
        let mut ctx = ExecContext::new(0);
        let outcome = run_contained(v.as_ref(), &2, &mut ctx);
        assert_eq!(outcome.result, Ok(6));
        assert_eq!(outcome.cost.work_units, 25);
        assert_eq!(outcome.cost.invocations, 1);
        // cost was moved out of the context
        assert_eq!(ctx.cost().work_units, 0);
    }

    #[test]
    fn fuel_exhaustion_becomes_timeout() {
        let v = pure_variant("hungry", 1000, |x: &i32| *x);
        let mut ctx = ExecContext::with_fuel(0, 10);
        let outcome = run_contained(v.as_ref(), &1, &mut ctx);
        assert_eq!(outcome.result, Err(VariantFailure::Timeout));
    }

    #[test]
    fn cancelled_charge_reports_cancelled_not_timeout() {
        use crate::context::CancelToken;
        let v = pure_variant("slow", 100, |x: &i32| *x);
        let token = CancelToken::new();
        token.cancel();
        let mut ctx = ExecContext::new(0).with_cancel_token(token);
        let outcome = run_contained(v.as_ref(), &1, &mut ctx);
        assert_eq!(outcome.result, Err(VariantFailure::Cancelled));
    }

    #[test]
    fn design_cost_defaults_and_overrides() {
        let v = FnVariant::new("x", |_: &(), _: &mut ExecContext| Ok(()));
        assert!((Variant::<(), ()>::design_cost(&v) - 1.0).abs() < f64::EPSILON);
        let v = v.with_design_cost(3.0);
        assert!((Variant::<(), ()>::design_cost(&v) - 3.0).abs() < f64::EPSILON);
    }

    #[test]
    fn boxed_variant_delegates() {
        let v: BoxedVariant<i32, i32> = pure_variant("p", 1, |x| x + 10);
        assert_eq!(v.name(), "p");
        let mut ctx = ExecContext::new(0);
        assert_eq!(v.execute(&1, &mut ctx), Ok(11));
    }
}
